"""Experiment concurrency — serving throughput under offered load.

The paper's middleware is a *serving* system: many clients pose queries
against the SON at once, and Section 2.5's compile/execute machinery is
claimed cheap enough to run per query.  The seed repository only ever
ran one query to quiescence at a time, which measures latency but says
nothing about serving capacity.

This experiment drives one hybrid deployment (synthetic 4-peer dataset,
8 distinct chain queries, cold caches so every submission is real work,
fair per-query scheduling so peers model finite CPU) through rising
offered load with the ``repro.workload_engine`` open-loop driver, and
compares completed-queries-per-virtual-time and latency percentiles
against the sequential baseline (the seed's regime: each query runs to
quiescence before the next is posed).

Expected shape:

* Concurrency pays: at ≥8 queries in flight, throughput is a multiple
  of the sequential baseline — coordinations overlap their network
  waits exactly as independent client sessions should.
* Unbounded overload hurts the tail: with no admission control, the
  fair scheduler's backlog grows with everything that was admitted and
  p99 balloons.
* Admission control bounds the tail: the same overload with a bounded
  queue sheds the excess (with a retry-after) and p99 of what *was*
  served stays near the moderate-load tail.

``python -m benchmarks.bench_concurrency --smoke`` asserts all three
for CI.
"""

from __future__ import annotations

import sys

from repro.errors import PeerError
from repro.systems import HybridSystem
from repro.workload_engine import AdmissionControl, WorkloadSpec
from repro.workloads.data_gen import Distribution, generate_bases
from repro.workloads.query_gen import random_queries
from repro.workloads.schema_gen import generate_schema

from ._common import banner, format_table, write_report

SEED = 11
PEERS = 4
COUNT = 36
#: fair-scheduler quantum — one local work unit per virtual time unit
#: of peer CPU, slow enough that unbounded concurrency visibly queues
QUANTUM = 1.0
ADMISSION = AdmissionControl(
    max_concurrent=2, max_queued=2, retry_after=20.0
)


def _dataset():
    synthetic = generate_schema(
        chain_length=4, refinement_fraction=0.0, noise_properties=1, seed=SEED
    )
    peer_ids = [f"P{i}" for i in range(1, PEERS + 1)]
    generated = generate_bases(
        synthetic, peer_ids, Distribution.MIXED,
        statements_per_segment=15, shared_pool=6, seed=SEED,
    )
    texts = random_queries(synthetic, 8, max_length=3, seed=SEED)
    return synthetic, peer_ids, generated.bases, texts


def _deployment():
    synthetic, peer_ids, bases, _ = _dataset()
    system = HybridSystem(synthetic.schema, seed=SEED, cache_enabled=False)
    system.add_super_peer("SP")
    for peer_id in peer_ids:
        system.add_peer(peer_id, bases[peer_id], "SP")
    system.run()  # settle advertisements before measuring
    system.enable_fair_scheduling(quantum=QUANTUM)
    return system, peer_ids


def _catalog(peer_ids, texts):
    return tuple(
        (peer_ids[i % len(peer_ids)], texts[i % len(texts)])
        for i in range(COUNT)
    )


def _percentile(values, fraction):
    ordered = sorted(values)
    if not ordered:
        return 0.0
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def sequential_baseline() -> dict:
    """The seed regime: one query at a time, each to quiescence."""
    system, peer_ids = _deployment()
    _, _, _, texts = _dataset()
    network = system.network
    started = network.now
    latencies = []
    completed = 0
    for via, text in _catalog(peer_ids, texts):
        t0 = network.now
        try:
            system.query(via, text)
            completed += 1
        except PeerError:
            pass  # "no relevant peers" still consumes virtual time
        latencies.append(network.now - t0)
    duration = network.now - started
    return {
        "completed": completed,
        "shed": 0,
        "max_inflight": 1,
        "duration": duration,
        "throughput": completed / duration if duration else 0.0,
        "latency_p50": _percentile(latencies, 0.50),
        "latency_p99": _percentile(latencies, 0.99),
        "silent": 0,
    }


def concurrent_run(arrival_rate: float, burst_size: int,
                   admission: AdmissionControl = None) -> dict:
    system, peer_ids = _deployment()
    _, _, _, texts = _dataset()
    if admission is not None:
        system.enable_admission(admission)
    spec = WorkloadSpec(
        queries=_catalog(peer_ids, texts),
        count=COUNT,
        mode="open",
        arrival_rate=arrival_rate,
        burst_size=burst_size,
        clients=4,
        seed=SEED,
        resubmit_sheds=False,
    )
    return system.serve(spec).summary()


#: (row label, callable) — regenerated in order for the report table
REGIMES = [
    ("sequential (seed regime)", sequential_baseline),
    ("open loop, light (λ=0.25)", lambda: concurrent_run(0.25, 1)),
    ("open loop, moderate (λ=1, burst 4)", lambda: concurrent_run(1.0, 4)),
    ("open loop, overload (λ=4, burst 12)", lambda: concurrent_run(4.0, 12)),
    ("overload + admission control", lambda: concurrent_run(4.0, 12, ADMISSION)),
]


def measure() -> dict:
    return {label: run() for label, run in REGIMES}


def report() -> str:
    results = measure()
    rows = []
    for label, summary in results.items():
        rows.append((
            label,
            int(summary["completed"]),
            int(summary["shed"]),
            int(summary["max_inflight"]),
            f"{summary['throughput']:.3f}",
            f"{summary['latency_p50']:.1f}",
            f"{summary['latency_p99']:.1f}",
        ))
    text = banner(
        "concurrency",
        "serving throughput and tail latency under offered load",
        "concurrent serving must beat the sequential regime's throughput, "
        "and admission control must bound the served tail under overload",
    ) + format_table(
        ("regime", "completed", "shed", "max inflight",
         "throughput/vt", "p50", "p99"),
        rows,
    )
    sequential = results["sequential (seed regime)"]
    overload = results["open loop, overload (λ=4, burst 12)"]
    return write_report(
        "concurrency",
        text,
        params={
            "seed": SEED, "peers": PEERS, "count": COUNT,
            "quantum": QUANTUM, "cache_enabled": False,
            "admission": {
                "max_concurrent": ADMISSION.max_concurrent,
                "max_queued": ADMISSION.max_queued,
                "retry_after": ADMISSION.retry_after,
            },
        },
        metrics={
            "sequential_throughput": sequential["throughput"],
            "overload_throughput": overload["throughput"],
            "speedup": overload["throughput"] / sequential["throughput"]
            if sequential["throughput"] else 0.0,
        },
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_sequential_regime(benchmark):
    summary = benchmark(sequential_baseline)
    assert summary["completed"] > 0


def bench_concurrent_overload(benchmark):
    summary = benchmark(lambda: concurrent_run(4.0, 12))
    assert summary["max_inflight"] >= 8
    assert summary["silent"] == 0


def bench_concurrency_beats_sequential(benchmark):
    def run():
        return sequential_baseline(), concurrent_run(4.0, 12)

    sequential, overload = benchmark(run)
    assert overload["throughput"] > sequential["throughput"]


# ----------------------------------------------------------------------
# CI smoke mode
# ----------------------------------------------------------------------
def smoke() -> int:
    results = measure()
    sequential = results["sequential (seed regime)"]
    overload = results["open loop, overload (λ=4, burst 12)"]
    shedding = results["overload + admission control"]
    print(
        f"sequential {sequential['throughput']:.3f}/vt vs overload "
        f"{overload['throughput']:.3f}/vt (max {overload['max_inflight']:.0f} "
        f"in flight); admission: {shedding['shed']:.0f} shed, "
        f"p99 {shedding['latency_p99']:.1f} vs unbounded {overload['latency_p99']:.1f}"
    )
    failed = False
    if overload["max_inflight"] < 8:
        print("FAIL: overload regime never reached 8 queries in flight")
        failed = True
    if overload["throughput"] <= sequential["throughput"]:
        print("FAIL: concurrent serving did not beat the sequential baseline")
        failed = True
    if shedding["shed"] == 0:
        print("FAIL: admission control under overload shed nothing")
        failed = True
    if shedding["latency_p99"] > overload["latency_p99"]:
        print("FAIL: shedding did not bound the served p99")
        failed = True
    for label, summary in results.items():
        if summary["silent"]:
            print(f"FAIL: {summary['silent']:.0f} silent queries in {label!r}")
            failed = True
    if not failed:
        print("OK: concurrency pays, shedding bounds the tail, nobody starves")
    return 1 if failed else 0


def main(argv) -> int:
    if "--smoke" in argv:
        return smoke()
    print(report())
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
