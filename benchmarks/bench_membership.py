"""Experiment membership — dynamic churn with durable recovery.

The robustness claim of the membership subsystem: peers can crash,
recover from their durable state (snapshot + membership-log replay)
and rejoin a serving deployment, and the deployment's answer quality
follows the membership — full answers while healthy, honest
coverage-annotated partials while degraded, full answers again once
the crashed peer rejoins and a mid-run joiner only widens coverage.

Three measurements:

* **Availability through churn**: a scripted crash → rejoin → join
  scenario over several dataset seeds, counting full vs partial
  answers per membership phase.
* **Recovery cost**: wall-clock to recover a peer's state as the
  membership log grows (replay is linear in committed records).
* **Live restart**: wall-clock from SIGKILL to the first full-coverage
  answer coordinated by the restarted process (includes supervised
  respawn, durable recovery and the rejoin advertisement round-trip).

``python -m benchmarks.bench_membership --smoke`` asserts the healed
phases answer fully and recovery metrics count, for CI.
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro.deploy import ClusterSpec, LiveCluster, build_sim_system, build_workload
from repro.durability import MemoryStore, PeerStateStore
from repro.membership import MembershipManager
from repro.rvl import ActiveSchema

from ._common import banner, format_table, write_report

SEEDS = (0, 1, 2)
VICTIM = "P2"
JOINER = "P4"
#: (phase name, coordinators) — the victim crashes after ``healthy``,
#: rejoins after ``degraded``, and the joiner arrives after ``healed``.
PHASES = (
    ("healthy", ("P1", "P2", "P3", "P1")),
    ("degraded", ("P1", "P3", "P1")),
    ("healed", ("P2", "P3")),
    ("grown", ("P4", "P1", "P2")),
)


def run_churn_sim(seed: int, churn: bool = True) -> dict:
    """One scripted cycle in-sim; outcomes bucketed by phase.

    With ``churn=False`` the victim never crashes (the joiner still
    arrives): the never-crashed twin whose answers the healed phases
    are held against — some seeded queries are partial even with every
    peer up, so "no partials after rejoin" would be the wrong oracle.
    """
    spec = ClusterSpec(seed=seed, peers=3, super_peers=1,
                      resilient=True, joiners=1)
    workload = build_workload(spec)
    system = build_sim_system(spec, workload)
    manager = MembershipManager(system)
    manager.attach_all()
    for peer in system.peers.values():
        peer.save_durable_snapshot()

    phases = {}
    outcomes = []
    index = 0
    started = time.perf_counter()
    for phase, coordinators in PHASES:
        if phase == "degraded" and churn:
            manager.crash(VICTIM)
            system.network.run()
        elif phase == "healed" and churn:
            manager.rejoin(VICTIM)
            system.network.run()
        elif phase == "grown":
            manager.join(JOINER, workload.bases[JOINER], "SP1")
            system.network.run()
        full = partial = errors = 0
        for via in coordinators:
            client = system.add_client()
            query_id = client.submit(via, workload.queries[index % len(workload.queries)])
            system.network.run()
            result = client.result(query_id)
            index += 1
            if result is None or result.error is not None:
                errors += 1
                outcomes.append("error")
            elif result.coverage is not None:
                partial += 1
                outcomes.append("partial")
            else:
                full += 1
                outcomes.append("full")
        phases[phase] = {"full": full, "partial": partial, "errors": errors}
    metrics = system.network.metrics
    return {
        "seed": seed,
        "phases": phases,
        "outcomes": outcomes,
        "duration_s": time.perf_counter() - started,
        "rejoins": metrics.rejoins,
        "recoveries": metrics.recoveries,
        "joins": metrics.joins,
        "snapshot_bytes": metrics.snapshot_bytes,
        "log_replays": metrics.log_replays,
    }


def run_recovery_cost(record_counts=(10, 100, 500)) -> list:
    """Wall-clock of ``recover()`` as the membership log grows."""
    spec = ClusterSpec(seed=0, peers=3, super_peers=1)
    workload = build_workload(spec)
    schema = workload.synthetic.schema
    advertisement = ActiveSchema.from_base(workload.bases["P1"], schema, "P1")
    rows = []
    for count in record_counts:
        store = PeerStateStore(MemoryStore(), "P1")
        store.save_snapshot(workload.bases["P1"])
        for _ in range(count):
            store.log_advertise(advertisement)
        t0 = time.perf_counter()
        recovered = store.recover()
        elapsed = time.perf_counter() - t0
        rows.append({
            "records": count,
            "recover_ms": elapsed * 1e3,
            "replayed": recovered.replayed,
        })
    return rows


def run_live_restart() -> dict:
    """SIGKILL → supervised-style restart → first full answer, live."""
    spec = ClusterSpec(seed=0, peers=3, super_peers=1, resilient=True)
    workload = build_workload(spec)
    with tempfile.TemporaryDirectory(prefix="bench-membership-") as tmp:
        cluster = LiveCluster(spec, Path(tmp) / "run",
                              statedir=Path(tmp) / "run" / "state")
        try:
            cluster.start()
            baseline = cluster.query(VICTIM, workload.queries[0])
            cluster.kill_peer(VICTIM, sig="kill")
            cluster.processes[VICTIM].wait(timeout=30)
            t0 = time.perf_counter()
            cluster.restart_peer(VICTIM)
            restart_s = time.perf_counter() - t0
            healed = cluster.query(VICTIM, workload.queries[0])
            heal_s = time.perf_counter() - t0
        finally:
            summary = cluster.shutdown()
    return {
        "restart_s": restart_s,
        "first_full_answer_s": heal_s,
        "healed_rows": None if healed.table is None else len(healed.table),
        "baseline_rows": None if baseline.table is None else len(baseline.table),
        "healed_matches_baseline": (
            healed.error is None and healed.coverage is None
            and baseline.table is not None and healed.table == baseline.table
        ),
        "first_exit_code": summary["first_exit_codes"].get(VICTIM),
    }


def measure(live: bool = True) -> dict:
    churn = [run_churn_sim(seed) for seed in SEEDS]
    return {
        "churn": churn,
        "recovery": run_recovery_cost(),
        "live": run_live_restart() if live else None,
    }


def report() -> str:
    results = measure()
    phase_rows = []
    for phase, _ in PHASES:
        full = sum(run["phases"][phase]["full"] for run in results["churn"])
        partial = sum(run["phases"][phase]["partial"] for run in results["churn"])
        errors = sum(run["phases"][phase]["errors"] for run in results["churn"])
        phase_rows.append((phase, full, partial, errors))
    recovery_rows = [
        (row["records"], f"{row['recover_ms']:.2f}") for row in results["recovery"]
    ]
    live = results["live"]
    text = banner(
        "membership",
        "dynamic churn: crash, durable recovery, rejoin, mid-run join",
        "answers track membership — full while healthy, honest partials "
        "while degraded, full again after recovery; log replay is linear",
    )
    text += format_table(("phase", "full", "partial", "errors"), phase_rows)
    text += "\n" + format_table(("log records", "recover ms"), recovery_rows)
    text += (
        f"\nlive SIGKILL -> restart {live['restart_s']:.2f}s, "
        f"first full answer {live['first_full_answer_s']:.2f}s "
        f"(rows {live['healed_rows']}, matches baseline: "
        f"{live['healed_matches_baseline']})\n"
    )
    return write_report(
        "membership",
        text,
        params={"seeds": list(SEEDS), "peers": 3, "super_peers": 1,
                "victim": VICTIM, "joiner": JOINER},
        metrics={
            "degraded_full": sum(r["phases"]["degraded"]["full"] for r in results["churn"]),
            "healed_partial": sum(r["phases"]["healed"]["partial"] for r in results["churn"]),
            "recover_ms_500": results["recovery"][-1]["recover_ms"],
            "live_restart_s": live["restart_s"],
            "live_first_full_answer_s": live["first_full_answer_s"],
        },
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_churn_cycle_sim(benchmark):
    summary = benchmark(lambda: run_churn_sim(0))
    assert summary["recoveries"] == 1


def bench_log_replay(benchmark):
    rows = benchmark(lambda: run_recovery_cost((500,)))
    assert rows[0]["replayed"] == 500


# ----------------------------------------------------------------------
# CI smoke mode
# ----------------------------------------------------------------------
#: Query index where the rejoin lands (start of the ``healed`` phase).
HEALED_FROM = len(PHASES[0][1]) + len(PHASES[1][1])


def smoke() -> int:
    results = measure(live=False)
    failed = False
    for run in results["churn"]:
        twin = run_churn_sim(run["seed"], churn=False)
        print(
            f"seed {run['seed']}: phases {run['phases']} "
            f"(rejoins={run['rejoins']} recoveries={run['recoveries']} "
            f"joins={run['joins']})"
        )
        if run["outcomes"][HEALED_FROM:] != twin["outcomes"][HEALED_FROM:]:
            print(
                f"FAIL: seed {run['seed']} post-rejoin outcomes "
                f"{run['outcomes'][HEALED_FROM:]} differ from the "
                f"never-crashed twin's {twin['outcomes'][HEALED_FROM:]}"
            )
            failed = True
        if run["recoveries"] != 1 or run["rejoins"] < 1:
            print(f"FAIL: seed {run['seed']} recovery metrics did not count")
            failed = True
    replay = results["recovery"][-1]
    print(f"log replay: {replay['records']} records in {replay['recover_ms']:.2f}ms")
    if replay["replayed"] != replay["records"]:
        print("FAIL: recovery did not replay every committed record")
        failed = True
    if not failed:
        print("OK: churned deployments heal after rejoin; replay is complete")
    return 1 if failed else 0


def main(argv) -> int:
    if "--smoke" in argv:
        return smoke()
    print(report())
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
