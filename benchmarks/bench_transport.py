"""Experiment transport — live TCP deployment vs the simulator.

The tentpole claim of the transport subsystem: the protocol stack is
transport-agnostic, so the *same* seeded workload served by real OS
processes over localhost TCP (``AsyncioTransport``) must return exactly
the answers the virtual-clock simulator returns — and the simulator
must remain the cheap dev loop.

This experiment brings up a live 1-super-peer/3-peer cluster
(``repro.deploy``), serves a 12-query seeded workload through it, and
serves the identical workload through the in-sim twin, measuring
wall-clock bring-up, per-query latency and end-to-end throughput for
both.  Answers are compared row-for-row.

Expected shape:

* Fidelity: every live answer (rows, errors, coverage annotations) is
  identical to the sim twin's — zero divergences.
* Cost: the simulator is orders of magnitude faster in wall-clock
  terms (no process spawn, no TCP, no real timers), which is why it
  stays the default transport for development and CI.

``python -m benchmarks.bench_transport --smoke`` asserts both for CI.
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro.deploy import ClusterSpec, LiveCluster, build_sim_system, build_workload

from ._common import banner, format_table, write_report

SEED = 0
QUERIES = 12


def _sequence(spec, workload):
    peer_ids = spec.peer_ids()
    return [
        (peer_ids[i % len(peer_ids)], workload.queries[i % len(workload.queries)])
        for i in range(QUERIES)
    ]


def _percentile(values, fraction):
    ordered = sorted(values)
    if not ordered:
        return 0.0
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def _outcome(result):
    rows = None if result.table is None else len(result.table)
    return (result.error, rows, result.coverage)


def run_sim(spec, workload) -> dict:
    t0 = time.perf_counter()
    system = build_sim_system(spec, workload)
    bring_up = time.perf_counter() - t0
    latencies, outcomes = [], []
    started = time.perf_counter()
    for via, text in _sequence(spec, workload):
        client = system.add_client()
        q0 = time.perf_counter()
        query_id = client.submit(via, text)
        system.network.run()
        latencies.append(time.perf_counter() - q0)
        outcomes.append(_outcome(client.result(query_id)))
    duration = time.perf_counter() - started
    return {
        "transport": "sim",
        "bring_up_s": bring_up,
        "duration_s": duration,
        "throughput_qps": QUERIES / duration if duration else 0.0,
        "latency_p50_ms": _percentile(latencies, 0.50) * 1e3,
        "latency_p99_ms": _percentile(latencies, 0.99) * 1e3,
        "outcomes": outcomes,
    }


def run_live(spec, workload) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-transport-") as tmp:
        cluster = LiveCluster(spec, Path(tmp) / "run")
        try:
            t0 = time.perf_counter()
            cluster.start()
            bring_up = time.perf_counter() - t0
            latencies, outcomes = [], []
            started = time.perf_counter()
            for via, text in _sequence(spec, workload):
                q0 = time.perf_counter()
                result = cluster.query(via, text)
                latencies.append(time.perf_counter() - q0)
                outcomes.append(_outcome(result))
            duration = time.perf_counter() - started
        finally:
            cluster.shutdown()
    return {
        "transport": "asyncio",
        "bring_up_s": bring_up,
        "duration_s": duration,
        "throughput_qps": QUERIES / duration if duration else 0.0,
        "latency_p50_ms": _percentile(latencies, 0.50) * 1e3,
        "latency_p99_ms": _percentile(latencies, 0.99) * 1e3,
        "outcomes": outcomes,
    }


def measure() -> dict:
    spec = ClusterSpec(seed=SEED, peers=3, super_peers=1)
    workload = build_workload(spec)
    sim = run_sim(spec, workload)
    live = run_live(spec, workload)
    divergences = sum(
        1 for a, b in zip(sim["outcomes"], live["outcomes"]) if a != b
    )
    return {"sim": sim, "live": live, "divergences": divergences}


def report() -> str:
    results = measure()
    rows = []
    for summary in (results["sim"], results["live"]):
        rows.append((
            summary["transport"],
            f"{summary['bring_up_s']:.3f}",
            QUERIES,
            f"{summary['throughput_qps']:.1f}",
            f"{summary['latency_p50_ms']:.1f}",
            f"{summary['latency_p99_ms']:.1f}",
        ))
    rows.append((
        "divergences", "-", "-", "-", "-", str(results["divergences"]),
    ))
    text = banner(
        "transport",
        "live TCP multi-process deployment vs the virtual-clock simulator",
        "the protocol stack is transport-agnostic: live answers are "
        "identical to sim, while the simulator stays the cheap dev loop",
    ) + format_table(
        ("transport", "bring-up s", "queries",
         "throughput q/s", "p50 ms", "p99 ms"),
        rows,
    )
    return write_report(
        "transport",
        text,
        params={"seed": SEED, "peers": 3, "super_peers": 1, "queries": QUERIES},
        metrics={
            "sim_throughput_qps": results["sim"]["throughput_qps"],
            "live_throughput_qps": results["live"]["throughput_qps"],
            "live_bring_up_s": results["live"]["bring_up_s"],
            "divergences": results["divergences"],
        },
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_sim_workload(benchmark):
    spec = ClusterSpec(seed=SEED, peers=3, super_peers=1)
    workload = build_workload(spec)
    summary = benchmark(lambda: run_sim(spec, workload))
    assert len(summary["outcomes"]) == QUERIES


def bench_live_matches_sim(benchmark):
    def run():
        return measure()

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results["divergences"] == 0


# ----------------------------------------------------------------------
# CI smoke mode
# ----------------------------------------------------------------------
def smoke() -> int:
    results = measure()
    sim, live = results["sim"], results["live"]
    print(
        f"sim {sim['throughput_qps']:.1f} q/s vs live "
        f"{live['throughput_qps']:.1f} q/s (bring-up {live['bring_up_s']:.2f}s); "
        f"{results['divergences']} divergences over {QUERIES} queries"
    )
    failed = False
    if results["divergences"]:
        print(f"FAIL: {results['divergences']} live answers diverged from sim")
        failed = True
    if live["throughput_qps"] <= 0:
        print("FAIL: live cluster served nothing")
        failed = True
    if sim["throughput_qps"] <= live["throughput_qps"]:
        print("FAIL: the simulator should out-run real TCP on wall-clock")
        failed = True
    if not failed:
        print("OK: live answers identical to sim; sim remains the cheap loop")
    return 1 if failed else 0


def main(argv) -> int:
    if "--smoke" in argv:
        return smoke()
    print(report())
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
