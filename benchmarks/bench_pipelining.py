"""Experiment pipeline — Section 2.5: pipelined plan evaluation.

"This plan ... offers the ability to evaluate this plan in a pipeline
way."  With peers streaming result chunks, the pipelined coordinator
pushes every chunk through incremental joins and materialises its
first answer rows long before the last chunk arrives; the blocking
evaluator waits for complete inputs.  Final answers are identical —
the win is time-to-first-result, growing with the producers' streaming
duration.
"""

from __future__ import annotations

from repro.systems import HybridSystem
from repro.workloads.paper import PAPER_QUERY, paper_peer_bases, paper_schema

from ._common import banner, format_table, write_report


def _system(pipelined: bool, interval: float) -> HybridSystem:
    system = HybridSystem(paper_schema())
    system.add_super_peer("SP1")
    for peer_id, graph in paper_peer_bases().items():
        system.add_peer(peer_id, graph, "SP1")
    for peer in system.peers.values():
        peer.pipelined_execution = pipelined
        peer.stream_chunk_rows = 1
        peer.stream_interval = interval
    return system


def _measure(pipelined: bool, interval: float):
    system = _system(pipelined, interval)
    table = system.query("P1", PAPER_QUERY)
    completion = system.network.now
    first = system.peers["P1"].last_first_output_at
    return len(table), first, completion


def report() -> str:
    rows = []
    for interval in (1.0, 5.0, 20.0, 50.0):
        rows_p, first_p, total_p = _measure(True, interval)
        rows_b, _, total_b = _measure(False, interval)
        assert rows_p == rows_b
        rows.append((
            interval,
            f"{first_p:.1f}",
            f"{total_p:.1f}",
            f"{total_b:.1f}",
            f"{(total_p - (first_p or 0)) / max(total_p, 1e-9):.0%}",
        ))
    text = banner(
        "pipeline",
        "Section 2.5: pipelined ('pipeline way') plan evaluation",
        "incremental joins over streamed chunks produce first rows well "
        "before completion; blocking evaluation delivers everything at the "
        "end — answers are identical",
    ) + format_table(
        ("chunk interval", "pipelined first rows at", "pipelined done at",
         "blocking done at", "head start"),
        rows,
    )
    return write_report("pipeline", text)


def bench_pipelined_end_to_end(benchmark):
    def run():
        return _measure(True, 5.0)

    rows, first, completion = benchmark(run)
    assert rows == 9
    assert first is not None and first < completion
    report()


def bench_blocking_end_to_end(benchmark):
    def run():
        return _measure(False, 5.0)

    rows, _, _ = benchmark(run)
    assert rows == 9


def bench_streamed_chunks_keep_granularity(benchmark):
    """Explicit pipelining overrides implicit batching: with
    ``stream_chunk_rows=1`` every shipped batch carries at most one
    binding even though the engine's ``batch_size`` default is 256."""
    def run():
        system = _system(True, 1.0)
        table = system.query("P1", PAPER_QUERY)
        return system, table

    system, table = benchmark(run)
    assert len(table) == 9
    metrics = system.network.metrics
    assert metrics.batches_sent == metrics.messages_by_kind["DataPacket"]
    assert metrics.bindings_per_batch.count > 0
    assert metrics.bindings_per_batch.mean <= 1.0


def bench_head_start_grows_with_streaming(benchmark):
    def run():
        return _measure(True, 20.0)

    _, slow_first, slow_total = benchmark(run)
    _, fast_first, fast_total = _measure(True, 1.0)
    slow_head = slow_total - slow_first
    fast_head = fast_total - fast_first
    assert slow_head > fast_head  # longer streams, bigger pipeline win
