"""Experiment phased — Section 2.5 ablation: ubQL discard vs phased
execution.

The paper weighs two policies for partial results when a running plan
changes: ubQL's discard (SQPeer's choice) and the phased execution of
[Ives02].  Both are implemented; this experiment measures the wasted
work the discard policy re-ships after a failure and the subplans the
phased policy salvages.
"""

from __future__ import annotations

from repro.systems import HybridSystem
from repro.workloads.data_gen import Distribution, generate_bases
from repro.workloads.query_gen import chain_query
from repro.workloads.schema_gen import generate_schema

from ._common import banner, format_table, write_report

SYNTH = generate_schema(chain_length=2, refinement_fraction=0.0, seed=11)
PEERS = [f"P{i}" for i in range(8)]
QUERY = chain_query(SYNTH, 0, 2)


def _run(policy: str, failures: int, seed: int = 0):
    gen = generate_bases(
        SYNTH, PEERS, Distribution.HORIZONTAL, statements_per_segment=8, seed=seed
    )
    system = HybridSystem(SYNTH.schema, failure_policy=policy)
    system.add_super_peer("SP1")
    for peer_id, graph in gen.bases.items():
        system.add_peer(peer_id, graph, "SP1")
    system.run()
    for i in range(1, failures + 1):
        system.network.fail_peer(PEERS[i])
    table = system.query(PEERS[0], QUERY)
    kinds = system.network.metrics.messages_by_kind
    return len(table), kinds["SubPlanPacket"], system.network.metrics.bytes_total


def report() -> str:
    rows = []
    for failures in (0, 1, 2):
        d_rows, d_subplans, d_bytes = _run("discard", failures)
        p_rows, p_subplans, p_bytes = _run("phased", failures)
        rows.append((
            failures,
            f"{d_subplans} subplans / {d_bytes} B ({d_rows} rows)",
            f"{p_subplans} subplans / {p_bytes} B ({p_rows} rows)",
        ))
    text = banner(
        "phased",
        "Section 2.5 ablation: discard (ubQL) vs phased ([Ives02]) policies",
        "both policies answer identically; phased salvages the failed "
        "phase's completed scans and re-ships fewer subplans",
    ) + format_table(("failed peers", "discard (ubQL)", "phased"), rows)
    return write_report("phased", text)


def bench_discard_under_failure(benchmark):
    def run():
        return _run("discard", failures=1)

    rows, _, _ = benchmark(run)
    assert rows > 0
    report()


def bench_phased_under_failure(benchmark):
    def run():
        return _run("phased", failures=1)

    rows, phased_subplans, _ = benchmark(run)
    assert rows > 0
    _, discard_subplans, _ = _run("discard", failures=1)
    assert phased_subplans < discard_subplans


def bench_policies_agree_on_answers(benchmark):
    def run():
        return _run("phased", failures=2)[0]

    phased_rows = benchmark(run)
    discard_rows = _run("discard", failures=2)[0]
    assert phased_rows == discard_rows
