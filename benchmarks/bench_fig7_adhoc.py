"""Experiment fig7 — Figure 7: query processing in an ad-hoc P2P system.

Reproduces the interleaved routing/processing flow: P1 plans with a Q2
hole (the paper's Plan 1), forwards partial plans to P2 and P3, P3
declines (no new peers), P2 completes the plan with P5 (Plan 2),
executes it and returns results to P1.
"""

from __future__ import annotations

from repro.core import build_plan, optimize, route_query
from repro.rvl import ActiveSchema
from repro.systems import AdhocSystem
from repro.workloads.paper import (
    PAPER_QUERY,
    adhoc_scenario,
    paper_query_pattern,
)

from ._common import banner, format_table, write_report

PAPER_PLAN1 = "∪(⋈(Q1@P2, Q2@?), ⋈(Q1@P3, Q2@?))"
PAPER_PLAN2 = "∪(⋈(Q1@P2, Q2@P5), ⋈(Q1@P3, Q2@P5))"


def _p1_local_plan(scenario):
    """The plan P1 builds from its neighbourhood knowledge only."""
    ads = [
        ActiveSchema.from_base(scenario.bases[p], scenario.schema, p)
        for p in scenario.neighbours["P1"]
    ]
    pattern = paper_query_pattern(scenario.schema)
    annotated = route_query(pattern, ads, scenario.schema)
    return optimize(build_plan(annotated)).result


def _p2_completed_plan(scenario):
    """The plan P2 derives after merging its own knowledge (P5)."""
    ads = [
        ActiveSchema.from_base(scenario.bases[p], scenario.schema, p)
        for p in ("P2", "P3", "P5")
    ]
    pattern = paper_query_pattern(scenario.schema)
    annotated = route_query(pattern, ads, scenario.schema)
    return optimize(build_plan(annotated)).result


def report() -> str:
    scenario = adhoc_scenario()
    plan1 = _p1_local_plan(scenario)
    plan2 = _p2_completed_plan(scenario)
    system = AdhocSystem.from_scenario(adhoc_scenario())
    table = system.query("P1", PAPER_QUERY)
    kinds = system.network.metrics.messages_by_kind
    rows = [
        ("P1's Plan 1 (holes)", PAPER_PLAN1, plan1.render()),
        ("P2's Plan 2 (complete)", PAPER_PLAN2, plan2.render()),
        ("partial plans forwarded", "2 (to P2 and P3)", kinds["PartialPlan"]),
        ("P3 branch", "fails (knows no new peer)", "declined"),
        ("answer rows", "6 (P2's and P3's chains via P5)", len(table)),
        ("total messages", "(neighbourhood-local)",
         system.network.metrics.messages_total),
    ]
    text = banner(
        "fig7",
        "Figure 7: SQPeer query processing in an ad-hoc P2P system",
        "peers interleave routing and processing; the first peer filling all "
        "holes executes the plan and returns results to the root",
    ) + format_table(("item", "paper", "measured"), rows)
    return write_report(
        "fig7",
        text,
        params={"architecture": "adhoc", "query": "PAPER_QUERY", "queries": 1},
        metrics=system.network.metrics.summary(),
    )


def bench_adhoc_end_to_end(benchmark):
    def run():
        system = AdhocSystem.from_scenario(adhoc_scenario())
        return system.query("P1", PAPER_QUERY)

    table = benchmark(run)
    assert len(table) == 6
    report()


def bench_hole_plan_generation(benchmark):
    scenario = adhoc_scenario()
    plan = benchmark(_p1_local_plan, scenario)
    assert plan.render() == PAPER_PLAN1


def bench_interleaved_completion(benchmark):
    scenario = adhoc_scenario()
    plan = benchmark(_p2_completed_plan, scenario)
    assert plan.render() == PAPER_PLAN2
