"""Shared helpers for the benchmark/reproduction harness.

Every ``bench_<id>.py`` module provides

* ``report() -> str`` — the experiment's paper-vs-measured table, and
* one or more ``bench_*`` functions using pytest-benchmark.

``python benchmarks/run_all.py`` regenerates every report into
``benchmarks/results/`` (the source for EXPERIMENTS.md); ``pytest
benchmarks/ --benchmark-only`` times the underlying operations and
asserts each experiment's qualitative shape.

Alongside each human-readable ``<id>.txt`` report, :func:`write_report`
emits a machine-readable ``<id>.json`` with the stable schema
``repro.bench/result-v1``: experiment name, title, paper claim, the
parsed paper-vs-measured table, the run's parameters and — when the
experiment passes its :meth:`~repro.metrics.MetricSet.summary` — the
metrics summary including latency percentiles.  CI uploads these as
artifacts so result drift is diffable across commits.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List, Optional, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: schema tag stamped into every results/*.json
RESULT_SCHEMA = "repro.bench/result-v1"


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned text table."""
    materialised: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in materialised)
    return "\n".join(out)


def _parse_banner(text: str) -> dict:
    """Recover title/claim from the :func:`banner` prefix of a report."""
    out = {"title": "", "claim": ""}
    for line in text.splitlines():
        if line.startswith("reproduces :"):
            out["title"] = line.split(":", 1)[1].strip()
        elif line.startswith("paper claim:"):
            out["claim"] = line.split(":", 1)[1].strip()
    return out


def _parse_table(text: str):
    """Recover (headers, rows) from a :func:`format_table` block.

    The dash rule under the header encodes the exact column widths, so
    cells are sliced positionally — no guessing on cell contents.
    """
    lines = text.splitlines()
    for index in range(1, len(lines)):
        line = lines[index]
        if line and set(line) <= {"-", " "}:
            spans = []
            offset = 0
            for chunk in line.split("  "):
                spans.append((offset, offset + len(chunk)))
                offset += len(chunk) + 2
            headers = [lines[index - 1][a:b].strip() for a, b in spans]
            rows = []
            for row_line in lines[index + 1:]:
                if not row_line.strip():
                    break
                rows.append([row_line[a:b].strip() for a, b in spans])
            return headers, rows
    return [], []


def write_report(
    experiment_id: str,
    text: str,
    *,
    params: Optional[dict] = None,
    metrics: Optional[dict] = None,
) -> str:
    """Persist a report under benchmarks/results/ and return the text.

    Writes both the human-readable ``<id>.txt`` and the machine-readable
    ``<id>.json`` (schema ``repro.bench/result-v1``).  ``metrics`` is a
    :meth:`~repro.metrics.MetricSet.summary` dict — it carries the
    latency percentiles (``latency_p50``/``p90``/``p99``/``max``) — and
    ``params`` records the experiment's knobs (seed, loss rate, query
    count, ...) so a result file is self-describing.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment_id}.txt")
    with open(path, "w") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
    headers, rows = _parse_table(text)
    payload = {
        "schema": RESULT_SCHEMA,
        "name": experiment_id,
        **_parse_banner(text),
        "params": dict(params or {}),
        "metrics": dict(metrics or {}),
        "table": {"headers": headers, "rows": rows},
    }
    with open(os.path.join(RESULTS_DIR, f"{experiment_id}.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return text


def banner(experiment_id: str, title: str, claim: str) -> str:
    return (
        f"experiment : {experiment_id}\n"
        f"reproduces : {title}\n"
        f"paper claim: {claim}\n"
    )
