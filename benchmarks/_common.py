"""Shared helpers for the benchmark/reproduction harness.

Every ``bench_<id>.py`` module provides

* ``report() -> str`` — the experiment's paper-vs-measured table, and
* one or more ``bench_*`` functions using pytest-benchmark.

``python benchmarks/run_all.py`` regenerates every report into
``benchmarks/results/`` (the source for EXPERIMENTS.md); ``pytest
benchmarks/ --benchmark-only`` times the underlying operations and
asserts each experiment's qualitative shape.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned text table."""
    materialised: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in materialised)
    return "\n".join(out)


def write_report(experiment_id: str, text: str) -> str:
    """Persist a report under benchmarks/results/ and return the text."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment_id}.txt")
    with open(path, "w") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
    return text


def banner(experiment_id: str, title: str, claim: str) -> str:
    return (
        f"experiment : {experiment_id}\n"
        f"reproduces : {title}\n"
        f"paper claim: {claim}\n"
    )
