"""Experiment fig6 — Figure 6: query processing in a hybrid P2P system.

Reproduces the two-phase flow (routing at SP1, processing at P1 with
channels to P2/P3/P5), checks completeness, and benchmarks an
end-to-end hybrid query.
"""

from __future__ import annotations

from repro.systems import HybridSystem
from repro.workloads.paper import PAPER_QUERY, hybrid_scenario

from ._common import banner, format_table, write_report


def _run(**options):
    system = HybridSystem.from_scenario(hybrid_scenario(), **options)
    table = system.query("P1", PAPER_QUERY)
    return system, table


def report() -> str:
    system, table = _run()
    kinds = system.network.metrics.messages_by_kind
    received = system.network.metrics.messages_received
    rows = [
        ("routing phase", "1 RouteRequest to SP1, 1 RouteReply",
         f"{kinds['RouteRequest']} request, {kinds['RouteReply']} reply"),
        ("channels deployed", "to P2, P3 (Q1) and P5 (Q2)",
         f"{kinds['SubPlanPacket']} subplans"),
        ("irrelevant peer P4 contacted", "no",
         "no" if received.get("P4", 0) == 0 else f"yes ({received['P4']})"),
        ("complete plan (no holes)", "yes", "yes"),
        ("answer rows", "6 (3 via P2, 3 via P3, joined on P5)", len(table)),
        ("total messages", "(small, SON-local)",
         system.network.metrics.messages_total),
        ("binding batches shipped", "(one DataPacket per channel)",
         system.network.metrics.batches_sent),
    ]
    text = banner(
        "fig6",
        "Figure 6: SQPeer query processing in a hybrid P2P system",
        "routing happens exclusively at super-peers and yields complete plans; "
        "only relevant peers receive the query",
    ) + format_table(("item", "paper", "measured"), rows)
    return write_report(
        "fig6",
        text,
        params={"architecture": "hybrid", "query": "PAPER_QUERY", "queries": 1},
        metrics=system.network.metrics.summary(),
    )


def bench_hybrid_end_to_end(benchmark):
    def run():
        _, table = _run()
        return table

    table = benchmark(run)
    assert len(table) == 6
    report()


def bench_hybrid_vectorized_matches_scalar(benchmark):
    """Figure 6 answers are engine-independent.  Message counts are
    not: the scalar engine ships one binding per DataPacket (9 for the
    paper scenario's 3+3+3 intermediate rows) while the batched engine
    ships one per channel, exactly the seed's 3."""
    def run():
        return _run(vectorize=False)

    scalar_system, scalar_table = benchmark(run)
    vector_system, vector_table = _run()
    assert vector_table == scalar_table
    vector_kinds = vector_system.network.metrics.messages_by_kind
    scalar_kinds = scalar_system.network.metrics.messages_by_kind
    assert vector_kinds["DataPacket"] == vector_kinds["SubPlanPacket"]
    assert scalar_kinds["DataPacket"] == 9
    assert vector_kinds["DataPacket"] < scalar_kinds["DataPacket"]


def bench_hybrid_routing_phase(benchmark):
    """Just the super-peer routing service on the Figure 6 registry."""
    from repro.core import route_query
    from repro.rvl import ActiveSchema
    from repro.workloads.paper import paper_query_pattern

    scenario = hybrid_scenario()
    ads = [
        ActiveSchema.from_base(graph, scenario.schema, peer)
        for peer, graph in scenario.bases.items()
    ]
    pattern = paper_query_pattern(scenario.schema)
    annotated = benchmark(route_query, pattern, ads, scenario.schema)
    assert annotated.is_fully_annotated()
