"""Experiment fig1 — Figure 1: schema, query pattern, RVL advertisement.

Reproduces the three artefacts of Figure 1 and benchmarks the pattern
extraction pipeline (parse + extract) and the active-schema derivation.
"""

from __future__ import annotations

from repro.rql import parse_query, pattern_from_text
from repro.rvl import ActiveSchema, parse_view
from repro.workloads.paper import N1, PAPER_QUERY, PAPER_VIEW, paper_schema

from ._common import banner, format_table, write_report

SCHEMA = paper_schema()


def report() -> str:
    pattern = pattern_from_text(PAPER_QUERY, SCHEMA)
    advertisement = ActiveSchema.from_view(parse_view(PAPER_VIEW), SCHEMA, "P")
    rows = [
        ("schema classes", "C1..C6 (C5⊑C1, C6⊑C2)",
         ", ".join(sorted(c.local_name for c in SCHEMA.classes))),
        ("schema properties", "prop1..prop3, prop4⊑prop1",
         ", ".join(sorted(p.local_name for p in SCHEMA.properties))),
        ("query pattern", "{X*;C1}prop1{Y*;C2}, {Y*;C2}prop2{Z;C3}", str(pattern)),
        ("pattern tree", "Q1 -> Q2", f"{pattern.root.label} -> "
         + ",".join(c.label for c in pattern.children(pattern.root))),
        ("view footprint", "(C5)prop4(C6)",
         ", ".join(sorted(str(p) for p in advertisement))),
    ]
    text = banner(
        "fig1",
        "Figure 1: SON schema, RVL peer active-schema, RQL query pattern",
        "query patterns and advertisements share one intensional formalism",
    ) + format_table(("artefact", "paper", "measured"), rows)
    return write_report("fig1", text)


def bench_pattern_extraction(benchmark):
    pattern = benchmark(pattern_from_text, PAPER_QUERY, SCHEMA)
    assert [p.label for p in pattern] == ["Q1", "Q2"]
    assert pattern.root.schema_path.domain == N1.C1
    report()


def bench_query_parsing(benchmark):
    query = benchmark(parse_query, PAPER_QUERY)
    assert len(query.paths) == 2


def bench_view_to_active_schema(benchmark):
    view = parse_view(PAPER_VIEW)
    advertisement = benchmark(ActiveSchema.from_view, view, SCHEMA, "P4")
    assert advertisement.covers_property(N1.prop4)
