"""Experiment son-vs-flood — Sections 1/3: SON routing vs flooding.

Quantifies "the existence of SONs leads to minimizing the broadcasting
(flooding) in the P2P system": for growing networks where a fixed
fraction of peers is relevant, flooding contacts everyone while SON
routing contacts only the annotated peers.
"""

from __future__ import annotations

import random

from repro.baselines import FloodingPeer, son_routing_contacts
from repro.net import Network, random_neighbour_graph
from repro.peers.base import PeerBase
from repro.rdf import Graph, TYPE, Namespace
from repro.rvl import ActiveSchema
from repro.workloads.paper import N1, paper_query_pattern, paper_schema

from ._common import banner, format_table, write_report

SCHEMA = paper_schema()
PATTERN = paper_query_pattern(SCHEMA)
DATA = Namespace("http://flood/")

#: Fraction of peers holding relevant (prop1/prop2) data.
RELEVANT_FRACTION = 0.2


def _build_population(size: int, seed: int = 0):
    """``size`` peers, 20% with relevant chains, the rest with prop3."""
    rng = random.Random(seed)
    bases = {}
    for i in range(size):
        peer_id = f"N{i:03d}"
        graph = Graph()
        if rng.random() < RELEVANT_FRACTION:
            x, y, z = DATA[f"x{i}"], DATA[f"y{i}"], DATA[f"z{i}"]
            graph.add(x, TYPE, N1.C1)
            graph.add(y, TYPE, N1.C2)
            graph.add(x, N1.prop1, y)
            graph.add(y, N1.prop2, z)
            graph.add(z, TYPE, N1.C3)
        else:
            c, d = DATA[f"c{i}"], DATA[f"d{i}"]
            graph.add(c, TYPE, N1.C3)
            graph.add(d, TYPE, N1.C4)
            graph.add(c, N1.prop3, d)
        bases[peer_id] = graph
    return bases


def _flood_messages(bases, seed=0, ttl=10):
    adjacency = random_neighbour_graph(sorted(bases), 4, random.Random(seed))
    network = Network()
    peers = {}
    for peer_id, graph in bases.items():
        peer = FloodingPeer(peer_id, PeerBase(graph, SCHEMA), adjacency[peer_id])
        peer.join(network)
        peers[peer_id] = peer
    origin = peers[sorted(bases)[0]]
    origin.flood("q", PATTERN, ttl=ttl)
    network.run()
    contacted = sum(1 for p, c in network.metrics.messages_received.items() if c)
    return network.metrics.messages_total, contacted


def _son_messages(bases):
    ads = [ActiveSchema.from_base(g, SCHEMA, p) for p, g in bases.items()]
    contacts = son_routing_contacts(PATTERN, ads, SCHEMA)
    # one subplan out + one result back per relevant peer
    return 2 * len(contacts), len(contacts)


def report() -> str:
    rows = []
    for size in (10, 25, 50, 100, 200):
        bases = _build_population(size, seed=size)
        flood_msgs, flood_contacted = _flood_messages(bases, seed=size)
        son_msgs, son_contacted = _son_messages(bases)
        rows.append((
            size,
            flood_msgs,
            flood_contacted,
            son_msgs,
            son_contacted,
            f"{flood_msgs / max(1, son_msgs):.1f}x",
        ))
    text = banner(
        "son-vs-flood",
        "Sections 1/3: SON routing vs Gnutella-style flooding",
        "a query is received and processed only by the relevant peers; "
        "flooding grows with network size, SON routing with the relevant set",
    ) + format_table(
        ("peers", "flood msgs", "flood contacted", "SON msgs",
         "SON contacted", "flood/SON"),
        rows,
    )
    return write_report("son-vs-flood", text)


def bench_flooding_100_peers(benchmark):
    bases = _build_population(100, seed=1)

    def run():
        return _flood_messages(bases, seed=1)

    messages, _ = benchmark(run)
    son_msgs, _ = _son_messages(bases)
    assert messages > 4 * son_msgs  # flooding broadcast dominates
    report()


def bench_son_routing_100_peers(benchmark):
    bases = _build_population(100, seed=1)
    ads = [ActiveSchema.from_base(g, SCHEMA, p) for p, g in bases.items()]
    contacts = benchmark(son_routing_contacts, PATTERN, ads, SCHEMA)
    # only the ~20% relevant peers are contacted
    assert len(contacts) < 40
