"""Experiment topn — Section 5: completeness vs processing-load trade-off.

The paper's future work: "study the trade-off between result
completeness and processing load using the concepts of Top N queries"
and "constraints regarding the number of peer nodes that each query is
broadcasted".  Sweeping the per-pattern broadcast bound over a
redundant SON measures exactly that curve: fewer contacted peers, fewer
messages, fewer (but still sound) answers.
"""

from __future__ import annotations

from repro.systems import HybridSystem
from repro.workloads.data_gen import Distribution, generate_bases
from repro.workloads.query_gen import chain_query
from repro.workloads.schema_gen import generate_schema

from ._common import banner, format_table, write_report

SYNTH = generate_schema(chain_length=2, refinement_fraction=0.0, seed=21)
PEERS = [f"P{i}" for i in range(10)]
QUERY = chain_query(SYNTH, 0, 2)


def _system() -> HybridSystem:
    gen = generate_bases(
        SYNTH, PEERS, Distribution.HORIZONTAL, statements_per_segment=6, seed=21
    )
    system = HybridSystem(SYNTH.schema)
    system.add_super_peer("SP1")
    for peer_id, graph in gen.bases.items():
        system.add_peer(peer_id, graph, "SP1")
    system.run()
    return system


def _run(max_peers):
    system = _system()
    table = system.query("P0", QUERY, max_peers=max_peers)
    kinds = system.network.metrics.messages_by_kind
    return len(table), kinds["SubPlanPacket"], system.network.metrics.bytes_total


def report() -> str:
    full_rows, _, _ = _run(None)
    rows = []
    for bound in (1, 2, 4, 8, None):
        answered, subplans, bytes_total = _run(bound)
        rows.append((
            bound if bound is not None else "∞",
            answered,
            f"{answered / full_rows:.0%}",
            subplans,
            bytes_total,
        ))
    text = banner(
        "topn",
        "Section 5: Top-N / broadcast-constrained queries",
        "bounding the number of peers each pattern is broadcast to trades "
        "result completeness for per-query processing load and traffic",
    ) + format_table(
        ("max peers per pattern", "rows", "completeness",
         "subplans shipped", "bytes"),
        rows,
    )
    return write_report("topn", text)


def bench_unconstrained(benchmark):
    rows, _, _ = benchmark(_run, None)
    assert rows > 0
    report()


def bench_bounded_to_two(benchmark):
    rows, subplans, _ = benchmark(_run, 2)
    full_rows, full_subplans, _ = _run(None)
    assert rows <= full_rows
    assert subplans < full_subplans


def bench_limit_truncates(benchmark):
    def run():
        system = _system()
        return system.query("P0", QUERY, limit=3)

    table = benchmark(run)
    assert len(table) == 3
