"""Experiment topn — Section 5: completeness vs processing-load trade-off.

The paper's future work: "study the trade-off between result
completeness and processing load using the concepts of Top N queries"
and "constraints regarding the number of peer nodes that each query is
broadcasted".  Sweeping the per-pattern broadcast bound over a
redundant SON measures exactly that curve: fewer contacted peers, fewer
messages, fewer (but still sound) answers.
"""

from __future__ import annotations

from repro.systems import HybridSystem
from repro.workloads.data_gen import Distribution, generate_bases
from repro.workloads.query_gen import chain_query, random_queries
from repro.workloads.schema_gen import generate_schema

from ._common import banner, format_table, write_report

SYNTH = generate_schema(chain_length=2, refinement_fraction=0.0, seed=21)
PEERS = [f"P{i}" for i in range(10)]
QUERY = chain_query(SYNTH, 0, 2)


def _system() -> HybridSystem:
    gen = generate_bases(
        SYNTH, PEERS, Distribution.HORIZONTAL, statements_per_segment=6, seed=21
    )
    system = HybridSystem(SYNTH.schema)
    system.add_super_peer("SP1")
    for peer_id, graph in gen.bases.items():
        system.add_peer(peer_id, graph, "SP1")
    system.run()
    return system


def _run(max_peers):
    system = _system()
    table = system.query("P0", QUERY, max_peers=max_peers)
    kinds = system.network.metrics.messages_by_kind
    return len(table), kinds["SubPlanPacket"], system.network.metrics.bytes_total


# -- live plane: top-k early termination via ubQL discard ------------------
# The deployment mirrors the difftest wall's known cancellation-friendly
# shape (a union where one channel completes while others still
# stream); paced chunked streaming gives the discard something to stop.
CANCEL_SEED = 0
CANCEL_SYNTH = generate_schema(
    chain_length=4, refinement_fraction=0.0, noise_properties=1,
    seed=CANCEL_SEED,
)
CANCEL_PEERS = ["P1", "P2", "P3"]
CANCEL_QUERY = random_queries(CANCEL_SYNTH, 1, max_length=3, seed=CANCEL_SEED)[0]


def _cancel_system(cancel: bool) -> HybridSystem:
    gen = generate_bases(
        CANCEL_SYNTH,
        CANCEL_PEERS,
        Distribution.VERTICAL,
        statements_per_segment=30,
        shared_pool=6,
        seed=CANCEL_SEED,
    )
    system = HybridSystem(CANCEL_SYNTH.schema, seed=CANCEL_SEED)
    system.add_super_peer("SP")
    for peer_id in CANCEL_PEERS:
        system.add_peer(peer_id, gen.bases[peer_id], "SP")
    system.run()
    for peer_id in CANCEL_PEERS:
        system.peers[peer_id].topk_cancel = cancel
        system.peers[peer_id].stream_chunk_rows = 4
    return system


def topk_cancel_run(limit, cancel=True):
    """(answer rows, cancels fired, binding batches on the wire) for one
    top-k query through the paced deployment."""
    system = _cancel_system(cancel)
    client = system.add_client("C")
    query_id = client.submit("P1", CANCEL_QUERY, limit=limit)
    system.run()
    result = client.result(query_id)
    assert result is not None and result.error is None, result
    metrics = system.network.metrics
    return len(result.table), metrics.topk_cancels, metrics.batches_sent


def report() -> str:
    full_rows, _, _ = _run(None)
    rows = []
    for bound in (1, 2, 4, 8, None):
        answered, subplans, bytes_total = _run(bound)
        rows.append((
            bound if bound is not None else "∞",
            answered,
            f"{answered / full_rows:.0%}",
            subplans,
            bytes_total,
        ))
    text = banner(
        "topn",
        "Section 5: Top-N / broadcast-constrained queries",
        "bounding the number of peers each pattern is broadcast to trades "
        "result completeness for per-query processing load and traffic",
    ) + format_table(
        ("max peers per pattern", "rows", "completeness",
         "subplans shipped", "bytes"),
        rows,
    )
    _, _, unbounded_batches = topk_cancel_run(None, cancel=True)
    cancel_rows = []
    for k in (1, 3, 5, 10, None):
        answered, cancels, batches = topk_cancel_run(k)
        cancel_rows.append((
            k if k is not None else "∞",
            answered,
            cancels,
            batches,
            unbounded_batches - batches,
        ))
    cancel_text = banner(
        "topk-cancel",
        "Section 5 live plane: any-k early termination via ubQL discard",
        "once k results are stable the coordinator discards the "
        "remaining channels the ubQL way (ChangePlanPacket), so smaller "
        "k stops paced binding streams earlier and saves wire batches",
    ) + format_table(
        ("k", "rows", "cancels", "batches on wire", "batches saved"),
        cancel_rows,
    )
    write_report(
        "topk-cancel",
        cancel_text,
        params={
            "seed": CANCEL_SEED,
            "peers": len(CANCEL_PEERS),
            "stream_chunk_rows": 4,
            "query": CANCEL_QUERY,
        },
    )
    return write_report("topn", text) + "\n" + cancel_text


def bench_unconstrained(benchmark):
    rows, _, _ = benchmark(_run, None)
    assert rows > 0
    report()


def bench_bounded_to_two(benchmark):
    rows, subplans, _ = benchmark(_run, 2)
    full_rows, full_subplans, _ = _run(None)
    assert rows <= full_rows
    assert subplans < full_subplans


def bench_topk_cancel_saves_batches(benchmark):
    """With top-k cancel on, the k answers arrive with strictly fewer
    binding batches than the unbounded twin, and at least one ubQL
    discard fires."""
    rows, cancels, batches_on = benchmark(topk_cancel_run, 5)
    _, off_cancels, batches_off = topk_cancel_run(5, cancel=False)
    assert rows == 5
    assert cancels >= 1
    assert off_cancels == 0
    assert batches_on < batches_off


def bench_limit_truncates(benchmark):
    def run():
        system = _system()
        return system.query("P0", QUERY, limit=3)

    table = benchmark(run)
    assert len(table) == 3
