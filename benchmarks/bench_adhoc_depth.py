"""Experiment depth — Section 3.2: k-depth neighbourhood discovery.

Quantifies "when a peer receives a query ... which cannot be answered
by the semantic neighbors of the peer, it could request the
active-schema information of a 2-depth, 3-depth, etc. neighbourhood,
until a relevant peer is found".

Topology: a chain ``P1 - M1 - ... - Mk - W`` where the ``Mi`` hold no
relevant data and ``W`` answers the whole query.  Plan forwarding
cannot help (no ``Mi`` is annotated for any pattern), so only k-depth
discovery reaches ``W``; the required depth grows with the distance,
and so does the advertisement traffic.
"""

from __future__ import annotations

from repro.errors import PeerError
from repro.rdf import Graph, TYPE
from repro.systems import AdhocSystem
from repro.workloads.paper import DATA, N1, PAPER_QUERY, paper_schema

from ._common import banner, format_table, write_report

SCHEMA = paper_schema()


def _provider_base(rows: int = 3) -> Graph:
    graph = Graph()
    for i in range(rows):
        x, y, z = DATA[f"dwx{i}"], DATA[f"dwy{i}"], DATA[f"dwz{i}"]
        graph.add(x, TYPE, N1.C1)
        graph.add(y, TYPE, N1.C2)
        graph.add(x, N1.prop1, y)
        graph.add(y, N1.prop2, z)
        graph.add(z, TYPE, N1.C3)
    return graph


def _chain_system(distance: int, max_depth: int) -> AdhocSystem:
    """P1 -(distance hops of empty peers)- W."""
    system = AdhocSystem(SCHEMA, max_discovery_depth=max_depth)
    names = ["P1"] + [f"M{i}" for i in range(1, distance)] + ["W"]
    for index, name in enumerate(names):
        neighbours = []
        if index > 0:
            neighbours.append(names[index - 1])
        if index + 1 < len(names):
            neighbours.append(names[index + 1])
        graph = _provider_base() if name == "W" else Graph()
        system.add_peer(name, graph, neighbours)
    system.discover_all()
    return system


def _attempt(distance: int, max_depth: int):
    system = _chain_system(distance, max_depth)
    try:
        table = system.query("P1", PAPER_QUERY)
        return ("answered", len(table), system.network.metrics.messages_total)
    except PeerError:
        return ("failed", 0, system.network.metrics.messages_total)


def report() -> str:
    rows = []
    for distance in (1, 2, 3):
        for max_depth in (1, 2, 3, 4):
            status, answer_rows, messages = _attempt(distance, max_depth)
            rows.append((distance, max_depth, status, answer_rows, messages))
    text = banner(
        "depth",
        "Section 3.2: k-depth neighbourhood discovery in ad-hoc SONs",
        "a query unanswerable in the 1-depth neighbourhood succeeds once the "
        "discovery depth reaches the relevant peer; deeper requests cost "
        "more advertisement messages",
    ) + format_table(
        ("provider distance (hops)", "max discovery depth", "outcome",
         "rows", "messages"),
        rows,
    )
    return write_report("depth", text)


def bench_depth_reaches_distant_provider(benchmark):
    def run():
        return _attempt(distance=2, max_depth=3)

    status, answer_rows, _ = benchmark(run)
    assert status == "answered"
    assert answer_rows == 3
    report()


def bench_depth_one_insufficient(benchmark):
    def run():
        return _attempt(distance=2, max_depth=1)

    status, _, _ = benchmark(run)
    assert status == "failed"


def bench_adjacent_provider_depth_one(benchmark):
    def run():
        return _attempt(distance=1, max_depth=1)

    status, answer_rows, _ = benchmark(run)
    assert status == "answered"
    assert answer_rows == 3
