"""Experiment chaos — robustness under a faulty network (Sections 1/2.5).

The paper's premise is a network "where each peer base can join and
leave the network at will"; the seed simulator nevertheless delivered
every message and announced failures omnisciently.  This experiment
runs the hybrid and ad-hoc architectures under a realistic fault
regime — message loss, duplication, latency jitter and spikes, plus a
crash/recover cycle of a data peer mid-workload — with the resilience
layer on (retries with backoff, ack/retransmit channels, heartbeat
failure detection, quarantine routing, coverage-annotated partial
answers).  Invariants asserted:

* ≥ 90 % of queries answered (full or honestly-partial) at 10 % loss
  with a crash/recover cycle;
* no duplicate result rows under message duplication (exactly-once
  channel delivery via sequence-number dedup);
* bit-identical replay: two runs under the same seeds produce the same
  :meth:`~repro.resilience.harness.ChaosReport.digest`.

``python -m benchmarks.bench_chaos --smoke`` prints the two digests
for the CI chaos-smoke job to diff across runs.
"""

from __future__ import annotations

import sys

from repro.resilience import CrashEvent, FaultPlan, ResilienceConfig, run_chaos
from repro.systems import AdhocSystem, HybridSystem
from repro.workloads.data_gen import Distribution, generate_bases
from repro.workloads.query_gen import chain_query
from repro.workloads.schema_gen import generate_schema

from ._common import banner, format_table, write_report

SYNTH = generate_schema(chain_length=2, refinement_fraction=0.0, seed=47)
PEERS = [f"P{i}" for i in range(10)]
QUERY = chain_query(SYNTH, 0, 2)
#: the data peer that crashes mid-workload (never the coordinator P0)
VICTIM = "P3"


def _bases():
    return generate_bases(
        SYNTH, PEERS, Distribution.HORIZONTAL, statements_per_segment=4, seed=47
    ).bases


def _hybrid_system(seed: int) -> HybridSystem:
    system = HybridSystem(SYNTH.schema, seed=seed)
    system.add_super_peer("SP1")
    for peer_id, graph in _bases().items():
        system.add_peer(peer_id, graph, "SP1")
    system.run()
    system.enable_resilience(ResilienceConfig.default(seed))
    return system


def _adhoc_system(seed: int) -> AdhocSystem:
    system = AdhocSystem(SYNTH.schema, seed=seed)
    bases = _bases()
    for index, peer_id in enumerate(PEERS):
        neighbours = (
            PEERS[(index - 1) % len(PEERS)],
            PEERS[(index + 1) % len(PEERS)],
        )
        system.add_peer(peer_id, bases[peer_id], neighbours)
    system.discover_all()
    system.enable_resilience(ResilienceConfig.default(seed))
    return system


def _fault_plan(seed: int, loss: float, with_crash: bool = True) -> FaultPlan:
    # t=6 lands inside the first query's channel deployment (sub-plans
    # in flight), so the crash is discovered through timeouts and
    # repaired by replanning — not dodged between queries
    crashes = (CrashEvent(at=6.0, peer_id=VICTIM, recover_at=600.0),)
    return FaultPlan(
        seed=seed,
        drop_rate=loss,
        duplicate_rate=loss / 2,
        jitter=0.5,
        spike_rate=0.05,
        spike_latency=8.0,
        crashes=crashes if with_crash else (),
    )


def run_experiment(
    arch: str = "hybrid",
    seed: int = 7,
    loss: float = 0.10,
    queries: int = 8,
    with_crash: bool = True,
):
    system = _hybrid_system(seed) if arch == "hybrid" else _adhoc_system(seed)
    plan = _fault_plan(seed + 1, loss, with_crash)
    workload = [("P0", QUERY)] * queries
    return run_chaos(system, workload, plan)


def report() -> str:
    rows = []
    for arch in ("hybrid", "adhoc"):
        for loss in (0.0, 0.10, 0.20):
            chaos = run_experiment(arch=arch, loss=loss)
            snap = chaos.snapshot
            rows.append((
                arch,
                f"{loss:.0%}",
                f"{chaos.count('full')}/{len(chaos.outcomes)}",
                chaos.count("partial"),
                chaos.count("error") + chaos.count("no-reply"),
                snap.retries,
                snap.retransmits,
                snap.suspicions,
                snap.dropped_messages,
            ))
    text = banner(
        "chaos",
        "Sections 1/2.5: query streams under loss, duplication and crashes",
        "peers join and leave at will; retries, failure detection and "
        "replanning keep the query stream answered without omniscient "
        "failure notification",
    ) + format_table(
        (
            "architecture",
            "loss",
            "full answers",
            "partial",
            "unanswered",
            "retries",
            "retransmits",
            "suspicions",
            "msgs dropped",
        ),
        rows,
    )
    return write_report(
        "chaos",
        text,
        params={
            "seed": 7,
            "queries": 8,
            "loss_rates": [0.0, 0.10, 0.20],
            "crash_victim": VICTIM,
        },
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points (assert the experiment's invariants)
# ----------------------------------------------------------------------
def bench_hybrid_survives_chaos(benchmark):
    chaos = benchmark(lambda: run_experiment(arch="hybrid"))
    assert chaos.answer_ratio >= 0.9
    report()


def bench_adhoc_survives_chaos(benchmark):
    chaos = benchmark(lambda: run_experiment(arch="adhoc"))
    assert chaos.answer_ratio >= 0.9


def bench_chaos_replay_is_deterministic(benchmark):
    first = benchmark(lambda: run_experiment(arch="hybrid"))
    second = run_experiment(arch="hybrid")
    assert first.digest() == second.digest()


def bench_duplication_keeps_rows_exact(benchmark):
    """Exactly-once delivery: heavy duplication must not inflate rows."""
    clean = run_experiment(arch="hybrid", loss=0.0, with_crash=False)
    baseline = {o.query_id: o.rows for o in clean.outcomes}

    def run():
        system = _hybrid_system(7)
        plan = FaultPlan(seed=11, duplicate_rate=0.4, jitter=0.5)
        return run_chaos(system, [("P0", QUERY)] * 8, plan)

    chaos = benchmark(run)
    for outcome in chaos.outcomes:
        assert outcome.status == "full"
        assert outcome.rows == baseline[outcome.query_id]


# ----------------------------------------------------------------------
# CI smoke mode: print deterministic digests for run-to-run diffing
# ----------------------------------------------------------------------
def smoke() -> str:
    lines = []
    for arch in ("hybrid", "adhoc"):
        chaos = run_experiment(arch=arch, queries=5)
        lines.append(f"== {arch}: {chaos.summary()}")
        lines.append(chaos.digest())
    return "\n".join(lines)


def main(argv) -> int:
    if "--smoke" in argv:
        print(smoke())
        return 0
    print(report())
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
