"""Experiment obs-overhead — cost of default-on observability.

Tracing and histogram metrics are on by default (``observability=True``
on every system).  Two properties keep that defensible:

* **Zero perturbation** — trace contexts ride messages as uncharged
  simulator metadata, so enabling tracing changes *no* simulated
  quantity: message counts, byte totals, answer rows and virtual-time
  latencies are bit-identical with the recorder on or off.  Asserted
  here, not assumed.
* **Bounded wall-clock overhead** — the disabled path goes through
  no-op ``NULL_TRACER``/``NULL_SPAN`` singletons; the enabled path
  mints real spans and feeds stage histograms.  This experiment times
  the Figure 6 hybrid experiment — deployment build plus the paper
  query, the run that traces every stage including subsumption and
  optimiser rewrites — both ways.  The estimator is built for noisy
  shared runners: **CPU time** (``time.process_time``, so preemption
  by sibling load is never charged), garbage collection forced before
  and disabled during each batch (GC pauses otherwise land lumpily on
  whichever batch trips the allocation threshold), modes alternating
  batch-by-batch in flipped order, and the **median of per-pair
  ratios** as the verdict — adjacent batches see the same machine
  state, so slow drift (frequency scaling) cancels out of each ratio.
  Wall-clock best-of-large-batches was tried first and swings ±30 %
  on shared runners — far above the ~3 % effect being measured.

``python -m benchmarks.bench_obs_overhead --smoke`` asserts both
properties (overhead < 5 %) for CI.
"""

from __future__ import annotations

import gc
import statistics
import sys
import time

from repro.systems import HybridSystem
from repro.workloads.paper import PAPER_QUERY, hybrid_scenario

from ._common import banner, format_table, write_report

#: full Figure 6 experiments (deployment build + paper query) per batch
ITERATIONS = 10
#: alternating (disabled, enabled) batch pairs; median-of-ratios verdict
PAIRS = 25
#: CI bound on the median of per-pair enabled/disabled CPU-time ratios
MAX_OVERHEAD = 0.05


def _timed_run(observability: bool, iterations: int = ITERATIONS):
    """Time one batch of ``iterations`` complete Figure 6 experiments.

    GC runs before — and is off during — the batch, so collection
    pauses are never charged to an arbitrary victim batch.

    Returns (CPU seconds, last system, last answer table).
    """
    system = table = None
    gc.collect()
    gc.disable()
    started = time.process_time()
    for _ in range(iterations):
        system = HybridSystem.from_scenario(
            hybrid_scenario(), observability=observability
        )
        table = system.query("P1", PAPER_QUERY)
    elapsed = time.process_time() - started
    gc.enable()
    return elapsed, system, table


def _measure(iterations: int = ITERATIONS, pairs: int = PAIRS):
    """Median enabled/disabled overhead over paired adjacent batches.

    Returns (overhead, best batch time per mode, systems, tables).
    Pair order flips every iteration so neither mode systematically
    runs first; the per-pair ratio cancels machine-speed drift.
    """
    _timed_run(True, 1)  # warm imports and scenario caches, untimed
    ratios = []
    best = {True: float("inf"), False: float("inf")}
    systems = {}
    tables = {}
    for pair in range(pairs):
        sample = {}
        order = (False, True) if pair % 2 == 0 else (True, False)
        for enabled in order:
            elapsed, system, table = _timed_run(enabled, iterations)
            sample[enabled] = elapsed
            best[enabled] = min(best[enabled], elapsed)
            systems[enabled] = system
            tables[enabled] = table
        ratios.append(sample[True] / sample[False])
    overhead = statistics.median(ratios) - 1.0
    return overhead, best, systems, tables


def _perturbation_diffs(systems, tables) -> list:
    """Simulated quantities that differ between enabled and disabled
    runs (must be empty: tracing is uncharged metadata)."""
    on, off = systems[True].network.metrics, systems[False].network.metrics
    diffs = []
    for item, a, b in (
        ("messages_total", on.messages_total, off.messages_total),
        ("bytes_total", on.bytes_total, off.bytes_total),
        ("messages_by_kind", dict(on.messages_by_kind), dict(off.messages_by_kind)),
        ("answer rows", len(tables[True]), len(tables[False])),
        ("virtual time", systems[True].network.now, systems[False].network.now),
    ):
        if a != b:
            diffs.append(f"{item}: enabled={a} disabled={b}")
    return diffs


def report() -> str:
    overhead, best, systems, tables = _measure()
    diffs = _perturbation_diffs(systems, tables)
    on = systems[True]
    rows = [
        ("recorder disabled (best batch)", f"{best[False] * 1e3:.1f} ms",
         "baseline"),
        ("recorder enabled (best batch)", f"{best[True] * 1e3:.1f} ms",
         f"{overhead:+.1%} CPU (median of pairs)"),
        ("simulated quantities perturbed", "none",
         "none" if not diffs else "; ".join(diffs)),
        ("spans collected (enabled, per run)", "~14",
         len(on.network.trace_collector)),
        ("traces retained", f"≤ {on.network.trace_collector.max_traces}",
         len(on.network.trace_collector.trace_ids())),
    ]
    text = banner(
        "obs-overhead",
        "observability tax: Figure 6 workload with tracing on vs off",
        "default-on tracing must not perturb the simulation and must stay "
        "cheap enough to leave enabled",
    ) + format_table(("item", "expectation", "measured"), rows)
    return write_report(
        "obs-overhead",
        text,
        params={
            "architecture": "hybrid",
            "iterations": ITERATIONS,
            "pairs": PAIRS,
            "max_overhead": MAX_OVERHEAD,
        },
        metrics=on.network.metrics.summary(),
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_observability_enabled(benchmark):
    elapsed, system, table = benchmark(lambda: _timed_run(True, iterations=2))
    assert len(table) == 6
    assert len(system.network.trace_collector) > 0


def bench_observability_disabled(benchmark):
    elapsed, system, table = benchmark(lambda: _timed_run(False, iterations=2))
    assert len(table) == 6
    assert system.network.trace_collector is None


def bench_tracing_does_not_perturb(benchmark):
    def run():
        _, _, systems, tables = _measure(iterations=2, pairs=1)
        return _perturbation_diffs(systems, tables)

    diffs = benchmark(run)
    assert diffs == []


# ----------------------------------------------------------------------
# CI smoke mode
# ----------------------------------------------------------------------
def smoke() -> int:
    overhead, best, systems, tables = _measure()
    diffs = _perturbation_diffs(systems, tables)
    print(
        f"observability overhead: best batch disabled {best[False] * 1e3:.1f} ms "
        f"/ enabled {best[True] * 1e3:.1f} ms; median of {PAIRS} pairs "
        f"{overhead:+.1%} (bound {MAX_OVERHEAD:.0%})"
    )
    if overhead > MAX_OVERHEAD and not diffs:
        # a borderline reading on a noisy runner: the true overhead is
        # ~3%, so escalate once to 3x the samples for the verdict
        print(f"borderline — re-measuring with {3 * PAIRS} pairs")
        overhead, best, systems, tables = _measure(pairs=3 * PAIRS)
        diffs = _perturbation_diffs(systems, tables)
        print(
            f"re-measured: median of {3 * PAIRS} pairs {overhead:+.1%} "
            f"(bound {MAX_OVERHEAD:.0%})"
        )
    failed = False
    if diffs:
        print("FAIL: tracing perturbed the simulation: " + "; ".join(diffs))
        failed = True
    if overhead > MAX_OVERHEAD:
        print("FAIL: CPU-time overhead exceeds bound")
        failed = True
    if not failed:
        print("OK: no simulated-quantity drift, overhead within bound")
    return 1 if failed else 0


def main(argv) -> int:
    if "--smoke" in argv:
        return smoke()
    print(report())
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
