"""Experiment telemetry — cost of the live telemetry plane.

The telemetry plane (PR "live cluster telemetry") is pull-based by
design: per-peer endpoints render state on demand, the launcher's
scraper polls between workload steps, and the in-sim
:class:`~repro.obs.telemetry.probe.TelemetryProbe` reads the same
objects without ever scheduling a simulator event.  Three costs keep
that defensible:

* **Probe cost** — one in-sim sample (exposition render + counter
  snapshot) must be microseconds, far below a query's simulated work,
  and **must not perturb** any simulated quantity: a run probed after
  every query ends with a metric snapshot identical to an unprobed
  run's.  Asserted here, not assumed.
* **Scrape round-trip** — one launcher-side poll of a real
  :class:`~repro.obs.telemetry.http.TelemetryServer` (TCP connect,
  GET /metrics + /healthz, parse) must stay a few milliseconds, so a
  per-second scrape cadence costs well under 1 % of a run.
* **Timeline write amplification** — each scrape round appends a
  bounded number of bytes per peer to ``timeline.jsonl`` (flushed per
  line for SIGKILL durability), so an hour-long run's black box stays
  megabytes, not gigabytes.

``python -m benchmarks.bench_telemetry --smoke`` asserts the
zero-perturbation property and the per-round byte bound for CI.
"""

from __future__ import annotations

import asyncio
import json
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.obs.telemetry import (
    ClusterScraper,
    TelemetryProbe,
    TelemetryServer,
    parse_exposition,
    read_timeline,
    scrape,
    scrape_json,
    write_endpoint_file,
)
from repro.systems import HybridSystem
from repro.workloads.paper import PAPER_QUERY, hybrid_scenario

from ._common import banner, format_table, write_report

#: samples per timing estimate (median reported)
SAMPLES = 200
#: ceiling on timeline bytes appended per peer per scrape round
MAX_BYTES_PER_PEER_ROUND = 2048


def _probed_and_unprobed():
    """Two identical seeded runs, one probed after every query."""
    systems = {}
    for probed in (False, True):
        system = HybridSystem.from_scenario(hybrid_scenario())
        probe = TelemetryProbe(
            system.network, list(system.peers.values()), role="system"
        )
        for _ in range(4):
            system.query("P1", PAPER_QUERY)
            if probed:
                probe.metrics_text()
                probe.healthz()
                probe.sample()
        systems[probed] = system
    return systems


def _perturbation_diffs(systems) -> list:
    on, off = systems[True].network.metrics, systems[False].network.metrics
    diffs = []
    for item, a, b in (
        ("snapshot", on.snapshot(), off.snapshot()),
        ("virtual time", systems[True].network.now, systems[False].network.now),
    ):
        if a != b:
            diffs.append(f"{item}: probed={a} unprobed={b}")
    return diffs


def _median_micros(fn, samples: int = SAMPLES) -> float:
    fn()  # warm caches untimed
    times = []
    for _ in range(samples):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return statistics.median(times) * 1e6


def _probe_cost():
    system = HybridSystem.from_scenario(hybrid_scenario())
    system.query("P1", PAPER_QUERY)
    probe = TelemetryProbe(
        system.network, list(system.peers.values()), role="system"
    )
    return {
        "metrics_text": _median_micros(probe.metrics_text),
        "sample": _median_micros(probe.sample),
        "healthz": _median_micros(probe.healthz),
    }


class _ThreadedEndpoint:
    """A real TelemetryServer on a background event loop, serving one
    probed system's telemetry — the scrape target for timings."""

    def __init__(self, probe: TelemetryProbe):
        self.loop = asyncio.new_event_loop()
        self.server = TelemetryServer(
            {
                "/metrics": lambda: ("text/plain", probe.metrics_text()),
                "/healthz": lambda: ("application/json", json.dumps(probe.healthz())),
            }
        )
        self.host, self.port = self.server.start(self.loop)
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()

    def close(self) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=5.0)
        self.server.close(self.loop)
        self.loop.close()


def _scrape_cost(endpoint: _ThreadedEndpoint):
    def once():
        parse_exposition(scrape(endpoint.host, endpoint.port, "/metrics"))
        scrape_json(endpoint.host, endpoint.port, "/healthz")

    return _median_micros(once, samples=50)


def _timeline_amplification(endpoint: _ThreadedEndpoint, rounds: int = 10):
    """Bytes appended to timeline.jsonl per peer per scrape round."""
    with tempfile.TemporaryDirectory() as tmp:
        outdir = Path(tmp)
        write_endpoint_file(outdir, "P1", endpoint.host, endpoint.port)
        clock = iter(float(i) for i in range(rounds + 1))
        scraper = ClusterScraper(outdir, clock=lambda: next(clock))
        for _ in range(rounds):
            scraper.scrape_once()
        scraper.close()
        timeline = outdir / "timeline.jsonl"
        size = timeline.stat().st_size
        records = len(read_timeline(timeline))
    return size / rounds, records / rounds


def _measure():
    systems = _probed_and_unprobed()
    diffs = _perturbation_diffs(systems)
    probe_micros = _probe_cost()
    probe = TelemetryProbe(
        systems[True].network, list(systems[True].peers.values()), role="system"
    )
    endpoint = _ThreadedEndpoint(probe)
    try:
        scrape_micros = _scrape_cost(endpoint)
        bytes_per_round, records_per_round = _timeline_amplification(endpoint)
    finally:
        endpoint.close()
    return diffs, probe_micros, scrape_micros, bytes_per_round, records_per_round


def report() -> str:
    (diffs, probe_micros, scrape_micros, bytes_per_round,
     records_per_round) = _measure()
    rows = [
        ("probed run perturbs the sim", "nothing",
         "nothing" if not diffs else "; ".join(diffs)),
        ("in-sim probe: /metrics render", "µs-scale",
         f"{probe_micros['metrics_text']:.0f} µs"),
        ("in-sim probe: counter sample", "µs-scale",
         f"{probe_micros['sample']:.0f} µs"),
        ("in-sim probe: healthz", "µs-scale",
         f"{probe_micros['healthz']:.0f} µs"),
        ("live scrape round-trip (metrics+healthz)", "ms-scale",
         f"{scrape_micros / 1e3:.2f} ms"),
        ("timeline bytes / peer / round",
         f"≤ {MAX_BYTES_PER_PEER_ROUND}", f"{bytes_per_round:.0f}"),
        ("timeline records / round", "sample + rollup",
         f"{records_per_round:.1f}"),
    ]
    text = banner(
        "telemetry",
        "telemetry plane cost: probes, scrapes, timeline amplification",
        "pull-based telemetry perturbs nothing and costs µs in-sim / "
        "ms per live scrape round",
    ) + format_table(("item", "expectation", "measured"), rows)
    return write_report(
        "telemetry",
        text,
        params={
            "samples": SAMPLES,
            "max_bytes_per_peer_round": MAX_BYTES_PER_PEER_ROUND,
        },
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_probe_sample(benchmark):
    system = HybridSystem.from_scenario(hybrid_scenario())
    system.query("P1", PAPER_QUERY)
    probe = TelemetryProbe(
        system.network, list(system.peers.values()), role="system"
    )
    sample = benchmark(probe.sample)
    assert sample.counters["queries_finished"] >= 1


def bench_scrape_round(benchmark):
    system = HybridSystem.from_scenario(hybrid_scenario())
    system.query("P1", PAPER_QUERY)
    probe = TelemetryProbe(
        system.network, list(system.peers.values()), role="system"
    )
    endpoint = _ThreadedEndpoint(probe)
    try:
        body = benchmark(
            lambda: scrape(endpoint.host, endpoint.port, "/metrics")
        )
        assert parse_exposition(body)
    finally:
        endpoint.close()


def bench_probing_perturbs_nothing(benchmark):
    diffs = benchmark(lambda: _perturbation_diffs(_probed_and_unprobed()))
    assert diffs == []


# ----------------------------------------------------------------------
# CI smoke mode
# ----------------------------------------------------------------------
def smoke() -> int:
    (diffs, probe_micros, scrape_micros, bytes_per_round,
     records_per_round) = _measure()
    print(
        f"telemetry: probe sample {probe_micros['sample']:.0f} µs, "
        f"exposition render {probe_micros['metrics_text']:.0f} µs, "
        f"live scrape {scrape_micros / 1e3:.2f} ms, "
        f"timeline {bytes_per_round:.0f} B/peer/round "
        f"(bound {MAX_BYTES_PER_PEER_ROUND})"
    )
    failed = False
    if diffs:
        print("FAIL: probing perturbed the simulation: " + "; ".join(diffs))
        failed = True
    if bytes_per_round > MAX_BYTES_PER_PEER_ROUND:
        print("FAIL: timeline write amplification exceeds bound")
        failed = True
    if records_per_round < 2:
        print("FAIL: a scrape round must log a sample and a rollup")
        failed = True
    if not failed:
        print("OK: zero perturbation, bounded timeline amplification")
    return 1 if failed else 0


def main(argv) -> int:
    if "--smoke" in argv:
        return smoke()
    print(report())
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
