"""Experiment fig4 — Figure 4: algebraic optimisation of query plans.

Reproduces the Plan 1 → Plan 2 → Plan 3 pipeline and quantifies what
the paper claims qualitatively: distribution + same-peer merging reduce
the number of subplans shipped and the bytes transferred.
"""

from __future__ import annotations

from repro.core import CostModel, Statistics, build_plan, optimize, route_query
from repro.core.algebra import count_scans
from repro.core.shipping import ShippingPolicy, compare_policies
from repro.workloads.paper import (
    N1,
    paper_active_schemas,
    paper_query_pattern,
    paper_schema,
)

from ._common import banner, format_table, write_report

SCHEMA = paper_schema()
PATTERN = paper_query_pattern(SCHEMA)
ANNOTATED = route_query(PATTERN, paper_active_schemas(SCHEMA).values(), SCHEMA)
PLAN1 = build_plan(ANNOTATED)


def _statistics() -> Statistics:
    # selective join: the expected join result is smaller than its
    # inputs, so the paper's "beneficial" guard admits distribution
    stats = Statistics(default_cardinality=100, join_selectivity=0.001)
    for peer in ("P1", "P2", "P3", "P4"):
        stats.set_cardinality(peer, N1.prop1, 80)
        stats.set_cardinality(peer, N1.prop2, 80)
        stats.set_cardinality(peer, N1.prop4, 30)
    return stats


def report() -> str:
    model = CostModel(_statistics())
    trace = optimize(PLAN1, model)
    rows = []
    labels = {"input": "Plan 1", "distribute joins/unions": "Plan 2",
              "merge same-peer (TR1/TR2)": "Plan 3"}
    for rule, plan in trace:
        cost = model.plan_cost(plan, "P1")
        rows.append((
            labels.get(rule, rule),
            count_scans(plan),
            f"{model.cardinality(plan):.0f}",
            f"{cost.bytes_shipped / 1024:.1f}",
            plan.render()[:72] + ("..." if len(plan.render()) > 72 else ""),
        ))
    plan3 = trace.result
    checks = [
        ("Plan 2 = union of 9 pairwise joins", "yes",
         "yes" if len(trace.steps[1][1].children()) == 9 else "no"),
        ("Plan 3 pushes prop1⋈prop2 into P1 and P4", "yes",
         "yes" if "(Q1∪Q2)@P1" in plan3.render() and "(Q1∪Q2)@P4" in plan3.render()
         else "no"),
        ("subplans shipped drop Plan2 -> Plan3",
         "fewer", f"{count_scans(trace.steps[1][1])} -> {count_scans(plan3)}"),
    ]
    text = (
        banner(
            "fig4",
            "Figure 4: join/union distribution + Transformation Rules 1 & 2",
            "pushing joins below unions and merging same-peer subplans shrinks "
            "intermediate results and the number of shipped subplans",
        )
        + format_table(
            ("plan", "scans", "est.rows", "est.KB shipped", "shape"), rows
        )
        + "\n\n"
        + format_table(("check", "paper", "measured"), checks)
    )
    return write_report("fig4", text)


def bench_full_optimization(benchmark):
    model = CostModel(_statistics())
    trace = benchmark(optimize, PLAN1, model)
    assert "(Q1∪Q2)@P1" in trace.result.render()
    report()


def bench_distribution_only(benchmark):
    from repro.core.optimizer import distribute_joins_over_unions

    plan2 = benchmark(distribute_joins_over_unions, PLAN1)
    assert len(plan2.children()) == 9


def bench_merge_only(benchmark):
    from repro.core.optimizer import distribute_joins_over_unions, merge_same_peer_scans

    plan2 = distribute_joins_over_unions(PLAN1)
    plan3 = benchmark(merge_same_peer_scans, plan2)
    assert count_scans(plan3) < count_scans(plan2)
