"""Experiment adapt — Section 2.5: run-time adaptability of query plans.

Quantifies the value of the replan-on-failure protocol: with peers
failing under the coordinator, adaptive execution recovers answers
(from redundant providers) that non-adaptive execution loses.
"""

from __future__ import annotations

from repro.errors import PeerError
from repro.systems import HybridSystem
from repro.workloads.data_gen import Distribution, generate_bases
from repro.workloads.query_gen import chain_query
from repro.workloads.schema_gen import generate_schema

from ._common import banner, format_table, write_report

SYNTH = generate_schema(chain_length=2, refinement_fraction=0.0, seed=3)
PEERS = [f"P{i}" for i in range(8)]
QUERY = chain_query(SYNTH, 0, 2)


def _system(adaptive: bool, seed: int = 0) -> HybridSystem:
    gen = generate_bases(
        SYNTH, PEERS, Distribution.HORIZONTAL, statements_per_segment=8, seed=seed
    )
    system = HybridSystem(SYNTH.schema, adaptive=adaptive)
    system.add_super_peer("SP1")
    for peer_id, graph in gen.bases.items():
        system.add_peer(peer_id, graph, "SP1")
    system.run()
    return system


def _run_with_failures(adaptive: bool, failures: int, seed: int = 0):
    system = _system(adaptive, seed)
    for i in range(1, failures + 1):
        system.network.fail_peer(PEERS[i])
    try:
        table = system.query(PEERS[0], QUERY)
        return ("answered", len(table), system.network.metrics.messages_total)
    except PeerError:
        return ("failed", 0, system.network.metrics.messages_total)


def report() -> str:
    rows = []
    for failures in (0, 1, 2, 3):
        adaptive = _run_with_failures(True, failures)
        fixed = _run_with_failures(False, failures)
        rows.append((
            failures,
            f"{adaptive[0]} ({adaptive[1]} rows, {adaptive[2]} msgs)",
            f"{fixed[0]} ({fixed[1]} rows, {fixed[2]} msgs)",
        ))
    text = banner(
        "adapt",
        "Section 2.5: run-time plan adaptation under peer failures",
        "the channel root replans excluding obsolete peers (ubQL discard); "
        "without adaptation any failure kills the query",
    ) + format_table(
        ("failed peers", "adaptive (SQPeer)", "non-adaptive"), rows
    )
    return write_report("adapt", text)


def bench_adaptive_recovery(benchmark):
    def run():
        return _run_with_failures(True, failures=2)

    status, retrieved_rows, _ = benchmark(run)
    assert status == "answered"
    assert retrieved_rows > 0
    report()


def bench_failure_free_baseline(benchmark):
    def run():
        return _run_with_failures(True, failures=0)

    status, retrieved_rows, _ = benchmark(run)
    assert status == "answered"


def bench_non_adaptive_failure(benchmark):
    def run():
        return _run_with_failures(False, failures=1)

    status, _, _ = benchmark(run)
    assert status == "failed"
