"""Experiment batch — batched vectorized execution (Section 2.5).

The seed shipped one ``DataPacket`` per binding and joined tables a
binding at a time.  The vectorized engine evaluates operators over
column-oriented :class:`~repro.execution.batch.BindingBatch` chunks and
ships :attr:`batch_size` bindings per packet, so a channel's cost is
paid per *batch*, not per *binding*.  This experiment sweeps the batch
size over a union-heavy synthetic workload (~500 answer rows) against
the scalar binding-at-a-time engine and measures answer equality,
wall-clock time, simulator messages and shipped data packets.

Invariants asserted by the pytest entry points:

* identical answers at every batch size, vectorized, scalar,
  dictionary-encoded or cost-based;
* ``batch_size=256`` beats the scalar engine by ≥ 2x wall-clock;
* ``batch_size=256`` ships ≥ 10x fewer simulator messages;
* the dictionary-encoded engine under the cost-based planner beats the
  scalar engine by ≥ 10x wall-clock.

``python -m benchmarks.bench_batch_size --quick`` runs a scaled-down
sweep for the CI bench-smoke job (same table, smaller bases).
"""

from __future__ import annotations

import sys
import time

from repro.systems import HybridSystem
from repro.workloads.data_gen import Distribution, generate_bases
from repro.workloads.query_gen import chain_query
from repro.workloads.schema_gen import generate_schema

from ._common import banner, format_table, write_report

SEED = 13
PEERS = [f"P{i}" for i in range(1, 5)]
SYNTH = generate_schema(
    chain_length=3, refinement_fraction=0.0, noise_properties=0, seed=SEED
)
QUERY = chain_query(SYNTH, 0, 3)

#: full-size vs --quick workload knobs (statements per chain segment)
FULL_STATEMENTS = 150
QUICK_STATEMENTS = 40


def _bases(statements: int):
    return generate_bases(
        SYNTH,
        PEERS,
        Distribution.HORIZONTAL,
        statements_per_segment=statements,
        shared_pool=40,
        seed=SEED,
    ).bases


def run_once(
    vectorize: bool,
    batch_size: int,
    statements: int = FULL_STATEMENTS,
    **options,
):
    """One end-to-end query; returns a measurement dict.

    Extra keyword ``options`` (``encode=``, ``cost_based=``, ...) are
    forwarded to :class:`~repro.systems.HybridSystem` verbatim.
    """
    bases = _bases(statements)
    system = HybridSystem(
        SYNTH.schema, seed=SEED, vectorize=vectorize, batch_size=batch_size,
        **options,
    )
    system.add_super_peer("SP")
    for peer_id in PEERS:
        system.add_peer(peer_id, bases[peer_id], "SP")
    system.run()  # settle advertisements before timing
    started = time.perf_counter()
    table = system.query("P1", QUERY)
    wall = time.perf_counter() - started
    metrics = system.network.metrics
    return {
        "rows": len(table),
        "table": table,
        "wall": wall,
        "messages": metrics.messages_total,
        "data_packets": metrics.messages_by_kind.get("DataPacket", 0),
        "batches": metrics.batches_sent,
        "mean_batch": metrics.bindings_per_batch.mean or 0.0,
        "discarded": metrics.discarded_bindings,
        "summary": metrics.summary(),
    }


#: (label, vectorize, batch_size, extra options) sweep — "scalar" is the
#: seed engine; "encoded+cost" is the dictionary-encoded columnar engine
#: under the cost-based planner (PR 9's headline configuration)
SWEEP = [
    ("scalar", False, 256, {}),
    ("batch-1", True, 1, {}),
    ("batch-8", True, 8, {}),
    ("batch-32", True, 32, {}),
    ("batch-256", True, 256, {}),
    ("encoded", True, 256, {"encode": True}),
    ("encoded+cost", True, 256, {"encode": True, "cost_based": True}),
]


def sweep(statements: int = FULL_STATEMENTS):
    results = {}
    for label, vectorize, batch_size, options in SWEEP:
        results[label] = run_once(vectorize, batch_size, statements, **options)
    return results


def _table_text(results) -> str:
    scalar = results["scalar"]
    rows = []
    for label, _, _, _ in SWEEP:
        r = results[label]
        rows.append((
            label,
            r["rows"],
            f"{r['wall'] * 1000:.1f}",
            f"{scalar['wall'] / max(r['wall'], 1e-9):.1f}x",
            r["messages"],
            r["data_packets"],
            f"{r['mean_batch']:.1f}",
        ))
    return format_table(
        (
            "engine",
            "answer rows",
            "wall ms",
            "speedup",
            "messages",
            "data packets",
            "bindings/batch",
        ),
        rows,
    )


def report(statements: int = FULL_STATEMENTS) -> str:
    results = sweep(statements)
    text = banner(
        "batch",
        "Section 2.5: batched vectorized plan evaluation",
        "shipping bindings in batches over channels pays per-message cost "
        "per batch instead of per binding; vectorized operators keep the "
        "answer multiset identical to binding-at-a-time evaluation",
    ) + _table_text(results)
    return write_report(
        "batch",
        text,
        params={
            "seed": SEED,
            "peers": len(PEERS),
            "statements_per_segment": statements,
            "batch_sizes": [bs for _, vec, bs, _ in SWEEP if vec],
        },
        metrics={
            **results["batch-256"]["summary"],
            # speedups over the seed's scalar engine — the CI cost-smoke
            # job asserts on these from the machine-readable JSON
            "speedup_batch_256": round(
                results["scalar"]["wall"]
                / max(results["batch-256"]["wall"], 1e-9),
                2,
            ),
            "speedup_encoded_cost": round(
                results["scalar"]["wall"]
                / max(results["encoded+cost"]["wall"], 1e-9),
                2,
            ),
        },
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points (assert the experiment's invariants)
# ----------------------------------------------------------------------
def bench_batched_beats_scalar(benchmark):
    """The headline numbers: ≥2x wall-clock, ≥10x fewer messages.

    Wall-clock compares the best of three runs per engine — message
    counts are deterministic, timings are not."""
    batched = benchmark(lambda: run_once(True, 256))
    scalar = run_once(False, 256)
    assert batched["table"] == scalar["table"]
    batched_wall = min([batched["wall"]] + [run_once(True, 256)["wall"] for _ in range(2)])
    scalar_wall = min([scalar["wall"]] + [run_once(False, 256)["wall"] for _ in range(2)])
    assert scalar_wall >= 2.0 * batched_wall
    assert scalar["messages"] >= 10 * batched["messages"]
    assert scalar["data_packets"] >= 10 * batched["data_packets"]
    report()


def bench_all_batch_sizes_agree(benchmark):
    """Every engine in the sweep returns the same binding multiset."""
    results = benchmark(lambda: sweep(QUICK_STATEMENTS))
    reference = results["scalar"]["table"]
    for label, _, _, _ in SWEEP:
        assert results[label]["table"] == reference, label


def bench_encoded_cost_beats_scalar_10x(benchmark):
    """PR 9's headline: the dictionary-encoded columnar engine under
    the cost-based planner beats the seed's scalar engine by ≥ 10x
    wall-clock on the full workload, with an identical answer table.

    Wall-clock compares the best of three runs per engine."""
    encoded = benchmark(lambda: run_once(True, 256, encode=True, cost_based=True))
    scalar = run_once(False, 256)
    assert encoded["table"] == scalar["table"]
    encoded_wall = min(
        [encoded["wall"]]
        + [
            run_once(True, 256, encode=True, cost_based=True)["wall"]
            for _ in range(2)
        ]
    )
    scalar_wall = min(
        [scalar["wall"]] + [run_once(False, 256)["wall"] for _ in range(2)]
    )
    assert scalar_wall >= 10.0 * encoded_wall, (
        f"speedup only {scalar_wall / encoded_wall:.1f}x "
        f"(scalar {scalar_wall * 1000:.1f}ms, encoded+cost "
        f"{encoded_wall * 1000:.1f}ms)"
    )


def bench_batch_size_one_matches_scalar_messages(benchmark):
    """batch_size=1 is the seed's per-binding shipping, vectorized."""
    one = benchmark(lambda: run_once(True, 1, QUICK_STATEMENTS))
    scalar = run_once(False, 256, QUICK_STATEMENTS)
    assert one["messages"] == scalar["messages"]
    assert one["table"] == scalar["table"]


# ----------------------------------------------------------------------
# CI smoke mode: scaled-down sweep for the bench-smoke job
# ----------------------------------------------------------------------
def main(argv) -> int:
    statements = QUICK_STATEMENTS if "--quick" in argv else FULL_STATEMENTS
    print(report(statements))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
