"""Experiment fig2 — Figure 2: semantic routing annotation.

Reproduces the annotated query pattern of Figure 2 (Q1←{P1,P2,P4},
Q2←{P1,P3,P4}, with P4 matched through prop4 ⊑ prop1) and benchmarks
the routing algorithm as the number of advertisements grows.
"""

from __future__ import annotations

from repro.core import route_query
from repro.rql.pattern import SchemaPath
from repro.rvl import ActiveSchema
from repro.workloads.paper import (
    N1,
    paper_active_schemas,
    paper_query_pattern,
    paper_schema,
)

from ._common import banner, format_table, write_report

SCHEMA = paper_schema()
PATTERN = paper_query_pattern(SCHEMA)
ADVERTISEMENTS = list(paper_active_schemas(SCHEMA).values())


def report() -> str:
    annotated = route_query(PATTERN, ADVERTISEMENTS, SCHEMA)
    rows = [
        ("Q1 peers", "P1, P2, P4", ", ".join(annotated.peers_for(PATTERN.root))),
        ("Q2 peers", "P1, P3, P4", ", ".join(annotated.peers_for(PATTERN.patterns[1]))),
        ("P4 matched via", "prop4 ⊑ prop1 (subsumption)",
         "subsumed" if not [a for a in annotated.annotations(PATTERN.root)
                            if a.peer_id == "P4"][0].exact else "exact"),
        ("P4 rewrite", "classes narrowed to C5/C6",
         str(annotated.rewritten_for(PATTERN.root, "P4").schema_path)),
        ("fully annotated", "yes", "yes" if annotated.is_fully_annotated() else "no"),
    ]
    text = banner(
        "fig2",
        "Figure 2: annotated RQL query pattern",
        "routing annotates each path pattern with exactly the subsumption-relevant peers",
    ) + format_table(("item", "paper", "measured"), rows)
    return write_report("fig2", text)


def _synthetic_advertisements(count: int):
    """Many peers, half relevant (prop1 or prop2), half not (prop3)."""
    definition1 = SCHEMA.property_def(N1.prop1)
    definition2 = SCHEMA.property_def(N1.prop2)
    definition3 = SCHEMA.property_def(N1.prop3)
    ads = []
    for i in range(count):
        if i % 2 == 0:
            path = SchemaPath(
                *(definition1.domain, N1.prop1, definition1.range)
            ) if i % 4 == 0 else SchemaPath(definition2.domain, N1.prop2, definition2.range)
        else:
            path = SchemaPath(definition3.domain, N1.prop3, definition3.range)
        ads.append(ActiveSchema(SCHEMA.namespace.uri, [path], peer_id=f"S{i}"))
    return ads


def bench_routing_paper_scale(benchmark):
    annotated = benchmark(route_query, PATTERN, ADVERTISEMENTS, SCHEMA)
    assert annotated.peers_for(PATTERN.root) == ("P1", "P2", "P4")
    assert annotated.peers_for(PATTERN.patterns[1]) == ("P1", "P3", "P4")
    report()


def bench_routing_100_advertisements(benchmark):
    ads = _synthetic_advertisements(100)
    annotated = benchmark(route_query, PATTERN, ads, SCHEMA)
    # only relevant peers annotated: 25 prop1 peers for Q1, 25 prop2 for Q2
    assert len(annotated.peers_for(PATTERN.root)) == 25
    assert len(annotated.peers_for(PATTERN.patterns[1])) == 25


def bench_routing_1000_advertisements(benchmark):
    ads = _synthetic_advertisements(1000)
    annotated = benchmark(route_query, PATTERN, ads, SCHEMA)
    assert len(annotated.all_peers()) == 500


def bench_indexed_routing_1000_advertisements(benchmark):
    """The super-peer's property-bucket index vs the exhaustive scan:
    identical results, bucket-restricted work."""
    from repro.core.routing_index import RoutingIndex

    ads = _synthetic_advertisements(1000)
    index = RoutingIndex(SCHEMA)
    for advertisement in ads:
        index.add(advertisement)
    annotated = benchmark(index.route, PATTERN)
    assert len(annotated.all_peers()) == 500
