"""Experiment local-eval — substrate microbenchmarks.

Not a paper figure: throughput numbers for the layers everything else
stands on (graph pattern matching, entailed path-pattern evaluation,
local conjunctive queries), so regressions in the substrate are visible
independently of the distributed machinery.
"""

from __future__ import annotations

import random

from repro.rdf import Graph, InferredView, Namespace, TYPE
from repro.rql import evaluate_path_pattern, query
from repro.workloads.paper import N1, PAPER_QUERY, paper_query_pattern, paper_schema

from ._common import banner, format_table, write_report

SCHEMA = paper_schema()
DATA = Namespace("http://local/")


def _base(chains: int, seed: int = 0) -> Graph:
    rng = random.Random(seed)
    graph = Graph()
    pool = [DATA[f"m{i}"] for i in range(max(4, chains // 2))]
    for i in range(chains):
        x = DATA[f"x{i}"]
        y = rng.choice(pool)
        z = DATA[f"z{i}"]
        prop1 = N1.prop4 if i % 4 == 0 else N1.prop1
        graph.add(x, TYPE, N1.C5 if prop1 == N1.prop4 else N1.C1)
        graph.add(y, TYPE, N1.C6 if prop1 == N1.prop4 else N1.C2)
        graph.add(x, prop1, y)
        graph.add(y, N1.prop2, z)
        graph.add(z, TYPE, N1.C3)
    return graph


def report() -> str:
    rows = []
    for chains in (100, 1000, 5000):
        graph = _base(chains, seed=chains)
        table = query(PAPER_QUERY, graph, SCHEMA)
        rows.append((chains, len(graph), len(table)))
    text = banner(
        "local-eval",
        "substrate microbenchmark: entailed local RQL evaluation",
        "(not a paper figure) evaluation scales with matching statements, "
        "with prop4 ⊑ prop1 entailment applied throughout",
    ) + format_table(("chains", "triples", "answer rows"), rows)
    return write_report("local-eval", text)


def bench_graph_pattern_match(benchmark):
    graph = _base(2000, seed=1)

    def run():
        return sum(1 for _ in graph.triples(None, N1.prop1, None))

    count = benchmark(run)
    assert count > 0
    report()


def bench_path_pattern_entailed(benchmark):
    graph = _base(2000, seed=2)
    view = InferredView(graph, SCHEMA)
    pattern = paper_query_pattern(SCHEMA).root
    table = benchmark(evaluate_path_pattern, pattern, view)
    assert len(table) == 2000  # prop1 + entailed prop4 statements


def bench_local_conjunctive_query(benchmark):
    graph = _base(1000, seed=3)
    table = benchmark(query, PAPER_QUERY, graph, SCHEMA)
    assert len(table) > 0
