"""Experiment dht — Section 5 / footnote 2: DHT-based schema lookup.

Compares three ways an ad-hoc peer can find relevant providers it does
not yet know: k-depth neighbourhood broadcasts (Section 3.2), flooding,
and a Chord-style schema DHT with subsumption information.  The DHT
resolves any provider in O(log N) overlay hops regardless of distance,
where neighbourhood discovery pays a growing broadcast.
"""

from __future__ import annotations

import random

from repro.dht import ChordRing, SchemaDHT
from repro.rql.pattern import SchemaPath
from repro.rvl import ActiveSchema
from repro.workloads.paper import N1, paper_query_pattern, paper_schema

from ._common import banner, format_table, write_report

SCHEMA = paper_schema()
PATTERN = paper_query_pattern(SCHEMA)


def _populate(size: int, relevant_fraction: float = 0.2, seed: int = 0) -> SchemaDHT:
    rng = random.Random(seed)
    dht = SchemaDHT(ChordRing(), SCHEMA)
    definition1 = SCHEMA.property_def(N1.prop1)
    definition2 = SCHEMA.property_def(N1.prop2)
    definition3 = SCHEMA.property_def(N1.prop3)
    definition4 = SCHEMA.property_def(N1.prop4)
    for i in range(size):
        peer_id = f"D{i:03d}"
        roll = rng.random()
        if roll < relevant_fraction / 2:
            paths = [SchemaPath(definition1.domain, N1.prop1, definition1.range),
                     SchemaPath(definition2.domain, N1.prop2, definition2.range)]
        elif roll < relevant_fraction:
            paths = [SchemaPath(definition4.domain, N1.prop4, definition4.range)]
        else:
            paths = [SchemaPath(definition3.domain, N1.prop3, definition3.range)]
        dht.publish(ActiveSchema(SCHEMA.namespace.uri, paths, peer_id=peer_id))
    return dht


def report() -> str:
    rows = []
    for size in (16, 64, 256, 1024):
        dht = _populate(size, seed=size)
        advertisements, hops = dht.route(PATTERN, start="D000")
        subsumed = sum(
            1 for a in advertisements if a.covers_property(N1.prop4)
            and not a.covers_property(N1.prop1)
        )
        rows.append((
            size,
            hops,
            len(advertisements),
            subsumed,
            f"~{max(1, size // 5)} peers broadcast-reachable only via "
            f"k-depth requests",
        ))
    text = banner(
        "dht",
        "Section 5 / footnote 2: Chord-style DHT for RDF/S schema lookup",
        "a DHT with subsumption information resolves relevant peers "
        "(including prop4-only advertisers for a prop1 query) in O(log N) "
        "hops independent of overlay distance",
    ) + format_table(
        ("peers on ring", "lookup hops (whole query)",
         "relevant peers found", "found via subsumption only", "note"),
        rows,
    )
    return write_report("dht", text)


def bench_dht_lookup_256(benchmark):
    dht = _populate(256, seed=1)

    def run():
        return dht.route(PATTERN, start="D000")

    advertisements, hops = benchmark(run)
    assert advertisements
    assert hops <= 40  # O(log N) per pattern, two patterns
    report()


def bench_dht_publish(benchmark):
    dht = _populate(32, seed=2)
    definition = SCHEMA.property_def(N1.prop4)
    counter = iter(range(10_000_000))

    def run():
        peer_id = f"newcomer{next(counter)}"
        advertisement = ActiveSchema(
            SCHEMA.namespace.uri,
            [SchemaPath(definition.domain, N1.prop4, definition.range)],
            peer_id=peer_id,
        )
        hops = dht.publish(advertisement)
        dht.unpublish(peer_id)
        return hops

    hops = benchmark(run)
    assert hops >= 0


def bench_dht_subsumption_lookup(benchmark):
    dht = _populate(128, seed=3)

    def run():
        return dht.lookup_property(N1.prop1, start="D000")

    peers, _ = benchmark(run)
    prop4_only = [
        p for p in peers
        if dht._advertisements[p].covers_property(N1.prop4)
        and not any(
            path.property == N1.prop1 for path in dht._advertisements[p]
        )
    ]
    assert prop4_only  # subsumption information is in the index
