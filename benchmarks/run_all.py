"""Regenerate every experiment report into benchmarks/results/.

Usage::

    python benchmarks/run_all.py

Each ``bench_<id>.py`` module's ``report()`` prints the paper-vs-
measured table for its experiment; EXPERIMENTS.md embeds these outputs.
"""

from __future__ import annotations

import importlib
import pkgutil
import sys


MODULES = [
    "bench_fig1_patterns",
    "bench_fig2_routing",
    "bench_fig3_planning",
    "bench_fig4_optimization",
    "bench_fig5_shipping",
    "bench_fig6_hybrid",
    "bench_fig7_adhoc",
    "bench_son_vs_flooding",
    "bench_advertisement",
    "bench_index_maintenance",
    "bench_routing_cache",
    "bench_adaptivity",
    "bench_adhoc_depth",
    "bench_optimizer_scaling",
    "bench_phased_vs_discard",
    "bench_topn",
    "bench_dht_routing",
    "bench_churn_system",
    "bench_pipelining",
    "bench_batch_size",
    "bench_local_evaluation",
    "bench_chaos",
    "bench_obs_overhead",
    "bench_concurrency",
    "bench_transport",
    "bench_membership",
    "bench_telemetry",
]


def main() -> int:
    package = __package__ or "benchmarks"
    for name in MODULES:
        module = importlib.import_module(f"{package}.{name}")
        text = module.report()
        print(text)
        print("=" * 78)
    return 0


if __name__ == "__main__":
    sys.exit(main())
