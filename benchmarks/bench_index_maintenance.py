"""Experiment index-maint — Section 4: maintenance cost under churn.

Quantifies "the cost of maintaining (XML or RDF) indices of entire peer
bases is important compared to the cost of maintaining peer
active-schemas (i.e., views)": a full data index pays per triple
update, an active-schema only when the intensional footprint flips.
"""

from __future__ import annotations

from repro.baselines import run_churn
from repro.livedata import LiveDataDriver, UpdateStream
from repro.rdf import Graph
from repro.systems import HybridSystem
from repro.workloads.data_gen import Distribution, generate_bases
from repro.workloads.paper import paper_schema
from repro.workloads.schema_gen import generate_schema

from ._common import banner, format_table, write_report

SCHEMA = paper_schema()

# -- live plane: incremental deltas vs full re-derive ---------------------
LIVE_SEED = 11
LIVE_PEERS = [f"P{i}" for i in range(1, 6)]
LIVE_REVISIONS = 4

#: every peer populates every property, so seeded churn stays purely
#: extensional — the paper's Section 4 claim in its crispest form
_EXTENSIONAL = dict(distribution=Distribution.HORIZONTAL, noise_properties=0)
#: a skewed layout where fresh inserts populate previously-silent
#: properties, so genuine intensional flips flow as (small) deltas
_FOOTPRINT_MOVING = dict(distribution=Distribution.MIXED, noise_properties=1)

_SYNTH_CACHE: dict = {}


def _live_synth(noise_properties: int):
    if noise_properties not in _SYNTH_CACHE:
        _SYNTH_CACHE[noise_properties] = generate_schema(
            chain_length=3,
            refinement_fraction=0.0,
            noise_properties=noise_properties,
            seed=LIVE_SEED,
        )
    return _SYNTH_CACHE[noise_properties]


def _live_deployment(distribution, noise_properties):
    synth = _live_synth(noise_properties)
    gen = generate_bases(
        synth,
        LIVE_PEERS,
        distribution,
        statements_per_segment=60,
        seed=LIVE_SEED,
    )
    system = HybridSystem(synth.schema, seed=LIVE_SEED)
    system.add_super_peer("SP")
    for peer_id in LIVE_PEERS:
        system.add_peer(peer_id, gen.bases[peer_id], "SP")
    system.run()
    return synth, gen, system


def _ad_traffic(metrics):
    kinds = metrics.messages_by_kind
    sizes = metrics.bytes_by_kind
    return (
        kinds["Advertise"] + kinds["AdvertiseDelta"],
        sizes["Advertise"] + sizes["AdvertiseDelta"],
    )


def live_maintenance_costs(
    rate: float,
    full_refresh: bool,
    *,
    distribution=Distribution.HORIZONTAL,
    noise_properties=0,
):
    """Advertisement traffic (messages, bytes) caused by a seeded update
    stream at ``rate`` (fraction of each base mutated per revision) —
    incremental deltas when ``full_refresh`` is off, the re-derive-and-
    republish baseline when it is on.  The stream is the same either
    way (same seed), so the runs differ only in maintenance policy."""
    synth, gen, system = _live_deployment(distribution, noise_properties)
    for peer_id in LIVE_PEERS:
        system.peers[peer_id].live_full_refresh = full_refresh
    before = _ad_traffic(system.network.metrics)
    stream = UpdateStream(
        synth.schema,
        gen.bases,
        seed=LIVE_SEED,
        revisions=LIVE_REVISIONS,
        rate=rate,
        view_probability=0.0,
    )
    driver = LiveDataDriver(system, stream)
    for revision in range(LIVE_REVISIONS):
        driver.inject(revision)
        system.run()
    after = _ad_traffic(system.network.metrics)
    return after[0] - before[0], after[1] - before[1]


def report() -> str:
    rows = []
    for updates in (100, 500, 2000, 10000):
        result = run_churn(Graph(), SCHEMA, updates=updates, seed=updates)
        rows.append((
            updates,
            result.full_index_cost.update_messages,
            result.full_index_cost.update_bytes,
            result.active_schema_cost.update_messages,
            result.active_schema_cost.update_bytes,
            f"{result.message_ratio:.0f}x",
        ))
    text = banner(
        "index-maint",
        "Section 4: index vs active-schema maintenance under churn",
        "maintaining full data indices costs per-update messages; "
        "active-schemas re-advertise only on intensional changes, so the "
        "gap widens with the update volume",
    ) + format_table(
        ("updates", "index msgs", "index bytes", "ad msgs", "ad bytes",
         "index/ad msgs"),
        rows,
    )
    live_rows = []
    for label, scenario in (
        ("extensional", _EXTENSIONAL),
        ("footprint-moving", _FOOTPRINT_MOVING),
    ):
        for rate in (0.02, 0.05, 0.10, 0.25):
            delta_msgs, delta_bytes = live_maintenance_costs(
                rate, False, **scenario
            )
            full_msgs, full_bytes = live_maintenance_costs(
                rate, True, **scenario
            )
            live_rows.append((
                label,
                f"{rate:.0%}",
                full_msgs,
                full_bytes,
                delta_msgs,
                delta_bytes,
                f"{full_bytes / max(1, delta_bytes):.0f}x",
            ))
    live_text = banner(
        "live-maint",
        "Section 4 live plane: delta advertisements vs full re-derive",
        "under live update streams, re-deriving and republishing full "
        "advertisements pays per-batch; incremental maintenance ships "
        "deltas only when the intensional footprint flips, so at low "
        "update rates the advertisement traffic all but vanishes",
    ) + format_table(
        ("churn", "update rate", "full msgs", "full bytes", "delta msgs",
         "delta bytes", "full/delta bytes"),
        live_rows,
    )
    write_report(
        "live-maint",
        live_text,
        params={
            "seed": LIVE_SEED,
            "peers": len(LIVE_PEERS),
            "revisions": LIVE_REVISIONS,
            "rates": [0.02, 0.05, 0.10, 0.25],
        },
    )
    return write_report("index-maint", text) + "\n" + live_text


def bench_churn_2000_updates(benchmark):
    def run():
        return run_churn(Graph(), SCHEMA, updates=2000, seed=7)

    result = benchmark(run)
    assert result.full_index_cost.update_messages == 2000
    assert result.message_ratio > 10
    report()


def bench_incremental_beats_full_rederive(benchmark):
    """The live-plane economy, asserted: at every update rate up to 10%
    of the base per revision, incremental maintenance moves at least 5x
    fewer advertisement messages AND bytes than full re-derivation."""
    def run():
        return live_maintenance_costs(0.10, False)

    benchmark(run)
    for rate in (0.02, 0.05, 0.10):
        delta_msgs, delta_bytes = live_maintenance_costs(rate, False)
        full_msgs, full_bytes = live_maintenance_costs(rate, True)
        assert full_msgs >= 5 * max(1, delta_msgs), (
            f"rate {rate}: full {full_msgs} msgs vs delta {delta_msgs}"
        )
        assert full_bytes >= 5 * max(1, delta_bytes), (
            f"rate {rate}: full {full_bytes} B vs delta {delta_bytes} B"
        )
        # even when churn genuinely moves the footprint, deltas stay
        # far cheaper than full re-advertisements on the wire
        _, moving_delta_bytes = live_maintenance_costs(
            rate, False, **_FOOTPRINT_MOVING
        )
        _, moving_full_bytes = live_maintenance_costs(
            rate, True, **_FOOTPRINT_MOVING
        )
        assert moving_full_bytes >= 3 * max(1, moving_delta_bytes)


def bench_advertisement_refresh(benchmark):
    """Cost of one footprint check on a populated base."""
    from repro.baselines import ActiveSchemaMaintainer
    from repro.workloads.paper import paper_peer_bases

    graph = paper_peer_bases()["P1"]
    maintainer = ActiveSchemaMaintainer(graph, SCHEMA, "P1")
    sent = benchmark(maintainer.refresh)
    assert sent is False  # footprint unchanged: no advertisement
