"""Experiment index-maint — Section 4: maintenance cost under churn.

Quantifies "the cost of maintaining (XML or RDF) indices of entire peer
bases is important compared to the cost of maintaining peer
active-schemas (i.e., views)": a full data index pays per triple
update, an active-schema only when the intensional footprint flips.
"""

from __future__ import annotations

from repro.baselines import run_churn
from repro.rdf import Graph
from repro.workloads.paper import paper_schema

from ._common import banner, format_table, write_report

SCHEMA = paper_schema()


def report() -> str:
    rows = []
    for updates in (100, 500, 2000, 10000):
        result = run_churn(Graph(), SCHEMA, updates=updates, seed=updates)
        rows.append((
            updates,
            result.full_index_cost.update_messages,
            result.full_index_cost.update_bytes,
            result.active_schema_cost.update_messages,
            result.active_schema_cost.update_bytes,
            f"{result.message_ratio:.0f}x",
        ))
    text = banner(
        "index-maint",
        "Section 4: index vs active-schema maintenance under churn",
        "maintaining full data indices costs per-update messages; "
        "active-schemas re-advertise only on intensional changes, so the "
        "gap widens with the update volume",
    ) + format_table(
        ("updates", "index msgs", "index bytes", "ad msgs", "ad bytes",
         "index/ad msgs"),
        rows,
    )
    return write_report("index-maint", text)


def bench_churn_2000_updates(benchmark):
    def run():
        return run_churn(Graph(), SCHEMA, updates=2000, seed=7)

    result = benchmark(run)
    assert result.full_index_cost.update_messages == 2000
    assert result.message_ratio > 10
    report()


def bench_advertisement_refresh(benchmark):
    """Cost of one footprint check on a populated base."""
    from repro.baselines import ActiveSchemaMaintainer
    from repro.workloads.paper import paper_peer_bases

    graph = paper_peer_bases()["P1"]
    maintainer = ActiveSchemaMaintainer(graph, SCHEMA, "P1")
    sent = benchmark(maintainer.refresh)
    assert sent is False  # footprint unchanged: no advertisement
