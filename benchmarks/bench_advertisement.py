"""Experiment fine-adv — Section 2.2: active-schema vs global-schema
advertisements.

Quantifies "compared to global schema-based advertisements, we expect
that the load of queries processed by each peer is smaller, since a
peer receives only relevant to its base queries", and the bandwidth
trade-off (finer advertisements cost more bytes once, save query
traffic forever after).
"""

from __future__ import annotations

import random

from repro.baselines import (
    run_active_schema_advertisements,
    run_global_advertisements,
)
from repro.rvl import ActiveSchema
from repro.workloads.data_gen import Distribution, generate_bases
from repro.workloads.query_gen import random_queries
from repro.workloads.schema_gen import generate_schema
from repro.rql.pattern import pattern_from_text

from ._common import banner, format_table, write_report

SYNTH = generate_schema(chain_length=5, refinement_fraction=0.4,
                        noise_properties=3, seed=42)
PEERS = [f"P{i:02d}" for i in range(30)]


def _population(seed=0):
    gen = generate_bases(
        SYNTH, PEERS, Distribution.MIXED, statements_per_segment=10, seed=seed
    )
    return {
        peer: ActiveSchema.from_base(graph, SYNTH.schema, peer)
        for peer, graph in gen.bases.items()
    }


def _query_batch(count=50, seed=1):
    return [
        pattern_from_text(text, SYNTH.schema)
        for text in random_queries(SYNTH, count, max_length=3, seed=seed)
    ]


def report() -> str:
    ads = _population()
    patterns = _query_batch()
    global_outcome = run_global_advertisements(patterns, ads, SYNTH.schema)
    active_outcome = run_active_schema_advertisements(patterns, ads, SYNTH.schema)
    g_loads = sorted(global_outcome.per_peer_load.values(), reverse=True)
    a_loads = sorted(active_outcome.per_peer_load.values(), reverse=True)
    rows = [
        ("queries forwarded", global_outcome.queries_forwarded,
         active_outcome.queries_forwarded),
        ("irrelevant queries processed", global_outcome.irrelevant_processed,
         active_outcome.irrelevant_processed),
        ("wasted processing fraction",
         f"{global_outcome.wasted_fraction:.0%}",
         f"{active_outcome.wasted_fraction:.0%}"),
        ("peak per-peer load", g_loads[0] if g_loads else 0,
         a_loads[0] if a_loads else 0),
        ("mean per-peer load",
         f"{sum(g_loads) / len(PEERS):.1f}",
         f"{sum(a_loads) / len(PEERS):.1f}"),
        ("advertisement bytes (one-off)", global_outcome.advertisement_bytes,
         active_outcome.advertisement_bytes),
    ]
    text = banner(
        "fine-adv",
        "Section 2.2: per-peer query load under coarse vs fine advertisements",
        "with active-schemas each peer receives only queries relevant to its "
        "base, lowering per-peer load and network traffic",
    ) + format_table(
        ("metric", "global-schema ads", "active-schema ads (SQPeer)"), rows
    )
    return write_report("fine-adv", text)


def bench_active_schema_routing_batch(benchmark):
    ads = _population()
    patterns = _query_batch()
    outcome = benchmark(
        run_active_schema_advertisements, patterns, ads, SYNTH.schema
    )
    assert outcome.irrelevant_processed == 0
    report()


def bench_global_routing_batch(benchmark):
    ads = _population()
    patterns = _query_batch()
    outcome = benchmark(run_global_advertisements, patterns, ads, SYNTH.schema)
    active = run_active_schema_advertisements(patterns, ads, SYNTH.schema)
    assert outcome.queries_forwarded > active.queries_forwarded
    assert outcome.wasted_fraction > 0
