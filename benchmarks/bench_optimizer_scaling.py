"""Experiment opt-scale — Section 2.5: optimisation benefit at scale.

Sweeps the number of peers per path pattern and the overlap (peers
answering *both* successive patterns, which TR1/TR2 exploit) and
measures the two quantities Figure 4's rewrites target:

* **max intermediate result** — after distribution no join consumes a
  full union ("pushing joins below the unions produces smaller
  intermediate results");
* **per-peer shipped rows for overlap peers** — a merged ``(Q1∪Q2)@P``
  subquery ships the local join's (small) output instead of two full
  scan results.
"""

from __future__ import annotations

from repro.core import CostModel, Statistics, build_plan, optimize, route_query
from repro.core.algebra import Join, Scan, count_scans
from repro.core.optimizer import distribute_joins_over_unions, merge_same_peer_scans
from repro.rql.pattern import SchemaPath
from repro.rvl import ActiveSchema
from repro.workloads.paper import N1, paper_query_pattern, paper_schema

from ._common import banner, format_table, write_report

SCHEMA = paper_schema()
PATTERN = paper_query_pattern(SCHEMA)

#: rows each peer returns per path pattern, and the join selectivity
SCAN_ROWS = 100
SELECTIVITY = 0.001


def _advertisements(peers: int, overlap_fraction: float):
    """``peers`` advertisements; a fraction covering both patterns."""
    definition1 = SCHEMA.property_def(N1.prop1)
    definition2 = SCHEMA.property_def(N1.prop2)
    path1 = SchemaPath(definition1.domain, N1.prop1, definition1.range)
    path2 = SchemaPath(definition2.domain, N1.prop2, definition2.range)
    ads = []
    overlap = max(1, int(peers * overlap_fraction))
    for i in range(peers):
        if i < overlap:
            paths = [path1, path2]
        elif i % 2 == 0:
            paths = [path1]
        else:
            paths = [path2]
        ads.append(ActiveSchema(SCHEMA.namespace.uri, paths, peer_id=f"O{i:02d}"))
    return ads


def _model() -> CostModel:
    return CostModel(
        Statistics(default_cardinality=SCAN_ROWS, join_selectivity=SELECTIVITY)
    )


def _plans(peers: int, overlap: float):
    annotated = route_query(PATTERN, _advertisements(peers, overlap), SCHEMA)
    plan1 = build_plan(annotated)
    plan2 = distribute_joins_over_unions(plan1)
    plan3 = merge_same_peer_scans(plan2)
    return plan1, plan2, plan3


def _merged_scan_rows(plan, model, peer_id="O00"):
    """Rows the merged ``(Q1∪Q2)@peer`` subquery ships, vs the rows the
    two separate scans it replaced would ship for that join term."""
    merged = [
        n
        for n in plan.walk()
        if isinstance(n, Scan) and n.peer_id == peer_id and len(n.patterns()) > 1
    ]
    if not merged:
        return None
    return model.scan_cardinality(merged[0])


def report() -> str:
    model = _model()
    rows = []
    for peers, overlap in ((4, 0.5), (8, 0.5), (8, 1.0), (16, 0.25), (32, 0.5)):
        plan1, plan2, plan3 = _plans(peers, overlap)
        merged_rows = _merged_scan_rows(plan3, model)
        rows.append((
            peers,
            f"{overlap:.0%}",
            f"{model.max_intermediate_rows(plan1):.0f}",
            f"{model.max_intermediate_rows(plan3):.0f}",
            f"{merged_rows:.0f} vs {2 * SCAN_ROWS}" if merged_rows else "-",
            f"{count_scans(plan2)} -> {count_scans(plan3)}",
        ))
    text = banner(
        "opt-scale",
        "Section 2.5: compile-time optimisation benefit vs SON size/overlap",
        "distribution keeps every join input small; TR1/TR2 turn an overlap "
        "peer's two full scans into one small local-join result and cut the "
        "subplans shipped",
    ) + format_table(
        ("peers", "overlap", "max interm. rows (Plan1)",
         "max interm. rows (Plan3)", "merged subquery rows vs 2 scans",
         "scans Plan2 -> Plan3"),
        rows,
    )
    return write_report("opt-scale", text)


def bench_optimize_16_peers(benchmark):
    annotated = route_query(PATTERN, _advertisements(16, 0.5), SCHEMA)
    plan1 = build_plan(annotated)
    trace = benchmark(optimize, plan1)
    assert trace.result != plan1
    report()


def bench_distribution_shrinks_intermediates(benchmark):
    model = _model()

    def run():
        return _plans(8, 0.5)

    plan1, plan2, plan3 = benchmark(run)
    assert model.max_intermediate_rows(plan3) < model.max_intermediate_rows(plan1)
    assert count_scans(plan3) < count_scans(plan2)


def bench_merging_shrinks_overlap_peer_shipments(benchmark):
    model = _model()

    def run():
        return _plans(8, 1.0)

    plan1, _, plan3 = benchmark(run)
    # the merged (Q1∪Q2)@O00 subquery ships the join's small output
    # where the unmerged term shipped two full scan results
    merged = _merged_scan_rows(plan3, model)
    assert merged is not None
    assert merged < 2 * SCAN_ROWS
