"""Assemble EXPERIMENTS.md from the generated experiment reports.

Usage::

    python -m benchmarks.run_all          # refresh benchmarks/results/
    python -m benchmarks.make_experiments_md
"""

from __future__ import annotations

import os
import sys

from ._common import RESULTS_DIR

HEADER = """\
# EXPERIMENTS — paper vs measured

The paper (a workshop middleware design paper) contains **no measurement
tables**; its evaluation is Figures 1–7 plus comparative performance
claims in prose.  Every experiment below regenerates one figure's
scenario or quantifies one claim; absolute numbers come from this
repository's deterministic network simulator, so only the *shape*
(who wins, by what order of magnitude, where behaviour flips) is
comparable with the paper.

Regenerate everything with::

    python -m benchmarks.run_all                 # tables below
    pytest benchmarks/ --benchmark-only          # timings + shape assertions

"""

#: experiment id -> (title, verdict commentary)
COMMENTARY = {
    "fig1": (
        "Figure 1 — schema / query pattern / advertisement formalism",
        "Reproduced exactly: the extracted query pattern carries the "
        "end-point classes from the schema and the RVL view's footprint "
        "is the advertised fragment.",
    ),
    "fig2": (
        "Figure 2 — routing annotation",
        "Reproduced exactly, including P4's annotation through "
        "prop4 ⊑ prop1 subsumption and the class-narrowing rewrite.",
    ),
    "fig3": (
        "Figure 3 — plan generation and channel deployment",
        "Reproduced exactly: the generated plan string equals the "
        "paper's, and one channel per contacted peer is deployed.",
    ),
    "fig4": (
        "Figure 4 — optimisation (distribution + TR1/TR2)",
        "Reproduced exactly: Plan 2 is the 9-way union of pairwise "
        "joins, Plan 3 merges the P1 and P4 subplans; subplans shipped "
        "drop 18 -> 16 as in the paper's narrative.",
    ),
    "fig5": (
        "Figure 5 — data vs query shipping",
        "All three qualitative rules hold: slow coordinator links and "
        "big intermediate results favour query shipping, loaded remote "
        "peers favour data shipping; the crossover appears in the sweep.",
    ),
    "fig6": (
        "Figure 6 — hybrid architecture flow",
        "Reproduced: one routing round-trip at the super-peer, channels "
        "only to the three relevant peers, a complete (hole-free) plan, "
        "and the six expected answer rows.",
    ),
    "fig7": (
        "Figure 7 — ad-hoc architecture flow",
        "Reproduced: P1's Plan 1 and P2's Plan 2 match the paper "
        "verbatim; P3's branch fails exactly as in the figure; results "
        "flow back through P2.",
    ),
    "son-vs-flood": (
        "Sections 1/3 — SON routing vs flooding",
        "Shape holds: flooding contacts every peer and its message count "
        "grows with network size (6–16x the SON cost here); SON routing "
        "contacts only the relevant ~20%.",
    ),
    "fine-adv": (
        "Section 2.2 — fine vs coarse advertisements",
        "Shape holds: active-schemas eliminate irrelevant query "
        "processing (0% wasted vs ~21%) and lower mean per-peer load, at "
        "a one-off advertisement-size cost — the trade-off the paper "
        "acknowledges.",
    ),
    "index-maint": (
        "Section 4 — index vs active-schema maintenance",
        "Shape holds and widens with churn: the full data index pays one "
        "message per update while advertisements refresh only on "
        "intensional changes (12x at 100 updates, >700x at 10k).",
    ),
    "live-maint": (
        "Section 4 live plane (extension) — incremental advertisement "
        "maintenance",
        "Shape holds through a running deployment: under seeded live "
        "update streams, purely extensional churn moves *zero* "
        "advertisement traffic (the full re-derive baseline re-pushes "
        "every advertisement every batch), and even when churn "
        "genuinely flips the intensional footprint, shipping deltas "
        "costs ~6-7x fewer advertisement bytes than republishing. "
        "CI asserts >=5x fewer messages and bytes at update rates "
        "<=10% of the base per revision.",
    ),
    "routing-cache": (
        "repro.cache (extension) — routing/plan caching under churn",
        "Warm signature-keyed lookups answer repeated (even alpha-renamed) "
        "queries orders of magnitude faster than cold routing, while "
        "scoped invalidation confines churn cost to the entries a "
        "mutation can actually affect; coherence is property-tested "
        "against cold routing over arbitrary join/Goodbye/refresh "
        "interleavings.",
    ),
    "adapt": (
        "Section 2.5 — run-time adaptability",
        "Shape holds: with replanning the query survives 1–3 peer "
        "failures (losing only the dead peers' rows, spending extra "
        "messages); without it any failure kills the query.",
    ),
    "depth": (
        "Section 3.2 — k-depth neighbourhood discovery",
        "Shape holds as a staircase: a provider k hops behind empty "
        "peers is reachable exactly when the discovery depth reaches k, "
        "with message cost growing in the depth.",
    ),
    "opt-scale": (
        "Section 2.5 — optimisation benefit at scale",
        "Shape holds: distribution caps every join input at one peer's "
        "result size regardless of SON width, and TR1/TR2 replace an "
        "overlap peer's two full scans with one small local-join result.",
    ),
    "phased": (
        "Section 2.5 (extension) — ubQL discard vs phased execution",
        "Both policies return identical answers; the phased alternative "
        "salvages the failed phase's completed scans, re-shipping roughly "
        "half the subplans the discard policy does under failure.",
    ),
    "topn": (
        "Section 5 (extension) — Top-N / broadcast-constrained queries",
        "The predicted trade-off curve appears: tightening the per-pattern "
        "peer bound monotonically lowers subplans, bytes and completeness, "
        "and every bounded answer stays sound.",
    ),
    "topk-cancel": (
        "Section 5 live plane (extension) — any-k early termination",
        "The predicted curve appears: with top-k cancel on, the "
        "coordinator discards remaining channels the ubQL way "
        "(ChangePlanPacket) once k results are stable, so smaller k "
        "terminates paced binding streams earlier — batches saved "
        "shrink monotonically from k=1 to unbounded, the k answers are "
        "always drawn from the exact answer set, and ORDER BY queries "
        "never cancel (sorted top-k needs every candidate).",
    ),
    "dht": (
        "Section 5 / footnote 2 (extension) — schema DHT with subsumption",
        "Lookups resolve all relevant peers — including subsumption-only "
        "advertisers (prop4 for a prop1 query) — in O(log N) overlay hops "
        "regardless of network distance.",
    ),
    "pipeline": (
        "Section 2.5 (extension) — pipelined plan evaluation",
        "Incremental joins over streamed chunks materialise first rows at "
        "a constant early point while blocking completion scales with the "
        "stream duration — a head start growing to ~98%; answers identical.",
    ),
    "batch": (
        "Section 2.5 (extension) — batched vectorized execution",
        "Shipping bindings in batches pays channel cost per batch instead "
        "of per binding: at batch size 256 the vectorized engine answers "
        "the ~500-row sweep query with >10x fewer simulator messages and "
        ">2x less wall-clock than the scalar binding-at-a-time engine, "
        "with answer multisets differentially verified identical.",
    ),
    "churn": (
        "Sections 1/2.2/2.5 (extension) — query stream under churn",
        "Redundancy plus replanning sustain the stream: graceful leaves "
        "(Goodbye withdrawal) actually reduce traffic, while crashes more "
        "than double it through failed channels and replans.",
    ),
    "chaos": (
        "Sections 1/2.5 (extension) — resilience under realistic faults",
        "With omniscient failure bounces replaced by silent drops, the "
        "resilience layer (acks/retransmits, heartbeat suspicion, "
        "quarantine, bounded replanning, coverage-annotated partials) "
        "keeps ≥90% of queries fully answered through 10–20% message "
        "loss plus a mid-query crash/recovery; same-seed runs replay "
        "bit-for-bit.",
    ),
    "obs-overhead": (
        "repro.obs (extension) — observability tax",
        "Not a paper figure: the cost of leaving tracing and histogram "
        "metrics on by default. Trace contexts ride messages as uncharged "
        "metadata, so *no simulated quantity* moves (messages, bytes, "
        "per-kind counts, answer rows and virtual time are bit-identical "
        "with the recorder on or off — asserted, not assumed). The "
        "real-CPU cost of minting ~14 spans plus histogram observations "
        "per Figure 6 run measures at ~3–4.5% (median of GC-quiesced "
        "paired CPU-time ratios; wall-clock best-of was tried first and "
        "swings ±30% on a shared machine, far above the effect). CI "
        "bounds it below 5%.",
    ),
    "local-eval": (
        "Substrate microbenchmark — entailed local evaluation",
        "Not a paper figure: baseline throughput of the layers the "
        "distributed machinery stands on, recorded so substrate "
        "regressions are visible in isolation.",
    ),
    "concurrency": (
        "repro.workload_engine (extension) — concurrent serving",
        "Not a paper figure: the middleware serves, it doesn't just "
        "answer. An open-loop driver offers rising load to one cold-"
        "cache hybrid deployment with fair per-query scheduling (one "
        "local work unit per virtual time unit of peer CPU). "
        "Concurrency pays — ≥8 queries in flight complete ~3x more "
        "queries per virtual time than the seed's one-at-a-time regime "
        "— but unbounded overload balloons the tail (p99 ~10x "
        "sequential). Admission control (2 active + 2 queued per "
        "coordinator) sheds the excess with a retry-after and keeps "
        "the served p99 well under the unbounded tail. Every answered "
        "query is differentially verified identical to sequential "
        "execution by the 200-workload concurrent difftest sweep.",
    ),
    "transport": (
        "repro.transport (extension) — live TCP deployment vs simulator",
        "Not a paper figure: the credibility check for everything above. "
        "The protocol stack runs unchanged over a pluggable transport; "
        "`python -m repro launch` deploys the cluster as real OS "
        "processes exchanging length-prefixed JSON frames over localhost "
        "TCP, bootstrapped from a seed node. Every answer the live "
        "cluster returns — rows, error strings and coverage annotations "
        "alike — is identical to the virtual-clock simulator's (0 "
        "divergences here; 60 seeded workload queries plus a mid-run "
        "SIGTERM compared exactly in tests/difftest/test_transport.py). "
        "The simulator stays ~2 orders of magnitude faster in "
        "wall-clock, which is why it remains the default dev loop.",
    ),
    "membership": (
        "repro.membership (extension) — churn with durable recovery",
        "Not a paper figure: dynamic membership on top of the live "
        "transport. A peer SIGKILLed mid-workload leaves honest "
        "coverage-annotated partials behind; restarted (supervised "
        "exponential-backoff respawn in `launch --supervise`), it "
        "recovers its base, views and remembered advertisements from "
        "its durable snapshot + checksummed membership log, "
        "re-advertises with a rejoin flag that lifts quarantines "
        "SON-wide, and the very next answers are full again — "
        "byte-identical to the in-sim twin across 60 seeded churn "
        "queries (tests/difftest/test_membership.py). Log replay "
        "stays linear in committed records.",
    ),
    "telemetry": (
        "repro.obs.telemetry (extension) — live cluster telemetry",
        "Not a paper figure: the telemetry plane over both runtimes. "
        "Every peer serves /metrics, /healthz and /tracez off its "
        "transport event loop; the launcher scrapes mid-run into a "
        "per-line-flushed timeline.jsonl that survives a SIGKILLed "
        "launcher, and declarative SLO monitors (p99 latency, shed "
        "rate, availability, partial rate) emit firing/resolved "
        "transitions into the timeline and report.json. Being strictly "
        "pull-based, a probed run's metric snapshot is identical to an "
        "unprobed one's (asserted, not assumed); an in-sim probe "
        "sample costs microseconds, a live scrape round a couple of "
        "milliseconds, and the timeline stays well under 2 KiB per "
        "peer per round.",
    ),
}

ORDER = list(COMMENTARY)


def main() -> int:
    parts = [HEADER]
    for experiment_id in ORDER:
        title, verdict = COMMENTARY[experiment_id]
        path = os.path.join(RESULTS_DIR, f"{experiment_id}.txt")
        if not os.path.exists(path):
            print(f"missing report {path}; run `python -m benchmarks.run_all`",
                  file=sys.stderr)
            return 1
        with open(path) as handle:
            body = handle.read().rstrip()
        parts.append(f"## {title}\n\n**Verdict.** {verdict}\n\n```\n{body}\n```\n")
    out_path = os.path.join(os.path.dirname(RESULTS_DIR), "..", "EXPERIMENTS.md")
    out_path = os.path.normpath(out_path)
    with open(out_path, "w") as handle:
        handle.write("\n".join(parts))
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
