"""Experiment fig5 — Figure 5: data vs query vs hybrid shipping.

Reproduces the paper's three qualitative rules with a parameter sweep:

* expensive coordinator links → query shipping wins;
* heavy load at the remote peer → data shipping wins;
* large remote intermediate results → query shipping wins;

and benchmarks the site-assignment optimiser.
"""

from __future__ import annotations

from repro.core import CostModel, Statistics, assign_sites
from repro.core.algebra import Join, Scan
from repro.core.shipping import ShippingPolicy, compare_policies
from repro.workloads.paper import paper_query_pattern, paper_schema

from ._common import banner, format_table, write_report

Q1, Q2 = paper_query_pattern(paper_schema()).patterns
#: The Figure 5 plan: P1 coordinates a join of results from P2 and P3.
PLAN = Join([Scan((Q1,), "P2"), Scan((Q2,), "P3")])


def _winner(stats: Statistics) -> ShippingPolicy:
    out = compare_policies(PLAN, "P1", CostModel(stats))
    return min(
        (ShippingPolicy.DATA, ShippingPolicy.QUERY), key=lambda p: out[p].total
    )


def _stats(coordinator_link=1.0, remote_link=1.0, p2_load=0, cardinality=500):
    stats = Statistics(default_cardinality=cardinality, join_selectivity=0.0001)
    stats.set_link_cost("P1", "P2", coordinator_link)
    stats.set_link_cost("P1", "P3", coordinator_link)
    stats.set_link_cost("P2", "P3", remote_link)
    if p2_load:
        stats.set_load("P2", load=p2_load, slots=1)
        stats.set_load("P3", load=p2_load, slots=1)
    return stats


def report() -> str:
    sweep_rows = []
    for coordinator_link in (0.01, 0.1, 1.0, 10.0, 100.0):
        stats = _stats(coordinator_link=coordinator_link, remote_link=0.01)
        out = compare_policies(PLAN, "P1", CostModel(stats))
        sweep_rows.append((
            coordinator_link,
            f"{out[ShippingPolicy.DATA].total:.1f}",
            f"{out[ShippingPolicy.QUERY].total:.1f}",
            _winner(stats).value,
        ))
    scenario_rows = [
        ("P1—P3 slower than P2—P3", "query shipping",
         _winner(_stats(coordinator_link=50.0, remote_link=0.01)).value),
        ("P2 heavily loaded", "data shipping",
         _winner(_stats(p2_load=200, cardinality=10)).value),
        ("large intermediate results at P2", "query shipping",
         _winner(_stats(coordinator_link=5.0, remote_link=0.01,
                        cardinality=5000)).value),
    ]
    text = (
        banner(
            "fig5",
            "Figure 5: data and query shipping execution policies",
            "link costs, peer load and result sizes decide between data, "
            "query and hybrid shipping",
        )
        + format_table(
            ("coordinator link cost", "data cost", "query cost", "winner"),
            sweep_rows,
        )
        + "\n\n"
        + format_table(("scenario", "paper predicts", "measured"), scenario_rows)
    )
    return write_report("fig5", text)


def bench_site_assignment(benchmark):
    stats = _stats(coordinator_link=50.0, remote_link=0.01)
    assignment = benchmark(assign_sites, PLAN, "P1", CostModel(stats))
    assert assignment.policy() is ShippingPolicy.QUERY
    report()


def bench_policy_comparison(benchmark):
    stats = _stats()
    out = benchmark(compare_policies, PLAN, "P1", CostModel(stats))
    best_pure = min(out[ShippingPolicy.DATA].total, out[ShippingPolicy.QUERY].total)
    assert out[ShippingPolicy.HYBRID].total <= best_pure + 1e-6


def bench_assignment_deep_plan(benchmark):
    plan = PLAN
    for i in range(4):
        plan = Join([plan, Scan((Q2,), f"X{i}")])
    assignment = benchmark(assign_sites, plan, "P1", CostModel(_stats()))
    assert assignment.sites
