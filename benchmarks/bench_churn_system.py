"""Experiment churn — Sections 1/2.2: query success under peer churn.

The design goal the paper opens with — "loosely coupled communities of
databases where each peer base can join and leave the network at will"
— combined with Section 2.5's adaptation.  A query stream runs while a
fraction of peers departs between queries (gracefully, with Goodbye
messages, or by crashing); redundancy plus replanning keep the success
rate high, and graceful departures cost less than crash recovery.
"""

from __future__ import annotations

import random

from repro.errors import PeerError
from repro.systems import HybridSystem
from repro.workloads.data_gen import Distribution, generate_bases
from repro.workloads.query_gen import chain_query
from repro.workloads.schema_gen import generate_schema

from ._common import banner, format_table, write_report

SYNTH = generate_schema(chain_length=2, refinement_fraction=0.0, seed=31)
PEERS = [f"P{i}" for i in range(12)]
QUERY = chain_query(SYNTH, 0, 2)


def _fresh_system() -> HybridSystem:
    gen = generate_bases(
        SYNTH, PEERS, Distribution.HORIZONTAL, statements_per_segment=5, seed=31
    )
    system = HybridSystem(SYNTH.schema)
    system.add_super_peer("SP1")
    for peer_id, graph in gen.bases.items():
        system.add_peer(peer_id, graph, "SP1")
    system.run()
    return system


def _run_stream(departures: int, graceful: bool, queries: int = 8, seed: int = 0):
    """Interleave queries with departures; report successes/messages."""
    rng = random.Random(seed)
    system = _fresh_system()
    alive = [p for p in PEERS if p != "P0"]  # P0 coordinates
    answered = 0
    departed = 0
    for step in range(queries):
        if departed < departures and step % 2 == 1 and alive:
            victim = alive.pop(rng.randrange(len(alive)))
            if graceful:
                system.peers[victim].leave()
                system.run()
            else:
                system.network.fail_peer(victim)
            departed += 1
        try:
            table = system.query("P0", QUERY)
            if len(table):
                answered += 1
        except PeerError:
            pass
    return answered, queries, system.network.metrics.messages_total


def report() -> str:
    rows = []
    for departures in (0, 2, 4):
        for graceful in (True, False):
            answered, total, messages = _run_stream(departures, graceful)
            rows.append((
                departures,
                "graceful (Goodbye)" if graceful else "crash",
                f"{answered}/{total}",
                messages,
            ))
    text = banner(
        "churn",
        "Sections 1/2.2/2.5: query stream under peer churn",
        "redundant SONs plus replanning sustain the query stream through "
        "departures; graceful leaves (advertisement withdrawal) avoid the "
        "failed-channel round-trips crashes cause",
    ) + format_table(
        ("departures", "mode", "queries answered", "total messages"), rows
    )
    return write_report("churn", text)


def bench_stream_with_graceful_churn(benchmark):
    def run():
        return _run_stream(departures=3, graceful=True)

    answered, total, _ = benchmark(run)
    assert answered == total
    report()


def bench_stream_with_crash_churn(benchmark):
    def run():
        return _run_stream(departures=3, graceful=False)

    answered, total, _ = benchmark(run)
    assert answered == total  # adaptation repairs every query


def bench_graceful_cheaper_than_crash(benchmark):
    def run():
        return _run_stream(departures=4, graceful=True)

    _, _, graceful_messages = benchmark(run)
    _, _, crash_messages = _run_stream(departures=4, graceful=False)
    assert graceful_messages <= crash_messages
