"""Experiment routing-cache — the repro.cache subsystem.

Quantifies the caching layer the ISSUE adds on top of the paper's
routing machinery: cold per-query routing (the paper's behaviour,
``--no-cache``) vs warm signature-keyed cache hits vs a churn regime
where advertisement refreshes keep invalidating entries.  Scoped
invalidation means churn only costs the affected entries — the warm
path's advantage survives unrelated mutations.
"""

from __future__ import annotations

import time

from repro.cache import RoutingCache
from repro.core.routing_index import RoutingIndex
from repro.rql.pattern import SchemaPath
from repro.rvl import ActiveSchema
from repro.workloads.paper import (
    N1,
    paper_query_pattern,
    paper_schema,
)

from ._common import banner, format_table, write_report

SCHEMA = paper_schema()
PATTERN = paper_query_pattern(SCHEMA)

#: acceptance floor: a warm routing step beats a cold one by this much
MIN_WARM_SPEEDUP = 5.0


def _synthetic_advertisements(count: int):
    """Many peers, half relevant (prop1 or prop2), half not (prop3)."""
    definition1 = SCHEMA.property_def(N1.prop1)
    definition2 = SCHEMA.property_def(N1.prop2)
    definition3 = SCHEMA.property_def(N1.prop3)
    ads = []
    for i in range(count):
        if i % 2 == 0:
            path = SchemaPath(
                definition1.domain, N1.prop1, definition1.range
            ) if i % 4 == 0 else SchemaPath(
                definition2.domain, N1.prop2, definition2.range
            )
        else:
            path = SchemaPath(definition3.domain, N1.prop3, definition3.range)
        ads.append(ActiveSchema(SCHEMA.namespace.uri, [path], peer_id=f"S{i}"))
    return ads


def _filled_index(ads, use_cache: bool) -> RoutingIndex:
    index = RoutingIndex(SCHEMA, use_cache=use_cache)
    for advertisement in ads:
        index.add(advertisement)
    return index


def _refreshed_ad(n: int) -> ActiveSchema:
    """The n-th refresh: a prop1 advertiser widens its footprint with
    prop3, a genuine intensional change (unchanged re-advertises are
    no-ops and would not invalidate anything)."""
    definition1 = SCHEMA.property_def(N1.prop1)
    definition3 = SCHEMA.property_def(N1.prop3)
    paths = [
        SchemaPath(definition1.domain, N1.prop1, definition1.range),
        SchemaPath(definition3.domain, N1.prop3, definition3.range),
    ]
    return ActiveSchema(
        SCHEMA.namespace.uri, paths, peer_id=f"S{(n % 250) * 4}"
    )


def _steps_per_second(step, iterations: int) -> float:
    start = time.perf_counter()
    for _ in range(iterations):
        step()
    elapsed = time.perf_counter() - start
    return iterations / elapsed if elapsed else float("inf")


def report() -> str:
    ads = _synthetic_advertisements(1000)

    cold_index = _filled_index(ads, use_cache=False)
    cold_rate = _steps_per_second(lambda: cold_index.route(PATTERN), 50)

    warm_index = _filled_index(ads, use_cache=True)
    warm_index.route(PATTERN)  # fill the entry
    warm_rate = _steps_per_second(lambda: warm_index.route(PATTERN), 500)

    # churn regime: every routing step is preceded by a *relevant*
    # advertisement refresh (the footprint genuinely changes — an
    # unchanged re-advertise is a no-op), so the entry is invalidated
    # each time and the step pays a cold route plus the bookkeeping
    churn_index = _filled_index(ads, use_cache=True)
    refresher = iter(range(10**9))

    def churned_step():
        n = next(refresher)
        churn_index.add(_refreshed_ad(n))
        churn_index.route(PATTERN)

    churn_rate = _steps_per_second(churned_step, 50)

    speedup = warm_rate / cold_rate
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm routing only {speedup:.1f}x cold (< {MIN_WARM_SPEEDUP}x floor)"
    )
    stats = warm_index.cache.stats
    churn_stats = churn_index.cache.stats

    rows = [
        ("cold routing (no cache)", f"{cold_rate:,.0f} steps/s", "1000 advertisements"),
        ("warm routing (cache hit)", f"{warm_rate:,.0f} steps/s",
         f"hit rate {stats.hit_rate():.3f}"),
        ("churned routing (refresh each step)", f"{churn_rate:,.0f} steps/s",
         f"{churn_stats.invalidations} scoped invalidations"),
        ("warm / cold speedup", f"{speedup:,.1f}x", f">= {MIN_WARM_SPEEDUP:.0f}x required"),
        ("churned / cold", f"{churn_rate / cold_rate:,.2f}x",
         "every step recomputes + scoped bookkeeping"),
    ]
    text = banner(
        "routing-cache",
        "repro.cache — routing cache, scoped invalidation, coalescing",
        "signature-keyed caching answers repeated queries in O(1) while "
        "churn invalidates only the entries the mutation can affect",
    ) + format_table(("regime", "throughput", "notes"), rows)
    return write_report("routing-cache", text)


def bench_routing_cold_1000(benchmark):
    index = _filled_index(_synthetic_advertisements(1000), use_cache=False)
    annotated = benchmark(index.route, PATTERN)
    assert len(annotated.all_peers()) == 500


def bench_routing_warm_1000(benchmark):
    index = _filled_index(_synthetic_advertisements(1000), use_cache=True)
    index.route(PATTERN)
    annotated = benchmark(index.route, PATTERN)
    assert len(annotated.all_peers()) == 500
    assert index.cache.stats.hits >= 1
    report()


def bench_routing_churned_1000(benchmark):
    ads = _synthetic_advertisements(1000)
    index = _filled_index(ads, use_cache=True)
    state = {"n": 0}

    def step():
        state["n"] += 1
        index.add(_refreshed_ad(state["n"]))
        return index.route(PATTERN)

    annotated = benchmark(step)
    assert len(annotated.all_peers()) == 500


def bench_cache_scoped_invalidation(benchmark):
    """Invalidation cost is scoped: departures of unannotated peers
    touch nothing."""
    ads = _synthetic_advertisements(1000)
    cache = RoutingCache([SCHEMA])
    index = RoutingIndex(SCHEMA, cache=cache)
    for advertisement in ads:
        index.add(advertisement)
    index.route(PATTERN)

    def step():
        cache.on_goodbye("S1")  # prop3 peer: annotates no cached entry
        return cache

    benchmark(step)
    assert PATTERN in cache  # the entry survived every goodbye
