"""Experiment fig3 — Figure 3: plan generation and channel deployment.

Reproduces Figure 3's query plan (unions for horizontal, join for
vertical distribution) and the channel set P1 deploys, then benchmarks
the Query-Processing Algorithm.
"""

from __future__ import annotations

from repro.core import build_plan, route_query
from repro.core.algebra import count_scans
from repro.channels.manager import ChannelManager
from repro.net import Network
from repro.workloads.paper import (
    paper_active_schemas,
    paper_query_pattern,
    paper_schema,
)

from ._common import banner, format_table, write_report

SCHEMA = paper_schema()
PATTERN = paper_query_pattern(SCHEMA)
ANNOTATED = route_query(PATTERN, paper_active_schemas(SCHEMA).values(), SCHEMA)

PAPER_PLAN = "⋈(∪(Q1@P1, Q1@P2, Q1@P4), ∪(Q2@P1, Q2@P3, Q2@P4))"


class _Sink:
    def __init__(self, peer_id):
        self.peer_id = peer_id

    def receive(self, message, network):
        pass


def _deploy_channels(plan):
    """Open one channel per distinct destination peer, as Section 2.4
    prescribes ('only one channel is of course created')."""
    network = Network()
    for peer_id in ("P1", "P2", "P3", "P4"):
        network.register(_Sink(peer_id))
    manager = ChannelManager("P1")
    destinations = sorted(plan.peers() - {"P1"})
    for destination in destinations:
        manager.open(network, destination, plan, lambda t, f: None)
    network.run()
    return destinations


def report() -> str:
    plan = build_plan(ANNOTATED)
    channels = _deploy_channels(plan)
    rows = [
        ("plan", PAPER_PLAN, plan.render()),
        ("horizontal distribution", "unions over {P1,P2,P4} / {P1,P3,P4}",
         f"union arities {[len(c.children()) for c in plan.children()]}"),
        ("vertical distribution", "one join (Q1 ⋈ Q2)", "join arity 2"),
        ("scan subqueries", "6", count_scans(plan)),
        ("channels from P1", "P2, P3, P4 (one per peer)", ", ".join(channels)),
    ]
    text = banner(
        "fig3",
        "Figure 3: query plan generation and channel deployment",
        "unions favour completeness, joins ensure correctness; one channel per contacted peer",
    ) + format_table(("item", "paper", "measured"), rows)
    return write_report("fig3", text)


def bench_plan_generation(benchmark):
    plan = benchmark(build_plan, ANNOTATED)
    assert plan.render() == PAPER_PLAN
    report()


def bench_plan_generation_wide(benchmark):
    """Planning cost with 60 annotated peers per pattern."""
    from repro.core.annotations import AnnotatedQueryPattern, PeerAnnotation

    wide = AnnotatedQueryPattern(PATTERN)
    for pattern in PATTERN:
        for i in range(60):
            wide.annotate(pattern, PeerAnnotation(f"W{i:02d}", pattern, exact=True))
    plan = benchmark(build_plan, wide)
    assert count_scans(plan) == 120
