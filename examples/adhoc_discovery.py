"""Ad-hoc SONs: interleaved routing, plan holes, and k-depth discovery.

Walks through the two mechanisms of Section 3.2 on concrete topologies:

1. **Interleaved routing/processing** (Figure 7): P1 builds a plan with
   a ``Q2@?`` hole, forwards it to the peers that can answer part of
   it; P2 — whose neighbourhood contains P5 — fills the hole, executes
   the completed plan and ships the results back.

2. **k-depth neighbourhood discovery**: when nobody in forwarding reach
   can help, the root widens its semantic neighbourhood with 2-depth /
   3-depth advertisement requests until a relevant peer is found.

Run with::

    python examples/adhoc_discovery.py
"""

from repro.core import build_plan, optimize, route_query
from repro.rdf import Graph, TYPE
from repro.rvl import ActiveSchema
from repro.systems import AdhocSystem
from repro.workloads.paper import (
    DATA,
    N1,
    PAPER_QUERY,
    adhoc_scenario,
    paper_query_pattern,
)


def figure7_walkthrough() -> None:
    print("=== Figure 7: interleaved routing and processing ===")
    scenario = adhoc_scenario()
    schema = scenario.schema
    pattern = paper_query_pattern(schema)

    # what P1 knows after pulling its neighbourhood's advertisements
    neighbour_ads = [
        ActiveSchema.from_base(scenario.bases[p], schema, p)
        for p in scenario.neighbours["P1"]
    ]
    print("P1's semantic neighbourhood:")
    for advertisement in neighbour_ads:
        print("  ", advertisement)
    annotated = route_query(pattern, neighbour_ads, schema)
    plan1 = optimize(build_plan(annotated)).result
    print("P1's partial plan (note the Q2@? holes):")
    print("  ", plan1.render())

    # run the real protocol
    system = AdhocSystem.from_scenario(adhoc_scenario())
    table = system.query("P1", PAPER_QUERY)
    print(f"answer via P2's completed plan ({len(table)} rows):")
    for binding in table.bindings():
        print("   X =", binding["X"].local_name, " Y =", binding["Y"].local_name)
    kinds = system.network.metrics.messages_by_kind
    print("partial plans forwarded:", kinds["PartialPlan"],
          "| delegation outcomes:", kinds["DelegatedResult"])


def depth_discovery_walkthrough() -> None:
    print("\n=== k-depth discovery: a provider two hops away ===")
    schema = adhoc_scenario().schema
    # chain: asker - relay - provider; the relay holds nothing relevant
    provider_base = Graph()
    for i in range(3):
        x, y, z = DATA[f"qx{i}"], DATA[f"qy{i}"], DATA[f"qz{i}"]
        provider_base.add(x, TYPE, N1.C1)
        provider_base.add(y, TYPE, N1.C2)
        provider_base.add(x, N1.prop1, y)
        provider_base.add(y, N1.prop2, z)
        provider_base.add(z, TYPE, N1.C3)

    system = AdhocSystem(schema, max_discovery_depth=3)
    system.add_peer("asker", Graph(), neighbours=("relay",))
    system.add_peer("relay", Graph(), neighbours=("asker", "provider"))
    system.add_peer("provider", provider_base, neighbours=("relay",))
    system.discover_all()

    asker = system.peers["asker"]
    print("asker's 1-depth knowledge:",
          sorted(asker.known_advertisements) or "(nothing relevant)")
    table = system.query("asker", PAPER_QUERY)
    print("after deepening, asker knows:", sorted(asker.known_advertisements))
    print(f"answer rows: {len(table)}")
    print("messages spent:", system.network.metrics.messages_total)


def main() -> None:
    figure7_walkthrough()
    depth_discovery_walkthrough()


if __name__ == "__main__":
    main()
