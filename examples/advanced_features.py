"""Advanced features: the paper's future work, running.

Demonstrates the four extension mechanisms built on top of the core
middleware, each tied to a passage of the paper:

1. **Top-N / broadcast constraints** (Section 5) — trade completeness
   for processing load;
2. **schema DHT with subsumption information** (Section 5, footnote 2)
   — O(log N) provider lookup in ad-hoc SONs;
3. **phased execution** (Section 2.5's [Ives02] alternative) — reuse
   completed subresults across replans;
4. **throughput monitoring** (Section 2.5) — replan away from stalled
   channels by watching tuple flow.

Run with::

    python examples/advanced_features.py
"""

from repro.rdf import Graph, TYPE
from repro.systems import AdhocSystem, HybridSystem
from repro.workloads.data_gen import Distribution, generate_bases
from repro.workloads.paper import DATA, N1, PAPER_QUERY, paper_peer_bases, paper_schema
from repro.workloads.query_gen import chain_query
from repro.workloads.schema_gen import generate_schema


def topn_demo() -> None:
    print("=== 1. Top-N / broadcast constraints (Section 5) ===")
    synth = generate_schema(chain_length=2, refinement_fraction=0.0, seed=1)
    peers = [f"P{i}" for i in range(8)]
    gen = generate_bases(synth, peers, Distribution.HORIZONTAL,
                         statements_per_segment=6, seed=1)
    text = chain_query(synth, 0, 2)
    for bound in (1, 3, None):
        system = HybridSystem(synth.schema)
        system.add_super_peer("SP1")
        for peer_id, graph in gen.bases.items():
            system.add_peer(peer_id, graph, "SP1")
        table = system.query("P0", text, max_peers=bound)
        label = bound if bound is not None else "unbounded"
        print(f"  max_peers={label!s:>9}: {len(table):3d} rows, "
              f"{system.network.metrics.messages_total:3d} messages")


def dht_demo() -> None:
    print("\n=== 2. Schema DHT lookup (Section 5 / footnote 2) ===")
    schema = paper_schema()
    provider = Graph()
    for i in range(3):
        x, y, z = DATA[f"vx{i}"], DATA[f"vy{i}"], DATA[f"vz{i}"]
        provider.add(x, TYPE, N1.C1)
        provider.add(y, TYPE, N1.C2)
        provider.add(x, N1.prop1, y)
        provider.add(y, N1.prop2, z)
        provider.add(z, TYPE, N1.C3)
    system = AdhocSystem(schema, use_dht=True, max_discovery_depth=1)
    # asker -- relay -- provider: the provider is invisible to 1-depth
    # neighbourhood discovery, but one DHT lookup finds it
    system.add_peer("asker", Graph(), neighbours=("relay",))
    system.add_peer("relay", Graph(), neighbours=("asker", "provider"))
    system.add_peer("provider", provider, neighbours=("relay",))
    system.discover_all()
    table = system.query("asker", PAPER_QUERY)
    print(f"  provider 2 hops away: answered {len(table)} rows "
          f"(DHT lookup hops so far: {system.dht.lookup_hops})")


def phased_demo() -> None:
    print("\n=== 3. Phased execution vs ubQL discard (Section 2.5) ===")
    for policy in ("discard", "phased"):
        system = HybridSystem(paper_schema(), failure_policy=policy)
        system.add_super_peer("SP1")
        for peer_id, graph in paper_peer_bases().items():
            system.add_peer(peer_id, graph, "SP1")
        system.run()
        system.network.fail_peer("P4")
        table = system.query("P1", PAPER_QUERY)
        subplans = system.network.metrics.messages_by_kind["SubPlanPacket"]
        print(f"  {policy:8s}: {len(table)} rows after P4 fails, "
              f"{subplans} subplans shipped")


def monitoring_demo() -> None:
    print("\n=== 4. Throughput monitoring (Section 2.5) ===")
    system = HybridSystem(paper_schema())
    system.add_super_peer("SP1")
    for peer_id, graph in paper_peer_bases().items():
        system.add_peer(peer_id, graph, "SP1")
    for peer in system.peers.values():
        peer.monitor_channels = True
        peer.monitor_interval = 5.0
    # P2 streams one row per aeon: effectively stalled, never down
    slowpoke = system.peers["P2"]
    slowpoke.stream_chunk_rows = 1
    slowpoke.stream_interval = 1e6
    table = system.query("P1", PAPER_QUERY)
    print(f"  stalled P2 detected by tuple-flow watchdog; replan "
          f"answered {len(table)} rows without it")


def main() -> None:
    topn_demo()
    dht_demo()
    phased_demo()
    monitoring_demo()


if __name__ == "__main__":
    main()
