"""An e-learning SON over a super-peer backbone.

The paper motivates SQPeer with "highly dynamic, ever-changing,
autonomous social organizations (e.g., scientific or educational
communities)" and uses an e-learning community schema as its running
setting.  This example builds such a community:

* a richer RDF/S schema — courses, lecturers, materials, topics — with
  a ``Seminar ⊑ Course`` / ``presents ⊑ teaches`` refinement;
* six institution peers with different populated fragments (one only
  publishes seminars through the refined subproperty);
* a two-super-peer backbone;
* three queries, including one answered purely through subsumption.

Run with::

    python examples/elearning_hybrid.py
"""

from repro.rdf import Graph, LITERAL_CLASS, Literal, Namespace, Schema, TYPE
from repro.systems import HybridSystem

EDU = Namespace("http://elearning.example.org/schema#")
INST = Namespace("http://elearning.example.org/data#")


def build_schema() -> Schema:
    schema = Schema(EDU, "e-learning")
    for name in ("Course", "Seminar", "Lecturer", "Material", "Topic"):
        schema.add_class(EDU[name])
    schema.add_subclass(EDU.Seminar, EDU.Course)
    schema.add_property(EDU.teaches, EDU.Lecturer, EDU.Course)
    schema.add_property(
        EDU.presents, EDU.Lecturer, EDU.Seminar, subproperty_of=EDU.teaches
    )
    schema.add_property(EDU.hasMaterial, EDU.Course, EDU.Material)
    schema.add_property(EDU.covers, EDU.Course, EDU.Topic)
    schema.add_property(EDU.title, EDU.Course, LITERAL_CLASS)
    return schema


def build_peers() -> dict:
    """Six institutions with heterogeneous coverage."""
    bases = {}

    # uni-a: full catalogue — lecturers, courses, materials
    uni_a = Graph()
    for i in range(3):
        lecturer, course = INST[f"a_lect{i}"], INST[f"a_course{i}"]
        material = INST[f"a_mat{i}"]
        uni_a.add(lecturer, TYPE, EDU.Lecturer)
        uni_a.add(course, TYPE, EDU.Course)
        uni_a.add(material, TYPE, EDU.Material)
        uni_a.add(lecturer, EDU.teaches, course)
        uni_a.add(course, EDU.hasMaterial, material)
        uni_a.add(course, EDU.title, Literal(f"Databases {i}"))
    bases["uni-a"] = uni_a

    # uni-b: teaches courses shared with uni-c's materials
    uni_b = Graph()
    for i in range(4):
        lecturer, course = INST[f"b_lect{i}"], INST[f"shared_course{i}"]
        uni_b.add(lecturer, TYPE, EDU.Lecturer)
        uni_b.add(course, TYPE, EDU.Course)
        uni_b.add(lecturer, EDU.teaches, course)
    bases["uni-b"] = uni_b

    # uni-c: provides materials for the shared courses
    uni_c = Graph()
    for i in range(4):
        course, material = INST[f"shared_course{i}"], INST[f"c_mat{i}"]
        uni_c.add(course, TYPE, EDU.Course)
        uni_c.add(material, TYPE, EDU.Material)
        uni_c.add(course, EDU.hasMaterial, material)
    bases["uni-c"] = uni_c

    # seminar-host: only publishes seminars via the refined subproperty
    host = Graph()
    for i in range(2):
        lecturer, seminar = INST[f"h_lect{i}"], INST[f"h_sem{i}"]
        material = INST[f"h_mat{i}"]
        host.add(lecturer, TYPE, EDU.Lecturer)
        host.add(seminar, TYPE, EDU.Seminar)
        host.add(material, TYPE, EDU.Material)
        host.add(lecturer, EDU.presents, seminar)
        host.add(seminar, EDU.hasMaterial, material)
    bases["seminar-host"] = host

    # topic-index: only covers() statements
    topics = Graph()
    for i in range(4):
        course, topic = INST[f"shared_course{i}"], INST[f"topic{i % 2}"]
        topics.add(course, TYPE, EDU.Course)
        topics.add(topic, TYPE, EDU.Topic)
        topics.add(course, EDU.covers, topic)
    bases["topic-index"] = topics

    # portal: no data of its own — a pure query entry point
    bases["portal"] = Graph()
    return bases


def main() -> None:
    schema = build_schema()
    system = HybridSystem(schema)
    # SP-europe is responsible for the e-learning SON; SP-america owns
    # other schemas and only forwards over the super-peer backbone
    system.add_super_peer("SP-europe")
    system.add_super_peer("SP-america", schemas=[])
    homes = {
        "uni-a": "SP-europe",
        "uni-b": "SP-europe",
        "uni-c": "SP-europe",
        "seminar-host": "SP-europe",
        "topic-index": "SP-europe",
        # the portal is clustered under SP-america: its route requests
        # are forwarded across the backbone to the responsible SP
        "portal": "SP-america",
    }
    for peer_id, graph in build_peers().items():
        system.add_peer(peer_id, graph, homes[peer_id])
    system.run()

    ns = f"USING NAMESPACE edu = &{EDU.uri}&"

    print("=== who teaches what, with materials (cross-institution join) ===")
    query = (
        "SELECT L, C FROM {L} edu:teaches {C}, {C} edu:hasMaterial {M} " + ns
    )
    table = system.query("portal", query)
    for binding in table.bindings():
        print(f"  {binding['L'].local_name:10s} teaches {binding['C'].local_name}")
    print(f"  ({len(table)} rows; uni-b x uni-c join + local chains)")

    print("\n=== seminars found through presents ⊑ teaches subsumption ===")
    query = (
        "SELECT L, S FROM {L} edu:teaches {S;edu:Seminar} " + ns
    )
    table = system.query("portal", query)
    for binding in table.bindings():
        print(f"  {binding['L'].local_name:10s} presents {binding['S'].local_name}")

    print("\n=== courses by topic (three-way distribution) ===")
    query = (
        "SELECT C, T FROM {L} edu:teaches {C}, {C} edu:covers {T} " + ns
    )
    table = system.query("portal", query)
    for binding in table.bindings():
        print(f"  {binding['C'].local_name:16s} covers {binding['T'].local_name}")

    print("\nnetwork:", system.network.metrics.summary())


if __name__ == "__main__":
    main()
