"""Quickstart: the paper's running example, end to end.

Builds the Figure 1 community schema, the four peer bases of Figure 2,
deploys them as a hybrid SON (Figure 6 style), and runs query Q —
printing each stage the middleware goes through: pattern extraction,
routing annotation, plan generation, optimisation, and the distributed
answer.

Run with::

    python examples/quickstart.py
"""

from repro.core import build_plan, optimize, route_query
from repro.systems import HybridSystem
from repro.workloads.paper import (
    PAPER_QUERY,
    paper_active_schemas,
    paper_peer_bases,
    paper_query_pattern,
    paper_schema,
)


def main() -> None:
    schema = paper_schema()
    print("community schema:", schema)
    print("query:", PAPER_QUERY)

    # 1. semantic query pattern (Section 2.1)
    pattern = paper_query_pattern(schema)
    print("\nsemantic query pattern:")
    for path_pattern in pattern:
        print("  ", path_pattern)

    # 2. routing over the peer advertisements (Section 2.3)
    advertisements = paper_active_schemas(schema)
    print("\npeer advertisements:")
    for advertisement in advertisements.values():
        print("  ", advertisement)
    annotated = route_query(pattern, advertisements.values(), schema)
    print("\nannotated query pattern:", annotated)

    # 3. plan generation + optimisation (Sections 2.4-2.5)
    plan = build_plan(annotated)
    print("\nPlan 1:", plan.render())
    trace = optimize(plan)
    for rule, optimized in list(trace)[1:]:
        print(f"after {rule}:\n  {optimized.render()}")

    # 4. distributed execution over a hybrid SON (Section 3.1)
    system = HybridSystem(schema)
    system.add_super_peer("SP1")
    for peer_id, graph in paper_peer_bases().items():
        system.add_peer(peer_id, graph, "SP1")
    table = system.query("P1", PAPER_QUERY)
    print(f"\ndistributed answer ({len(table)} rows):")
    for binding in table.bindings():
        print("  X =", binding["X"].local_name, " Y =", binding["Y"].local_name)
    print("\nnetwork:", system.network.metrics.summary())


if __name__ == "__main__":
    main()
