"""A heterogeneous SON: relational, XML and native RDF peers together.

Section 2.2's virtual scenario: peers keep their data in legacy
relational or XML stores and expose it to the SON through SWIM-style
mapping rules; their active-schemas advertise what *can* be populated.
This example wires a library-domain SON where:

* a **relational** peer stores loans in tables;
* an **XML** peer stores a catalogue document;
* a **native RDF** peer holds plain triples;

and a two-hop query joins across all three.

Run with::

    python examples/heterogeneous_peers.py
"""

from repro.rdf import Graph, Namespace, Schema, TYPE
from repro.systems import HybridSystem
from repro.wrappers import (
    ElementMapping,
    PropertyMapping,
    RelationalPeerMapping,
    RelationalStore,
    XMLElement,
    XMLPeerMapping,
    XMLStore,
)

LIB = Namespace("http://library.example.org/schema#")
RES = Namespace("http://library.example.org/resource/")


def build_schema() -> Schema:
    schema = Schema(LIB, "library")
    for name in ("Reader", "Book", "Author"):
        schema.add_class(LIB[name])
    schema.add_property(LIB.borrowed, LIB.Reader, LIB.Book)
    schema.add_property(LIB.writtenBy, LIB.Book, LIB.Author)
    return schema


def relational_peer(schema) -> Graph:
    """Loan records live in a relational table."""
    store = RelationalStore()
    loans = store.create_table("loans", ["reader", "book"])
    loans.insert("alice", "dune")
    loans.insert("bob", "hyperion")
    loans.insert("carol", "dune")
    mapping = RelationalPeerMapping(
        store,
        schema,
        [PropertyMapping("loans", "reader", "book", LIB.borrowed, RES.uri)],
    )
    print("relational peer advertises:", mapping.active_schema("loans-db"))
    return mapping.virtual_graph()


def xml_peer(schema) -> Graph:
    """The catalogue is an XML document."""
    store = XMLStore()
    catalog = XMLElement("catalog")
    for book, author in (("dune", "herbert"), ("hyperion", "simmons")):
        catalog.append(XMLElement("entry", {"book": book, "author": author}))
    store.add_document(catalog)
    mapping = XMLPeerMapping(
        store,
        schema,
        [
            ElementMapping(
                path=("catalog", "entry"),
                subject_attribute="book",
                property=LIB.writtenBy,
                uri_prefix=RES.uri,
                object_attribute="author",
            )
        ],
    )
    print("xml peer advertises:       ", mapping.active_schema("catalogue"))
    return mapping.virtual_graph()


def rdf_peer(schema) -> Graph:
    """A native RDF peer with one extra loan + catalogue entry."""
    graph = Graph()
    graph.add(RES.dave, TYPE, LIB.Reader)
    graph.add(RES.snowcrash, TYPE, LIB.Book)
    graph.add(RES.stephenson, TYPE, LIB.Author)
    graph.add(RES.dave, LIB.borrowed, RES.snowcrash)
    graph.add(RES.snowcrash, LIB.writtenBy, RES.stephenson)
    return graph


def main() -> None:
    schema = build_schema()
    system = HybridSystem(schema)
    system.add_super_peer("SP")
    system.add_peer("loans-db", relational_peer(schema), "SP")
    system.add_peer("catalogue", xml_peer(schema), "SP")
    system.add_peer("rdf-peer", rdf_peer(schema), "SP")

    query = (
        "SELECT R, A FROM {R} lib:borrowed {B}, {B} lib:writtenBy {A} "
        f"USING NAMESPACE lib = &{LIB.uri}&"
    )
    print("\nquery:", query)
    table = system.query("rdf-peer", query)
    print(f"\nreaders and the authors they are reading ({len(table)} rows):")
    for binding in table.bindings():
        print(f"   {binding['R'].local_name:8s} reads {binding['A'].local_name}")
    print("\nnetwork:", system.network.metrics.summary())


if __name__ == "__main__":
    main()
