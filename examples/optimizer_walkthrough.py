"""Compile-time optimisation and shipping policies, step by step.

Reproduces the paper's Section 2.5 narrative on the running example:

* Figure 4 — Plan 1 → Plan 2 (distribution of joins and unions) →
  Plan 3 (Transformation Rules 1 and 2), with cost-model numbers for
  each stage;
* Figure 5 — how link costs, peer load and result sizes flip the
  decision between data, query and hybrid shipping.

Run with::

    python examples/optimizer_walkthrough.py
"""

from repro.core import (
    CostModel,
    Statistics,
    assign_sites,
    build_plan,
    compare_policies,
    optimize,
    route_query,
)
from repro.core.algebra import Join, Scan, count_scans
from repro.core.shipping import ShippingPolicy
from repro.workloads.paper import (
    N1,
    paper_active_schemas,
    paper_query_pattern,
    paper_schema,
)


def figure4_walkthrough() -> None:
    print("=== Figure 4: algebraic optimisation ===")
    schema = paper_schema()
    pattern = paper_query_pattern(schema)
    annotated = route_query(pattern, paper_active_schemas(schema).values(), schema)
    plan1 = build_plan(annotated)

    stats = Statistics(default_cardinality=100, join_selectivity=0.001)
    for peer in ("P1", "P2", "P3", "P4"):
        stats.set_cardinality(peer, N1.prop1, 80)
        stats.set_cardinality(peer, N1.prop2, 80)
        stats.set_cardinality(peer, N1.prop4, 30)
    model = CostModel(stats)

    trace = optimize(plan1, model)
    names = {"input": "Plan 1", "distribute joins/unions": "Plan 2",
             "merge same-peer (TR1/TR2)": "Plan 3"}
    for rule, plan in trace:
        print(f"\n{names.get(rule, rule)}  ({rule})")
        print("  ", plan.render())
        print(f"   subplans: {count_scans(plan)}   "
              f"max intermediate rows: {model.max_intermediate_rows(plan):.0f}")


def figure5_walkthrough() -> None:
    print("\n=== Figure 5: data vs query shipping ===")
    schema = paper_schema()
    q1, q2 = paper_query_pattern(schema).patterns
    plan = Join([Scan((q1,), "P2"), Scan((q2,), "P3")])
    print("plan:", plan.render(), " coordinator: P1")

    scenarios = {
        "balanced network": Statistics(default_cardinality=200),
        "P1 links slow, P2-P3 fast": None,
        "P2/P3 heavily loaded": None,
        "huge intermediate results": None,
    }
    slow = Statistics(default_cardinality=200, join_selectivity=0.0001)
    slow.set_link_cost("P1", "P2", 20.0)
    slow.set_link_cost("P1", "P3", 20.0)
    slow.set_link_cost("P2", "P3", 0.01)
    scenarios["P1 links slow, P2-P3 fast"] = slow

    loaded = Statistics(default_cardinality=20)
    loaded.set_load("P2", load=100, slots=1)
    loaded.set_load("P3", load=100, slots=1)
    scenarios["P2/P3 heavily loaded"] = loaded

    huge = Statistics(default_cardinality=10000, join_selectivity=0.00001)
    huge.set_link_cost("P1", "P2", 5.0)
    huge.set_link_cost("P1", "P3", 5.0)
    huge.set_link_cost("P2", "P3", 0.01)
    scenarios["huge intermediate results"] = huge

    for name, stats in scenarios.items():
        model = CostModel(stats)
        costs = compare_policies(plan, "P1", model)
        assignment = assign_sites(plan, "P1", model)
        print(f"\n  {name}:")
        for policy in (ShippingPolicy.DATA, ShippingPolicy.QUERY):
            print(f"    {policy.value:6s} shipping cost: {costs[policy].total:12.1f}")
        print(f"    chosen: {assignment.policy().value} "
              f"(join executes at {assignment.site_of(())})")


def main() -> None:
    figure4_walkthrough()
    figure5_walkthrough()


if __name__ == "__main__":
    main()
