"""Tests for the launcher-side ClusterScraper: endpoint discovery, the
durable timeline, down-peer alerts, and crash diagnostic bundles."""

import asyncio
import json
import threading

import pytest

from repro.metrics import MetricSet
from repro.obs import render_prometheus
from repro.obs.telemetry import (
    ClusterScraper,
    SLORule,
    TelemetryServer,
    discover_endpoints,
    read_timeline,
    write_diagnostic_bundle,
    write_endpoint_file,
)


class TestEndpointFiles:
    def test_round_trip(self, tmp_path):
        write_endpoint_file(tmp_path, "P1", "127.0.0.1", 4100, role="peer")
        write_endpoint_file(tmp_path, "SP1", "127.0.0.1", 4101)
        assert discover_endpoints(tmp_path) == {
            "P1": ("127.0.0.1", 4100),
            "SP1": ("127.0.0.1", 4101),
        }

    def test_half_written_file_skipped(self, tmp_path):
        write_endpoint_file(tmp_path, "P1", "127.0.0.1", 4100)
        (tmp_path / "P2.endpoint.json").write_text('{"node_id": "P2", "ho')
        assert list(discover_endpoints(tmp_path)) == ["P1"]

    def test_empty_dir(self, tmp_path):
        assert discover_endpoints(tmp_path) == {}


@pytest.fixture()
def live_peer(tmp_path):
    """One real telemetry endpoint (threaded loop) plus one dead one,
    both advertised via endpoint files in ``tmp_path``."""
    metrics = MetricSet()
    for i in range(4):
        metrics.query_started(f"q{i}", time=float(i))
        metrics.query_finished(f"q{i}", time=float(i) + 10.0)

    def metrics_handler():
        return "text/plain", render_prometheus(metrics, const_labels={"peer_id": "P1"})

    def healthz_handler():
        return "application/json", json.dumps(
            {"status": "ok", "node_id": "P1", "role": "peer", "inflight_queries": 2}
        )

    loop = asyncio.new_event_loop()
    server = TelemetryServer({"/metrics": metrics_handler, "/healthz": healthz_handler})
    host, port = server.start(loop)
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    write_endpoint_file(tmp_path, "P1", host, port)
    # P2's endpoint file points at a port nobody listens on
    import socket

    dead = socket.socket()
    dead.bind(("127.0.0.1", 0))
    dead_port = dead.getsockname()[1]
    dead.close()
    write_endpoint_file(tmp_path, "P2", "127.0.0.1", dead_port)
    try:
        yield tmp_path, metrics
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5.0)
        server.close(loop)
        loop.close()


class TestScrapeLoop:
    def availability_rule(self):
        return (
            SLORule(
                "availability", "availability", "<", 0.75,
                window=60.0, for_samples=1,
            ),
        )

    def test_scrape_once_writes_samples_rollup_and_alert(self, live_peer):
        outdir, _ = live_peer
        clock = iter([10.0, 20.0, 30.0])
        scraper = ClusterScraper(
            outdir, clock=lambda: next(clock), rules=self.availability_rule()
        )
        rollup = scraper.scrape_once()
        scraper.close()
        assert rollup["peers_up"] == 1
        assert rollup["peers"] == 2
        assert rollup["availability"] == 0.5
        # P2 being down trips the availability SLO on the first round
        assert [a["rule"] for a in rollup["alerts"]] == ["availability"]
        assert rollup["alerts"][0]["state"] == "firing"

        records = read_timeline(outdir / "timeline.jsonl")
        kinds = [r["kind"] for r in records]
        assert kinds == ["sample", "sample", "rollup", "alert"]
        by_peer = {r["peer"]: r for r in records if r["kind"] == "sample"}
        assert by_peer["P1"]["up"] is True
        assert by_peer["P1"]["counters"]["queries_finished"] == 4.0
        assert by_peer["P1"]["inflight"] == 2
        assert by_peer["P2"]["up"] is False

    def test_health_tracks_both_peers(self, live_peer):
        outdir, _ = live_peer
        scraper = ClusterScraper(
            outdir, clock=lambda: 5.0, rules=self.availability_rule(),
            timeline=None,
        )
        scraper.scrape_once()
        scraper.close()
        assert scraper.health["P1"]["status"] == "ok"
        assert scraper.health["P2"]["status"] == "down"
        assert scraper.scrape_failures == 1

    def test_summary_digest(self, live_peer):
        outdir, _ = live_peer
        clock = iter([10.0, 20.0])
        scraper = ClusterScraper(
            outdir, clock=lambda: next(clock), rules=self.availability_rule(),
            timeline=None,
        )
        scraper.scrape_once()
        scraper.scrape_once()
        scraper.close()
        summary = scraper.summary()
        assert summary["rounds"] == 2
        assert summary["scrape_failures"] == 2
        assert summary["rollup"]["availability"] == 0.5
        assert summary["active_alerts"][0]["rule"] == "availability"
        # firing fired once; the second round is not a transition
        assert len(summary["alerts"]) == 1


class TestTimelineDurability:
    def test_torn_final_line_skipped(self, tmp_path):
        path = tmp_path / "timeline.jsonl"
        path.write_text(
            json.dumps({"kind": "rollup", "t": 1.0}) + "\n"
            + json.dumps({"kind": "sample", "peer": "P1", "t": 1.0}) + "\n"
            + '{"kind": "rollup", "t": 2.0, "avail'  # SIGKILL mid-write
        )
        records = read_timeline(path)
        assert [r["kind"] for r in records] == ["rollup", "sample"]

    def test_missing_file_is_empty(self, tmp_path):
        assert read_timeline(tmp_path / "nope.jsonl") == []

    def test_append_survives_reopening(self, tmp_path):
        for round_no in range(2):
            scraper = ClusterScraper(tmp_path, clock=lambda: float(round_no))
            scraper._append_timeline({"kind": "rollup", "t": float(round_no)})
            scraper.close()
        assert len(read_timeline(tmp_path / "timeline.jsonl")) == 2


class TestDiagnosticBundle:
    def test_bundle_collects_node_artifacts(self, tmp_path, live_peer):
        outdir, _ = live_peer
        (outdir / "P2.events.jsonl").write_text('{"kind": "crash"}\n')
        (outdir / "P2.slow.q7.json").write_text('{"query": "q7"}')
        scraper = ClusterScraper(
            outdir, clock=lambda: 1.0, timeline=None,
            rules=(SLORule("availability", "availability", "<", 0.75,
                           for_samples=1),),
        )
        scraper.scrape_once()
        bundle = write_diagnostic_bundle(
            outdir, "crash-P2", reason="peer P2 exited 137",
            node_ids=("P2",), scraper=scraper, details={"signal": 9},
        )
        scraper.close()
        manifest = json.loads((bundle / "manifest.json").read_text())
        assert manifest["schema"] == "repro.obs/bundle-v1"
        assert manifest["reason"] == "peer P2 exited 137"
        assert manifest["details"] == {"signal": 9}
        assert manifest["health"]["P2"]["status"] == "down"
        assert manifest["active_alerts"][0]["rule"] == "availability"
        assert sorted(manifest["files"]) == [
            "P2.endpoint.json", "P2.events.jsonl", "P2.slow.q7.json",
        ]
        for name in manifest["files"]:
            assert (bundle / name).exists()

    def test_bundle_without_scraper(self, tmp_path):
        bundle = write_diagnostic_bundle(tmp_path, "trip", reason="breaker")
        manifest = json.loads((bundle / "manifest.json").read_text())
        assert manifest["files"] == []
        assert "health" not in manifest
