"""The crash-restart supervisor: backoff, storms, operator intent."""

import pytest

from repro.deploy import RestartBackoff, Supervisor


class FakeProcess:
    def __init__(self, alive=True):
        self.alive = alive

    def poll(self):
        return None if self.alive else -9

    def die(self):
        self.alive = False

    def revive(self):
        self.alive = True


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def harness():
    clock = FakeClock()
    processes = {"P1": FakeProcess(), "P2": FakeProcess()}
    respawned = []

    def respawn(node_id):
        respawned.append(node_id)
        processes[node_id].revive()

    supervisor = Supervisor(
        processes, respawn, backoff=RestartBackoff(base=1.0, factor=2.0,
                                                   max_delay=8.0),
        max_restarts=3, window=60.0, clock=clock,
    )
    return clock, processes, respawned, supervisor


class TestBackoff:
    def test_delays_grow_exponentially_to_the_cap(self):
        backoff = RestartBackoff(base=0.5, factor=2.0, max_delay=4.0)
        assert [backoff.delay(a) for a in range(5)] == [0.5, 1.0, 2.0, 4.0, 4.0]

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            RestartBackoff(base=2.0, max_delay=1.0)


class TestSupervisor:
    def test_alive_cluster_needs_nothing(self, harness):
        clock, processes, respawned, supervisor = harness
        assert supervisor.tick() == []
        assert respawned == []

    def test_dead_process_restarts_after_backoff(self, harness):
        clock, processes, respawned, supervisor = harness
        processes["P2"].die()
        assert supervisor.tick() == []  # first sighting only schedules
        clock.advance(0.5)
        assert supervisor.tick() == []  # backoff not elapsed
        clock.advance(0.6)
        assert supervisor.tick() == ["P2"]
        assert respawned == ["P2"]
        assert processes["P2"].alive

    def test_expected_down_is_left_alone(self, harness):
        clock, processes, respawned, supervisor = harness
        supervisor.expect_down("P2")
        processes["P2"].die()
        clock.advance(100.0)
        assert supervisor.tick() == []
        supervisor.resume("P2")
        supervisor.tick()          # schedules
        clock.advance(2.0)
        assert supervisor.tick() == ["P2"]

    def test_backoff_widens_across_a_crash_loop(self, harness):
        clock, processes, respawned, supervisor = harness

        def restart_delay():
            processes["P2"].die()
            supervisor.tick()  # schedule
            start = clock.now
            while not processes["P2"].alive:
                clock.advance(0.25)
                supervisor.tick()
            return clock.now - start

        first = restart_delay()
        second = restart_delay()
        assert second > first

    def test_restart_storm_trips_the_breaker(self, harness):
        clock, processes, respawned, supervisor = harness
        for _ in range(3):  # max_restarts within the window
            processes["P2"].die()
            supervisor.tick()
            clock.advance(8.5)  # past any backoff
            supervisor.tick()
        assert respawned.count("P2") == 3
        processes["P2"].die()
        clock.advance(8.5)
        supervisor.tick()
        clock.advance(8.5)
        assert supervisor.tick() == []
        assert "P2" in supervisor.tripped
        assert respawned.count("P2") == 3  # given up

    def test_quiet_window_forgives_history(self, harness):
        clock, processes, respawned, supervisor = harness
        for _ in range(2):
            processes["P2"].die()
            supervisor.tick()
            clock.advance(8.5)
            supervisor.tick()
        # a full quiet window resets the attempt and history counters
        clock.advance(61.0)
        supervisor.tick()
        processes["P2"].die()
        supervisor.tick()
        clock.advance(1.1)  # base delay again, not the widened one
        assert supervisor.tick() == ["P2"]
        assert "P2" not in supervisor.tripped

    def test_callbacks_fire_on_restart_and_trip(self):
        clock = FakeClock()
        processes = {"P2": FakeProcess()}
        restarts, trips = [], []
        supervisor = Supervisor(
            processes, lambda node_id: processes[node_id].revive(),
            backoff=RestartBackoff(base=1.0, factor=2.0, max_delay=8.0),
            max_restarts=2, window=60.0, clock=clock,
            on_restart=lambda node_id, attempt: restarts.append((node_id, attempt)),
            on_trip=lambda node_id, total: trips.append((node_id, total)),
        )
        for _ in range(2):
            processes["P2"].die()
            supervisor.tick()
            clock.advance(8.5)
            supervisor.tick()
        assert restarts == [("P2", 1), ("P2", 2)]
        assert trips == []
        processes["P2"].die()
        supervisor.tick()
        clock.advance(8.5)
        supervisor.tick()
        # the breaker announces itself exactly once, with the totals
        assert trips == [("P2", 2)]
        clock.advance(8.5)
        supervisor.tick()
        assert trips == [("P2", 2)]

    def test_totals_are_per_node(self, harness):
        clock, processes, respawned, supervisor = harness
        processes["P1"].die()
        processes["P2"].die()
        supervisor.tick()
        clock.advance(1.5)
        assert set(supervisor.tick()) == {"P1", "P2"}
        assert supervisor.restart_totals == {"P1": 1, "P2": 1}
