"""Tests for the per-peer telemetry HTTP server and its scrape client.

The server normally runs on a live node's transport event loop; here it
gets a dedicated loop on a background thread so the synchronous
:func:`scrape` client can hit it from the test thread, exactly as the
launcher's scraper hits a node from outside its process.
"""

import asyncio
import json
import threading

import pytest

from repro.errors import NetworkError
from repro.metrics import MetricSet
from repro.obs import render_prometheus
from repro.obs.telemetry import (
    TelemetryServer,
    parse_exposition,
    scrape,
    scrape_json,
)


@pytest.fixture()
def served():
    """A TelemetryServer bound on a background-thread event loop."""
    metrics = MetricSet()
    metrics.record_message("data", "P1", "SP1", size=256)
    metrics.query_started("q1", time=0.0)
    metrics.query_finished("q1", time=12.5)

    def metrics_handler():
        return "text/plain; version=0.0.4", render_prometheus(
            metrics, const_labels={"peer_id": "P1"}
        )

    def healthz_handler():
        return "application/json", json.dumps(
            {"status": "ok", "node_id": "P1", "role": "peer", "inflight_queries": 0}
        )

    def broken_handler():
        raise RuntimeError("gauge exploded")

    loop = asyncio.new_event_loop()
    server = TelemetryServer(
        {
            "/metrics": metrics_handler,
            "/healthz": healthz_handler,
            "/broken": broken_handler,
        }
    )
    host, port = server.start(loop)
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    try:
        yield server, host, port
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5.0)
        server.close(loop)
        loop.close()


class TestServer:
    def test_metrics_returns_parseable_exposition(self, served):
        server, host, port = served
        body = scrape(host, port, "/metrics")
        samples = parse_exposition(body)
        by_name = {name: value for name, labels, value in samples}
        assert by_name["repro_messages_total"] == 1.0
        assert all(
            labels["peer_id"] == "P1" for _, labels, _ in samples
        )
        assert server.requests_served == 1

    def test_healthz_json(self, served):
        _, host, port = served
        health = scrape_json(host, port, "/healthz")
        assert health["status"] == "ok"
        assert health["node_id"] == "P1"

    def test_unknown_path_is_404_listing_routes(self, served):
        _, host, port = served
        with pytest.raises(NetworkError) as err:
            scrape(host, port, "/nope")
        assert "404" in str(err.value)

    def test_non_get_is_405(self, served):
        import socket

        _, host, port = served
        with socket.create_connection((host, port), timeout=2.0) as sock:
            sock.sendall(b"POST /metrics HTTP/1.0\r\n\r\n")
            response = b""
            while chunk := sock.recv(4096):
                response += chunk
        assert b"405" in response.split(b"\r\n", 1)[0]

    def test_broken_handler_is_500_not_a_crash(self, served):
        server, host, port = served
        with pytest.raises(NetworkError) as err:
            scrape(host, port, "/broken")
        assert "500" in str(err.value)
        # server survives and keeps answering
        assert scrape_json(host, port, "/healthz")["status"] == "ok"

    def test_query_string_ignored_for_routing(self, served):
        _, host, port = served
        assert scrape_json(host, port, "/healthz?verbose=1")["status"] == "ok"


class TestScrapeClient:
    def test_dead_port_raises_network_error(self):
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here any more
        with pytest.raises(NetworkError):
            scrape("127.0.0.1", port, "/metrics", timeout=0.5)
