"""Tests for RVL view parsing and materialisation."""

import pytest

from repro.errors import MappingError, ParseError, SchemaError
from repro.rdf import Graph, Namespace, TYPE
from repro.rvl import parse_view
from repro.rvl.view import ViewAtom
from repro.workloads.paper import N1, PAPER_VIEW, paper_schema

DATA = Namespace("http://d/")
NS = f"USING NAMESPACE n1 = &{N1.uri}&"


@pytest.fixture
def schema():
    return paper_schema()


class TestParsing:
    def test_paper_view(self):
        view = parse_view(PAPER_VIEW)
        assert len(view.atoms) == 3
        assert view.atoms[0].name == "n1:C5"
        assert view.atoms[2].arguments == ("X", "Y")
        assert len(view.paths) == 1

    def test_create_keyword_optional(self):
        text = f"CREATE VIEW n1:C1(X) FROM {{X}} n1:prop1 {{Y}} {NS}"
        assert len(parse_view(text).atoms) == 1

    def test_where_clause(self):
        text = (
            f'VIEW n1:C1(X) FROM {{X}} n1:prop1 {{Y}} WHERE X != Y {NS}'
        )
        view = parse_view(text)
        assert len(view.conditions) == 1

    def test_atom_arity_validated(self):
        with pytest.raises((ParseError, SchemaError)):
            parse_view(f"VIEW n1:C1(X, Y, Z) FROM {{X}} n1:prop1 {{Y}} {NS}")

    def test_unbound_atom_argument_rejected(self):
        with pytest.raises(ParseError):
            parse_view(f"VIEW n1:C1(W) FROM {{X}} n1:prop1 {{Y}} {NS}")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse_view("VIEW n1:C1(X)")

    def test_str_roundtrip(self):
        view = parse_view(PAPER_VIEW)
        again = parse_view(str(view))
        assert again.atoms == view.atoms
        assert again.paths == view.paths


class TestHeadResolution:
    def test_head_terms(self, schema):
        view = parse_view(PAPER_VIEW)
        classes, properties = view.head_terms(schema)
        assert classes == {N1.C5: "X", N1.C6: "Y"}
        assert properties == {N1.prop4: ("X", "Y")}

    def test_undeclared_class_rejected(self, schema):
        view = parse_view(f"VIEW n1:Nope(X) FROM {{X}} n1:prop1 {{Y}} {NS}")
        with pytest.raises(MappingError):
            view.head_terms(schema)

    def test_undeclared_property_rejected(self, schema):
        view = parse_view(f"VIEW n1:nope(X, Y) FROM {{X}} n1:prop1 {{Y}} {NS}")
        with pytest.raises(MappingError):
            view.head_terms(schema)

    def test_class_atom_must_not_name_property(self, schema):
        view = parse_view(f"VIEW n1:prop1(X) FROM {{X}} n1:prop1 {{Y}} {NS}")
        with pytest.raises(MappingError):
            view.head_terms(schema)


class TestMaterialisation:
    def test_populates_head(self, schema):
        source = Graph()
        source.add(DATA.a, N1.prop4, DATA.b)
        view = parse_view(PAPER_VIEW)
        out = view.materialize(source, schema)
        assert out.count(DATA.a, TYPE, N1.C5) == 1
        assert out.count(DATA.b, TYPE, N1.C6) == 1
        assert out.count(DATA.a, N1.prop4, DATA.b) == 1

    def test_empty_source_empty_view(self, schema):
        view = parse_view(PAPER_VIEW)
        assert len(view.materialize(Graph(), schema)) == 0

    def test_where_clause_filters(self, schema):
        source = Graph()
        source.add(DATA.a, N1.prop4, DATA.b)
        source.add(DATA.c, N1.prop4, DATA.c)
        text = (
            f"VIEW n1:prop4(X, Y) FROM {{X}} n1:prop4 {{Y}} WHERE X != Y {NS}"
        )
        out = parse_view(text).materialize(source, schema)
        assert out.count(DATA.a, N1.prop4, DATA.b) == 1
        assert out.count(DATA.c, N1.prop4, DATA.c) == 0

    def test_body_join(self, schema):
        source = Graph()
        source.add(DATA.a, N1.prop1, DATA.b)
        source.add(DATA.b, N1.prop2, DATA.c)
        source.add(DATA.q, N1.prop1, DATA.lonely)
        text = (
            f"VIEW n1:C1(X) FROM {{X}} n1:prop1 {{Y}}, {{Y}} n1:prop2 {{Z}} {NS}"
        )
        out = parse_view(text).materialize(source, schema)
        assert set(out.instances_of(N1.C1)) == {DATA.a}


class TestViewAtom:
    def test_is_class_atom(self):
        assert ViewAtom("n1:C1", ("X",)).is_class_atom
        assert not ViewAtom("n1:p", ("X", "Y")).is_class_atom

    def test_bad_arity_rejected(self):
        with pytest.raises(SchemaError):
            ViewAtom("n1:C1", ())
