"""Tests for active-schema advertisements (paper Section 2.2)."""

import pytest

from repro.errors import SchemaError
from repro.rdf import Graph, Namespace, TYPE
from repro.rql.pattern import SchemaPath
from repro.rvl import ActiveSchema, parse_view
from repro.workloads.paper import N1, PAPER_VIEW, paper_schema

DATA = Namespace("http://d/")


@pytest.fixture
def schema():
    return paper_schema()


class TestFromView:
    def test_paper_view_footprint(self, schema):
        advertisement = ActiveSchema.from_view(parse_view(PAPER_VIEW), schema, "P4")
        assert advertisement.peer_id == "P4"
        assert advertisement.paths == frozenset(
            {SchemaPath(N1.C5, N1.prop4, N1.C6)}
        )
        assert N1.C5 in advertisement.classes
        assert N1.C6 in advertisement.classes

    def test_covers_property(self, schema):
        advertisement = ActiveSchema.from_view(parse_view(PAPER_VIEW), schema, "P4")
        assert advertisement.covers_property(N1.prop4)
        assert not advertisement.covers_property(N1.prop1)


class TestFromBase:
    def test_materialised_scan(self, schema):
        g = Graph()
        g.add(DATA.a, N1.prop1, DATA.b)
        g.add(DATA.c, TYPE, N1.C3)
        advertisement = ActiveSchema.from_base(g, schema, "P1")
        assert advertisement.covers_property(N1.prop1)
        assert not advertisement.covers_property(N1.prop2)
        assert N1.C3 in advertisement.classes

    def test_empty_base_empty_advertisement(self, schema):
        advertisement = ActiveSchema.from_base(Graph(), schema, "P")
        assert advertisement.is_empty()

    def test_unknown_properties_ignored(self, schema):
        g = Graph()
        g.add(DATA.a, DATA.oddball, DATA.b)
        advertisement = ActiveSchema.from_base(g, schema, "P")
        assert advertisement.is_empty()


class TestMerge:
    def test_merge_unions_paths(self, schema):
        uri = schema.namespace.uri
        a = ActiveSchema(uri, [SchemaPath(N1.C1, N1.prop1, N1.C2)], peer_id="P")
        b = ActiveSchema(uri, [SchemaPath(N1.C2, N1.prop2, N1.C3)], peer_id="P")
        merged = a.merge(b)
        assert len(merged) == 2
        assert merged.peer_id == "P"

    def test_merge_different_schema_rejected(self, schema):
        a = ActiveSchema("http://one#", peer_id="P")
        b = ActiveSchema("http://two#", peer_id="P")
        with pytest.raises(SchemaError):
            a.merge(b)


class TestWireFormat:
    def test_roundtrip(self, schema):
        original = ActiveSchema.from_view(parse_view(PAPER_VIEW), schema, "P4")
        rebuilt = ActiveSchema.from_dict(original.to_dict())
        assert rebuilt == original
        assert rebuilt.peer_id == "P4"

    def test_size_grows_with_paths(self, schema):
        uri = schema.namespace.uri
        small = ActiveSchema(uri, [SchemaPath(N1.C1, N1.prop1, N1.C2)], peer_id="P")
        big = small.merge(
            ActiveSchema(uri, [SchemaPath(N1.C2, N1.prop2, N1.C3)], peer_id="P")
        )
        assert big.size_bytes() > small.size_bytes()

    def test_equality_and_hash(self, schema):
        uri = schema.namespace.uri
        a = ActiveSchema(uri, [SchemaPath(N1.C1, N1.prop1, N1.C2)])
        b = ActiveSchema(uri, [SchemaPath(N1.C1, N1.prop1, N1.C2)])
        assert a == b
        assert len({a, b}) == 1
