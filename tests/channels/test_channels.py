"""Tests for the channel construct and its manager."""

import pytest

from repro.channels import (
    Channel,
    ChannelManager,
    ChannelState,
    DataPacket,
    SubPlanPacket,
)
from repro.core.algebra import Scan
from repro.errors import ChannelError
from repro.net import Message, Network
from repro.rql.bindings import BindingTable
from repro.workloads.paper import paper_query_pattern, paper_schema


class _Sink:
    """A registered node that records deliveries."""

    def __init__(self, peer_id):
        self.peer_id = peer_id
        self.received = []

    def receive(self, message, network):
        self.received.append(message)


@pytest.fixture
def scan():
    return Scan((paper_query_pattern(paper_schema()).root,), "P2")


@pytest.fixture
def wired():
    network = Network()
    root, dest = _Sink("P1"), _Sink("P2")
    network.register(root)
    network.register(dest)
    return network, root, dest


class TestChannel:
    def test_initial_state_open(self, scan):
        channel = Channel("P1#1", "P1", "P2", scan)
        assert channel.is_open
        assert channel.state is ChannelState.OPEN

    def test_close_only_from_open(self, scan):
        channel = Channel("P1#1", "P1", "P2", scan)
        channel.fail()
        channel.close()
        assert channel.state is ChannelState.FAILED

    def test_tuples_accumulate(self, scan):
        channel = Channel("P1#1", "P1", "P2", scan)
        channel.record_tuples(3)
        channel.record_tuples(4)
        assert channel.tuples_received == 7


class TestManager:
    def test_open_sends_subplan(self, wired, scan):
        network, root, dest = wired
        manager = ChannelManager("P1")
        results = []
        channel = manager.open(network, "P2", scan, lambda t, f: results.append((t, f)))
        network.run()
        assert channel.channel_id == "P1#1"
        assert len(dest.received) == 1
        packet = dest.received[0].payload
        assert isinstance(packet, SubPlanPacket)
        assert packet.channel_id == "P1#1"

    def test_ids_unique(self, wired, scan):
        network, _, _ = wired
        manager = ChannelManager("P1")
        c1 = manager.open(network, "P2", scan, lambda t, f: None)
        c2 = manager.open(network, "P2", scan, lambda t, f: None)
        assert c1.channel_id != c2.channel_id

    def test_final_data_invokes_callback_and_closes(self, wired, scan):
        network, _, _ = wired
        manager = ChannelManager("P1")
        results = []
        channel = manager.open(network, "P2", scan, lambda t, f: results.append((t, f)))
        table = BindingTable(("X",))
        manager.on_data(DataPacket(channel.channel_id, table, final=True))
        assert results == [(table, None)]
        assert channel.state is ChannelState.CLOSED

    def test_failure_packet_reports_peer(self, wired, scan):
        network, _, _ = wired
        manager = ChannelManager("P1")
        results = []
        channel = manager.open(network, "P2", scan, lambda t, f: results.append((t, f)))
        manager.on_data(
            DataPacket(channel.channel_id, BindingTable(()), failed_peer="P9")
        )
        assert results == [(None, "P9")]
        assert channel.state is ChannelState.FAILED

    def test_transport_failure(self, wired, scan):
        network, _, _ = wired
        manager = ChannelManager("P1")
        results = []
        channel = manager.open(network, "P2", scan, lambda t, f: results.append((t, f)))
        manager.on_failure(channel.channel_id)
        assert results == [(None, "P2")]

    def test_discard_suppresses_callback(self, wired, scan):
        network, _, _ = wired
        manager = ChannelManager("P1")
        results = []
        channel = manager.open(network, "P2", scan, lambda t, f: results.append((t, f)))
        manager.discard(channel.channel_id)
        manager.on_data(DataPacket(channel.channel_id, BindingTable(()), final=True))
        assert results == []

    def test_discard_all_counts_open(self, wired, scan):
        network, _, _ = wired
        manager = ChannelManager("P1")
        manager.open(network, "P2", scan, lambda t, f: None)
        manager.open(network, "P2", scan, lambda t, f: None)
        assert manager.discard_all() == 2
        assert manager.open_channels() == {}

    def test_late_packet_for_unknown_channel_dropped(self):
        manager = ChannelManager("P1")
        manager.on_data(DataPacket("P1#99", BindingTable(()), final=True))  # no raise

    def test_unknown_channel_lookup_raises(self):
        with pytest.raises(ChannelError):
            ChannelManager("P1").channel("nope")

    def test_packet_sizes_positive(self, scan):
        assert SubPlanPacket("c", scan).size_bytes() > 0
        assert DataPacket("c", BindingTable(("X",))).size_bytes() > 0
