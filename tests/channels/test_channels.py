"""Tests for the channel construct and its manager."""

import pytest

from repro.channels import (
    Channel,
    ChannelManager,
    ChannelState,
    DataPacket,
    SubPlanPacket,
)
from repro.core.algebra import Scan
from repro.errors import ChannelError
from repro.net import Message, Network
from repro.rql.bindings import BindingTable
from repro.workloads.paper import paper_query_pattern, paper_schema


class _Sink:
    """A registered node that records deliveries."""

    def __init__(self, peer_id):
        self.peer_id = peer_id
        self.received = []

    def receive(self, message, network):
        self.received.append(message)


@pytest.fixture
def scan():
    return Scan((paper_query_pattern(paper_schema()).root,), "P2")


@pytest.fixture
def wired():
    network = Network()
    root, dest = _Sink("P1"), _Sink("P2")
    network.register(root)
    network.register(dest)
    return network, root, dest


class TestChannel:
    def test_initial_state_open(self, scan):
        channel = Channel("P1#1", "P1", "P2", scan)
        assert channel.is_open
        assert channel.state is ChannelState.OPEN

    def test_close_only_from_open(self, scan):
        channel = Channel("P1#1", "P1", "P2", scan)
        channel.fail()
        channel.close()
        assert channel.state is ChannelState.FAILED

    def test_tuples_accumulate(self, scan):
        channel = Channel("P1#1", "P1", "P2", scan)
        channel.record_tuples(3)
        channel.record_tuples(4)
        assert channel.tuples_received == 7


class TestManager:
    def test_open_sends_subplan(self, wired, scan):
        network, root, dest = wired
        manager = ChannelManager("P1")
        results = []
        channel = manager.open(network, "P2", scan, lambda t, f: results.append((t, f)))
        network.run()
        assert channel.channel_id == "P1#1"
        assert len(dest.received) == 1
        packet = dest.received[0].payload
        assert isinstance(packet, SubPlanPacket)
        assert packet.channel_id == "P1#1"

    def test_ids_unique(self, wired, scan):
        network, _, _ = wired
        manager = ChannelManager("P1")
        c1 = manager.open(network, "P2", scan, lambda t, f: None)
        c2 = manager.open(network, "P2", scan, lambda t, f: None)
        assert c1.channel_id != c2.channel_id

    def test_final_data_invokes_callback_and_closes(self, wired, scan):
        network, _, _ = wired
        manager = ChannelManager("P1")
        results = []
        channel = manager.open(network, "P2", scan, lambda t, f: results.append((t, f)))
        table = BindingTable(("X",))
        manager.on_data(DataPacket(channel.channel_id, table, final=True))
        assert results == [(table, None)]
        assert channel.state is ChannelState.CLOSED

    def test_failure_packet_reports_peer(self, wired, scan):
        network, _, _ = wired
        manager = ChannelManager("P1")
        results = []
        channel = manager.open(network, "P2", scan, lambda t, f: results.append((t, f)))
        manager.on_data(
            DataPacket(channel.channel_id, BindingTable(()), failed_peer="P9")
        )
        assert results == [(None, "P9")]
        assert channel.state is ChannelState.FAILED

    def test_transport_failure(self, wired, scan):
        network, _, _ = wired
        manager = ChannelManager("P1")
        results = []
        channel = manager.open(network, "P2", scan, lambda t, f: results.append((t, f)))
        manager.on_failure(channel.channel_id)
        assert results == [(None, "P2")]

    def test_discard_suppresses_callback(self, wired, scan):
        network, _, _ = wired
        manager = ChannelManager("P1")
        results = []
        channel = manager.open(network, "P2", scan, lambda t, f: results.append((t, f)))
        manager.discard(channel.channel_id)
        manager.on_data(DataPacket(channel.channel_id, BindingTable(()), final=True))
        assert results == []

    def test_discard_all_counts_open(self, wired, scan):
        network, _, _ = wired
        manager = ChannelManager("P1")
        manager.open(network, "P2", scan, lambda t, f: None)
        manager.open(network, "P2", scan, lambda t, f: None)
        assert manager.discard_all() == 2
        assert manager.open_channels() == {}

    def test_late_packet_for_unknown_channel_dropped(self):
        manager = ChannelManager("P1")
        manager.on_data(DataPacket("P1#99", BindingTable(()), final=True))  # no raise

    def test_unknown_channel_lookup_raises(self):
        with pytest.raises(ChannelError):
            ChannelManager("P1").channel("nope")

    def test_packet_sizes_positive(self, scan):
        assert SubPlanPacket("c", scan).size_bytes() > 0
        assert DataPacket("c", BindingTable(("X",))).size_bytes() > 0


def _rows(*names):
    from repro.rdf import URI

    return BindingTable(("X",), [(URI(f"http://w/{n}"),) for n in names])


class TestOutOfOrderReassembly:
    """Batched streams complete when every seq arrived, not when the
    final packet does — small final packets overtake big chunks."""

    def _open(self, wired, scan):
        network, _, _ = wired
        manager = ChannelManager("P1")
        results = []
        channel = manager.open(network, "P2", scan, lambda t, f: results.append((t, f)))
        return manager, channel, results

    def test_final_overtaking_chunks_waits_for_them(self, wired, scan):
        manager, channel, results = self._open(wired, scan)
        cid = channel.channel_id
        manager.on_data(DataPacket(cid, _rows("c"), seq=2, final=True))
        assert results == []  # seqs 0 and 1 still in flight
        assert channel.is_open
        manager.on_data(DataPacket(cid, _rows("a"), seq=0, final=False))
        assert results == []
        manager.on_data(DataPacket(cid, _rows("b"), seq=1, final=False))
        assert len(results) == 1
        table, failed = results[0]
        assert failed is None
        assert table == _rows("a", "b", "c")
        assert channel.state is ChannelState.CLOSED

    def test_in_order_stream_still_completes_on_final(self, wired, scan):
        manager, channel, results = self._open(wired, scan)
        cid = channel.channel_id
        manager.on_data(DataPacket(cid, _rows("a"), seq=0, final=False))
        manager.on_data(DataPacket(cid, _rows("b"), seq=1, final=True))
        assert results[0][0] == _rows("a", "b")

    def test_duplicate_chunk_not_double_counted(self, wired, scan):
        manager, channel, results = self._open(wired, scan)
        cid = channel.channel_id
        manager.on_data(DataPacket(cid, _rows("a"), seq=0, final=False))
        manager.on_data(DataPacket(cid, _rows("a"), seq=0, final=False))  # retransmit race
        manager.on_data(DataPacket(cid, _rows("b"), seq=1, final=True))
        assert results[0][0] == _rows("a", "b")


class TestDiscardAccounting:
    """ubQL discards account the bindings they throw away, both
    already-buffered and still-in-flight."""

    def _manager_with_metrics(self):
        from repro.metrics.collectors import MetricSet

        manager = ChannelManager("P1")
        metrics = MetricSet()
        manager.bind_metrics(metrics)
        return manager, metrics

    def test_discard_counts_buffered_chunks(self, wired, scan):
        network, _, _ = wired
        manager, metrics = self._manager_with_metrics()
        channel = manager.open(network, "P2", scan, lambda t, f: None)
        manager.on_data(DataPacket(channel.channel_id, _rows("a", "b"), seq=0, final=False))
        manager.on_data(DataPacket(channel.channel_id, _rows("c"), seq=1, final=False))
        manager.discard(channel.channel_id)
        assert metrics.discarded_bindings == 3

    def test_late_packet_after_discard_counted(self, wired, scan):
        network, _, _ = wired
        manager, metrics = self._manager_with_metrics()
        channel = manager.open(network, "P2", scan, lambda t, f: None)
        manager.discard(channel.channel_id)
        manager.on_data(
            DataPacket(channel.channel_id, _rows("a", "b"), seq=0, final=True)
        )
        assert metrics.discarded_bindings == 2

    def test_discard_without_metrics_is_silent(self, wired, scan):
        network, _, _ = wired
        manager = ChannelManager("P1")
        channel = manager.open(network, "P2", scan, lambda t, f: None)
        manager.on_data(DataPacket(channel.channel_id, _rows("a"), seq=0, final=False))
        manager.discard(channel.channel_id)  # no metrics bound: no raise


class TestStreamTeardownDrain:
    """A replan that cancels paced streams must leave no residue: no
    pending events, no cancellation markers, and the thrown-away
    bindings accounted."""

    def _stalled_system(self):
        from repro.systems import HybridSystem
        from repro.workloads.paper import paper_peer_bases, paper_schema

        system = HybridSystem(paper_schema())
        system.add_super_peer("SP1")
        for peer_id, graph in paper_peer_bases().items():
            system.add_peer(peer_id, graph, "SP1")
        for peer in system.peers.values():
            peer.monitor_channels = True
            peer.monitor_interval = 5.0
        slowpoke = system.peers["P2"]
        slowpoke.stream_chunk_rows = 1
        slowpoke.stream_interval = 50.0
        return system

    def test_network_drains_after_cancelled_stream(self):
        from repro.workloads.paper import PAPER_QUERY

        system = self._stalled_system()
        table = system.query("P1", PAPER_QUERY)
        assert len(table) == 5
        system.network.run()  # flush any remaining timers
        assert system.network.pending_events() == 0
        for peer in system.peers.values():
            assert peer._cancelled_streams == set()
            assert peer._active_streams == set()

    def test_cancelled_stream_bindings_are_accounted(self):
        from repro.workloads.paper import PAPER_QUERY

        system = self._stalled_system()
        system.query("P1", PAPER_QUERY)
        system.network.run()
        kinds = system.network.metrics.messages_by_kind
        assert kinds.get("ChangePlanPacket", 0) >= 1
        assert system.network.metrics.discarded_bindings > 0
