"""Unit tests for the advertisement footprint tracker (churn module)."""

import pytest

from repro.peers.base import PeerBase
from repro.peers.churn import AdvertisementTracker, Goodbye
from repro.rdf import Graph, TYPE
from repro.rvl import parse_view
from repro.workloads.paper import DATA, N1, PAPER_VIEW, paper_schema


@pytest.fixture
def schema():
    return paper_schema()


class TestTracker:
    def test_fresh_tracker_needs_refresh(self, schema):
        graph = Graph()
        graph.add(DATA.a, N1.prop1, DATA.b)
        tracker = AdvertisementTracker(PeerBase(graph, schema))
        assert tracker.needs_refresh()  # never advertised

    def test_mark_then_stable(self, schema):
        graph = Graph()
        graph.add(DATA.a, N1.prop1, DATA.b)
        tracker = AdvertisementTracker(PeerBase(graph, schema))
        tracker.mark_advertised()
        assert not tracker.needs_refresh()

    def test_extensional_change_invisible(self, schema):
        graph = Graph()
        graph.add(DATA.a, N1.prop1, DATA.b)
        tracker = AdvertisementTracker(PeerBase(graph, schema))
        tracker.mark_advertised()
        graph.add(DATA.c, N1.prop1, DATA.d)
        assert not tracker.needs_refresh()

    def test_new_property_visible(self, schema):
        graph = Graph()
        graph.add(DATA.a, N1.prop1, DATA.b)
        tracker = AdvertisementTracker(PeerBase(graph, schema))
        tracker.mark_advertised()
        graph.add(DATA.b, N1.prop2, DATA.e)
        assert tracker.needs_refresh()

    def test_refresh_returns_advertisement_once(self, schema):
        graph = Graph()
        graph.add(DATA.a, N1.prop1, DATA.b)
        tracker = AdvertisementTracker(PeerBase(graph, schema))
        first = tracker.refresh("P")
        assert first is not None
        assert first.covers_property(N1.prop1)
        assert tracker.refresh("P") is None  # stable now

    def test_view_backed_base_uses_view_footprint(self, schema):
        base = PeerBase(Graph(), schema, views=[parse_view(PAPER_VIEW)])
        tracker = AdvertisementTracker(base)
        advertisement = tracker.refresh("P")
        assert advertisement.covers_property(N1.prop4)
        # adding raw data does not change the view's footprint
        base.graph.add(DATA.x, N1.prop4, DATA.y)
        assert tracker.refresh("P") is None

    def test_goodbye_size(self):
        assert Goodbye("peer-with-a-name").size_bytes() > 48
