"""Tests for peer roles: base machinery, clients, simple and super peers."""

import pytest

from repro.errors import PeerError
from repro.core.algebra import Scan
from repro.net import Message, Network
from repro.peers import (
    Advertise,
    AdvertisementRequest,
    ClientPeer,
    Peer,
    PeerBase,
    QuerySubmit,
    RouteRequest,
    SONRegistry,
    SimplePeer,
    SuperPeer,
)
from repro.rdf import Graph
from repro.rvl import ActiveSchema, parse_view
from repro.rql.pattern import SchemaPath
from repro.workloads.paper import (
    N1,
    PAPER_QUERY,
    PAPER_VIEW,
    paper_peer_bases,
    paper_query_pattern,
    paper_schema,
)


@pytest.fixture
def schema():
    return paper_schema()


@pytest.fixture
def network():
    return Network()


class TestPeerBase:
    def test_active_schema_from_materialised_base(self, schema):
        bases = paper_peer_bases()
        base = PeerBase(bases["P2"], schema)
        advertisement = base.active_schema("P2")
        assert advertisement.covers_property(N1.prop1)
        assert not advertisement.covers_property(N1.prop2)

    def test_active_schema_from_views(self, schema):
        base = PeerBase(Graph(), schema, views=[parse_view(PAPER_VIEW)])
        advertisement = base.active_schema("P4")
        assert advertisement.covers_property(N1.prop4)

    def test_evaluate_scan(self, schema):
        bases = paper_peer_bases()
        base = PeerBase(bases["P3"], schema)
        pattern = paper_query_pattern(schema).patterns[1]
        assert len(base.evaluate_scan(Scan((pattern,), "P3"))) == 4


class TestPeerDispatch:
    def test_unknown_payload_raises(self, network, schema):
        peer = Peer("A")
        peer.join(network)

        class Strange:
            pass

        with pytest.raises(PeerError):
            peer.receive(Message("A", "A", Strange()), network)

    def test_send_requires_join(self):
        with pytest.raises(PeerError):
            Peer("A").send("B", "x")

    def test_local_scan_without_base_is_empty(self, schema):
        peer = Peer("A")
        pattern = paper_query_pattern(schema).root
        assert len(peer.local_scan(Scan((pattern,), "A"))) == 0


class TestSimplePeerAdvertisements:
    def test_remember_and_expose(self, network, schema):
        peer = SimplePeer("A", PeerBase(Graph(), schema))
        peer.join(network)
        advertisement = ActiveSchema(
            schema.namespace.uri, [SchemaPath(N1.C1, N1.prop1, N1.C2)], peer_id="B"
        )
        peer.receive(Message("B", "A", Advertise(advertisement)), network)
        assert "B" in peer.known_advertisements

    def test_own_advertisement_not_stored(self, network, schema):
        bases = paper_peer_bases()
        peer = SimplePeer("P2", PeerBase(bases["P2"], schema))
        peer.join(network)
        own = peer.own_advertisement()
        peer.remember_advertisement(own)
        assert "P2" not in peer.known_advertisements

    def test_advertisement_request_answered(self, network, schema):
        bases = paper_peer_bases()
        a = SimplePeer("A", PeerBase(bases["P2"], schema))
        b = SimplePeer("B", PeerBase(bases["P3"], schema))
        a.join(network)
        b.join(network)
        b.send("A", AdvertisementRequest("B"))
        network.run()
        assert "A" in b.known_advertisements

    def test_empty_base_advertises_nothing(self, network, schema):
        a = SimplePeer("A", PeerBase(Graph(), schema))
        assert a.own_advertisement() is None


class TestSimplePeerQueries:
    def test_query_answered_from_local_knowledge(self, network, schema):
        bases = paper_peer_bases()
        coordinator = SimplePeer("P1", PeerBase(bases["P1"], schema))
        coordinator.join(network)
        for peer_id in ("P2", "P3", "P4"):
            helper = SimplePeer(peer_id, PeerBase(bases[peer_id], schema))
            helper.join(network)
            coordinator.remember_advertisement(helper.own_advertisement())
        client = ClientPeer("C")
        client.join(network)
        qid = client.submit("P1", PAPER_QUERY)
        network.run()
        result = client.result(qid)
        assert result.error is None
        assert len(result.table) == 9

    def test_parse_error_reported(self, network, schema):
        coordinator = SimplePeer("P1", PeerBase(Graph(), schema))
        coordinator.join(network)
        client = ClientPeer("C")
        client.join(network)
        qid = client.submit("P1", "THIS IS NOT RQL")
        network.run()
        assert client.result(qid).error is not None

    def test_uncovered_query_fails_gracefully(self, network, schema):
        coordinator = SimplePeer("P1", PeerBase(Graph(), schema))
        coordinator.join(network)
        client = ClientPeer("C")
        client.join(network)
        qid = client.submit("P1", PAPER_QUERY)
        network.run()
        result = client.result(qid)
        assert result.error is not None
        assert "Q1" in result.error or "no relevant peers" in result.error


class TestSuperPeer:
    def test_registry_collects_advertisements(self, network, schema):
        super_peer = SuperPeer("SP1", schemas=[schema])
        super_peer.join(network)
        advertisement = ActiveSchema(
            schema.namespace.uri, [SchemaPath(N1.C1, N1.prop1, N1.C2)], peer_id="A"
        )
        super_peer.receive(Message("A", "SP1", Advertise(advertisement)), network)
        assert super_peer.cluster(schema.namespace.uri) == {"A"}

    def test_deregister(self, network, schema):
        super_peer = SuperPeer("SP1", schemas=[schema])
        super_peer.join(network)
        advertisement = ActiveSchema(
            schema.namespace.uri, [SchemaPath(N1.C1, N1.prop1, N1.C2)], peer_id="A"
        )
        super_peer.receive(Message("A", "SP1", Advertise(advertisement)), network)
        super_peer.deregister("A")
        assert super_peer.cluster(schema.namespace.uri) == set()

    def test_route_request_answered(self, network, schema):
        super_peer = SuperPeer("SP1", schemas=[schema])
        super_peer.join(network)
        requester = SimplePeer("A", PeerBase(Graph(), schema))
        requester.join(network)
        advertisement = ActiveSchema(
            schema.namespace.uri,
            [SchemaPath(N1.C1, N1.prop1, N1.C2), SchemaPath(N1.C2, N1.prop2, N1.C3)],
            peer_id="B",
        )
        super_peer.receive(Message("B", "SP1", Advertise(advertisement)), network)

        replies = []
        requester.handle_RouteReply = lambda m: replies.append(m.payload)
        pattern = paper_query_pattern(schema)
        requester.send("SP1", RouteRequest("q1", pattern, "A"))
        network.run()
        assert len(replies) == 1
        assert replies[0].annotated.is_fully_annotated()

    def test_backbone_forwarding(self, network, schema):
        directory = {}
        sp1 = SuperPeer("SP1", schemas=[], backbone_directory=directory)
        sp2 = SuperPeer("SP2", schemas=[schema], backbone_directory=directory)
        sp1.join(network)
        sp2.join(network)
        requester = SimplePeer("A", PeerBase(Graph(), schema))
        requester.join(network)
        advertisement = ActiveSchema(
            schema.namespace.uri,
            [SchemaPath(N1.C1, N1.prop1, N1.C2), SchemaPath(N1.C2, N1.prop2, N1.C3)],
            peer_id="B",
        )
        sp2.receive(Message("B", "SP2", Advertise(advertisement)), network)
        replies = []
        requester.handle_RouteReply = lambda m: replies.append(m.payload)
        pattern = paper_query_pattern(schema)
        # ask the wrong super-peer: it must forward via the backbone
        requester.send("SP1", RouteRequest("q1", pattern, "A"))
        network.run()
        assert len(replies) == 1
        assert replies[0].annotated.is_fully_annotated()

    def test_unknown_schema_yields_empty_annotation(self, network, schema):
        sp1 = SuperPeer("SP1", schemas=[])
        sp1.join(network)
        requester = SimplePeer("A", PeerBase(Graph(), schema))
        requester.join(network)
        replies = []
        requester.handle_RouteReply = lambda m: replies.append(m.payload)
        requester.send("SP1", RouteRequest("q1", paper_query_pattern(schema), "A"))
        network.run()
        assert not replies[0].annotated.is_fully_annotated()


class TestSONRegistry:
    def test_groups_by_schema(self, schema):
        registry = SONRegistry()
        registry.add(ActiveSchema("http://a#", peer_id="P1"))
        registry.add(ActiveSchema("http://b#", peer_id="P2"))
        assert registry.sons() == ["http://a#", "http://b#"]
        assert registry.members("http://a#") == {"P1"}

    def test_merges_same_peer(self, schema):
        registry = SONRegistry()
        registry.add(
            ActiveSchema("http://a#", [SchemaPath(N1.C1, N1.prop1, N1.C2)], peer_id="P")
        )
        registry.add(
            ActiveSchema("http://a#", [SchemaPath(N1.C2, N1.prop2, N1.C3)], peer_id="P")
        )
        (advertisement,) = registry.advertisements("http://a#")
        assert len(advertisement) == 2

    def test_remove_peer_prunes_empty_sons(self):
        registry = SONRegistry()
        registry.add(ActiveSchema("http://a#", peer_id="P"))
        registry.remove_peer("P")
        assert registry.sons() == []

    def test_sons_of(self):
        registry = SONRegistry()
        registry.add(ActiveSchema("http://a#", peer_id="P"))
        registry.add(ActiveSchema("http://b#", peer_id="P"))
        assert registry.sons_of("P") == ["http://a#", "http://b#"]

    def test_anonymous_rejected(self):
        with pytest.raises(ValueError):
            SONRegistry().add(ActiveSchema("http://a#"))
