"""Tests for the multi-layered super-peer hierarchy (Section 3.1)."""

import pytest

from repro.net import Network
from repro.peers import SimplePeer, SuperPeer
from repro.peers.base import PeerBase
from repro.peers.protocol import Advertise, RouteRequest
from repro.rdf import Graph
from repro.rql.pattern import SchemaPath
from repro.rvl import ActiveSchema
from repro.workloads.paper import N1, paper_query_pattern, paper_schema


@pytest.fixture
def network():
    return Network()


def full_advertisement(schema, peer_id):
    return ActiveSchema(
        schema.namespace.uri,
        [SchemaPath(N1.C1, N1.prop1, N1.C2), SchemaPath(N1.C2, N1.prop2, N1.C3)],
        peer_id=peer_id,
    )


class TestHierarchy:
    def test_escalation_to_parent(self, network):
        """A leaf super-peer with an empty directory escalates unknown
        schemas to its parent, which resolves them."""
        schema = paper_schema()
        # two ISOLATED directories: the leaf layer knows nothing
        root = SuperPeer("ROOT", schemas=[schema], backbone_directory={})
        leaf = SuperPeer("LEAF", schemas=[], backbone_directory={}, parent="ROOT")
        root.join(network)
        leaf.join(network)
        requester = SimplePeer("A", PeerBase(Graph(), schema))
        requester.join(network)
        from repro.net.message import Message

        root.receive(
            Message("B", "ROOT", Advertise(full_advertisement(schema, "B"))), network
        )
        replies = []
        requester.handle_RouteReply = lambda m: replies.append(m.payload)
        requester.send("LEAF", RouteRequest("q1", paper_query_pattern(schema), "A"))
        network.run()
        assert len(replies) == 1
        assert replies[0].annotated.is_fully_annotated()

    def test_no_parent_no_directory_gives_empty(self, network):
        schema = paper_schema()
        leaf = SuperPeer("LEAF", schemas=[], backbone_directory={})
        leaf.join(network)
        requester = SimplePeer("A", PeerBase(Graph(), schema))
        requester.join(network)
        replies = []
        requester.handle_RouteReply = lambda m: replies.append(m.payload)
        requester.send("LEAF", RouteRequest("q1", paper_query_pattern(schema), "A"))
        network.run()
        assert not replies[0].annotated.is_fully_annotated()

    def test_two_level_escalation(self, network):
        """leaf -> mid -> root: hops accumulate, the answer returns
        directly to the requester."""
        schema = paper_schema()
        root = SuperPeer("ROOT", schemas=[schema], backbone_directory={})
        mid = SuperPeer("MID", schemas=[], backbone_directory={}, parent="ROOT")
        leaf = SuperPeer("LEAF", schemas=[], backbone_directory={}, parent="MID")
        for sp in (root, mid, leaf):
            sp.join(network)
        requester = SimplePeer("A", PeerBase(Graph(), schema))
        requester.join(network)
        from repro.net.message import Message

        root.receive(
            Message("B", "ROOT", Advertise(full_advertisement(schema, "B"))), network
        )
        replies = []
        requester.handle_RouteReply = lambda m: replies.append(m.payload)
        requester.send("LEAF", RouteRequest("q1", paper_query_pattern(schema), "A"))
        network.run()
        assert replies[0].annotated.is_fully_annotated()
        # the escalation crossed LEAF and MID
        assert network.metrics.messages_by_kind["RouteRequest"] == 3

    def test_escalation_loop_bounded(self, network):
        """Mutually-parented super-peers cannot circulate forever."""
        schema = paper_schema()
        sp1 = SuperPeer("S1", schemas=[], backbone_directory={}, parent="S2")
        sp2 = SuperPeer("S2", schemas=[], backbone_directory={}, parent="S1")
        sp1.join(network)
        sp2.join(network)
        requester = SimplePeer("A", PeerBase(Graph(), schema))
        requester.join(network)
        replies = []
        requester.handle_RouteReply = lambda m: replies.append(m.payload)
        requester.send("S1", RouteRequest("q1", paper_query_pattern(schema), "A"))
        network.run()
        assert len(replies) == 1  # answered (empty), not looped
        assert not replies[0].annotated.is_fully_annotated()
