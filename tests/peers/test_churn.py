"""Tests for peer departures and advertisement refresh (churn)."""

import pytest

from repro.errors import PeerError
from repro.rdf import Graph, TYPE
from repro.systems import AdhocSystem, HybridSystem
from repro.workloads.paper import (
    DATA,
    N1,
    PAPER_QUERY,
    adhoc_scenario,
    hybrid_scenario,
    paper_peer_bases,
    paper_schema,
)


class TestHybridDeparture:
    @pytest.fixture
    def system(self):
        system = HybridSystem(paper_schema())
        system.add_super_peer("SP1")
        for peer_id, graph in paper_peer_bases().items():
            system.add_peer(peer_id, graph, "SP1")
        system.run()
        return system

    def test_goodbye_deregisters_at_super_peer(self, system):
        sp1 = system.super_peers["SP1"]
        uri = system.schema.namespace.uri
        assert "P2" in sp1.cluster(uri)
        system.peers["P2"].leave()
        system.run()
        assert "P2" not in sp1.cluster(uri)

    def test_queries_skip_departed_peer(self, system):
        system.peers["P2"].leave()
        system.run()
        table = system.query("P1", PAPER_QUERY)
        # P2's four bridge chains are gone; the rest answer
        assert len(table) == 5
        assert system.network.metrics.messages_received.get("P2", 0) <= 2

    def test_departure_of_sole_provider_fails_queries(self):
        scenario = hybrid_scenario()
        system = HybridSystem.from_scenario(scenario)
        system.run()
        system.peers["P5"].leave()  # the only prop2 provider
        system.run()
        with pytest.raises(PeerError):
            system.query("P1", PAPER_QUERY)


class TestAdhocDeparture:
    def test_goodbye_clears_neighbour_knowledge(self):
        system = AdhocSystem.from_scenario(adhoc_scenario())
        p1 = system.peers["P1"]
        assert "P3" in p1.known_advertisements
        system.peers["P3"].leave()
        system.run()
        assert "P3" not in p1.known_advertisements

    def test_departed_peer_not_planned(self):
        system = AdhocSystem.from_scenario(adhoc_scenario())
        system.peers["P3"].leave()
        system.run()
        table = system.query("P1", PAPER_QUERY)
        assert len(table) == 3  # only P2's chains remain

    def test_dht_entries_removed_on_leave(self):
        scenario = adhoc_scenario()
        system = AdhocSystem(scenario.schema, use_dht=True)
        for peer_id in scenario.peers:
            system.add_peer(
                peer_id, scenario.bases[peer_id], scenario.neighbours.get(peer_id, ())
            )
        system.discover_all()
        peers, _ = system.dht.lookup_property(N1.prop2)
        assert "P5" in peers
        system.peers["P5"].leave()
        system.run()
        peers, _ = system.dht.lookup_property(N1.prop2)
        assert "P5" not in peers


class TestAdvertisementRefresh:
    @pytest.fixture
    def system(self):
        system = HybridSystem(paper_schema())
        system.add_super_peer("SP1")
        for peer_id, graph in paper_peer_bases().items():
            system.add_peer(peer_id, graph, "SP1")
        system.run()
        return system

    def test_extensional_churn_is_silent(self, system):
        """Adding more statements of an already-populated property does
        not re-advertise (the Section 2.2 economy)."""
        peer = system.peers["P2"]
        peer.base.graph.add(DATA.extra_x, N1.prop1, DATA.extra_y)
        assert peer.refresh_advertisement() is False

    def test_intensional_change_readvertises(self, system):
        """Populating a brand-new property pushes a fresh advertisement
        and routing immediately uses it."""
        peer = system.peers["P2"]
        peer.base.graph.add(DATA.p2y, TYPE, N1.C2)
        peer.base.graph.add(DATA.p2z, TYPE, N1.C3)
        peer.base.graph.add(DATA.p2y, N1.prop2, DATA.p2z)
        assert peer.refresh_advertisement() is True
        system.run()
        sp1 = system.super_peers["SP1"]
        uri = system.schema.namespace.uri
        advertisement = dict(
            (a.peer_id, a) for a in sp1.advertisements_for(uri)
        )["P2"]
        assert advertisement.covers_property(N1.prop2)

    def test_emptying_a_property_readvertises(self, system):
        peer = system.peers["P3"]
        for triple in list(peer.base.graph.triples(None, N1.prop2, None)):
            peer.base.graph.remove_triple(triple)
        assert peer.refresh_advertisement() is True

    def test_refresh_without_base_is_noop(self):
        from repro.peers.simple import SimplePeer

        assert SimplePeer("bare").refresh_advertisement() is False
