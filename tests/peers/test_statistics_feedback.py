"""Tests for channel statistics feedback (Section 2.5)."""

import pytest

from repro.systems import HybridSystem
from repro.workloads.paper import (
    N1,
    PAPER_QUERY,
    paper_peer_bases,
    paper_schema,
)


@pytest.fixture
def system():
    system = HybridSystem(paper_schema())
    system.add_super_peer("SP1")
    for peer_id, graph in paper_peer_bases().items():
        system.add_peer(peer_id, graph, "SP1")
    return system


class TestStatisticsFeedback:
    def test_coordinator_learns_cardinalities(self, system):
        system.query("P1", PAPER_QUERY)
        stats = system.peers["P1"].statistics
        # P2 holds 4 prop1 statements; P3 holds 4 prop2 statements
        assert stats.cardinality("P2", N1.prop1) == 4
        assert stats.cardinality("P3", N1.prop2) == 4

    def test_subsumption_counts_included(self, system):
        system.query("P1", PAPER_QUERY)
        stats = system.peers["P1"].statistics
        # P4's prop1 count is entailed from its 2 prop4 statements
        assert stats.cardinality("P4", N1.prop1) == 2

    def test_stats_packets_on_wire(self, system):
        system.query("P1", PAPER_QUERY)
        kinds = system.network.metrics.messages_by_kind
        assert kinds["StatsPacket"] >= 3  # one per contacted peer

    def test_unknown_peer_keeps_default(self, system):
        system.query("P1", PAPER_QUERY)
        stats = system.peers["P1"].statistics
        assert stats.cardinality("P9", N1.prop1) == stats.default_cardinality

    def test_second_query_still_correct(self, system):
        first = system.query("P1", PAPER_QUERY)
        second = system.query("P1", PAPER_QUERY)
        assert first == second

    def test_stats_survive_for_other_coordinators(self, system):
        """Each coordinator learns independently from its own channels."""
        system.query("P1", PAPER_QUERY)
        assert system.peers["P2"].statistics.cardinality("P3", N1.prop2) == (
            system.peers["P2"].statistics.default_cardinality
        )
