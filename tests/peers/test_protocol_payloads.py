"""Tests for protocol payload metadata (sizes, kinds)."""

import pytest

from repro.channels.packets import (
    ChangePlanPacket,
    DataPacket,
    StatsPacket,
    SubPlanPacket,
)
from repro.core.algebra import Scan
from repro.net.message import Message, payload_kind, payload_size
from repro.peers.churn import Goodbye
from repro.peers.protocol import (
    Advertise,
    AdvertisementReply,
    AdvertisementRequest,
    DelegatedResult,
    PartialPlan,
    QueryResult,
    QuerySubmit,
    RouteReply,
    RouteRequest,
)
from repro.rql.bindings import BindingTable
from repro.rvl import ActiveSchema
from repro.workloads.paper import (
    DATA,
    N1,
    paper_active_schemas,
    paper_query_pattern,
    paper_schema,
)


@pytest.fixture
def schema():
    return paper_schema()


@pytest.fixture
def pattern(schema):
    return paper_query_pattern(schema)


def all_payloads(schema, pattern):
    ad = next(iter(paper_active_schemas(schema).values()))
    scan = Scan((pattern.root,), "P2")
    table = BindingTable(("X",), [(DATA.a,)] * 5)
    from repro.core.routing import route_query

    annotated = route_query(pattern, paper_active_schemas(schema).values(), schema)
    return [
        QuerySubmit("q1", "SELECT ...", "C"),
        QueryResult("q1", table),
        QueryResult("q1", None, error="boom"),
        RouteRequest("q1", pattern, "A"),
        RouteReply("q1", annotated),
        Advertise(ad),
        AdvertisementRequest("A", depth=2),
        AdvertisementReply((ad,), "B"),
        PartialPlan("q1", scan, pattern, "A", "A"),
        DelegatedResult("q1", table, "B"),
        DelegatedResult("q1", None, "B", error="cannot complete plan"),
        Goodbye("B"),
        SubPlanPacket("A#1", scan),
        DataPacket("A#1", table),
        StatsPacket("A#1", 5, {"p": 5}),
        ChangePlanPacket("A#1", "replan"),
    ]


class TestSizes:
    def test_every_payload_has_positive_size(self, schema, pattern):
        for payload in all_payloads(schema, pattern):
            assert payload_size(payload) > 0, payload

    def test_result_size_scales_with_rows(self):
        small = QueryResult("q", BindingTable(("X",), [(DATA.a,)]))
        big = QueryResult("q", BindingTable(("X",), [(DATA.a,)] * 100))
        assert payload_size(big) > payload_size(small)

    def test_subplan_size_scales_with_scans(self, pattern):
        one = SubPlanPacket("c", Scan((pattern.root,), "P1"))
        from repro.core.algebra import Join

        two = SubPlanPacket(
            "c",
            Join([Scan((pattern.root,), "P1"), Scan((pattern.patterns[1],), "P2")]),
        )
        assert payload_size(two) > payload_size(one)

    def test_kind_is_class_name(self, schema, pattern):
        for payload in all_payloads(schema, pattern):
            assert payload_kind(payload) == type(payload).__name__

    def test_unknown_payload_gets_default_size(self):
        class Odd:
            pass

        assert payload_size(Odd()) == 256


class TestMessage:
    def test_envelope_defaults(self):
        message = Message("A", "B", QuerySubmit("q", "text", "A"))
        assert message.kind == "QuerySubmit"
        assert message.size == payload_size(message.payload)

    def test_explicit_size_override(self):
        message = Message("A", "B", "raw", size=9)
        assert message.size == 9

    def test_ids_monotonic(self):
        first = Message("A", "B", "x")
        second = Message("A", "B", "x")
        assert second.id > first.id
