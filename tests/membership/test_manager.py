"""The membership manager over a simulated hybrid deployment."""

import pytest

from repro.deploy import ClusterSpec, build_sim_system, build_workload
from repro.durability import FileStore
from repro.membership import ChurnEvent, ChurnSchedule, MembershipManager


@pytest.fixture
def deployment():
    spec = ClusterSpec(seed=0, peers=3, super_peers=1, resilient=True, joiners=1)
    workload = build_workload(spec)
    system = build_sim_system(spec, workload)
    manager = MembershipManager(system)
    manager.attach_all()
    for peer in system.peers.values():
        peer.save_durable_snapshot()
    return spec, workload, system, manager


def _query(system, via, text):
    client = system.add_client()
    query_id = client.submit(via, text)
    system.network.run()
    result = client.result(query_id)
    assert result is not None
    return result


class TestCrashRejoin:
    def test_rejoin_restores_full_answers(self, deployment):
        spec, workload, system, manager = deployment
        text = workload.queries[0]
        healthy = _query(system, "P1", text)
        assert healthy.coverage is None

        manager.crash("P2")
        degraded = _query(system, "P1", text)
        assert degraded.coverage is not None
        assert "P2" in degraded.coverage.excluded_peers

        recovered = manager.rejoin("P2")
        system.network.run()
        assert recovered.found
        healed = _query(system, "P1", text)
        assert healed.error is None and healed.coverage is None
        assert len(healed.table) == len(healthy.table)

    def test_rejoin_counts_metrics(self, deployment):
        spec, workload, system, manager = deployment
        manager.crash("P2")
        system.network.run()
        manager.rejoin("P2")
        system.network.run()
        metrics = system.network.metrics
        assert metrics.recoveries == 1
        assert metrics.rejoins == 1

    def test_rejoin_lifts_super_peer_quarantine(self, deployment):
        spec, workload, system, manager = deployment
        super_peer = system.super_peers["SP1"]
        manager.crash("P2")
        super_peer.suspect_peer("P2")  # the failure detector's verdict
        assert super_peer.quarantine.is_quarantined("P2")
        manager.rejoin("P2")
        system.network.run()
        assert not super_peer.quarantine.is_quarantined("P2")

    def test_rejoin_lifts_coordinator_quarantine_via_broadcast(self, deployment):
        """The super-peer rebroadcasts a rejoin-flagged advertisement to
        the SON's other members, so quarantines local to coordinators
        lift through the message plane (works on any transport)."""
        spec, workload, system, manager = deployment
        coordinator = system.peers["P1"]
        manager.crash("P2")
        for text in workload.queries:
            _query(system, "P1", text)
        assert coordinator.quarantine.is_quarantined("P2")
        manager.rejoin("P2")
        system.network.run()
        assert not coordinator.quarantine.is_quarantined("P2")


class TestJoinLeave:
    def test_mid_run_join_serves_queries(self, deployment):
        spec, workload, system, manager = deployment
        manager.join("P4", workload.bases["P4"], "SP1")
        system.network.run()
        assert system.network.metrics.joins >= 4
        result = _query(system, "P4", workload.queries[0])
        assert result.error is None

    def test_graceful_leave_counts_goodbyes(self, deployment):
        spec, workload, system, manager = deployment
        manager.leave("P3")
        system.network.run()
        assert system.network.metrics.goodbyes >= 1
        # the super-peer no longer routes to the departed peer
        super_peer = system.super_peers["SP1"]
        assert all("P3" not in son for son in super_peer.registry.values())

    def test_leave_snapshots_before_dark(self, deployment):
        spec, workload, system, manager = deployment
        manager.leave("P3")
        assert manager.stores["P3"].recover().found


class TestScheduleDriving:
    def test_apply_dispatches_all_kinds(self, deployment):
        spec, workload, system, manager = deployment
        manager.apply(ChurnEvent(1.0, "crash", "P2"))
        system.network.run()
        manager.apply(ChurnEvent(2.0, "rejoin", "P2"))
        system.network.run()
        manager.apply(ChurnEvent(3.0, "join", "P4"), graph=workload.bases["P4"])
        system.network.run()
        manager.apply(ChurnEvent(4.0, "leave", "P3"))
        system.network.run()
        metrics = system.network.metrics
        assert metrics.recoveries == 1 and metrics.goodbyes >= 1
        result = _query(system, "P1", workload.queries[0])
        assert result.error is None

    def test_generated_schedule_replays_end_to_end(self, deployment):
        spec, workload, system, manager = deployment
        schedule = ChurnSchedule.generate(
            4, spec.peer_ids(), joiners=spec.joiner_ids(), horizon=3000,
            leave_rate=0.0005, crash_rate=0.002, join_rate=0.002,
        )
        assert len(schedule)
        active = set(spec.peer_ids())
        for event in schedule:
            manager.apply(event, graph=workload.bases.get(event.peer_id))
            system.network.run()
            if event.kind in ("join", "rejoin"):
                active.add(event.peer_id)
            else:
                active.discard(event.peer_id)
        result = _query(system, sorted(active)[0], workload.queries[0])
        assert result.error is None


class TestFileBackedStores:
    def test_manager_with_file_stores(self, deployment, tmp_path):
        spec, workload, _, _ = deployment
        system = build_sim_system(spec, workload)
        manager = MembershipManager(
            system, store_factory=lambda peer_id: FileStore(tmp_path / peer_id)
        )
        manager.attach_all()
        for peer in system.peers.values():
            peer.save_durable_snapshot()
        manager.crash("P2")
        system.network.run()
        recovered = manager.rejoin("P2")
        system.network.run()
        assert recovered.found
        assert (tmp_path / "P2" / "snapshot.json").exists()
        result = _query(system, "P1", workload.queries[0])
        assert result.error is None and result.coverage is None
