"""Seeded churn schedules: determinism and validity."""

import pytest

from repro.membership import ChurnEvent, ChurnSchedule

MEMBERS = ["P1", "P2", "P3", "P4"]


def test_same_seed_same_schedule():
    one = ChurnSchedule.generate(11, MEMBERS, joiners=["P5"], horizon=2000)
    two = ChurnSchedule.generate(11, MEMBERS, joiners=["P5"], horizon=2000)
    assert list(one) == list(two)


def test_different_seeds_differ():
    schedules = {
        tuple(ChurnSchedule.generate(seed, MEMBERS, horizon=2000))
        for seed in range(6)
    }
    assert len(schedules) > 1


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        ChurnEvent(1.0, "explode", "P1")


def test_needs_initial_members():
    with pytest.raises(ValueError):
        ChurnSchedule.generate(0, [])


def test_events_are_time_ordered():
    events = list(ChurnSchedule.generate(3, MEMBERS, horizon=5000))
    assert events == sorted(events, key=lambda e: e.at)


@pytest.mark.parametrize("seed", range(8))
def test_validity_state_machine(seed):
    """Replaying any generated schedule keeps the membership machine
    consistent: only active peers leave/crash, nobody joins twice, at
    least one peer stays active, every crash eventually rejoins."""
    joiners = ["P5", "P6"]
    schedule = ChurnSchedule.generate(
        seed, MEMBERS, joiners=joiners, horizon=5000,
        leave_rate=0.004, crash_rate=0.008, join_rate=0.006,
    )
    active = set(MEMBERS)
    down = set()
    seen_joins = set()
    for event in schedule:
        if event.kind == "join":
            assert event.peer_id in joiners
            assert event.peer_id not in seen_joins, "joined twice"
            seen_joins.add(event.peer_id)
            active.add(event.peer_id)
        elif event.kind == "leave":
            assert event.peer_id in active
            active.discard(event.peer_id)
        elif event.kind == "crash":
            assert event.peer_id in active
            active.discard(event.peer_id)
            down.add(event.peer_id)
        elif event.kind == "rejoin":
            assert event.peer_id in down
            down.discard(event.peer_id)
            active.add(event.peer_id)
        assert active, "the overlay emptied out"
    assert not down, "a crashed peer never rejoined"


def test_rejoin_delay_bounds():
    schedule = ChurnSchedule.generate(
        5, MEMBERS, horizon=5000, crash_rate=0.01, leave_rate=0.0,
        join_rate=0.0, rejoin_delay=(40.0, 120.0),
    )
    pending = {}  # peer -> crash time awaiting its rejoin
    saw_crash = False
    for event in schedule:
        if event.kind == "crash":
            saw_crash = True
            pending[event.peer_id] = event.at
        elif event.kind == "rejoin":
            delay = event.at - pending.pop(event.peer_id)
            assert 40.0 <= delay <= 120.0
    assert saw_crash, "seed 5 drew no crashes; pick another seed"
    assert not pending


def test_for_peer_filters():
    schedule = ChurnSchedule.generate(2, MEMBERS, horizon=5000, crash_rate=0.01)
    for peer_id in MEMBERS:
        assert all(e.peer_id == peer_id for e in schedule.for_peer(peer_id))
