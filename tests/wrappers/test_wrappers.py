"""Tests for the legacy-store wrappers (virtual peer bases)."""

import pytest

from repro.errors import MappingError
from repro.rdf import TYPE
from repro.rql import query
from repro.wrappers import (
    ElementMapping,
    PropertyMapping,
    RelationalPeerMapping,
    RelationalStore,
    XMLElement,
    XMLPeerMapping,
    XMLStore,
)
from repro.workloads.paper import N1, paper_schema

PREFIX = "http://legacy/"
NS = f"USING NAMESPACE n1 = &{N1.uri}&"


@pytest.fixture
def schema():
    return paper_schema()


class TestRelationalStore:
    def test_create_and_insert(self):
        store = RelationalStore()
        table = store.create_table("t", ["a", "b"])
        table.insert(1, 2)
        assert len(table) == 1

    def test_duplicate_table_rejected(self):
        store = RelationalStore()
        store.create_table("t", ["a"])
        with pytest.raises(MappingError):
            store.create_table("t", ["a"])

    def test_wrong_arity_rejected(self):
        store = RelationalStore()
        table = store.create_table("t", ["a", "b"])
        with pytest.raises(MappingError):
            table.insert(1)

    def test_unknown_table_rejected(self):
        with pytest.raises(MappingError):
            RelationalStore().table("nope")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(MappingError):
            RelationalStore().create_table("t", ["a", "a"])


class TestRelationalMapping:
    @pytest.fixture
    def mapping(self, schema):
        store = RelationalStore()
        enrol = store.create_table("enrol", ["student", "course"])
        enrol.insert("s1", "c1")
        enrol.insert("s2", "c1")
        return RelationalPeerMapping(
            store,
            schema,
            [PropertyMapping("enrol", "student", "course", N1.prop1, PREFIX)],
        )

    def test_virtual_graph_content(self, mapping):
        graph = mapping.virtual_graph()
        assert graph.count(None, N1.prop1, None) == 2
        assert graph.count(None, TYPE, N1.C1) == 2
        assert graph.count(None, TYPE, N1.C2) == 1

    def test_virtual_graph_queryable(self, mapping, schema):
        graph = mapping.virtual_graph()
        table = query(f"SELECT X FROM {{X}} n1:prop1 {{Y}} {NS}", graph, schema)
        assert len(table) == 2

    def test_active_schema_from_mappings(self, mapping):
        advertisement = mapping.active_schema("PR")
        assert advertisement.covers_property(N1.prop1)
        assert not advertisement.covers_property(N1.prop2)

    def test_undeclared_property_rejected(self, schema):
        store = RelationalStore()
        store.create_table("t", ["a", "b"])
        with pytest.raises(MappingError):
            RelationalPeerMapping(
                store, schema, [PropertyMapping("t", "a", "b", N1.nope, PREFIX)]
            )

    def test_unknown_column_rejected(self, schema):
        store = RelationalStore()
        store.create_table("t", ["a", "b"])
        with pytest.raises(MappingError):
            RelationalPeerMapping(
                store, schema, [PropertyMapping("t", "a", "zz", N1.prop1, PREFIX)]
            )

    def test_literal_mismatch_rejected(self, schema):
        store = RelationalStore()
        store.create_table("t", ["a", "b"])
        with pytest.raises(MappingError):
            RelationalPeerMapping(
                store,
                schema,
                [PropertyMapping("t", "a", "b", N1.prop1, PREFIX, object_is_literal=True)],
            )


class TestXMLStore:
    @pytest.fixture
    def store(self):
        store = XMLStore()
        catalog = XMLElement("catalog")
        course = catalog.append(XMLElement("course", {"id": "c1"}))
        course.append(XMLElement("follows", {"id": "c1", "next": "c2"}))
        course2 = catalog.append(XMLElement("course", {"id": "c2"}))
        course2.append(XMLElement("follows", {"id": "c2", "next": "c3"}))
        store.add_document(catalog)
        return store

    def test_find_all_path(self, store):
        follows = list(store.find_all(["catalog", "course", "follows"]))
        assert len(follows) == 2

    def test_find_all_missing_path(self, store):
        assert list(store.find_all(["catalog", "nope"])) == []

    def test_mapping_produces_graph(self, store, schema):
        mapping = XMLPeerMapping(
            store,
            schema,
            [
                ElementMapping(
                    path=("catalog", "course", "follows"),
                    subject_attribute="id",
                    property=N1.prop2,
                    uri_prefix=PREFIX,
                    object_attribute="next",
                )
            ],
        )
        graph = mapping.virtual_graph()
        assert graph.count(None, N1.prop2, None) == 2
        table = query(f"SELECT X FROM {{X}} n1:prop2 {{Y}} {NS}", graph, schema)
        assert len(table) == 2

    def test_mapping_validation(self, store, schema):
        with pytest.raises(MappingError):
            XMLPeerMapping(
                store,
                schema,
                [
                    ElementMapping(
                        path=(),
                        subject_attribute="id",
                        property=N1.prop2,
                        uri_prefix=PREFIX,
                        object_attribute="next",
                    )
                ],
            )

    def test_active_schema(self, store, schema):
        mapping = XMLPeerMapping(
            store,
            schema,
            [
                ElementMapping(
                    path=("catalog", "course", "follows"),
                    subject_attribute="id",
                    property=N1.prop2,
                    uri_prefix=PREFIX,
                    object_attribute="next",
                )
            ],
        )
        assert mapping.active_schema("PX").covers_property(N1.prop2)

    def test_elements_missing_attributes_skipped(self, schema):
        store = XMLStore()
        root = XMLElement("catalog")
        root.append(XMLElement("follows", {}))  # no ids at all
        store.add_document(root)
        mapping = XMLPeerMapping(
            store,
            schema,
            [
                ElementMapping(
                    path=("catalog", "follows"),
                    subject_attribute="id",
                    property=N1.prop2,
                    uri_prefix=PREFIX,
                    object_attribute="next",
                )
            ],
        )
        assert len(mapping.virtual_graph()) == 0
