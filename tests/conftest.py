"""Shared fixtures: the paper's running example and synthetic workloads."""

from __future__ import annotations

import pytest

from repro.rdf import Graph, Namespace, Schema
from repro.workloads.paper import (
    N1,
    PAPER_QUERY,
    adhoc_scenario,
    hybrid_scenario,
    paper_active_schemas,
    paper_peer_bases,
    paper_query_pattern,
    paper_schema,
)


@pytest.fixture
def schema() -> Schema:
    """The Figure 1 community schema (C1–C6, prop1–prop4)."""
    return paper_schema()


@pytest.fixture
def n1() -> Namespace:
    return N1


@pytest.fixture
def query_pattern(schema):
    """The semantic pattern of query Q (Q1: prop1, Q2: prop2)."""
    return paper_query_pattern(schema)


@pytest.fixture
def advertisements(schema):
    """Figure 2's four peer advertisements keyed by peer id."""
    return paper_active_schemas(schema)


@pytest.fixture
def peer_bases():
    """Materialised bases for P1–P4 matching the advertisements."""
    return paper_peer_bases()


@pytest.fixture
def paper_query_text() -> str:
    return PAPER_QUERY


@pytest.fixture
def figure6():
    return hybrid_scenario()


@pytest.fixture
def figure7():
    return adhoc_scenario()


@pytest.fixture
def empty_graph() -> Graph:
    return Graph()
