"""Property-based tests for the binding-table algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rql.bindings import BindingTable

from .strategies import uris


def tables(columns):
    row = st.tuples(*[uris for _ in columns])
    return st.lists(row, max_size=12).map(lambda rows: BindingTable(columns, rows))


XY = tables(("X", "Y"))
YZ = tables(("Y", "Z"))
ZW = tables(("Z", "W"))
X = tables(("X",))


def as_row_set(table):
    return sorted(
        tuple(r[table.column_index(c)].n3() for c in sorted(table.columns))
        for r in table.rows
    )


class TestJoin:
    @given(XY, YZ)
    def test_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(XY, YZ, ZW)
    @settings(max_examples=40)
    def test_associative(self, a, b, c):
        left = a.join(b).join(c)
        right = a.join(b.join(c))
        assert left == right

    @given(XY)
    def test_unit_identity(self, a):
        assert BindingTable.unit().join(a) == a

    @given(XY)
    def test_self_join_is_distinct_multiset(self, a):
        """Joining a table with itself keeps exactly the rows that
        match themselves — every original row appears."""
        joined = a.join(BindingTable(a.columns, a.rows))
        assert set(a.rows) <= set(joined.rows)

    @given(XY, YZ)
    def test_join_subset_of_product(self, a, b):
        assert len(a.join(b)) <= len(a) * len(b)

    @given(XY, YZ)
    def test_join_rows_agree_on_shared(self, a, b):
        out = a.join(b)
        y = out.column_index("Y") if "Y" in out.columns else None
        for binding in out.bindings():
            assert any(r[a.column_index("Y")] == binding["Y"] for r in a.rows)
            assert any(r[b.column_index("Y")] == binding["Y"] for r in b.rows)


class TestUnion:
    @given(X, X)
    def test_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(X, X, X)
    def test_associative(self, a, b, c):
        assert a.union(b).union(c) == a.union(b.union(c))

    @given(X, X)
    def test_size_adds(self, a, b):
        assert len(a.union(b)) == len(a) + len(b)

    @given(XY)
    def test_union_with_empty_identity(self, a):
        assert a.union(BindingTable(("Y", "X"))) == a


class TestProjectDistinct:
    @given(XY)
    def test_project_idempotent(self, a):
        once = a.project(("X",))
        assert once.project(("X",)) == once

    @given(XY)
    def test_distinct_idempotent(self, a):
        assert a.distinct().distinct() == a.distinct()

    @given(XY)
    def test_distinct_no_smaller_than_set(self, a):
        assert len(a.distinct()) == len(set(a.rows))

    @given(XY, YZ)
    def test_join_then_project_contains_matching(self, a, b):
        """Every X surviving the join appears in the projection."""
        joined = a.join(b)
        projected = set(joined.project(("X",)).column("X"))
        assert projected == {r[joined.column_index("X")] for r in joined.rows}
