"""Wire-codec properties: lossless round-trips and forward compatibility.

For every message kind the transport can ship — query control, routing,
advertisements, binding batches, channel packets, fault-plan-tagged
duplicates (``DeliveryFailure`` wrapping the original), trace-stamped
envelopes — ``decode(encode(m))`` must reproduce the payload exactly,
and re-encoding the decoded message must be byte-identical (the
canonical form the sim-vs-live differential validation compares).

Forward compatibility: a decoder must *ignore* fields it does not know,
at every level (message envelope, dataclass payloads, frames), so a
newer peer can talk to an older one.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.message import DeliveryFailure, Message
from repro.obs import TraceContext
from repro.peers.churn import Goodbye
from repro.peers.protocol import (
    AdvertisementRequest,
    DelegatedResult,
    QueryResult,
    QueryShed,
    QuerySubmit,
    RouteBusy,
    RouteRequest,
)
from repro.channels.packets import ChangePlanPacket, DataPacket, StatsPacket
from repro.rdf.terms import BNode, Literal, URI, Variable
from repro.resilience.partial import Coverage
from repro.rql.bindings import BindingTable
from repro.transport.codec import (
    decode_frame,
    decode_message,
    decode_payload,
    encode_frame,
    encode_message,
    encode_payload,
)

# ----------------------------------------------------------------------
# term and table strategies
# ----------------------------------------------------------------------
peer_ids = st.sampled_from(["P1", "P2", "P3", "SP1", "SP2", "client1"])
query_ids = st.from_regex(r"[A-Za-z0-9_-]{1,12}", fullmatch=True)

safe_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=24
)
uris = st.from_regex(r"[a-z]{1,8}", fullmatch=True).map(
    lambda s: URI(f"http://example.org/{s}")
)
terms = st.one_of(
    uris,
    st.from_regex(r"[a-z0-9]{1,8}", fullmatch=True).map(BNode),
    st.from_regex(r"[A-Z][a-z0-9]{0,6}", fullmatch=True).map(Variable),
    safe_text.map(Literal),
    st.integers(-10**9, 10**9).map(Literal),
    st.booleans().map(Literal),
    st.floats(allow_nan=False, allow_infinity=False, width=32).map(Literal),
    st.tuples(safe_text, st.sampled_from(["en", "el", "fr"])).map(
        lambda pair: Literal(pair[0], language=pair[1])
    ),
)


@st.composite
def binding_tables(draw):
    width = draw(st.integers(1, 4))
    columns = tuple(f"V{i}" for i in range(width))
    rows = draw(
        st.lists(st.tuples(*([terms] * width)).map(tuple), max_size=8)
    )
    return BindingTable(columns, rows)


@st.composite
def coverages(draw):
    return Coverage(
        answered=(),
        unanswered=(),
        excluded_peers=tuple(draw(st.lists(peer_ids, max_size=3, unique=True))),
        attempts=draw(st.integers(0, 5)),
    )


# ----------------------------------------------------------------------
# payload strategies: one per wire kind this test sweeps
# ----------------------------------------------------------------------
query_submits = st.builds(
    QuerySubmit,
    query_ids,
    safe_text,
    peer_ids,
    max_peers=st.one_of(st.none(), st.integers(1, 5)),
    limit=st.one_of(st.none(), st.integers(1, 100)),
    order_by=st.one_of(st.none(), st.sampled_from(["V0", "V1"])),
    descending=st.booleans(),
)
query_results = st.builds(
    QueryResult,
    query_ids,
    binding_tables(),
    st.one_of(st.none(), safe_text),
    st.one_of(st.none(), coverages()),
)
data_packets = st.builds(
    DataPacket,
    query_ids,
    binding_tables(),
    final=st.booleans(),
    failed_peer=st.one_of(st.none(), peer_ids),
    seq=st.integers(0, 1000),
)
stats_packets = st.builds(
    StatsPacket,
    query_ids,
    st.integers(0, 10**6),
    st.dictionaries(peer_ids, st.integers(0, 10**4), max_size=4),
)
simple_payloads = st.one_of(
    st.builds(QueryShed, query_ids, st.floats(0, 1000), peer_ids),
    st.builds(RouteBusy, query_ids, st.floats(0, 1000), peer_ids),
    st.builds(AdvertisementRequest, peer_ids, depth=st.integers(1, 3)),
    st.builds(Goodbye, peer_ids),
    st.builds(ChangePlanPacket, query_ids, safe_text),
    st.builds(
        DelegatedResult,
        query_ids,
        binding_tables(),
        peer_ids,
        st.one_of(st.none(), safe_text),
        token=st.integers(0, 9),
    ),
)
payloads = st.one_of(
    query_submits, query_results, data_packets, stats_packets, simple_payloads
)

traces = st.one_of(
    st.none(),
    st.builds(
        TraceContext,
        st.from_regex(r"t-[0-9a-f]{1,8}", fullmatch=True),
        st.from_regex(r"s-[0-9a-f]{1,8}", fullmatch=True),
    ),
)


@st.composite
def messages(draw, payload_strategy=payloads):
    return Message(
        draw(peer_ids),
        draw(peer_ids),
        draw(payload_strategy),
        trace=draw(traces),
    )


def wire_round_trip(message):
    """Encode → JSON text (the actual wire) → decode."""
    fields = json.loads(json.dumps(encode_message(message)))
    return fields, decode_message(fields)


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
@given(messages())
@settings(max_examples=200, deadline=None)
def test_messages_round_trip_losslessly(message):
    fields, decoded = wire_round_trip(message)
    assert decoded.src == message.src
    assert decoded.dst == message.dst
    assert decoded.trace == message.trace
    assert type(decoded.payload) is type(message.payload)
    if isinstance(message.payload, (QueryResult, DataPacket, DelegatedResult)):
        assert decoded.payload.table == message.payload.table
        for field in ("query_id", "error", "coverage", "final", "failed_peer",
                      "seq", "from_peer", "token"):
            if hasattr(message.payload, field):
                assert getattr(decoded.payload, field) == getattr(
                    message.payload, field
                )
    else:
        assert decoded.payload == message.payload


@given(messages())
@settings(max_examples=200, deadline=None)
def test_canonical_form_is_stable(message):
    """decode → re-encode reproduces the exact wire fields."""
    fields, decoded = wire_round_trip(message)
    assert encode_message(decoded) == fields


@given(messages(), st.integers(1, 3))
@settings(max_examples=50, deadline=None)
def test_fault_plan_tagged_duplicates_round_trip(message, depth):
    """DeliveryFailure wrapping (possibly nested) originals — the shape
    fault plans and bounces put on the wire — survives the codec."""
    wrapped = message
    for _ in range(depth):
        wrapped = Message("_net", wrapped.src, DeliveryFailure(wrapped))
    fields, decoded = wire_round_trip(wrapped)
    assert encode_message(decoded) == fields
    inner = decoded.payload
    for _ in range(depth - 1):
        inner = inner.original.payload
    assert isinstance(inner, DeliveryFailure)
    assert type(inner.original.payload) is type(message.payload)


@given(messages(), st.from_regex(r"[a-z_]{1,12}", fullmatch=True))
@settings(max_examples=100, deadline=None)
def test_unknown_fields_are_ignored_everywhere(message, field_name):
    """A decoder must skip fields added by future versions: on the
    envelope, and inside any dataclass payload."""
    fields, _ = wire_round_trip(message)
    fields[f"future_{field_name}"] = {"anything": [1, "x"]}
    payload = fields["payload"]
    if isinstance(payload, dict) and "f" in payload:
        payload["f"][f"future_{field_name}"] = 123
    decoded = decode_message(fields)
    assert type(decoded.payload) is type(message.payload)


@given(st.lists(terms, min_size=0, max_size=12))
@settings(max_examples=100, deadline=None)
def test_every_term_survives_a_binding_batch(term_list):
    """Any term in any binding-batch cell round-trips exactly."""
    table = BindingTable(("V0",), [(term,) for term in term_list])
    packet = DataPacket("ch-1", table, final=False, failed_peer=None, seq=0)
    encoded = json.loads(json.dumps(encode_payload(packet)))
    assert decode_payload(encoded).table == table


@given(
    st.sampled_from(["msg", "hello", "book", "bye", "a_future_kind"]),
    st.dictionaries(
        st.from_regex(r"[a-z]{1,8}", fullmatch=True),
        st.one_of(st.integers(), safe_text, st.lists(st.integers(), max_size=3)),
        max_size=4,
    ),
)
@settings(max_examples=100, deadline=None)
def test_frames_round_trip_and_tolerate_extras(kind, body):
    data = encode_frame(kind, body)
    decoded_kind, decoded_body = decode_frame(data)
    assert decoded_kind == kind
    assert decoded_body == body
    # extra envelope keys from a future version are ignored
    extended = json.loads(data.decode())
    extended["future_header"] = 7
    decoded_kind, decoded_body = decode_frame(json.dumps(extended).encode())
    assert (decoded_kind, decoded_body) == (kind, body)
