"""Live-data properties: lossless update wire payloads, and
incremental maintenance equivalent to recomputation.

Three families:

* **codec round-trips** — every update-plane payload (insert/delete
  records over every Term kind, view redefinitions, batches, acks,
  advertisement deltas, continuous-query control/push) survives
  ``decode(encode(m))`` exactly, and re-encoding is canonical;
* **delta algebra** — ``apply_advertisement_delta(old,
  advertisement_delta(old, new)) == new`` for arbitrary advertisement
  pairs, and binding-table delta/fold are inverses;
* **apply ≡ rebuild** — under arbitrary seeded update interleavings,
  the incrementally maintained active schema equals a from-scratch
  ``active_schema`` re-derivation after every batch, holders folding
  only deltas reconstruct the same advertisement, and the patched
  ``EncodedBase`` id columns are multiset-identical to a fresh encode
  of the final graph.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.encoded import EncodedBase
from repro.livedata import (
    LiveMaintainer,
    UpdateStream,
    active_schema_digest,
    advertisement_delta,
    apply_advertisement_delta,
)
from repro.livedata.continuous import fold_delta, table_delta
from repro.livedata.updates import (
    AdvertiseDelta,
    ContinuousCancel,
    ContinuousSubscribe,
    ContinuousUpdate,
    DeleteTriple,
    InsertTriple,
    RedefineViews,
    RefreshStanding,
    UpdateAck,
    UpdateBatch,
)
from repro.net.message import Message
from repro.peers.base import PeerBase
from repro.rdf.terms import BNode, Literal, URI, Variable
from repro.rdf.triple import Triple
from repro.rql.bindings import BindingTable
from repro.rql.pattern import SchemaPath
from repro.rvl.active_schema import ActiveSchema
from repro.transport.codec import decode_message, encode_message
from repro.workloads.data_gen import Distribution, generate_bases
from repro.workloads.schema_gen import generate_schema

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
peer_ids = st.sampled_from(["P1", "P2", "P3", "SP"])
query_ids = st.from_regex(r"[A-Za-z0-9_-]{1,12}", fullmatch=True)
safe_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=24
)
uris = st.from_regex(r"[a-z]{1,8}", fullmatch=True).map(
    lambda s: URI(f"http://example.org/{s}")
)
#: every Term kind an update record may carry
terms = st.one_of(
    uris,
    st.from_regex(r"[a-z0-9]{1,8}", fullmatch=True).map(BNode),
    safe_text.map(Literal),
    st.integers(-10**9, 10**9).map(Literal),
    st.booleans().map(Literal),
    st.floats(allow_nan=False, allow_infinity=False, width=32).map(Literal),
    st.tuples(safe_text, st.sampled_from(["en", "el"])).map(
        lambda pair: Literal(pair[0], language=pair[1])
    ),
)
subjects = st.one_of(uris, st.from_regex(r"[a-z0-9]{1,8}", fullmatch=True).map(BNode))
triples = st.builds(Triple, subjects, uris, terms)

update_records = st.one_of(
    st.builds(InsertTriple, triples),
    st.builds(DeleteTriple, triples),
    st.builds(RedefineViews, st.lists(safe_text, max_size=3).map(tuple)),
)
schema_paths = st.builds(SchemaPath, uris, uris, uris)
advertise_deltas = st.builds(
    AdvertiseDelta,
    st.just("http://example.org/schema#"),
    peer_ids,
    added_paths=st.lists(schema_paths, max_size=3, unique=True).map(tuple),
    removed_paths=st.lists(schema_paths, max_size=3, unique=True).map(tuple),
    added_classes=st.lists(uris, max_size=3, unique=True).map(tuple),
    removed_classes=st.lists(uris, max_size=3, unique=True).map(tuple),
)


@st.composite
def binding_tables(draw):
    width = draw(st.integers(1, 3))
    columns = tuple(f"V{i}" for i in range(width))
    rows = draw(st.lists(st.tuples(*([terms] * width)).map(tuple), max_size=8))
    return BindingTable(columns, rows)


livedata_payloads = st.one_of(
    update_records,
    st.builds(
        UpdateBatch,
        peer_ids,
        st.integers(1, 9),
        st.lists(update_records, max_size=5).map(tuple),
    ),
    st.builds(UpdateAck, peer_ids, st.integers(1, 9), st.integers(0, 50)),
    advertise_deltas,
    st.builds(ContinuousSubscribe, query_ids, safe_text, peer_ids),
    st.builds(
        ContinuousUpdate,
        query_ids,
        binding_tables(),
        binding_tables(),
        st.integers(0, 9),
        error=st.one_of(st.none(), safe_text),
    ),
    st.builds(ContinuousCancel, query_ids),
    st.builds(RefreshStanding, st.integers(1, 9)),
)


@st.composite
def livedata_messages(draw):
    return Message(draw(peer_ids), draw(peer_ids), draw(livedata_payloads))


# ----------------------------------------------------------------------
# codec round-trips
# ----------------------------------------------------------------------
@given(livedata_messages())
@settings(max_examples=200, deadline=None)
def test_update_payloads_round_trip_losslessly(message):
    fields = json.loads(json.dumps(encode_message(message)))
    decoded = decode_message(fields)
    assert type(decoded.payload) is type(message.payload)
    if isinstance(message.payload, ContinuousUpdate):
        assert decoded.payload.query_id == message.payload.query_id
        assert decoded.payload.added == message.payload.added
        assert decoded.payload.removed == message.payload.removed
        assert decoded.payload.revision == message.payload.revision
        assert decoded.payload.error == message.payload.error
    else:
        assert decoded.payload == message.payload


@given(livedata_messages())
@settings(max_examples=200, deadline=None)
def test_update_payload_encoding_is_canonical(message):
    fields = json.loads(json.dumps(encode_message(message)))
    assert encode_message(decode_message(fields)) == fields


# ----------------------------------------------------------------------
# delta algebra
# ----------------------------------------------------------------------
@st.composite
def advertisement_pairs(draw):
    """Two arbitrary advertisements over the same schema."""
    pool_paths = draw(st.lists(schema_paths, min_size=1, max_size=6, unique=True))
    pool_classes = draw(st.lists(uris, max_size=5, unique=True))
    uri = "http://example.org/schema#"

    def pick(pool):
        return frozenset(
            item for item in pool if draw(st.booleans())
        )

    old = ActiveSchema(uri, pick(pool_paths), pick(pool_classes), "P1")
    new = ActiveSchema(uri, pick(pool_paths), pick(pool_classes), "P1")
    return old, new


@given(advertisement_pairs())
@settings(max_examples=200, deadline=None)
def test_advertisement_delta_is_exact_inverse(pair):
    old, new = pair
    delta = advertisement_delta(old, new)
    reconstructed = apply_advertisement_delta(old, delta)
    assert reconstructed == new
    assert active_schema_digest([reconstructed]) == active_schema_digest([new])
    if old == new:
        assert delta.is_empty()


@given(binding_tables(), binding_tables())
@settings(max_examples=200, deadline=None)
def test_table_delta_and_fold_are_inverses(previous, current):
    # give both tables the same columns (delta is per standing query)
    current = BindingTable(
        previous.columns,
        [row[: len(previous.columns)] for row in current.rows]
        if len(current.columns) >= len(previous.columns)
        else [],
    )
    added, removed = table_delta(previous, current)
    update = ContinuousUpdate("q", added, removed, 1)
    assert fold_delta(previous, update) == current


# ----------------------------------------------------------------------
# apply ≡ rebuild, under seeded interleavings
# ----------------------------------------------------------------------
def _workload_bases(seed):
    synthetic = generate_schema(
        chain_length=3, refinement_fraction=0.0, noise_properties=1, seed=seed
    )
    distribution = list(Distribution)[seed % len(list(Distribution))]
    generated = generate_bases(
        synthetic,
        ["P1", "P2"],
        distribution,
        statements_per_segment=8,
        shared_pool=4,
        seed=seed,
    )
    return synthetic, generated.bases


@given(
    seed=st.integers(0, 10**6),
    revisions=st.integers(1, 4),
    rate=st.floats(0.02, 0.4),
    view_probability=st.floats(0.0, 0.6),
)
@settings(max_examples=40, deadline=None)
def test_incremental_schema_equals_recompute(seed, revisions, rate, view_probability):
    """After every batch of an arbitrary seeded interleaving, the
    maintainer's advertisement equals a from-scratch re-derivation and
    a delta-folding holder reconstructs it exactly."""
    synthetic, bases = _workload_bases(seed % 50)
    stream = UpdateStream(
        synthetic.schema,
        bases,
        seed=seed,
        revisions=revisions,
        rate=rate,
        view_probability=view_probability,
    )
    peer_bases = {p: PeerBase(bases[p], synthetic.schema) for p in bases}
    maintainers = {p: LiveMaintainer(peer_bases[p], p) for p in bases}
    holder_view = {p: maintainers[p].current for p in bases}
    for batch in stream.all_batches():
        result = maintainers[batch.target].apply(batch)
        fresh = peer_bases[batch.target].active_schema(batch.target)
        assert maintainers[batch.target].current == fresh
        if result.delta is not None:
            holder_view[batch.target] = apply_advertisement_delta(
                holder_view[batch.target], result.delta
            )
        assert active_schema_digest([holder_view[batch.target]]) == (
            active_schema_digest([fresh])
        )
    # end state: stream shadows and maintained bases agree
    for peer in bases:
        assert set(peer_bases[peer].graph.triples()) == set(
            stream.final_shadows[peer].triples()
        )


@given(seed=st.integers(0, 10**6), revisions=st.integers(1, 3))
@settings(max_examples=25, deadline=None)
def test_patched_encoded_columns_equal_rebuild(seed, revisions):
    """The in-place id-column patch: after an arbitrary interleaving,
    every schema path's decoded column content is multiset-identical
    to a fresh ``EncodedBase`` over the final graph."""
    synthetic, bases = _workload_bases(seed % 50)
    stream = UpdateStream(
        synthetic.schema, bases, seed=seed, revisions=revisions, rate=0.3
    )
    peer_bases = {p: PeerBase(bases[p], synthetic.schema) for p in bases}
    for base in peer_bases.values():
        base.encoded_base().warm()  # build the columnar twin up front
    maintainers = {p: LiveMaintainer(peer_bases[p], p) for p in bases}
    for batch in stream.all_batches():
        maintainers[batch.target].apply(batch)
    for peer, base in peer_bases.items():
        patched = base._encoded
        rebuilt = EncodedBase(base.graph, synthetic.schema)
        for prop in sorted(synthetic.schema.properties, key=lambda u: u.value):
            definition = synthetic.schema.property_def(prop)
            path = SchemaPath(definition.domain, prop, definition.range)
            got_s, got_o = patched.pattern_columns(path)
            want_s, want_o = rebuilt.pattern_columns(path)
            got = sorted(
                (patched.dictionary.decode(s).n3(), patched.dictionary.decode(o).n3())
                for s, o in zip(got_s, got_o)
            )
            want = sorted(
                (rebuilt.dictionary.decode(s).n3(), rebuilt.dictionary.decode(o).n3())
                for s, o in zip(want_s, want_o)
            )
            assert got == want, f"{peer} column {prop.value} diverged"
