"""Hypothesis strategies shared by the property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.rdf import Graph, Literal, Triple, URI

#: A small closed world of resources keeps join probability high.
RESOURCES = [URI(f"http://w/r{i}") for i in range(12)]
PREDICATES = [URI(f"http://w/p{i}") for i in range(4)]

uris = st.sampled_from(RESOURCES)
predicates = st.sampled_from(PREDICATES)

literal_texts = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=20
)
literals = st.one_of(
    literal_texts.map(Literal),
    st.integers(-1000, 1000).map(Literal),
    st.booleans().map(Literal),
    st.tuples(literal_texts, st.sampled_from(["en", "fr", "el"])).map(
        lambda pair: Literal(pair[0], language=pair[1])
    ),
)

objects = st.one_of(uris, literals)

triples = st.builds(Triple, uris, predicates, objects)


@st.composite
def graphs(draw, max_size: int = 30) -> Graph:
    """A random graph over the closed world."""
    return Graph(draw(st.lists(triples, max_size=max_size)))


@st.composite
def binding_rows(draw, width: int):
    return tuple(draw(uris) for _ in range(width))
