"""Property-based tests for the Chord ring."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht import ChordRing, chord_hash

names = st.lists(
    st.text(alphabet="abcdefghij", min_size=1, max_size=6),
    min_size=1,
    max_size=20,
    unique=True,
)
keys = st.lists(
    st.text(alphabet="klmnopqrst", min_size=1, max_size=8),
    min_size=1,
    max_size=15,
    unique=True,
)


class TestRingProperties:
    @given(names, keys)
    @settings(max_examples=40, deadline=None)
    def test_every_key_retrievable_after_joins(self, members, key_list):
        ring = ChordRing(bits=16)
        for name in members:
            ring.join(name)
        for key in key_list:
            ring.put(key, f"v-{key}")
        for key in key_list:
            values, _ = ring.get(key)
            assert values == {f"v-{key}"}

    @given(names, keys)
    @settings(max_examples=40, deadline=None)
    def test_keys_survive_interleaved_membership(self, members, key_list):
        ring = ChordRing(bits=16)
        ring.join("anchor")
        for key in key_list:
            ring.put(key, f"v-{key}")
        for index, name in enumerate(members):
            ring.join(name)
            if index % 2 == 1:
                ring.leave(name)
        for key in key_list:
            values, _ = ring.get(key)
            assert values == {f"v-{key}"}

    @given(names, st.text(alphabet="uvwxyz", min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_owner_consistent_from_every_start(self, members, key):
        ring = ChordRing(bits=16)
        for name in members:
            ring.join(name)
        owners = {ring.lookup(key, start=name)[0].name for name in members}
        assert len(owners) == 1

    @given(names, st.text(alphabet="uvwxyz", min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_owner_is_clockwise_successor(self, members, key):
        ring = ChordRing(bits=16)
        for name in members:
            ring.join(name)
        owner, _ = ring.lookup(key)
        key_id = chord_hash(key, ring.bits)
        ordered = sorted(n.node_id for n in ring._ordered)
        expected = next((i for i in ordered if i >= key_id), ordered[0])
        assert owner.node_id == expected

    @given(names)
    @settings(max_examples=40, deadline=None)
    def test_hops_never_exceed_bound(self, members):
        ring = ChordRing(bits=16)
        for name in members:
            ring.join(name)
        for probe in ("k1", "k2", "k3"):
            _, hops = ring.lookup(probe, start=members[0])
            assert hops <= 2 * ring.bits
