"""Serving-layer properties: liveness and determinism.

Two guarantees the workload engine makes, checked over randomly drawn
serving regimes:

* **Every admitted query terminates.**  Whatever the arrival process,
  client pool, admission knobs (including zero-length queues and
  harsh deadlines) or shed-resubmission policy, every offered query
  ends as ``ok``, ``partial``, ``error`` or ``shed`` — never silence —
  and the in-flight gauge drains back to zero.

* **Same seed, same everything.**  Serving is a deterministic function
  of (dataset seed, workload seed): two runs produce bit-identical
  message sequences, outcome records and metric summaries — including
  under FaultPlan chaos (drops, duplicates, jitter), because faults
  draw from their own seeded RNG.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience import FaultPlan, ResilienceConfig
from repro.workload_engine import AdmissionControl, WorkloadSpec, serve
from tests.difftest.harness import build_hybrid, make_workload

STATUSES_THAT_TERMINATE = {"ok", "partial", "error", "shed"}


def _spec_for(workload, count, **overrides):
    queries = tuple(
        (
            workload.peer_ids[i % len(workload.peer_ids)],
            workload.queries[i % len(workload.queries)],
        )
        for i in range(count)
    )
    options = dict(count=count, mode="open", arrival_rate=1.0, clients=3)
    options.update(overrides)
    return WorkloadSpec(queries=queries, **options)


def _watch_messages(network):
    """Record every delivered message's (kind, src, dst, size, delay)
    in order — the event-order fingerprint the determinism properties
    compare bit-for-bit."""
    log = []
    original = network.metrics.record_message

    def wrapped(kind, src, dst, size, delay=None):
        log.append((kind, src, dst, size, delay))
        original(kind, src, dst, size, delay)

    network.metrics.record_message = wrapped
    return log


admission_controls = st.one_of(
    st.none(),
    st.builds(
        AdmissionControl,
        max_concurrent=st.integers(min_value=1, max_value=3),
        max_queued=st.integers(min_value=0, max_value=3),
        retry_after=st.sampled_from((2.0, 10.0)),
        deadline=st.sampled_from((None, 3.0, 60.0)),
    ),
)


@st.composite
def serving_regimes(draw):
    mode = draw(st.sampled_from(("open", "closed")))
    return dict(
        count=draw(st.integers(min_value=4, max_value=14)),
        mode=mode,
        arrival_rate=draw(st.sampled_from((0.1, 0.5, 2.0))),
        burst_size=draw(st.integers(min_value=1, max_value=3)),
        clients=draw(st.integers(min_value=1, max_value=4)),
        think_time=draw(st.sampled_from((0.0, 2.0))),
        seed=draw(st.integers(min_value=0, max_value=999)),
        resubmit_sheds=draw(st.booleans()),
        max_shed_retries=draw(st.integers(min_value=0, max_value=2)),
    )


@given(
    data_seed=st.integers(min_value=0, max_value=9),
    regime=serving_regimes(),
    admission=admission_controls,
    fair=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_every_admitted_query_terminates(data_seed, regime, admission, fair):
    workload = make_workload(data_seed, queries=4)
    system = build_hybrid(workload)
    if admission is not None:
        system.enable_admission(admission)
    if fair:
        system.enable_fair_scheduling(quantum=0.25)
    spec = _spec_for(workload, **regime)
    report = serve(system, spec)
    assert len(report.outcomes) == regime["count"]
    statuses = {outcome.status for outcome in report.outcomes}
    assert statuses <= STATUSES_THAT_TERMINATE, (
        f"non-terminating statuses {statuses - STATUSES_THAT_TERMINATE}"
    )
    assert all(o.finished_at is not None for o in report.outcomes)
    assert system.network.metrics.inflight_queries == 0, (
        "in-flight gauge did not drain to zero"
    )


def _fingerprint(data_seed, spec_seed, chaos):
    """One full serving run, reduced to comparable pure data: the
    ordered message log, the outcome records and the metric summary."""
    workload = make_workload(data_seed, queries=4)
    system = build_hybrid(workload)
    if chaos:
        system.enable_resilience(ResilienceConfig.default(data_seed))
        system.network.install_faults(FaultPlan(
            seed=data_seed + 1, drop_rate=0.05, duplicate_rate=0.05,
            jitter=0.5,
        ))
    system.enable_admission(AdmissionControl(
        max_concurrent=2, max_queued=8, retry_after=4.0, deadline=200.0
    ))
    system.enable_fair_scheduling(quantum=0.25)
    log = _watch_messages(system.network)
    spec = _spec_for(
        workload, count=24, seed=spec_seed, arrival_rate=2.0, burst_size=8
    )
    report = serve(system, spec)
    outcomes = tuple(
        (o.index, o.via, o.client_id, o.status, o.rows, o.error,
         o.submitted_at, o.finished_at, o.shed_retries)
        for o in report.outcomes
    )
    return tuple(log), outcomes, report.summary(), dict(report.metrics)


@given(
    data_seed=st.integers(min_value=0, max_value=9),
    spec_seed=st.integers(min_value=0, max_value=99),
)
@settings(max_examples=8, deadline=None)
def test_same_seed_is_bit_identical(data_seed, spec_seed):
    first = _fingerprint(data_seed, spec_seed, chaos=False)
    second = _fingerprint(data_seed, spec_seed, chaos=False)
    assert first == second


@given(
    data_seed=st.integers(min_value=0, max_value=9),
    spec_seed=st.integers(min_value=0, max_value=99),
)
@settings(max_examples=8, deadline=None)
def test_same_seed_is_bit_identical_under_chaos(data_seed, spec_seed):
    first = _fingerprint(data_seed, spec_seed, chaos=True)
    second = _fingerprint(data_seed, spec_seed, chaos=True)
    assert first == second


def test_determinism_holds_with_many_in_flight():
    """The acceptance bar: the bit-identical property is not an
    artefact of low concurrency — the burst regime holds at least 8
    coordinations in flight at once."""
    log, outcomes, summary, _ = _fingerprint(4, 7, chaos=False)
    assert summary["max_inflight"] >= 8
    assert summary["silent"] == 0
    assert len(log) > 0 and len(outcomes) == 24
