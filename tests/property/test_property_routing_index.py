"""Property tests: indexed routing ≡ exhaustive routing, and bounded
routing is a sound restriction of full routing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QueryConstraints, apply_peer_bound, route_query
from repro.core.routing_index import RoutingIndex
from repro.rql.pattern import SchemaPath
from repro.rvl import ActiveSchema
from repro.workloads.paper import N1, paper_query_pattern, paper_schema

SCHEMA = paper_schema()
PATTERN = paper_query_pattern(SCHEMA)

#: all declared schema paths an advertisement may contain
ALL_PATHS = [
    SchemaPath(SCHEMA.domain_of(p), p, SCHEMA.range_of(p))
    for p in sorted(SCHEMA.properties)
]


@st.composite
def advertisement_sets(draw):
    count = draw(st.integers(1, 12))
    ads = []
    for i in range(count):
        subset = draw(
            st.lists(st.sampled_from(ALL_PATHS), min_size=0, max_size=3, unique=True)
        )
        ads.append(
            ActiveSchema(SCHEMA.namespace.uri, subset, peer_id=f"H{i:02d}")
        )
    return ads


class TestIndexEquivalence:
    @given(advertisement_sets())
    @settings(max_examples=60, deadline=None)
    def test_index_matches_exhaustive(self, ads):
        index = RoutingIndex(SCHEMA)
        for advertisement in ads:
            index.add(advertisement)
        via_index = index.route(PATTERN)
        exhaustive = route_query(PATTERN, ads, SCHEMA)
        for path_pattern in PATTERN:
            assert via_index.peers_for(path_pattern) == exhaustive.peers_for(
                path_pattern
            )

    @given(advertisement_sets(), st.integers(0, 11))
    @settings(max_examples=40, deadline=None)
    def test_index_survives_removal(self, ads, victim_index):
        index = RoutingIndex(SCHEMA)
        for advertisement in ads:
            index.add(advertisement)
        victim = ads[victim_index % len(ads)].peer_id
        index.remove(victim)
        survivors = [a for a in ads if a.peer_id != victim]
        via_index = index.route(PATTERN)
        exhaustive = route_query(PATTERN, survivors, SCHEMA)
        for path_pattern in PATTERN:
            assert via_index.peers_for(path_pattern) == exhaustive.peers_for(
                path_pattern
            )


class TestBoundSoundness:
    @given(advertisement_sets(), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_bounded_peers_are_subset(self, ads, bound):
        annotated = route_query(PATTERN, ads, SCHEMA)
        trimmed = apply_peer_bound(
            annotated, QueryConstraints(max_peers_per_pattern=bound)
        )
        for path_pattern in PATTERN:
            full = set(annotated.peers_for(path_pattern))
            bounded = set(trimmed.peers_for(path_pattern))
            assert bounded <= full
            assert len(bounded) <= bound
            # the bound never empties a pattern that had any peer
            if full:
                assert bounded
