"""The whole-system property: for random peer contents, a distributed
hybrid query — blocking or pipelined, with or without streaming —
returns exactly the centralised answer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import Graph, InferredView, Namespace, TYPE
from repro.rql.evaluator import evaluate_pattern
from repro.systems import HybridSystem
from repro.workloads.paper import N1, PAPER_QUERY, paper_query_pattern, paper_schema

SCHEMA = paper_schema()
PATTERN = paper_query_pattern(SCHEMA)
DATA = Namespace("http://dist/")

ASSERTABLE = [N1.prop1, N1.prop2, N1.prop4]
RESOURCES = [DATA[f"r{i}"] for i in range(6)]

statements = st.lists(
    st.tuples(
        st.sampled_from(RESOURCES),
        st.sampled_from(ASSERTABLE),
        st.sampled_from(RESOURCES),
    ),
    max_size=10,
)


@st.composite
def peer_contents(draw):
    bases = {}
    for peer in ("A", "B", "C"):
        graph = Graph()
        for s, p, o in draw(statements):
            definition = SCHEMA.property_def(p)
            graph.add(s, TYPE, definition.domain)
            graph.add(o, TYPE, definition.range)
            graph.add(s, p, o)
        bases[peer] = graph
    return bases


def centralised(bases):
    merged = Graph()
    for graph in bases.values():
        merged.update(graph)
    return (
        evaluate_pattern(PATTERN, InferredView(merged, SCHEMA))
        .project(("X", "Y"))
        .distinct()
    )


def run_distributed(bases, pipelined: bool, chunk_rows):
    system = HybridSystem(SCHEMA)
    system.add_super_peer("SP1")
    for peer_id, graph in bases.items():
        system.add_peer(peer_id, graph, "SP1")
    for peer in system.peers.values():
        peer.pipelined_execution = pipelined
        peer.stream_chunk_rows = chunk_rows
    try:
        return system.query("A", PAPER_QUERY)
    except Exception:
        # unroutable (some pattern has no provider anywhere)
        return None


class TestDistributedEqualsCentralised:
    @given(peer_contents())
    @settings(max_examples=25, deadline=None)
    def test_blocking(self, bases):
        expected = centralised(bases)
        actual = run_distributed(bases, pipelined=False, chunk_rows=None)
        if actual is None:
            assert len(expected) == 0
        else:
            assert actual == expected

    @given(peer_contents())
    @settings(max_examples=25, deadline=None)
    def test_pipelined_streaming(self, bases):
        expected = centralised(bases)
        actual = run_distributed(bases, pipelined=True, chunk_rows=1)
        if actual is None:
            assert len(expected) == 0
        else:
            assert actual == expected

    @given(peer_contents())
    @settings(max_examples=15, deadline=None)
    def test_blocking_and_pipelined_agree(self, bases):
        blocking = run_distributed(bases, pipelined=False, chunk_rows=2)
        pipelined = run_distributed(bases, pipelined=True, chunk_rows=2)
        assert (blocking is None) == (pipelined is None)
        if blocking is not None:
            assert blocking == pipelined
