"""Property-based tests for the RDF substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import Graph, deserialize, serialize

from .strategies import graphs, triples


class TestGraphInvariants:
    @given(graphs())
    def test_length_matches_iteration(self, graph):
        assert len(graph) == len(list(graph))

    @given(graphs(), triples)
    def test_add_then_contains(self, graph, triple):
        graph.add_triple(triple)
        assert triple in graph

    @given(graphs(), triples)
    def test_add_idempotent(self, graph, triple):
        graph.add_triple(triple)
        size = len(graph)
        graph.add_triple(triple)
        assert len(graph) == size

    @given(graphs(), triples)
    def test_remove_inverts_add(self, graph, triple):
        graph.add_triple(triple)
        assert graph.remove_triple(triple)
        assert triple not in graph

    @given(graphs())
    def test_indexes_agree_with_bruteforce(self, graph):
        """Every single-slot index lookup equals the brute-force scan."""
        for triple in list(graph)[:5]:
            by_s = set(graph.triples(subject=triple.subject))
            brute_s = {t for t in graph if t.subject == triple.subject}
            assert by_s == brute_s
            by_p = set(graph.triples(predicate=triple.predicate))
            brute_p = {t for t in graph if t.predicate == triple.predicate}
            assert by_p == brute_p
            by_o = set(graph.triples(obj=triple.object))
            brute_o = {t for t in graph if t.object == triple.object}
            assert by_o == brute_o

    @given(graphs(), graphs())
    def test_union_is_set_union(self, a, b):
        assert set(a | b) == set(a) | set(b)

    @given(graphs())
    def test_copy_equal_but_independent(self, graph):
        clone = graph.copy()
        assert set(clone) == set(graph)
        clone.clear()
        assert len(clone) == 0  # original untouched by clearing the copy
        assert set(graph) == set(graph)


class TestSerializerRoundTrip:
    @given(graphs(max_size=20))
    @settings(max_examples=60)
    def test_roundtrip_identity(self, graph):
        assert set(deserialize(serialize(graph))) == set(graph)

    @given(graphs(max_size=15))
    def test_serialisation_deterministic(self, graph):
        assert serialize(graph) == serialize(Graph(list(graph)))
