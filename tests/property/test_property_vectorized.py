"""Property-based equivalence: columnar batches vs scalar tables.

Every vectorized operator on :class:`BindingBatch` must agree — as a
binding multiset — with the corresponding binding-at-a-time operator
on :class:`BindingTable`, for arbitrary inputs over a closed world.
This is the kernel-level half of the differential-testing story
(``tests/difftest`` covers whole deployments).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.batch import BindingBatch, concat_tables, split_table
from repro.rql.bindings import BindingTable

from .strategies import uris


def tables(columns, max_size=12):
    row = st.tuples(*[uris for _ in columns])
    return st.lists(row, max_size=max_size).map(
        lambda rows: BindingTable(columns, rows)
    )


XY = tables(("X", "Y"))
YZ = tables(("Y", "Z"))
YX = tables(("Y", "X"))
W = tables(("W",))


class TestJoinEquivalence:
    @given(XY, YZ)
    def test_shared_column_join(self, a, b):
        vector = (
            BindingBatch.from_table(a).hash_join(BindingBatch.from_table(b)).to_table()
        )
        assert vector == a.join(b)

    @given(XY, W)
    @settings(max_examples=40)
    def test_cartesian_join(self, a, b):
        vector = (
            BindingBatch.from_table(a).hash_join(BindingBatch.from_table(b)).to_table()
        )
        assert vector == a.join(b)

    @given(XY)
    def test_unit_identity(self, a):
        joined = BindingBatch.unit().hash_join(BindingBatch.from_table(a))
        assert joined.to_table() == a

    @given(XY, YX)
    def test_full_overlap_join(self, a, b):
        """All columns shared: the join is a bag intersection filter."""
        vector = (
            BindingBatch.from_table(a).hash_join(BindingBatch.from_table(b)).to_table()
        )
        assert vector == a.join(b)


class TestUnionEquivalence:
    @given(XY, YX)
    def test_union_aligns_permuted_columns(self, a, b):
        vector = BindingBatch.concat(
            [BindingBatch.from_table(a), BindingBatch.from_table(b)]
        ).to_table()
        assert vector == a.union(b)

    @given(st.lists(tables(("X", "Y"), max_size=6), min_size=1, max_size=5))
    def test_concat_tables_matches_folded_union(self, chunks):
        folded = chunks[0]
        for chunk in chunks[1:]:
            folded = folded.union(chunk)
        assert concat_tables(chunks) == folded


class TestUnaryEquivalence:
    @given(XY)
    def test_project(self, a):
        vector = BindingBatch.from_table(a).project(["Y"]).to_table()
        assert vector == a.project(["Y"])

    @given(XY)
    def test_distinct(self, a):
        vector = BindingBatch.from_table(a).distinct().to_table()
        assert vector == a.distinct()

    @given(XY, st.randoms(use_true_random=False))
    def test_compress_matches_select(self, a, rng):
        mask = [rng.random() < 0.5 for _ in range(len(a))]
        keep = {i for i, flag in enumerate(mask) if flag}
        expected = BindingTable(
            a.columns, [row for i, row in enumerate(a.rows) if i in keep]
        )
        vector = BindingBatch.from_table(a).compress(mask).to_table()
        assert vector == expected


class TestSplitRoundTrip:
    @given(tables(("X", "Y"), max_size=20), st.integers(1, 8))
    def test_split_then_concat_is_identity(self, a, batch_size):
        parts = split_table(a, batch_size)
        assert all(len(part) <= batch_size for part in parts)
        assert concat_tables(parts) == a
        # order is preserved too, not just the multiset
        reassembled = [row for part in parts for row in part.rows]
        assert reassembled == a.rows
