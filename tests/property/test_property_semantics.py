"""The library's central semantic properties, checked on random data:

1. **Routing completeness** — any peer whose base contributes answers
   to a path pattern is annotated by the routing algorithm.
2. **Plan soundness/completeness** — evaluating the generated plan over
   distributed bases returns exactly the centralised answer.
3. **Optimisation preserves semantics** — Plan 1, Plan 2 and Plan 3
   all evaluate to the same result.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_plan, optimize, route_query
from repro.core.algebra import Hole, Join, PlanNode, Scan, Union
from repro.execution.local import evaluate_scan
from repro.execution.operators import join_all, union_all
from repro.rdf import Graph, InferredView, Namespace, TYPE
from repro.rql import evaluate_path_pattern
from repro.rql.evaluator import evaluate_pattern
from repro.rvl import ActiveSchema
from repro.workloads.paper import N1, paper_query_pattern, paper_schema

DATA = Namespace("http://pw/")

SCHEMA = paper_schema()
PATTERN = paper_query_pattern(SCHEMA)

#: The properties random bases may assert (prop4 ⊑ prop1 included).
ASSERTABLE = [N1.prop1, N1.prop2, N1.prop4]


@st.composite
def distributed_bases(draw, peers=("A", "B", "C")):
    """Random peer bases over a small shared resource pool."""
    resources = [DATA[f"r{i}"] for i in range(8)]
    bases = {}
    for peer in peers:
        graph = Graph()
        statements = draw(st.lists(
            st.tuples(
                st.sampled_from(resources),
                st.sampled_from(ASSERTABLE),
                st.sampled_from(resources),
            ),
            max_size=15,
        ))
        for s, p, o in statements:
            definition = SCHEMA.property_def(p)
            graph.add(s, TYPE, definition.domain)
            graph.add(o, TYPE, definition.range)
            graph.add(s, p, o)
        bases[peer] = graph
    return bases


def centralised(bases):
    merged = Graph()
    for graph in bases.values():
        merged.update(graph)
    return evaluate_pattern(PATTERN, InferredView(merged, SCHEMA)).distinct()


def evaluate_plan(plan: PlanNode, bases):
    """Pure (network-free) plan evaluation for semantics checks."""
    if isinstance(plan, Hole):
        raise AssertionError("plan with holes")
    if isinstance(plan, Scan):
        return evaluate_scan(plan, bases[plan.peer_id], SCHEMA)
    tables = [evaluate_plan(c, bases) for c in plan.children()]
    return union_all(tables) if isinstance(plan, Union) else join_all(tables)


def advertisements(bases):
    return [
        ActiveSchema.from_base(graph, SCHEMA, peer) for peer, graph in bases.items()
    ]


class TestRoutingCompleteness:
    @given(distributed_bases())
    @settings(max_examples=40, deadline=None)
    def test_contributing_peer_is_annotated(self, bases):
        annotated = route_query(PATTERN, advertisements(bases), SCHEMA)
        for path_pattern in PATTERN:
            annotated_peers = set(annotated.peers_for(path_pattern))
            for peer, graph in bases.items():
                rows = evaluate_path_pattern(
                    path_pattern, InferredView(graph, SCHEMA)
                )
                if len(rows):
                    assert peer in annotated_peers, (peer, path_pattern.label)


class TestPlanSemantics:
    @given(distributed_bases())
    @settings(max_examples=40, deadline=None)
    def test_plan_equals_centralised_answer(self, bases):
        annotated = route_query(PATTERN, advertisements(bases), SCHEMA)
        if not annotated.is_fully_annotated():
            # some pattern has no data anywhere: centralised answer empty
            assert len(centralised(bases)) == 0
            return
        plan = build_plan(annotated)
        result = evaluate_plan(plan, bases).project(("X", "Y", "Z")).distinct()
        expected = centralised(bases)
        assert result == expected

    @given(distributed_bases())
    @settings(max_examples=40, deadline=None)
    def test_optimisation_preserves_semantics(self, bases):
        annotated = route_query(PATTERN, advertisements(bases), SCHEMA)
        if not annotated.is_fully_annotated():
            return
        plan1 = build_plan(annotated)
        trace = optimize(plan1)
        reference = evaluate_plan(plan1, bases).project(("X", "Y")).distinct()
        for rule, plan in trace:
            evaluated = evaluate_plan(plan, bases).project(("X", "Y")).distinct()
            assert evaluated == reference, rule


class TestSubsumptionSoundness:
    @given(distributed_bases())
    @settings(max_examples=30, deadline=None)
    def test_prop4_data_always_answers_prop1_queries(self, bases):
        """Every prop4 statement must surface through the prop1 pattern
        (RDFS soundness of the evaluator under subsumption)."""
        for graph in bases.values():
            prop4_pairs = {
                (t.subject, t.object) for t in graph.triples(None, N1.prop4, None)
            }
            rows = evaluate_path_pattern(PATTERN.root, InferredView(graph, SCHEMA))
            answered = set(zip(rows.column("X"), rows.column("Y")))
            assert prop4_pairs <= answered
