"""Property test: cached routing ≡ cold routing under arbitrary churn.

Drives a cache-backed :class:`~repro.core.routing_index.RoutingIndex`
through random interleavings of peer joins, Goodbyes, advertisement
refreshes and queries, mirroring every mutation into a plain dict
registry.  After *every* query step, the cache-served annotation must
be identical (``same_annotations``) to a cold
:func:`~repro.core.routing.route_query` over the mirrored registry —
the coherence contract of the ISSUE's caching subsystem.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import route_query
from repro.core.routing_index import RoutingIndex
from repro.rql.pattern import SchemaPath, pattern_from_text
from repro.rvl import ActiveSchema
from repro.workloads.paper import N1, paper_query_pattern, paper_schema

SCHEMA = paper_schema()

#: all declared schema paths an advertisement may contain
ALL_PATHS = [
    SchemaPath(SCHEMA.domain_of(p), p, SCHEMA.range_of(p))
    for p in sorted(SCHEMA.properties)
]

PEER_IDS = [f"H{i:02d}" for i in range(6)]


def _q(body, select="X, Y"):
    return pattern_from_text(
        f"SELECT {select} FROM {body} USING NAMESPACE n1 = &{N1.uri}&", SCHEMA
    )


#: the query mix: the paper's join, its alpha-renamed and reordered
#: variants (same cache entry), and singletons over each property
QUERIES = [
    paper_query_pattern(SCHEMA),
    _q("{A} n1:prop1 {B}, {B} n1:prop2 {C}", select="A, B"),
    _q("{Y} n1:prop2 {Z}, {X} n1:prop1 {Y}"),
    _q("{X} n1:prop1 {Y}"),
    _q("{X} n1:prop2 {Y}"),
    _q("{X} n1:prop3 {Y}"),
    _q("{X} n1:prop4 {Y}"),
]

footprints = st.lists(
    st.sampled_from(ALL_PATHS), min_size=1, max_size=3, unique=True
)

events = st.one_of(
    st.tuples(st.just("advertise"), st.sampled_from(PEER_IDS), footprints),
    st.tuples(st.just("goodbye"), st.sampled_from(PEER_IDS)),
    st.tuples(st.just("query"), st.integers(0, len(QUERIES) - 1)),
)


class TestChurnCoherence:
    @given(st.lists(events, min_size=1, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_cached_answers_track_registry(self, script):
        index = RoutingIndex(SCHEMA)
        registry = {}
        queried = False
        for event in script:
            if event[0] == "advertise":
                _, peer_id, paths = event
                advertisement = ActiveSchema(
                    SCHEMA.namespace.uri, paths, peer_id=peer_id
                )
                index.add(advertisement)
                registry[peer_id] = advertisement
            elif event[0] == "goodbye":
                _, peer_id = event
                index.remove(peer_id)
                registry.pop(peer_id, None)
            else:
                _, which = event
                pattern = QUERIES[which]
                served = index.route(pattern)
                cold = route_query(pattern, registry.values(), SCHEMA)
                assert served.same_annotations(cold), (
                    f"cache diverged on {pattern} after {event}"
                )
                queried = True
        if queried:
            # at least one lookup happened (hit or miss)
            assert index.cache.stats.hits + index.cache.stats.misses > 0

    @given(st.lists(events, min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_repeat_query_after_script_hits_and_agrees(self, script):
        """Whatever the churn history, an immediately repeated query is
        a hit and returns the cold answer."""
        index = RoutingIndex(SCHEMA)
        registry = {}
        for event in script:
            if event[0] == "advertise":
                _, peer_id, paths = event
                advertisement = ActiveSchema(
                    SCHEMA.namespace.uri, paths, peer_id=peer_id
                )
                index.add(advertisement)
                registry[peer_id] = advertisement
            elif event[0] == "goodbye":
                index.remove(event[1])
                registry.pop(event[1], None)
            else:
                index.route(QUERIES[event[1]])
        pattern = QUERIES[0]
        index.route(pattern)  # warm (or already warm)
        hits_before = index.cache.stats.hits
        warm = index.route(pattern)
        assert index.cache.stats.hits == hits_before + 1
        assert warm.same_annotations(route_query(pattern, registry.values(), SCHEMA))
