"""Dictionary-encoding properties: round-trips and kernel equivalence.

Three walls around the columnar core:

* a :class:`~repro.rdf.dictionary.TermDictionary` round-trips every
  term kind — URIs, blank nodes, variables, and literals of every
  datatype/language shape — through ``encode``/``decode``, including
  the wire codec's serialisation of the per-channel entries;
* the full table cycle (scalar table → :func:`encode_table` →
  :func:`split_encoded` chunks → :func:`decode_table` → concat) is
  lossless, row order included, for every batch size;
* the encoded kernels are observationally equal to the scalar ones:
  joining/filtering/concatenating id tables and decoding at the end
  yields exactly what the term-space operators produce.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels.packets import DictionaryPacket
from repro.execution.batch import BindingBatch, concat_tables
from repro.execution.encoded import (
    EncodedTable,
    decode_cells,
    decode_table,
    encode_cells,
    encode_table,
    is_id_table,
    split_encoded,
)
from repro.execution.operators import finalize, finalize_encoded
from repro.rdf.dictionary import TermDictionary
from repro.rdf.terms import BNode, Literal, URI, Variable
from repro.rql.ast import Condition
from repro.rql.bindings import BindingTable
from repro.transport.codec import decode_payload, encode_payload

safe_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=16
)
uris = st.from_regex(r"[a-z]{1,8}", fullmatch=True).map(
    lambda s: URI(f"http://example.org/{s}")
)
#: every Term kind the model has, literals in every shape
terms = st.one_of(
    uris,
    st.from_regex(r"[a-z0-9]{1,8}", fullmatch=True).map(BNode),
    st.from_regex(r"[A-Z][a-z0-9]{0,6}", fullmatch=True).map(Variable),
    safe_text.map(Literal),
    st.integers(-10**9, 10**9).map(Literal),
    st.booleans().map(Literal),
    st.floats(allow_nan=False, allow_infinity=False, width=32).map(Literal),
    st.tuples(safe_text, st.sampled_from(["en", "el", "fr"])).map(
        lambda pair: Literal(pair[0], language=pair[1])
    ),
)


@st.composite
def binding_tables(draw, min_width: int = 1, max_width: int = 4):
    width = draw(st.integers(min_width, max_width))
    columns = tuple(f"V{i}" for i in range(width))
    rows = draw(st.lists(st.tuples(*([terms] * width)), max_size=12))
    return BindingTable(columns, [tuple(r) for r in rows])


# ----------------------------------------------------------------------
# dictionary round-trips
# ----------------------------------------------------------------------
@given(st.lists(terms, max_size=30))
def test_dictionary_round_trips_every_term_kind(values):
    d = TermDictionary()
    ids = [d.encode(t) for t in values]
    assert [d.decode(i) for i in ids] == values
    # interning: a second pass assigns the same ids
    assert [d.encode(t) for t in values] == ids
    assert len(d) == len(set(values))


@given(st.lists(terms, min_size=1, max_size=20))
def test_dictionary_entries_cover_requested_ids(values):
    d = TermDictionary()
    ids = d.encode_many(values)
    entries = d.entries(ids)
    mapping = dict(entries)
    assert sorted(mapping) == sorted(set(ids))
    for tid, term in entries:
        assert d.decode(tid) == term


@given(st.lists(terms, max_size=12), st.integers(0, 10**6))
def test_dictionary_entries_survive_wire_codec(values, channel_seq):
    """The per-channel dictionary payload round-trips the transport
    codec exactly, for every term kind."""
    d = TermDictionary()
    ids = d.encode_many(values)
    packet = DictionaryPacket(f"P1#{channel_seq}", d.entries(ids))
    decoded = decode_payload(encode_payload(packet))
    assert decoded == packet
    assert dict(decoded.entries) == dict(packet.entries)


# ----------------------------------------------------------------------
# full table cycle
# ----------------------------------------------------------------------
@given(binding_tables(), st.integers(1, 9))
@settings(max_examples=60)
def test_encode_split_decode_cycle_is_lossless(table, batch_size):
    d = TermDictionary()
    encoded = encode_table(table, d)
    mapping = dict(d.entries(encoded.used_ids()))
    chunks = split_encoded(encoded, batch_size)
    assert sum(len(c) for c in chunks) == len(table.rows)
    decoded = concat_tables([decode_table(c, mapping) for c in chunks])
    assert decoded.columns == table.columns
    assert decoded.rows == table.rows  # row order included


@given(binding_tables())
def test_encoded_table_survives_wire_codec(table):
    d = TermDictionary()
    encoded = encode_table(table, d)
    decoded = decode_payload(encode_payload(encoded))
    assert isinstance(decoded, EncodedTable)
    assert decoded == encoded


@given(binding_tables())
def test_cell_codecs_invert(table):
    d = TermDictionary()
    ids = encode_cells(table, d)
    if table.rows:
        assert is_id_table(ids)
    assert decode_cells(ids, d).rows == table.rows
    assert not is_id_table(table) or not table.rows


# ----------------------------------------------------------------------
# encoded kernel ≡ scalar kernel
# ----------------------------------------------------------------------
def _shared_world(draw_tables):
    """Encode several tables through one dictionary (as one peer does)."""
    d = TermDictionary()
    return d, [encode_cells(t, d) for t in draw_tables]


@given(binding_tables(max_width=3), binding_tables(max_width=3))
@settings(max_examples=60)
def test_encoded_join_equals_scalar_join(left, right):
    d, (enc_left, enc_right) = _shared_world([left, right])
    scalar = BindingBatch.from_table(left).hash_join(
        BindingBatch.from_table(right)
    ).to_table()
    encoded = BindingBatch.from_table(enc_left).hash_join(
        BindingBatch.from_table(enc_right)
    ).to_table()
    assert decode_cells(encoded, d).rows == scalar.rows
    assert encoded.columns == scalar.columns


@given(st.lists(binding_tables(min_width=2, max_width=2), min_size=1, max_size=4))
@settings(max_examples=60)
def test_encoded_concat_equals_scalar_concat(tables):
    d, encoded_tables = _shared_world(tables)
    scalar = concat_tables(tables)
    encoded = concat_tables(encoded_tables)
    assert decode_cells(encoded, d).rows == scalar.rows


@given(
    binding_tables(min_width=2, max_width=3),
    st.sampled_from(["=", "!=", "<", "<=", ">", ">=", "like"]),
    terms,
    st.booleans(),
)
@settings(max_examples=80)
def test_encoded_finalize_equals_scalar_finalize(table, operator, value, var_rhs):
    """Filter + project + distinct on ids, decoding per distinct id,
    matches the scalar path row for row."""
    if var_rhs:
        condition = Condition("V0", operator, Variable("V1"), value_is_variable=True)
    else:
        condition = Condition("V0", operator, value)
    projections = list(table.columns[:2])
    d = TermDictionary()
    ids = encode_cells(table, d)
    scalar = finalize(table, projections, [condition], vectorize=True)
    encoded = finalize_encoded(ids, d, projections, [condition])
    assert encoded.columns == scalar.columns
    assert encoded.rows == scalar.rows


def test_ordered_comparison_with_mixed_term_kinds_rejects_rows():
    """Regression (found by the property above): ordering a boolean
    literal against a URI used to raise AttributeError out of
    ``URI.__lt__`` instead of the TypeError the incomparable-types rule
    maps to False — on both the scalar and the encoded path."""
    table = BindingTable(
        ("V0", "V1"),
        [
            (Literal(True), URI("http://example.org/x")),
            (URI("http://example.org/b"), Literal(False)),
        ],
    )
    condition = Condition("V0", ">", URI("http://example.org/a"))
    scalar = finalize(table, ["V0", "V1"], [condition], vectorize=True)
    d = TermDictionary()
    encoded = finalize_encoded(
        encode_cells(table, d), d, ["V0", "V1"], [condition]
    )
    # the boolean row is incomparable (rejected); the URI row compares
    assert scalar.rows == [(URI("http://example.org/b"), Literal(False))]
    assert encoded.rows == scalar.rows
