"""Unit tests for the length-prefixed wire framing."""

import struct

import pytest

from repro.errors import CodecError
from repro.transport.framing import MAX_FRAME_BYTES, FrameReader, pack_frame


def test_pack_and_feed_round_trip():
    reader = FrameReader()
    payload = b'{"kind": "msg", "body": {}}'
    frames = reader.feed(pack_frame(payload))
    assert frames == [payload]
    assert reader.pending_bytes() == 0


def test_byte_at_a_time_feeding():
    reader = FrameReader()
    packed = pack_frame(b"hello") + pack_frame(b"world")
    collected = []
    for i in range(len(packed)):
        collected.extend(reader.feed(packed[i : i + 1]))
    assert collected == [b"hello", b"world"]


def test_many_frames_in_one_chunk():
    reader = FrameReader()
    payloads = [bytes([i]) * (i + 1) for i in range(20)]
    chunk = b"".join(pack_frame(p) for p in payloads)
    assert reader.feed(chunk) == payloads


def test_split_across_chunks_keeps_pending():
    reader = FrameReader()
    packed = pack_frame(b"x" * 100)
    assert reader.feed(packed[:50]) == []
    assert reader.pending_bytes() > 0
    assert reader.feed(packed[50:]) == [b"x" * 100]


def test_empty_frame_round_trips():
    reader = FrameReader()
    assert reader.feed(pack_frame(b"")) == [b""]


def test_oversize_pack_raises():
    with pytest.raises(CodecError):
        pack_frame(b"\0" * (MAX_FRAME_BYTES + 1))


def test_oversize_header_raises_on_feed():
    reader = FrameReader()
    bogus = struct.pack(">I", MAX_FRAME_BYTES + 1)
    with pytest.raises(CodecError):
        reader.feed(bogus + b"x")
