"""In-process integration tests for the asyncio TCP transport.

Two (or more) :class:`AsyncioTransport` instances live in this test
process, each with its own event loop and its own ``Network``; a pump
alternates short run slices between them so real TCP traffic flows on
localhost without spawning OS processes.  (Full multi-process coverage
lives in ``tests/difftest/test_transport.py``.)
"""

import pytest

from repro.net.message import DeliveryFailure, Message
from repro.net.simulator import Network
from repro.peers.base import Peer
from repro.peers.churn import Goodbye
from repro.transport.live import AsyncioTransport

#: Aggressive clock for tests: 200 virtual units per real second.
TIME_SCALE = 0.005


class Probe(Peer):
    """Records every payload it receives."""

    def __init__(self, peer_id):
        super().__init__(peer_id)
        self.received = []
        self.failures = []

    def handle_Goodbye(self, message):
        self.received.append(message.payload)

    def handle_DeliveryFailure(self, message):
        self.failures.append(message.payload.original)


def pump(transports, predicate, timeout=3_000.0):
    """Alternate run slices across transports until the predicate holds."""
    budget = timeout
    while not predicate() and budget > 0:
        for transport in transports:
            transport.run(until=transport.now + 5.0)
        budget -= 5.0
    return predicate()


def make_process(node_id, seed=None):
    transport = AsyncioTransport(seed=seed, time_scale=TIME_SCALE)
    network = Network(seed=0, transport=transport, observability=False)
    probe = Probe(node_id)
    probe.join(network)
    transport.start()
    return transport, network, probe


@pytest.fixture()
def cluster():
    """A seed process and one peer process, joined."""
    transports = []
    try:
        seed_t, seed_net, seed_probe = make_process("A")
        transports.append(seed_t)
        peer_t, peer_net, peer_probe = make_process("B", seed=seed_t.address)
        transports.append(peer_t)
        assert pump(
            transports,
            lambda: "B" in seed_t.book and "A" in peer_t.book,
        ), "bootstrap never completed"
        yield {
            "A": (seed_t, seed_net, seed_probe),
            "B": (peer_t, peer_net, peer_probe),
        }
    finally:
        for transport in transports:
            transport.close()


def test_bootstrap_builds_the_address_book(cluster):
    seed_t = cluster["A"][0]
    peer_t = cluster["B"][0]
    assert seed_t.book["B"] == peer_t.address
    assert peer_t.book["A"] == seed_t.address


def test_messages_flow_both_ways(cluster):
    seed_t, seed_net, seed_probe = cluster["A"]
    peer_t, peer_net, peer_probe = cluster["B"]
    seed_net.send(Message("A", "B", Goodbye("A")))
    peer_net.send(Message("B", "A", Goodbye("B")))
    assert pump(
        [seed_t, peer_t],
        lambda: seed_probe.received and peer_probe.received,
    )
    assert peer_probe.received == [Goodbye("A")]
    assert seed_probe.received == [Goodbye("B")]


def test_graceful_bye_leaves_the_book(cluster):
    seed_t = cluster["A"][0]
    peer_t = cluster["B"][0]
    peer_t.close()
    assert pump([seed_t], lambda: "B" not in seed_t.book)


def test_unknown_destination_bounces_after_grace(cluster):
    seed_t, seed_net, seed_probe = cluster["A"]
    peer_t = cluster["B"][0]
    seed_net.send(Message("A", "nobody", Goodbye("A")))
    assert pump([seed_t, peer_t], lambda: seed_probe.failures)
    assert seed_probe.failures[0].dst == "nobody"
    assert isinstance(seed_probe.failures[0].payload, Goodbye)


def test_dead_address_bounces_after_dial_retries(cluster):
    seed_t, seed_net, seed_probe = cluster["A"]
    peer_t = cluster["B"][0]
    # a victim process that joins, then dies without saying bye
    victim_t, victim_net, _ = make_process("V", seed=seed_t.address)
    assert pump([seed_t, peer_t, victim_t], lambda: "V" in seed_t.book)
    victim_port = victim_t.address[1]
    # tear the victim's sockets down WITHOUT the graceful bye
    for conn in list(victim_t._conns.values()):
        conn.close()
    for writer in victim_t._inbound:
        writer.close()
    victim_t._server.close()
    victim_t.loop.run_until_complete(victim_t._server.wait_closed())
    victim_t.loop.close()
    assert seed_t.book.get("V") == ("127.0.0.1", victim_port)  # stale entry
    seed_net.send(Message("A", "V", Goodbye("A")))
    assert pump([seed_t, peer_t], lambda: seed_probe.failures, timeout=20_000.0)
    assert seed_probe.failures[0].dst == "V"


def test_metrics_meter_on_the_sending_process(cluster):
    seed_t, seed_net, _ = cluster["A"]
    peer_t, peer_net, peer_probe = cluster["B"]
    before = seed_net.metrics.messages_total
    seed_net.send(Message("A", "B", Goodbye("A")))
    assert pump([seed_t, peer_t], lambda: peer_probe.received)
    # each process meters what it sends; a cluster-wide view comes from
    # merging the per-process expositions (python -m repro metrics --merge)
    assert seed_net.metrics.messages_total == before + 1
    assert seed_net.metrics.messages_by_kind.get("Goodbye")
