"""The transport seam must not change the simulator's behaviour.

``SimTransport`` is the default; these tests pin (a) that passing one
explicitly is identical to the default, (b) that seeded runs stay
deterministic through the seam, and (c) that event-budget diagnostics
now name the active transport.
"""

import pytest

from repro.errors import EventBudgetExhausted
from repro.transport import SimTransport
from repro.workload_engine import WorkloadSpec

from tests.difftest.harness import build_hybrid, make_workload


def _serve(workload, count=8, **system_options):
    system = build_hybrid(workload, **system_options)
    spec = WorkloadSpec(
        queries=tuple(
            (
                workload.peer_ids[i % len(workload.peer_ids)],
                workload.queries[i % len(workload.queries)],
            )
            for i in range(count)
        ),
        count=count,
        mode="open",
        arrival_rate=0.5,
        clients=3,
        seed=workload.seed,
    )
    report = system.serve(spec)
    return system, report


def _fingerprint(system, report):
    return (
        tuple((o.index, o.status, o.rows, o.error) for o in report.outcomes),
        system.network.metrics.summary(),
        system.network.now,
    )


def test_explicit_sim_transport_is_the_default():
    workload = make_workload(seed=5)
    default = _fingerprint(*_serve(workload))
    explicit = _fingerprint(*_serve(workload, transport=SimTransport()))
    assert explicit == default


def test_seeded_runs_are_bit_identical():
    workload = make_workload(seed=11)
    assert _fingerprint(*_serve(workload)) == _fingerprint(*_serve(workload))


def test_event_budget_diagnostics_name_the_transport():
    workload = make_workload(seed=2)
    system = build_hybrid(workload)
    client = system.add_client("c1")
    client.submit(workload.peer_ids[0], workload.queries[0])
    with pytest.raises(EventBudgetExhausted) as excinfo:
        system.network.run(max_events=3)
    assert excinfo.value.diagnostics.get("transport") == "sim"
    assert "transport" in str(excinfo.value)


def test_live_diagnostics_report_socket_counts():
    from repro.transport.live import AsyncioTransport

    transport = AsyncioTransport()
    try:
        extra = transport.diagnostics_extra()
        assert extra == {"open_sockets": 0, "address_book_size": 0}
    finally:
        transport.close()
