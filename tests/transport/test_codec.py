"""Round-trip tests for the wire codec over every message kind.

The canonical-form property these tests lean on: ``encode_message``
omits process-local identity (the message id), so decode→re-encode is
byte-identical — the equality the live transport's differential
validation is built on.
"""

import json

import pytest

from repro.core import build_plan, optimize, route_query
from repro.core.algebra import Hole, Join, Scan, Union
from repro.channels.packets import (
    ChangePlanPacket,
    DataPacket,
    StatsPacket,
    SubPlanPacket,
)
from repro.errors import CodecError
from repro.net.message import DeliveryFailure, Message
from repro.obs import TraceContext
from repro.peers.churn import Goodbye
from repro.peers.protocol import (
    Advertise,
    AdvertisementReply,
    AdvertisementRequest,
    DelegatedResult,
    PartialPlan,
    QueryResult,
    QueryShed,
    QuerySubmit,
    RouteBusy,
    RouteReply,
    RouteRequest,
)
from repro.rdf.terms import BNode, Literal, URI, Variable
from repro.resilience.partial import Coverage
from repro.rql.bindings import BindingTable
from repro.rvl import ActiveSchema
from repro.transport.codec import (
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
    encode_payload,
    decode_payload,
)
from repro.workloads.paper import (
    paper_active_schemas,
    paper_peer_bases,
    paper_query_pattern,
    paper_schema,
)


def round_trip(payload, src="P1", dst="P2"):
    message = Message(src, dst, payload)
    fields = encode_message(message)
    # the wire carries JSON: the encoding must survive serialisation
    fields = json.loads(json.dumps(fields))
    decoded = decode_message(fields)
    assert decoded.src == src and decoded.dst == dst
    # canonical form: re-encoding the decoded message is identical
    assert encode_message(decoded) == fields
    return decoded.payload


@pytest.fixture(scope="module")
def schema():
    return paper_schema()


@pytest.fixture(scope="module")
def annotated(schema):
    pattern = paper_query_pattern(schema)
    return route_query(pattern, paper_active_schemas(schema).values(), schema)


@pytest.fixture(scope="module")
def plan(annotated):
    return optimize(build_plan(annotated)).result


def sample_table():
    return BindingTable(
        ("X", "Y"),
        [
            (URI("http://example.org/a"), Literal("x")),
            (BNode("b1"), Literal(3)),
            (URI("http://example.org/c"), Literal(2.5)),
        ],
    )


def test_terms_round_trip():
    for term in (
        URI("http://example.org/x"),
        BNode("node7"),
        Variable("X"),
        Literal("plain"),
        Literal("tagged", language="en"),
        Literal(42),
        Literal(1.5),
        Literal(True),
    ):
        assert decode_payload(json.loads(json.dumps(encode_payload(term)))) == term


def test_query_submit_round_trip():
    payload = QuerySubmit("q1", "SELECT X FROM ...", "client1",
                          max_peers=2, limit=10, order_by="X", descending=True)
    assert round_trip(payload) == payload


def test_query_result_with_coverage_round_trip(annotated):
    coverage = Coverage(
        answered=(annotated.query_pattern.patterns[0],),
        unanswered=tuple(annotated.query_pattern.patterns[1:]),
        excluded_peers=("P2",),
        attempts=3,
    )
    payload = QueryResult("q1", sample_table(), None, coverage)
    decoded = round_trip(payload)
    assert decoded.table == payload.table
    assert decoded.coverage == coverage


def test_routing_messages_round_trip(annotated):
    request = RouteRequest("q2", annotated.query_pattern, "P1", hops=1)
    decoded = round_trip(request)
    assert decoded.pattern == annotated.query_pattern
    reply = round_trip(RouteReply("q2", annotated))
    assert reply.annotated.query_pattern == annotated.query_pattern
    for pattern in annotated.query_pattern:
        assert reply.annotated.peers_for(pattern) == annotated.peers_for(pattern)
    assert reply.annotated.all_peers() == annotated.all_peers()


def test_advertisements_round_trip(schema):
    bases = paper_peer_bases()
    active = ActiveSchema.from_base(bases["P1"], schema, "P1")
    decoded = round_trip(Advertise(active))
    assert decoded.active_schema.to_dict() == active.to_dict()
    assert round_trip(AdvertisementRequest("P1", depth=2)) == AdvertisementRequest(
        "P1", depth=2
    )
    reply = round_trip(AdvertisementReply((active,), "SP1"))
    assert reply.from_peer == "SP1"
    assert reply.schemas[0].to_dict() == active.to_dict()


def test_plan_messages_round_trip(plan, annotated):
    partial = PartialPlan("q3", plan, annotated.query_pattern, "P1", "client1",
                          visited=("P1", "P2"), conditions_text="X > 3", token=4)
    decoded = round_trip(partial)
    assert decoded.plan.render() == plan.render()
    assert decoded.visited == ("P1", "P2")
    sub = SubPlanPacket("ch-1", plan, {(0, 1): "P2", (): "P1"}, "P1", "q3")
    decoded = round_trip(sub)
    assert decoded.plan.render() == plan.render()
    assert decoded.sites == {(0, 1): "P2", (): "P1"}


def test_algebra_nodes_round_trip(annotated):
    pattern = annotated.query_pattern.patterns[0]
    tree = Union([
        Join([Scan([pattern], "P1"), Hole(pattern)]),
        Scan([pattern], "P2"),
    ])
    decoded = decode_payload(json.loads(json.dumps(encode_payload(tree))))
    assert decoded.render() == tree.render()


def test_channel_packets_round_trip():
    data = DataPacket("ch-1", sample_table(), final=True, failed_peer="P3", seq=7)
    decoded = round_trip(data)
    assert decoded.table == data.table
    assert (decoded.final, decoded.failed_peer, decoded.seq) == (True, "P3", 7)
    assert round_trip(ChangePlanPacket("ch-1", "peer lost")) == ChangePlanPacket(
        "ch-1", "peer lost"
    )
    stats = StatsPacket("ch-1", 12, {"P1": 5, "P2": 7})
    assert round_trip(stats) == stats


def test_misc_payloads_round_trip():
    assert round_trip(QueryShed("q1", 25.0, "P1")) == QueryShed("q1", 25.0, "P1")
    assert round_trip(RouteBusy("q1", 10.0, "SP1")) == RouteBusy("q1", 10.0, "SP1")
    assert round_trip(Goodbye("P2")) == Goodbye("P2")
    delegated = DelegatedResult("q4", sample_table(), "P2", None, token=2)
    assert round_trip(delegated).table == delegated.table


def test_delivery_failure_nests_original():
    original = Message("P1", "P2", QuerySubmit("q9", "SELECT ...", "client1"))
    decoded = round_trip(DeliveryFailure(original), src="_net", dst="P1")
    assert decoded.original.src == "P1"
    assert decoded.original.dst == "P2"
    assert decoded.original.payload == original.payload


def test_trace_context_rides_the_envelope():
    message = Message("P1", "P2", Goodbye("P1"),
                      trace=TraceContext("t-1", "s-1"))
    fields = json.loads(json.dumps(encode_message(message)))
    decoded = decode_message(fields)
    assert decoded.trace == TraceContext("t-1", "s-1")


def test_decoded_message_draws_fresh_local_id():
    message = Message("P1", "P2", Goodbye("P1"))
    decoded = decode_message(encode_message(message))
    assert decoded.id != message.id  # local identity never crosses the wire


def test_unknown_dataclass_fields_are_ignored():
    fields = encode_payload(Goodbye("P2"))
    fields["f"]["introduced_in_a_future_version"] = {"nested": [1, 2]}
    assert decode_payload(fields) == Goodbye("P2")


def test_unknown_message_envelope_keys_are_ignored():
    fields = encode_message(Message("P1", "P2", Goodbye("P1")))
    fields["future_envelope_extension"] = True
    assert decode_message(fields).payload == Goodbye("P1")


def test_unknown_kind_raises():
    with pytest.raises(CodecError):
        decode_payload({"$k": "NotARegisteredPayload", "f": {}})


def test_unencodable_object_raises():
    class Mystery:
        pass

    with pytest.raises(CodecError):
        encode_payload(Mystery())


def test_frame_envelope():
    data = encode_frame("hello", {"nodes": ["P1"], "addr": ["127.0.0.1", 9]})
    kind, body = decode_frame(data)
    assert kind == "hello"
    assert body == {"nodes": ["P1"], "addr": ["127.0.0.1", 9]}
    with pytest.raises(CodecError):
        decode_frame(b"not json")
    with pytest.raises(CodecError):
        decode_frame(json.dumps({"body": {}}).encode())
