"""Unit tests for the incremental (pipelined) operators."""

import pytest

from repro.errors import EvaluationError
from repro.execution.pipeline import (
    IncrementalHashJoin,
    IncrementalUnion,
    JoinCascade,
)
from repro.rdf import Namespace
from repro.rql.bindings import BindingTable

EX = Namespace("http://e/")


def chunk(columns, rows):
    return BindingTable(columns, rows)


class TestIncrementalHashJoin:
    def collect(self):
        out = []
        return out, out.append

    def test_matches_emerge_as_inputs_meet(self):
        out, emit = self.collect()
        join = IncrementalHashJoin(("X", "Y"), ("Y", "Z"), emit)
        join.feed_left(chunk(("X", "Y"), [(EX.a, EX.b)]))
        assert out == []  # nothing to match yet
        join.feed_right(chunk(("Y", "Z"), [(EX.b, EX.c)]))
        assert len(out) == 1
        assert out[0].rows == [(EX.a, EX.b, EX.c)]

    def test_symmetric_order_gives_same_rows(self):
        out1, emit1 = self.collect()
        join1 = IncrementalHashJoin(("X", "Y"), ("Y", "Z"), emit1)
        join1.feed_left(chunk(("X", "Y"), [(EX.a, EX.b)]))
        join1.feed_right(chunk(("Y", "Z"), [(EX.b, EX.c)]))

        out2, emit2 = self.collect()
        join2 = IncrementalHashJoin(("X", "Y"), ("Y", "Z"), emit2)
        join2.feed_right(chunk(("Y", "Z"), [(EX.b, EX.c)]))
        join2.feed_left(chunk(("X", "Y"), [(EX.a, EX.b)]))
        assert out1[0] == out2[0]

    def test_equivalent_to_batch_join(self):
        left = chunk(("X", "Y"), [(EX.a, EX.b), (EX.c, EX.b), (EX.d, EX.e)])
        right = chunk(("Y", "Z"), [(EX.b, EX.z1), (EX.b, EX.z2), (EX.e, EX.z3)])
        expected = left.join(right)

        out, emit = self.collect()
        join = IncrementalHashJoin(left.columns, right.columns, emit)
        # interleave chunk-by-chunk
        for i in range(len(left)):
            join.feed_left(chunk(left.columns, [left.rows[i]]))
            if i < len(right):
                join.feed_right(chunk(right.columns, [right.rows[i]]))
        for i in range(len(left), len(right)):
            join.feed_right(chunk(right.columns, [right.rows[i]]))
        merged = BindingTable(join.out_columns)
        for piece in out:
            for row in piece.rows:
                merged.append(row)
        assert merged == expected

    def test_no_shared_columns_is_product(self):
        out, emit = self.collect()
        join = IncrementalHashJoin(("X",), ("Y",), emit)
        join.feed_left(chunk(("X",), [(EX.a,), (EX.b,)]))
        join.feed_right(chunk(("Y",), [(EX.c,)]))
        total = sum(len(piece) for piece in out)
        assert total == 2

    def test_done_after_both_finished(self):
        out, emit = self.collect()
        join = IncrementalHashJoin(("X",), ("X",), emit)
        assert not join.done
        join.finish_left()
        join.finish_right()
        assert join.done

    def test_empty_chunks_emit_nothing(self):
        out, emit = self.collect()
        join = IncrementalHashJoin(("X", "Y"), ("Y", "Z"), emit)
        join.feed_left(BindingTable(("X", "Y")))
        join.feed_right(BindingTable(("Y", "Z")))
        assert out == []


class TestIncrementalUnion:
    def test_chunks_pass_through_aligned(self):
        out = []
        union = IncrementalUnion(("X", "Y"), inputs=2, emit=out.append)
        union.feed(chunk(("X", "Y"), [(EX.a, EX.b)]))
        union.feed(chunk(("Y", "X"), [(EX.d, EX.c)]))  # permuted columns
        assert out[0].rows == [(EX.a, EX.b)]
        assert out[1].rows == [(EX.c, EX.d)]

    def test_mismatched_columns_rejected(self):
        union = IncrementalUnion(("X",), inputs=1, emit=lambda c: None)
        with pytest.raises(EvaluationError):
            union.feed(chunk(("Z",), [(EX.a,)]))

    def test_done_counting(self):
        union = IncrementalUnion(("X",), inputs=2, emit=lambda c: None)
        union.finish_one()
        assert not union.done
        union.finish_one()
        assert union.done

    def test_zero_inputs_rejected(self):
        with pytest.raises(EvaluationError):
            IncrementalUnion(("X",), inputs=0, emit=lambda c: None)


class TestJoinCascade:
    def test_three_way_equivalent_to_batch(self):
        a = chunk(("X", "Y"), [(EX.a, EX.b), (EX.a2, EX.b)])
        b = chunk(("Y", "Z"), [(EX.b, EX.c)])
        c = chunk(("Z", "W"), [(EX.c, EX.d), (EX.c, EX.d2)])
        expected = a.join(b).join(c)

        out = []
        cascade = JoinCascade([a.columns, b.columns, c.columns], out.append)
        cascade.feed(2, c)
        cascade.feed(0, a)
        cascade.feed(1, b)
        merged = BindingTable(cascade.out_columns)
        for piece in out:
            for row in piece.rows:
                merged.append(row)
        assert merged == expected

    def test_done_tracking(self):
        cascade = JoinCascade([("X",), ("X",), ("X",)], lambda c: None)
        for i in range(3):
            assert not cascade.done
            cascade.finish(i)
        assert cascade.done

    def test_single_input_rejected(self):
        with pytest.raises(EvaluationError):
            JoinCascade([("X",)], lambda c: None)
