"""Unit tests for the columnar BindingBatch kernel."""

import pytest

from repro.errors import EvaluationError
from repro.execution.batch import BindingBatch, concat_tables, split_table
from repro.execution.operators import (
    apply_conditions,
    finalize,
    join_all,
    union_all,
    vjoin_all,
    vunion_all,
)
from repro.rdf import Literal, Namespace
from repro.rql.ast import Condition
from repro.rql.bindings import BindingTable

EX = Namespace("http://e/")


def table(columns, rows):
    return BindingTable(columns, rows)


class TestConversions:
    def test_round_trip_preserves_rows_and_order(self):
        t = table(("X", "Y"), [(EX.a, EX.b), (EX.c, EX.d), (EX.a, EX.b)])
        assert BindingBatch.from_table(t).to_table().rows == t.rows

    def test_round_trip_empty_table(self):
        t = table(("X",), [])
        back = BindingBatch.from_table(t).to_table()
        assert back.columns == ("X",)
        assert back.rows == []

    def test_unit_round_trips(self):
        assert BindingBatch.unit().to_table() == BindingTable.unit()

    def test_zero_column_length_preserved(self):
        t = BindingTable.unit()
        batch = BindingBatch.from_table(t)
        assert len(batch) == 1
        assert len(batch.to_table()) == 1

    def test_duplicate_columns_rejected(self):
        with pytest.raises(EvaluationError):
            BindingBatch(("X", "X"))

    def test_ragged_columns_rejected(self):
        with pytest.raises(EvaluationError):
            BindingBatch(("X", "Y"), {"X": [EX.a], "Y": []})


class TestHashJoin:
    def test_matches_scalar_join(self):
        a = table(("X", "Y"), [(EX.a, EX.b), (EX.c, EX.d), (EX.a, EX.e)])
        b = table(("Y", "Z"), [(EX.b, EX.f), (EX.b, EX.g), (EX.d, EX.h)])
        scalar = a.join(b)
        vector = (
            BindingBatch.from_table(a).hash_join(BindingBatch.from_table(b)).to_table()
        )
        assert vector == scalar
        assert vector.columns == scalar.columns

    def test_duplicates_multiply(self):
        a = table(("X",), [(EX.a,), (EX.a,)])
        b = table(("X",), [(EX.a,), (EX.a,), (EX.a,)])
        out = BindingBatch.from_table(a).hash_join(BindingBatch.from_table(b))
        assert len(out) == 6

    def test_cartesian_when_no_shared_columns(self):
        a = table(("X",), [(EX.a,), (EX.b,)])
        b = table(("Y",), [(EX.c,), (EX.d,)])
        vector = (
            BindingBatch.from_table(a).hash_join(BindingBatch.from_table(b)).to_table()
        )
        assert vector == a.join(b)
        assert len(vector) == 4

    def test_unit_is_identity(self):
        t = table(("X",), [(EX.a,), (EX.b,)])
        joined = BindingBatch.unit().hash_join(BindingBatch.from_table(t))
        assert joined.to_table() == t

    def test_empty_side_gives_empty(self):
        a = table(("X",), [])
        b = table(("X",), [(EX.a,)])
        out = BindingBatch.from_table(a).hash_join(BindingBatch.from_table(b))
        assert len(out) == 0


class TestConcatProjectCompress:
    def test_concat_aligns_column_permutations(self):
        a = table(("X", "Y"), [(EX.a, EX.b)])
        b = table(("Y", "X"), [(EX.c, EX.d)])
        out = BindingBatch.concat(
            [BindingBatch.from_table(a), BindingBatch.from_table(b)]
        ).to_table()
        assert out == a.union(b)

    def test_concat_mismatched_columns_rejected(self):
        a = BindingBatch.from_table(table(("X",), []))
        b = BindingBatch.from_table(table(("Y",), []))
        with pytest.raises(EvaluationError):
            BindingBatch.concat([a, b])

    def test_project_copies(self):
        batch = BindingBatch.from_table(table(("X", "Y"), [(EX.a, EX.b)]))
        projected = batch.project(["Y"])
        projected.data["Y"].append(EX.z)
        assert len(batch.data["Y"]) == 1

    def test_project_missing_column_rejected(self):
        batch = BindingBatch.from_table(table(("X",), []))
        with pytest.raises(EvaluationError):
            batch.project(["Z"])

    def test_compress_keeps_masked_rows(self):
        batch = BindingBatch.from_table(
            table(("X",), [(EX.a,), (EX.b,), (EX.c,)])
        )
        out = batch.compress([True, False, True])
        assert out.to_table().rows == [(EX.a,), (EX.c,)]

    def test_compress_wrong_mask_length_rejected(self):
        batch = BindingBatch.from_table(table(("X",), [(EX.a,)]))
        with pytest.raises(EvaluationError):
            batch.compress([True, False])

    def test_distinct_keeps_first_occurrences(self):
        t = table(("X",), [(EX.a,), (EX.b,), (EX.a,)])
        assert BindingBatch.from_table(t).distinct().to_table() == t.distinct()

    def test_distinct_zero_columns(self):
        batch = BindingBatch((), length=5)
        assert len(batch.distinct()) == 1

    def test_align_reorders_header(self):
        batch = BindingBatch.from_table(table(("X", "Y"), [(EX.a, EX.b)]))
        aligned = batch.align(("Y", "X"))
        assert aligned.to_table().rows == [(EX.b, EX.a)]


class TestSplit:
    def test_split_partitions(self):
        t = table(("X",), [(EX.a,)] * 10)
        parts = BindingBatch.from_table(t).split(4)
        assert [len(p) for p in parts] == [4, 4, 2]

    def test_split_small_returns_self(self):
        batch = BindingBatch.from_table(table(("X",), [(EX.a,)]))
        assert batch.split(256) == [batch]

    def test_split_invalid_size_rejected(self):
        with pytest.raises(EvaluationError):
            BindingBatch.from_table(table(("X",), [])).split(0)

    def test_split_table_slices(self):
        t = table(("X",), [(EX.a,), (EX.b,), (EX.c,)])
        parts = split_table(t, 2)
        assert [len(p) for p in parts] == [2, 1]
        assert concat_tables(parts) == t


class TestVectorizedOperators:
    def test_vunion_matches_union(self):
        tables = [
            table(("X", "Y"), [(EX.a, EX.b)]),
            table(("Y", "X"), [(EX.c, EX.d), (EX.e, EX.f)]),
            table(("X", "Y"), []),
        ]
        assert vunion_all(tables) == union_all(tables)

    def test_vjoin_matches_join(self):
        tables = [
            table(("X", "Y"), [(EX.a, EX.b), (EX.c, EX.b)]),
            table(("Y", "Z"), [(EX.b, EX.d)]),
            table(("Z",), [(EX.d,), (EX.d,)]),
        ]
        assert vjoin_all(tables) == join_all(tables)

    def test_vectorized_conditions_match_scalar(self):
        t = table(
            ("X", "Y"),
            [
                (Literal(1), Literal(2)),
                (Literal(5), Literal(3)),
                (Literal("text"), Literal(3)),
            ],
        )
        conditions = [Condition("X", ">", Literal(2))]
        assert apply_conditions(t, conditions, vectorize=True) == apply_conditions(
            t, conditions
        )

    def test_vectorized_variable_condition_matches_scalar(self):
        t = table(("X", "Y"), [(Literal(1), Literal(2)), (Literal(5), Literal(3))])
        conditions = [Condition("X", "<", "Y", value_is_variable=True)]
        assert apply_conditions(t, conditions, vectorize=True) == apply_conditions(
            t, conditions
        )

    def test_finalize_paths_agree(self):
        t = table(
            ("X", "Y", "Z"),
            [
                (EX.a, Literal(1), EX.p),
                (EX.a, Literal(7), EX.q),
                (EX.a, Literal(7), EX.r),
            ],
        )
        conditions = [Condition("Y", ">=", Literal(2))]
        scalar = finalize(t, ["X", "Y"], conditions)
        vector = finalize(t, ["X", "Y"], conditions, vectorize=True)
        assert vector == scalar
        assert vector.columns == scalar.columns
