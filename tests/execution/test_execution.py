"""Tests for operators, local scans, and the distributed executor."""

import pytest

from repro.core.algebra import Hole, Join, Scan, Union
from repro.errors import EvaluationError, PlanningError
from repro.execution import (
    PlanExecutor,
    apply_conditions,
    evaluate_scan,
    finalize,
    join_all,
    union_all,
)
from repro.net import Network
from repro.peers.base import Peer, PeerBase
from repro.rdf import Graph, Literal, Namespace
from repro.rql.ast import Condition
from repro.rql.bindings import BindingTable
from repro.workloads.paper import (
    N1,
    paper_peer_bases,
    paper_query_pattern,
    paper_schema,
)

EX = Namespace("http://e/")


@pytest.fixture
def schema():
    return paper_schema()


@pytest.fixture
def patterns(schema):
    return paper_query_pattern(schema).patterns


class TestOperators:
    def test_union_all_single(self):
        t = BindingTable(("X",), [(EX.a,)])
        assert union_all([t]) == t

    def test_union_all_empty_rejected(self):
        with pytest.raises(EvaluationError):
            union_all([])

    def test_join_all_chains(self):
        a = BindingTable(("X", "Y"), [(EX.a, EX.b)])
        b = BindingTable(("Y", "Z"), [(EX.b, EX.c)])
        c = BindingTable(("Z", "W"), [(EX.c, EX.d)])
        out = join_all([a, b, c])
        assert len(out) == 1
        assert set(out.columns) == {"X", "Y", "Z", "W"}

    def test_apply_conditions_filters(self):
        t = BindingTable(("X",), [(Literal(1),), (Literal(5),)])
        out = apply_conditions(t, [Condition("X", ">", Literal(3))])
        assert len(out) == 1

    def test_apply_conditions_skips_missing_columns(self):
        t = BindingTable(("X",), [(Literal(1),)])
        out = apply_conditions(t, [Condition("Z", ">", Literal(3))])
        assert len(out) == 1  # untouched

    def test_finalize_projects_and_dedups(self):
        t = BindingTable(("X", "Y"), [(EX.a, EX.b), (EX.a, EX.c)])
        out = finalize(t, ["X"])
        assert out.columns == ("X",)
        assert len(out) == 1


class TestLocalScan:
    def test_single_pattern(self, schema, patterns):
        bases = paper_peer_bases()
        table = evaluate_scan(Scan((patterns[0],), "P2"), bases["P2"], schema)
        assert len(table) == 4
        assert set(table.columns) == {"X", "Y"}

    def test_composite_scan_joins_locally(self, schema, patterns):
        bases = paper_peer_bases()
        table = evaluate_scan(Scan(tuple(patterns), "P1"), bases["P1"], schema)
        assert len(table) == 3  # P1's complete chains
        assert set(table.columns) == {"X", "Y", "Z"}

    def test_subsumption_at_p4(self, schema, patterns):
        bases = paper_peer_bases()
        table = evaluate_scan(Scan((patterns[0],), "P4"), bases["P4"], schema)
        assert len(table) == 2  # prop4 statements answer the prop1 scan


class _HostPeer(Peer):
    """A real peer wired into a network for executor tests."""


def _network_with_paper_peers(schema):
    network = Network()
    bases = paper_peer_bases()
    peers = {}
    for peer_id in ("P1", "P2", "P3", "P4"):
        peer = _HostPeer(peer_id, PeerBase(bases[peer_id], schema))
        peer.join(network)
        peers[peer_id] = peer
    coordinator = _HostPeer("C", None)
    coordinator.join(network)
    return network, peers, coordinator


class TestPlanExecutor:
    def run_plan(self, plan, schema):
        network, peers, coordinator = _network_with_paper_peers(schema)
        outcome = {}

        def on_complete(table, failed):
            outcome["table"] = table
            outcome["failed"] = failed

        PlanExecutor(coordinator, network, plan, on_complete=on_complete).start()
        network.run()
        return outcome, network

    def test_remote_scan(self, schema, patterns):
        outcome, _ = self.run_plan(Scan((patterns[0],), "P2"), schema)
        assert outcome["failed"] is None
        assert len(outcome["table"]) == 4

    def test_union_across_peers(self, schema, patterns):
        plan = Union([Scan((patterns[0],), "P2"), Scan((patterns[0],), "P4")])
        outcome, _ = self.run_plan(plan, schema)
        assert len(outcome["table"]) == 6  # 4 + 2

    def test_cross_peer_join(self, schema, patterns):
        plan = Join([Scan((patterns[0],), "P2"), Scan((patterns[1],), "P3")])
        outcome, _ = self.run_plan(plan, schema)
        assert len(outcome["table"]) == 4  # the bridge resources join

    def test_full_paper_plan(self, schema, patterns):
        plan = Join([
            Union([Scan((patterns[0],), p) for p in ("P1", "P2", "P4")]),
            Union([Scan((patterns[1],), p) for p in ("P1", "P3", "P4")]),
        ])
        outcome, _ = self.run_plan(plan, schema)
        table = outcome["table"]
        # chains: P1 local (3), P2->P3 bridge (4), P4 local (2)
        projected = table.project(("X", "Y")).distinct()
        assert len(projected) == 9

    def test_hole_raises(self, schema, patterns):
        network, peers, coordinator = _network_with_paper_peers(schema)
        executor = PlanExecutor(coordinator, network, Hole(patterns[0]))
        with pytest.raises(PlanningError):
            executor.start()

    def test_failed_peer_reported(self, schema, patterns):
        network, peers, coordinator = _network_with_paper_peers(schema)
        network.fail_peer("P2")
        outcome = {}

        def on_complete(table, failed):
            outcome["failed"] = failed

        plan = Join([Scan((patterns[0],), "P2"), Scan((patterns[1],), "P3")])
        PlanExecutor(coordinator, network, plan, on_complete=on_complete).start()
        network.run()
        assert outcome["failed"] == "P2"

    def test_abort_suppresses_completion(self, schema, patterns):
        network, peers, coordinator = _network_with_paper_peers(schema)
        calls = []
        executor = PlanExecutor(
            coordinator,
            network,
            Scan((patterns[0],), "P2"),
            on_complete=lambda t, f: calls.append(1),
        )
        executor.start()
        executor.abort()
        network.run()
        assert calls == []

    def test_query_shipping_site(self, schema, patterns):
        """Pushing the join to P2 still yields the same answer."""
        plan = Join([Scan((patterns[0],), "P2"), Scan((patterns[1],), "P3")])
        network, peers, coordinator = _network_with_paper_peers(schema)
        outcome = {}

        def on_complete(table, failed):
            outcome["table"] = table

        PlanExecutor(
            coordinator,
            network,
            plan,
            sites={(): "P2"},
            on_complete=on_complete,
        ).start()
        network.run()
        assert len(outcome["table"]) == 4
