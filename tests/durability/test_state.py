"""Durable peer state: snapshot, log replay, crash-point recovery.

The acceptance oracle of the durability layer: killing a peer at *any*
membership-log record boundary (or mid-record) and recovering must
yield exactly the state an uncrashed twin holds after the same prefix
of events — compared via the canonical state digest.
"""

import pytest

from repro.durability import (
    FileStore,
    MemoryStore,
    PeerStateStore,
    RecoveredState,
    state_digest,
)
from repro.rdf.serializer import serialize
from repro.rvl import ActiveSchema, parse_view
from repro.workloads.paper import PAPER_VIEW, paper_peer_bases, paper_schema


@pytest.fixture
def schema():
    return paper_schema()


@pytest.fixture
def bases():
    return paper_peer_bases()


def _advertisements(schema, bases):
    return {
        peer_id: ActiveSchema.from_base(graph, schema, peer_id)
        for peer_id, graph in bases.items()
    }


class TestSnapshot:
    def test_round_trip(self, schema, bases):
        store = PeerStateStore(MemoryStore(), "P1")
        view = parse_view(PAPER_VIEW)
        advertisement = ActiveSchema.from_base(bases["P1"], schema, "P1")
        nbytes = store.save_snapshot(bases["P1"], [view], advertisement)
        assert nbytes > 0
        recovered = store.recover()
        assert recovered.found and recovered.clean
        assert serialize(recovered.graph) == serialize(bases["P1"])
        assert [v.text for v in recovered.views] == [view.text]
        assert recovered.active_schema == advertisement

    def test_missing_state_is_not_found(self):
        recovered = PeerStateStore(MemoryStore(), "P1").recover()
        assert not recovered.found
        assert recovered.graph is None and recovered.advertisements == {}

    def test_second_snapshot_wins(self, schema, bases):
        store = PeerStateStore(MemoryStore(), "P1")
        store.save_snapshot(bases["P1"])
        store.save_snapshot(bases["P2"])
        assert serialize(store.recover().graph) == serialize(bases["P2"])


class TestLogReplay:
    def test_events_replay_last_writer_wins(self, schema, bases):
        ads = _advertisements(schema, bases)
        store = PeerStateStore(MemoryStore(), "P1")
        store.log_advertise(ads["P2"])
        store.log_advertise(ads["P3"])
        store.log_quarantine("P3")
        store.log_goodbye("P2")
        store.log_rehabilitate("P3")
        recovered = store.recover()
        assert set(recovered.advertisements) == {"P3"}
        assert recovered.quarantined == set()
        assert recovered.replayed == 5 and recovered.clean

    def test_self_advertisement_overrides_snapshot(self, schema, bases):
        ads = _advertisements(schema, bases)
        store = PeerStateStore(MemoryStore(), "P1")
        store.save_snapshot(bases["P1"], active_schema=ads["P1"])
        store.log_self_advertise(ads["P2"])  # footprint drifted
        assert store.recover().active_schema == ads["P2"]


def _apply(store, events):
    """Drive one (kind, payload) event into a PeerStateStore."""
    for kind, payload in events:
        getattr(store, f"log_{kind}")(payload)


def _event_script(schema, bases):
    ads = _advertisements(schema, bases)
    return [
        ("advertise", ads["P2"]),
        ("advertise", ads["P3"]),
        ("quarantine", "P3"),
        ("advertise", ads["P4"]),
        ("goodbye", "P2"),
        ("rehabilitate", "P3"),
        ("quarantine", "P4"),
    ]


class TestCrashPointProperty:
    def test_kill_at_every_log_boundary_matches_uncrashed_twin(
        self, schema, bases
    ):
        """Crash after the k-th committed record == twin that saw k events."""
        events = _event_script(schema, bases)
        backing = MemoryStore()
        store = PeerStateStore(backing, "P1")
        store.save_snapshot(bases["P1"])
        boundaries = [backing.log_size()]
        for kind, payload in events:
            _apply(store, [(kind, payload)])
            boundaries.append(backing.log_size())
        for k, cut in enumerate(boundaries):
            crashed = backing.clone()
            crashed.truncate_log(cut)
            recovered = PeerStateStore(crashed, "P1").recover()
            twin_backing = MemoryStore()
            twin = PeerStateStore(twin_backing, "P1")
            twin.save_snapshot(bases["P1"])
            _apply(twin, events[:k])
            assert state_digest(recovered) == state_digest(twin.recover()), (
                f"crash after record {k} diverged from the uncrashed twin"
            )
            assert recovered.clean

    def test_kill_mid_record_recovers_the_prefix(self, schema, bases):
        """A torn tail (crash mid-append) is cut back to the last commit."""
        events = _event_script(schema, bases)
        backing = MemoryStore()
        store = PeerStateStore(backing, "P1")
        store.save_snapshot(bases["P1"])
        boundaries = [backing.log_size()]
        for kind, payload in events:
            _apply(store, [(kind, payload)])
            boundaries.append(backing.log_size())
        for cut in range(backing.log_size() + 1):
            crashed = backing.clone()
            crashed.truncate_log(cut)
            k = max(i for i, b in enumerate(boundaries) if b <= cut)
            recovered = PeerStateStore(crashed, "P1").recover()
            twin_backing = MemoryStore()
            twin = PeerStateStore(twin_backing, "P1")
            twin.save_snapshot(bases["P1"])
            _apply(twin, events[:k])
            assert state_digest(recovered) == state_digest(twin.recover()), (
                f"crash at log byte {cut} (prefix {k}) diverged"
            )

    def test_torn_tail_is_repaired_then_appendable(self, schema, bases):
        """Opening over a torn log rewrites the valid prefix, and new
        appends commit cleanly after it."""
        ads = _advertisements(schema, bases)
        backing = MemoryStore()
        store = PeerStateStore(backing, "P1")
        store.log_advertise(ads["P2"])
        store.log_advertise(ads["P3"])
        backing.truncate_log(backing.log_size() - 3)  # torn mid-record
        reopened = PeerStateStore(backing, "P1")
        reopened.log_goodbye("P2")
        recovered = reopened.recover()
        assert recovered.clean
        assert set(recovered.advertisements) == set()
        assert recovered.replayed == 2  # P2 ad + goodbye


class TestFileStore:
    def test_crash_boundaries_on_disk(self, schema, bases, tmp_path):
        """The on-disk store honours the same crash-point oracle."""
        events = _event_script(schema, bases)
        backing = FileStore(tmp_path / "P1")
        store = PeerStateStore(backing, "P1")
        store.save_snapshot(bases["P1"])
        _apply(store, events)
        blob = backing.log_path.read_bytes()
        # crash: a fresh process opens the directory and recovers
        recovered = PeerStateStore(FileStore(tmp_path / "P1"), "P1").recover()
        twin = PeerStateStore(MemoryStore(), "P1")
        twin.save_snapshot(bases["P1"])
        _apply(twin, events)
        assert state_digest(recovered) == state_digest(twin.recover())
        # crash mid-append: truncate the on-disk log, reopen, recover
        backing.log_path.write_bytes(blob[: len(blob) - 5])
        repaired = PeerStateStore(FileStore(tmp_path / "P1"), "P1").recover()
        twin2 = PeerStateStore(MemoryStore(), "P1")
        twin2.save_snapshot(bases["P1"])
        _apply(twin2, events[:-1])
        assert state_digest(repaired) == state_digest(twin2.recover())

    def test_snapshot_replace_is_atomic(self, schema, bases, tmp_path):
        backing = FileStore(tmp_path / "P1")
        store = PeerStateStore(backing, "P1")
        store.save_snapshot(bases["P1"])
        store.save_snapshot(bases["P2"])
        assert not (tmp_path / "P1" / "snapshot.json.tmp").exists()
        assert serialize(store.recover().graph) == serialize(bases["P2"])


class TestIncarnations:
    """Recovery counts salt channel ids: a restarted incarnation must
    never mint a channel id a survivor's replay cache already holds."""

    def test_recover_records_count_incarnations(self):
        store = PeerStateStore(MemoryStore(), "P1")
        assert store.recover().incarnations == 0
        store.log_recover()
        assert store.recover().incarnations == 1
        store.log_recover()
        assert store.recover().incarnations == 2

    def test_incarnations_do_not_perturb_the_digest(self, schema, bases):
        plain = PeerStateStore(MemoryStore(), "P1")
        plain.save_snapshot(bases["P1"])
        restarted = PeerStateStore(MemoryStore(), "P1")
        restarted.save_snapshot(bases["P1"])
        restarted.log_recover()
        assert state_digest(plain.recover()) == state_digest(restarted.recover())

    def test_epoch_keeps_channel_ids_disjoint_across_incarnations(self):
        from repro.channels.manager import ChannelManager

        first_life = ChannelManager("P2")
        reborn = ChannelManager("P2")
        reborn.epoch = 1
        first_ids = {first_life.mint_id() for _ in range(50)}
        reborn_ids = {reborn.mint_id() for _ in range(50)}
        assert not first_ids & reborn_ids
