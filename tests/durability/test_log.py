"""The checksummed append-only membership log."""

import pytest

from repro.durability import decode_log, encode_record
from repro.durability.log import LogRecord


def _blob(*records):
    return b"".join(encode_record(seq, kind, data)
                    for seq, (kind, data) in enumerate(records))


def test_round_trip():
    blob = _blob(("advertise", {"peer": "P1"}),
                 ("goodbye", {"peer": "P2"}),
                 ("quarantine", {"peer": "P3", "n": 2}))
    records, clean = decode_log(blob)
    assert clean
    assert records == [
        LogRecord(0, "advertise", {"peer": "P1"}),
        LogRecord(1, "goodbye", {"peer": "P2"}),
        LogRecord(2, "quarantine", {"peer": "P3", "n": 2}),
    ]


def test_empty_log_is_clean():
    records, clean = decode_log(b"")
    assert records == [] and clean


def test_encoding_is_deterministic():
    one = encode_record(5, "advertise", {"b": 1, "a": 2})
    two = encode_record(5, "advertise", {"a": 2, "b": 1})
    assert one == two  # canonical JSON: key order never matters


def test_torn_tail_yields_valid_prefix():
    blob = _blob(("advertise", {"peer": "P1"}), ("goodbye", {"peer": "P2"}))
    # a crash mid-append leaves a partial last line
    records, clean = decode_log(blob[:-7])
    assert not clean
    assert [r.kind for r in records] == ["advertise"]


def test_every_truncation_point_is_tolerated():
    blob = _blob(*[("advertise", {"peer": f"P{i}"}) for i in range(4)])
    boundaries = set()
    offset = 0
    for i in range(4):
        offset += len(encode_record(i, "advertise", {"peer": f"P{i}"}))
        boundaries.add(offset)
    for cut in range(len(blob) + 1):
        records, clean = decode_log(blob[:cut])
        # decoding never raises; a cut at a record boundary is clean
        assert clean == (cut in boundaries or cut == 0)
        assert len(records) <= 4


def test_corrupted_checksum_stops_at_prefix():
    blob = bytearray(_blob(("advertise", {"peer": "P1"}),
                           ("goodbye", {"peer": "P2"}),
                           ("rehabilitate", {"peer": "P2"})))
    first = len(encode_record(0, "advertise", {"peer": "P1"}))
    blob[first + 2] ^= 0xFF  # flip a checksum byte of record 1
    records, clean = decode_log(bytes(blob))
    assert not clean
    assert [r.kind for r in records] == ["advertise"]


def test_sequence_gap_is_damage():
    blob = (encode_record(0, "advertise", {"peer": "P1"})
            + encode_record(2, "goodbye", {"peer": "P2"}))  # seq 1 missing
    records, clean = decode_log(blob)
    assert not clean
    assert [r.seq for r in records] == [0]


def test_garbage_line_is_damage():
    blob = _blob(("advertise", {"peer": "P1"})) + b"deadbeef not json\n"
    records, clean = decode_log(blob)
    assert not clean
    assert [r.kind for r in records] == ["advertise"]
