"""Tests for the schema DHT with subsumption information."""

import pytest

from repro.dht import ChordRing, SchemaDHT
from repro.rql.pattern import SchemaPath
from repro.rvl import ActiveSchema
from repro.systems import AdhocSystem
from repro.workloads.paper import (
    DATA,
    N1,
    PAPER_QUERY,
    paper_active_schemas,
    paper_query_pattern,
    paper_schema,
)


@pytest.fixture
def schema():
    return paper_schema()


@pytest.fixture
def dht(schema):
    index = SchemaDHT(ChordRing(), schema)
    for advertisement in paper_active_schemas(schema).values():
        index.publish(advertisement)
    return index


class TestPublication:
    def test_direct_property_lookup(self, dht):
        peers, _ = dht.lookup_property(N1.prop2)
        assert peers == {"P1", "P3", "P4"}

    def test_subsumption_lookup(self, dht):
        """The P4 advertisement (prop4 only) is indexed under prop1 too
        — the 'subsumption information' of Section 5."""
        peers, _ = dht.lookup_property(N1.prop1)
        assert peers == {"P1", "P2", "P4"}

    def test_subproperty_lookup_excludes_superproperty_peers(self, dht):
        peers, _ = dht.lookup_property(N1.prop4)
        assert peers == {"P4"}

    def test_unpublish(self, dht):
        dht.unpublish("P4")
        peers, _ = dht.lookup_property(N1.prop1)
        assert peers == {"P1", "P2"}

    def test_anonymous_advertisement_rejected(self, schema):
        index = SchemaDHT(ChordRing(), schema)
        with pytest.raises(ValueError):
            index.publish(ActiveSchema(schema.namespace.uri))


class TestPatternRouting:
    def test_route_whole_pattern(self, dht, schema):
        pattern = paper_query_pattern(schema)
        advertisements, hops = dht.route(pattern)
        peers = {a.peer_id for a in advertisements}
        assert peers == {"P1", "P2", "P3", "P4"}
        assert hops >= 0

    def test_advertisements_support_precise_routing(self, dht, schema):
        """The fetched advertisements reproduce the Figure 2 annotation
        when fed to the routing algorithm."""
        from repro.core import route_query

        pattern = paper_query_pattern(schema)
        advertisements, _ = dht.route(pattern)
        annotated = route_query(pattern, advertisements, schema)
        assert annotated.peers_for(pattern.root) == ("P1", "P2", "P4")
        assert annotated.peers_for(pattern.patterns[1]) == ("P1", "P3", "P4")

    def test_hop_accounting_accumulates(self, dht, schema):
        before = dht.lookup_hops
        dht.route(paper_query_pattern(schema))
        assert dht.lookup_hops >= before


class TestAdhocIntegration:
    def test_dht_resolves_distant_provider(self, schema):
        """The chain topology where only discovery helps (depth bench):
        with the DHT the asker finds the provider in O(log N) hops, no
        neighbourhood broadcast needed."""
        from repro.rdf import Graph, TYPE

        provider_base = Graph()
        for i in range(3):
            x, y, z = DATA[f"dhx{i}"], DATA[f"dhy{i}"], DATA[f"dhz{i}"]
            provider_base.add(x, TYPE, N1.C1)
            provider_base.add(y, TYPE, N1.C2)
            provider_base.add(x, N1.prop1, y)
            provider_base.add(y, N1.prop2, z)
            provider_base.add(z, TYPE, N1.C3)
        system = AdhocSystem(schema, use_dht=True, max_discovery_depth=1)
        system.add_peer("asker", Graph(), neighbours=("relay",))
        system.add_peer("relay", Graph(), neighbours=("asker", "provider"))
        system.add_peer("provider", provider_base, neighbours=("relay",))
        system.discover_all()
        table = system.query("asker", PAPER_QUERY)
        assert len(table) == 3

    def test_without_dht_same_topology_fails_at_depth1(self, schema):
        from repro.errors import PeerError
        from repro.rdf import Graph, TYPE

        provider_base = Graph()
        provider_base.add(DATA.qx, N1.prop1, DATA.qy)
        provider_base.add(DATA.qy, N1.prop2, DATA.qz)
        system = AdhocSystem(schema, use_dht=False, max_discovery_depth=1)
        system.add_peer("asker", Graph(), neighbours=("relay",))
        system.add_peer("relay", Graph(), neighbours=("asker", "provider"))
        system.add_peer("provider", provider_base, neighbours=("relay",))
        system.discover_all()
        with pytest.raises(PeerError):
            system.query("asker", PAPER_QUERY)

    def test_dht_and_figure7_flow_coexist(self):
        """With the DHT on, the Figure 7 scenario still answers."""
        from repro.workloads.paper import adhoc_scenario

        scenario = adhoc_scenario()
        system = AdhocSystem(scenario.schema, use_dht=True)
        for peer_id in scenario.peers:
            system.add_peer(
                peer_id, scenario.bases[peer_id], scenario.neighbours.get(peer_id, ())
            )
        system.discover_all()
        table = system.query("P1", PAPER_QUERY)
        assert len(table) == 6
