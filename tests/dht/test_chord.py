"""Tests for the Chord-style ring."""

import pytest

from repro.dht import ChordRing, chord_hash
from repro.errors import NetworkError


@pytest.fixture
def ring():
    r = ChordRing(bits=16)
    for i in range(10):
        r.join(f"P{i}")
    return r


class TestMembership:
    def test_join_and_len(self):
        ring = ChordRing()
        ring.join("A")
        ring.join("B")
        assert len(ring) == 2

    def test_duplicate_join_rejected(self, ring):
        with pytest.raises(NetworkError):
            ring.join("P0")

    def test_leave_removes(self, ring):
        ring.leave("P3")
        assert len(ring) == 9

    def test_leave_unknown_is_noop(self, ring):
        ring.leave("ghost")
        assert len(ring) == 10

    def test_bits_validated(self):
        with pytest.raises(NetworkError):
            ChordRing(bits=2)


class TestLookup:
    def test_owner_matches_bruteforce(self, ring):
        for key in ("alpha", "beta", "gamma", "http://p#prop1"):
            key_id = chord_hash(key, ring.bits)
            owner, _ = ring.lookup(key)
            brute = min(
                (n for n in ring._ordered),
                key=lambda n: (n.node_id - key_id) % (1 << ring.bits)
                if n.node_id != key_id
                else 0,
            )
            # brute: the first node at or after key_id going clockwise
            candidates = sorted(ring._ordered, key=lambda n: n.node_id)
            expected = next(
                (n for n in candidates if n.node_id >= key_id), candidates[0]
            )
            assert owner is expected

    def test_lookup_from_any_start_same_owner(self, ring):
        owners = {ring.lookup("somekey", start=f"P{i}")[0].name for i in range(10)}
        assert len(owners) == 1

    def test_hops_bounded_logarithmically(self):
        ring = ChordRing(bits=16)
        for i in range(64):
            ring.join(f"N{i:03d}")
        worst = max(ring.lookup(f"key{k}", start="N000")[1] for k in range(50))
        assert worst <= 2 * 16  # and typically ~log2(64)=6
        typical = sum(ring.lookup(f"key{k}", start="N000")[1] for k in range(50)) / 50
        assert typical <= 10

    def test_empty_ring_raises(self):
        with pytest.raises(NetworkError):
            ChordRing().lookup("x")


class TestStorage:
    def test_put_get_roundtrip(self, ring):
        ring.put("key", "value1")
        ring.put("key", "value2")
        values, _ = ring.get("key")
        assert values == {"value1", "value2"}

    def test_get_missing_is_empty(self, ring):
        values, _ = ring.get("missing")
        assert values == set()

    def test_keys_move_on_join(self):
        ring = ChordRing(bits=16)
        ring.join("A")
        for k in range(30):
            ring.put(f"key{k}", f"v{k}")
        for i in range(6):
            ring.join(f"B{i}")
        # every key still resolves to its value at the correct owner
        for k in range(30):
            values, _ = ring.get(f"key{k}")
            assert values == {f"v{k}"}

    def test_keys_move_on_leave(self):
        ring = ChordRing(bits=16)
        for i in range(8):
            ring.join(f"N{i}")
        for k in range(20):
            ring.put(f"key{k}", f"v{k}")
        for i in range(4):
            ring.leave(f"N{i}")
        for k in range(20):
            values, _ = ring.get(f"key{k}")
            assert values == {f"v{k}"}

    def test_remove_value(self, ring):
        ring.put("key", "v1")
        ring.put("key", "v2")
        ring.remove_value("key", "v1")
        values, _ = ring.get("key")
        assert values == {"v2"}
