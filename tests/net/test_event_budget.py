"""Event-budget exhaustion is diagnosable, not a bare number.

A protocol loop that never quiesces used to surface as
``NetworkError("event budget exhausted")`` and nothing else.  Under
concurrent serving that is undebuggable — *which* of the dozens of
in-flight queries livelocked, and where was it stuck?  The budget
error now carries a point-in-time diagnostics report.
"""

import pytest

from repro.errors import EventBudgetExhausted, NetworkError
from repro.net.simulator import Network
from repro.systems import HybridSystem
from repro.workload_engine import WorkloadSpec
from repro.workloads.paper import PAPER_QUERY, hybrid_scenario


def _livelocked_network():
    """A network with a timer that reschedules itself forever."""
    network = Network(seed=0)

    def tick():
        network.call_later(1.0, tick)

    network.call_later(0.0, tick)
    return network


class TestBudgetExhaustion:
    def test_raises_subclass_of_network_error(self):
        network = _livelocked_network()
        with pytest.raises(NetworkError, match="event budget exhausted"):
            network.run(max_events=50)

    def test_message_embeds_the_report(self):
        network = _livelocked_network()
        with pytest.raises(EventBudgetExhausted) as excinfo:
            network.run(max_events=50)
        message = str(excinfo.value)
        assert "event budget exhausted (50 events)" in message
        assert "pending events" in message

    def test_diagnostics_name_the_stuck_queries(self):
        """A serving run cut off mid-flight reports which queries were
        still open and what each peer was holding."""
        system = HybridSystem.from_scenario(hybrid_scenario(), cache_enabled=False)
        system.run()  # settle advertisements within their own budget
        spec = WorkloadSpec(
            queries=(("P1", PAPER_QUERY),), count=8, mode="open",
            arrival_rate=5.0, burst_size=8, clients=2,
        )
        with pytest.raises(EventBudgetExhausted) as excinfo:
            system.serve(spec, max_events=30)
        diagnostics = excinfo.value.diagnostics
        assert diagnostics["pending_events"] > 0
        assert diagnostics["oldest_pending_event_at"] is not None
        assert diagnostics["inflight_queries"], "no in-flight queries reported"
        assert diagnostics["peers"], "no per-peer load reported"
        # the formatted report names the queries too
        assert diagnostics["inflight_queries"][0] in str(excinfo.value)

    def test_quiescing_run_is_unaffected(self):
        """A workload that drains within its budget raises nothing and
        still returns the processed-event count."""
        network = Network(seed=0)
        fired = []
        network.call_later(1.0, lambda: fired.append(True))
        assert network.run(max_events=10) == 1
        assert fired
