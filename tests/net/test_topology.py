"""Tests for topology builders."""

import random

import pytest

from repro.net import Network, random_neighbour_graph, star, uniform_mesh


class _Stub:
    def __init__(self, peer_id):
        self.peer_id = peer_id

    def receive(self, message, network):
        pass


class TestUniformMesh:
    def test_all_pairs_configured(self):
        network = Network()
        ids = ["A", "B", "C"]
        uniform_mesh(network, ids, latency=3.0)
        assert network.link("A", "B").latency == 3.0
        assert network.link("B", "C").latency == 3.0
        assert network.link("A", "C").latency == 3.0


class TestStar:
    def test_hub_fast_leaves_slow(self):
        network = Network()
        star(network, "SP", ["A", "B"], hub_latency=1.0, leaf_latency=9.0)
        assert network.link("SP", "A").latency == 1.0
        assert network.link("A", "SP").latency == 1.0
        assert network.link("A", "B").latency == 9.0


class TestRandomNeighbourGraph:
    def test_symmetry(self):
        rng = random.Random(0)
        adjacency = random_neighbour_graph([f"P{i}" for i in range(20)], 3, rng)
        for peer, neighbours in adjacency.items():
            for other in neighbours:
                assert peer in adjacency[other]

    def test_no_self_loops(self):
        rng = random.Random(1)
        adjacency = random_neighbour_graph([f"P{i}" for i in range(20)], 3, rng)
        for peer, neighbours in adjacency.items():
            assert peer not in neighbours

    def test_connected(self):
        rng = random.Random(2)
        ids = [f"P{i}" for i in range(30)]
        adjacency = random_neighbour_graph(ids, 2, rng)
        seen = set()
        stack = [ids[0]]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency[node])
        assert seen == set(ids)

    def test_deterministic_for_seed(self):
        ids = [f"P{i}" for i in range(15)]
        a = random_neighbour_graph(ids, 3, random.Random(5))
        b = random_neighbour_graph(ids, 3, random.Random(5))
        assert a == b

    def test_degree_roughly_matches(self):
        rng = random.Random(3)
        ids = [f"P{i}" for i in range(40)]
        adjacency = random_neighbour_graph(ids, 4, rng)
        mean_degree = sum(len(n) for n in adjacency.values()) / len(ids)
        assert 3.0 <= mean_degree <= 5.0

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            random_neighbour_graph(["A", "B"], 0, random.Random(0))
