"""Tests for the discrete-event network simulator."""

import pytest

from repro.errors import NetworkError
from repro.net import DeliveryFailure, Message, Network


class Echo:
    """A node that records deliveries and optionally replies."""

    def __init__(self, peer_id, reply_to=None):
        self.peer_id = peer_id
        self.reply_to = reply_to
        self.received = []

    def receive(self, message, network):
        self.received.append((network.now, message))
        if self.reply_to and not isinstance(message.payload, DeliveryFailure):
            network.send(Message(self.peer_id, self.reply_to, "ack"))


@pytest.fixture
def network():
    return Network(seed=7, default_latency=1.0, default_cost_per_byte=0.0)


class TestRegistration:
    def test_duplicate_id_rejected(self, network):
        network.register(Echo("A"))
        with pytest.raises(NetworkError):
            network.register(Echo("A"))

    def test_unknown_destination_rejected(self, network):
        network.register(Echo("A"))
        with pytest.raises(NetworkError):
            network.send(Message("A", "B", "x"))

    def test_unknown_sender_rejected(self, network):
        network.register(Echo("B"))
        with pytest.raises(NetworkError):
            network.send(Message("A", "B", "x"))

    def test_peer_ids_sorted(self, network):
        network.register(Echo("B"))
        network.register(Echo("A"))
        assert network.peer_ids() == ["A", "B"]


class TestDelivery:
    def test_message_delivered_after_latency(self, network):
        a, b = Echo("A"), Echo("B")
        network.register(a)
        network.register(b)
        network.send(Message("A", "B", "hello"))
        network.run()
        assert len(b.received) == 1
        time, message = b.received[0]
        assert time == 1.0
        assert message.payload == "hello"

    def test_link_latency_honoured(self, network):
        a, b = Echo("A"), Echo("B")
        network.register(a)
        network.register(b)
        network.set_link("A", "B", latency=5.0, cost_per_byte=0.0)
        network.send(Message("A", "B", "hello"))
        network.run()
        assert b.received[0][0] == 5.0

    def test_bandwidth_charged_by_size(self):
        network = Network(default_latency=1.0, default_cost_per_byte=0.5)
        a, b = Echo("A"), Echo("B")
        network.register(a)
        network.register(b)
        network.send(Message("A", "B", "x", size=10))
        network.run()
        assert b.received[0][0] == pytest.approx(1.0 + 5.0)

    def test_in_order_for_same_latency(self, network):
        a, b = Echo("A"), Echo("B")
        network.register(a)
        network.register(b)
        for i in range(5):
            network.send(Message("A", "B", i))
        network.run()
        assert [m.payload for _, m in b.received] == [0, 1, 2, 3, 4]

    def test_reply_chains(self, network):
        a = Echo("A")
        b = Echo("B", reply_to="A")
        network.register(a)
        network.register(b)
        network.send(Message("A", "B", "ping"))
        network.run()
        assert a.received[0][1].payload == "ack"
        assert a.received[0][0] == 2.0

    def test_metrics_recorded(self, network):
        a, b = Echo("A"), Echo("B")
        network.register(a)
        network.register(b)
        network.send(Message("A", "B", "hello", size=42))
        network.run()
        assert network.metrics.messages_total == 1
        assert network.metrics.bytes_total == 42
        assert network.metrics.messages_sent["A"] == 1
        assert network.metrics.messages_received["B"] == 1


class TestFailures:
    def test_send_to_down_peer_bounces(self, network):
        a, b = Echo("A"), Echo("B")
        network.register(a)
        network.register(b)
        network.fail_peer("B")
        network.send(Message("A", "B", "hello"))
        network.run()
        assert b.received == []
        assert len(a.received) == 1
        failure = a.received[0][1].payload
        assert isinstance(failure, DeliveryFailure)
        assert failure.original.payload == "hello"

    def test_failure_mid_flight(self, network):
        a, b = Echo("A"), Echo("B")
        network.register(a)
        network.register(b)
        network.send(Message("A", "B", "hello"))
        network.fail_peer("B")  # before the event loop runs
        network.run()
        assert b.received == []
        assert isinstance(a.received[0][1].payload, DeliveryFailure)

    def test_recover_peer(self, network):
        a, b = Echo("A"), Echo("B")
        network.register(a)
        network.register(b)
        network.fail_peer("B")
        network.recover_peer("B")
        network.send(Message("A", "B", "hello"))
        network.run()
        assert len(b.received) == 1

    def test_is_down(self, network):
        network.register(Echo("A"))
        network.fail_peer("A")
        assert network.is_down("A")


class TestEventLoop:
    def test_run_until(self, network):
        a, b = Echo("A"), Echo("B")
        network.register(a)
        network.register(b)
        network.set_link("A", "B", latency=10.0)
        network.send(Message("A", "B", "late"))
        network.run(until=5.0)
        assert b.received == []
        network.run()
        assert len(b.received) == 1

    def test_event_budget(self, network):
        a = Echo("A")
        network.register(a)

        def loop():
            network.call_later(0.1, loop)

        loop()
        with pytest.raises(NetworkError):
            network.run(max_events=100)

    def test_call_later_negative_rejected(self, network):
        with pytest.raises(NetworkError):
            network.call_later(-1.0, lambda: None)

    def test_clock_monotone(self, network):
        times = []
        network.call_later(3.0, lambda: times.append(network.now))
        network.call_later(1.0, lambda: times.append(network.now))
        network.run()
        assert times == [1.0, 3.0]
