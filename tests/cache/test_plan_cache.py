"""Tests for the plan cache: exact reuse keyed on routing + statistics."""

import pytest

from repro.cache import PlanCache
from repro.core import build_plan, optimize, route_query
from repro.core.cost import CostModel, Statistics
from repro.rql.pattern import pattern_from_text
from repro.workloads.paper import (
    N1,
    paper_active_schemas,
    paper_query_pattern,
    paper_schema,
)

SCHEMA = paper_schema()
ADS = list(paper_active_schemas(SCHEMA).values())


def _annotated(pattern=None):
    pattern = pattern if pattern is not None else paper_query_pattern(SCHEMA)
    return route_query(pattern, ADS, SCHEMA)


def _compile(annotated, statistics=None):
    return optimize(
        build_plan(annotated), CostModel(statistics or Statistics())
    ).result


class TestPlanCache:
    def test_miss_then_hit_returns_same_plan_object(self):
        cache = PlanCache()
        annotated = _annotated()
        assert cache.get(annotated) is None
        plan = _compile(annotated)
        cache.put(annotated, plan)
        assert cache.get(_annotated()) is plan

    def test_statistics_version_invalidates(self):
        cache = PlanCache()
        statistics = Statistics()
        annotated = _annotated()
        plan = _compile(annotated, statistics)
        cache.put(annotated, plan, statistics.version)
        statistics.set_cardinality("P2", N1.prop1, 5)
        assert cache.get(annotated, statistics.version) is None

    def test_unchanged_statistics_record_keeps_version(self):
        statistics = Statistics()
        statistics.set_cardinality("P2", N1.prop1, 5)
        version = statistics.version
        statistics.set_cardinality("P2", N1.prop1, 5)  # same value
        assert statistics.version == version

    def test_renamed_pattern_is_a_miss(self):
        """Plans embed the query's labels and variables: an isomorphic
        but renamed query must recompile."""
        cache = PlanCache()
        annotated = _annotated()
        cache.put(annotated, _compile(annotated))
        renamed = pattern_from_text(
            "SELECT A, B FROM {A} n1:prop1 {B}, {B} n1:prop2 {C} "
            f"USING NAMESPACE n1 = &{N1.uri}&",
            SCHEMA,
        )
        assert cache.get(_annotated(renamed)) is None

    def test_different_routing_is_a_miss(self):
        cache = PlanCache()
        annotated = _annotated()
        cache.put(annotated, _compile(annotated))
        narrowed = annotated.without_peers({"P2"})
        assert cache.get(narrowed) is None

    def test_lru_eviction(self):
        cache = PlanCache(max_entries=1)
        annotated = _annotated()
        cache.put(annotated, _compile(annotated), version=0)
        cache.put(annotated, _compile(annotated), version=1)
        assert len(cache) == 1
        assert cache.get(annotated, version=0) is None
        assert cache.get(annotated, version=1) is not None


class TestPeerScopedInvalidation:
    """Churn-scoped plan eviction (repro.livedata)."""

    def test_view_redefinition_invalidates_stale_fingerprint(self):
        """Pinned regression: when a peer redefines its views, a plan
        compiled against the *old* advertisement must not survive.  A
        racing stale annotation re-keys to the old fingerprint — so
        fingerprint matching alone would serve a plan whose subqueries
        are rewritten against the retracted view.  ``invalidate_peer``
        drops every plan naming the redefined peer, whatever its key."""
        cache = PlanCache()
        annotated = _annotated()
        plan = _compile(annotated)
        cache.put(annotated, plan)
        assert cache.get(annotated) is plan
        dropped = cache.invalidate_peer("P2")
        assert dropped == 1
        assert cache.get(annotated) is None
        assert cache.stats.invalidations == 1

    def test_unrelated_plans_survive(self):
        """Scoped, not a wipe: plans not naming the churned peer stay."""
        cache = PlanCache()
        annotated = _annotated()
        cache.put(annotated, _compile(annotated))
        narrowed = annotated.without_peers({"P2"})
        narrowed_plan = _compile(narrowed)
        cache.put(narrowed, narrowed_plan)
        assert "P2" not in narrowed.all_peers()
        dropped = cache.invalidate_peer("P2")
        assert dropped == 1
        assert cache.get(narrowed) is narrowed_plan

    def test_unknown_peer_is_a_no_op(self):
        cache = PlanCache()
        annotated = _annotated()
        cache.put(annotated, _compile(annotated))
        assert cache.invalidate_peer("P99") == 0
        assert len(cache) == 1
