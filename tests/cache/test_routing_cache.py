"""Tests for the routing cache: hits, re-targeting, scoped invalidation."""

import pytest

from repro.cache import RoutingCache, pattern_signature
from repro.core import route_query
from repro.core.routing_index import RoutingIndex
from repro.rql.pattern import SchemaPath, pattern_from_text
from repro.rvl import ActiveSchema
from repro.workloads.paper import (
    N1,
    paper_active_schemas,
    paper_query_pattern,
    paper_schema,
)

SCHEMA = paper_schema()
URI = SCHEMA.namespace.uri


def _q(body, select="X, Y"):
    return pattern_from_text(
        f"SELECT {select} FROM {body} USING NAMESPACE n1 = &{N1.uri}&", SCHEMA
    )


def _ad(peer_id, *props):
    paths = []
    for prop in props:
        definition = SCHEMA.property_def(prop)
        paths.append(SchemaPath(definition.domain, prop, definition.range))
    return ActiveSchema(URI, paths, peer_id=peer_id)


@pytest.fixture
def pattern():
    return paper_query_pattern(SCHEMA)


@pytest.fixture
def ads():
    return paper_active_schemas(SCHEMA)


@pytest.fixture
def cache():
    return RoutingCache([SCHEMA])


class TestHitAndRetarget:
    def test_miss_then_hit(self, cache, pattern, ads):
        assert cache.get(pattern) is None
        annotated = route_query(pattern, ads.values(), SCHEMA)
        cache.put(pattern, annotated)
        cached = cache.get(pattern)
        assert cached is not None
        assert cached.same_annotations(annotated)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_alpha_renamed_hit_matches_cold_route(self, cache, pattern, ads):
        """A hit on a renamed query is indistinguishable from routing
        the renamed query cold."""
        cache.put(pattern, route_query(pattern, ads.values(), SCHEMA))
        renamed = _q("{A} n1:prop1 {B}, {B} n1:prop2 {C}", select="A, B")
        served = cache.get(renamed)
        assert served is not None
        cold = route_query(renamed, ads.values(), SCHEMA)
        assert served.same_annotations(cold)

    def test_reordered_hit_matches_cold_route(self, cache, pattern, ads):
        cache.put(pattern, route_query(pattern, ads.values(), SCHEMA))
        reordered = _q("{Y} n1:prop2 {Z}, {X} n1:prop1 {Y}")
        served = cache.get(reordered)
        assert served is not None
        assert served.same_annotations(route_query(reordered, ads.values(), SCHEMA))

    def test_negative_entry(self, cache, pattern):
        cache.put(pattern, route_query(pattern, [], SCHEMA))
        served = cache.get(pattern)
        assert served is not None
        assert not served.all_peers()
        assert cache.stats.negative_hits == 1


class TestScopedInvalidation:
    def _warm(self, cache, ads):
        """Two entries: the prop1⋈prop2 join and a prop3 singleton
        answered by a disjoint peer."""
        join = paper_query_pattern(SCHEMA)
        solo = _q("{X} n1:prop3 {Y}")
        p9 = _ad("P9", N1.prop3)
        everything = list(ads.values()) + [p9]
        cache.put(join, route_query(join, everything, SCHEMA))
        cache.put(solo, route_query(solo, everything, SCHEMA))
        return join, solo

    def test_goodbye_touches_only_annotating_entries(self, cache, ads):
        join, solo = self._warm(cache, ads)
        dropped = cache.on_goodbye("P9")
        assert dropped == 1
        assert cache.get(solo) is None  # P9 annotated it: gone
        assert cache.get(join) is not None  # untouched

    def test_goodbye_of_unannotated_peer_is_noop(self, cache, ads):
        join, solo = self._warm(cache, ads)
        assert cache.on_goodbye("stranger") == 0
        assert cache.get(join) is not None
        assert cache.get(solo) is not None

    def test_new_advertisement_invalidates_by_property_closure(self, cache, ads):
        """An ad for prop4 ⊑ prop1 can extend prop1 entries, so the
        join entry drops; the prop3 entry survives."""
        join, solo = self._warm(cache, ads)
        cache.on_advertise(_ad("P10", N1.prop4))
        assert cache.get(join) is None
        assert cache.get(solo) is not None

    def test_unchanged_readvertise_is_noop(self, cache, ads):
        join, solo = self._warm(cache, ads)
        epoch = cache.epoch
        assert cache.on_advertise(ads["P2"], previous=ads["P2"]) == 0
        assert cache.epoch == epoch
        assert cache.get(join) is not None

    def test_refresh_invalidates_old_footprint_entries(self, cache, ads):
        """A refresh dropping a property still invalidates entries the
        peer annotates (its rewrites may be stale)."""
        join, solo = self._warm(cache, ads)
        narrowed = _ad("P1", N1.prop2)  # P1 stops advertising prop1
        cache.on_advertise(narrowed, previous=ads["P1"])
        assert cache.get(join) is None

    def test_negative_entry_revived_by_relevant_advertise(self, cache):
        pattern = _q("{X} n1:prop3 {Y}")
        cache.put(pattern, route_query(pattern, [], SCHEMA))
        assert cache.get(pattern) is not None
        cache.on_advertise(_ad("P9", N1.prop3))
        assert cache.get(pattern) is None  # must be recomputed

    def test_epoch_bumps_on_mutation(self, cache, ads):
        before = cache.epoch
        cache.on_advertise(ads["P2"])
        cache.on_goodbye("P2")
        assert cache.epoch == before + 2

    def test_unknown_schema_flushes_conservatively(self, pattern, ads):
        bare = RoutingCache()  # no schema closure registered
        bare.put(pattern, route_query(pattern, ads.values(), SCHEMA))
        # prop3 does not subsume prop1/prop2, but without the closure
        # the cache cannot know that: the schema's entries all drop
        bare.on_advertise(_ad("P9", N1.prop3))
        assert bare.get(pattern) is None


class TestCapacity:
    def test_eviction_at_max_entries(self, ads):
        cache = RoutingCache([SCHEMA], max_entries=1)
        first = _q("{X} n1:prop1 {Y}")
        second = _q("{X} n1:prop2 {Y}")
        cache.put(first, route_query(first, ads.values(), SCHEMA))
        cache.put(second, route_query(second, ads.values(), SCHEMA))
        assert len(cache) == 1
        assert cache.get(second) is not None

    def test_clear(self, cache, pattern, ads):
        cache.put(pattern, route_query(pattern, ads.values(), SCHEMA))
        assert cache.clear() == 1
        assert len(cache) == 0


class TestRoutingIndexIntegration:
    def test_warm_route_equals_cold(self, pattern, ads):
        index = RoutingIndex(SCHEMA)
        for advertisement in ads.values():
            index.add(advertisement)
        cold = index.route(pattern)
        warm = index.route(pattern)
        assert warm.same_annotations(cold)
        assert index.cache.stats.hits == 1

    def test_empty_registry_cached_negatively(self, pattern):
        index = RoutingIndex(SCHEMA)
        first = index.route(pattern)
        assert not first.all_peers()
        index.route(pattern)
        assert index.cache.stats.negative_hits == 1

    def test_add_after_negative_entry_recomputes(self, pattern, ads):
        index = RoutingIndex(SCHEMA)
        index.route(pattern)  # negative
        index.add(ads["P1"])
        assert index.route(pattern).all_peers() == ("P1",)

    def test_remove_invalidates(self, pattern, ads):
        index = RoutingIndex(SCHEMA)
        for advertisement in ads.values():
            index.add(advertisement)
        index.route(pattern)
        index.remove("P2")
        rerouted = index.route(pattern)
        assert "P2" not in rerouted.all_peers()

    def test_use_cache_false_runs_cold(self, pattern, ads):
        index = RoutingIndex(SCHEMA, use_cache=False)
        assert index.cache is None
        for advertisement in ads.values():
            index.add(advertisement)
        annotated = index.route(pattern)
        assert annotated.same_annotations(route_query(pattern, ads.values(), SCHEMA))

    def test_signature_precomputation_matches(self, pattern, ads):
        cache = RoutingCache([SCHEMA])
        signature = pattern_signature(pattern)
        annotated = route_query(pattern, ads.values(), SCHEMA)
        cache.put(pattern, annotated, signature=signature)
        assert cache.get(pattern, signature=signature).same_annotations(annotated)
