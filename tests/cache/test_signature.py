"""Tests for canonical pattern signatures and annotation fingerprints."""

import pytest

from repro.cache import annotation_fingerprint, pattern_signature
from repro.core import route_query
from repro.rql.pattern import pattern_from_text
from repro.workloads.paper import (
    N1,
    PAPER_QUERY,
    paper_active_schemas,
    paper_query_pattern,
    paper_schema,
)

SCHEMA = paper_schema()


def _pattern(text):
    return pattern_from_text(text, SCHEMA)


def _q(body, select="X, Y"):
    return _pattern(
        f"SELECT {select} FROM {body} USING NAMESPACE n1 = &{N1.uri}&"
    )


@pytest.fixture
def pattern():
    return paper_query_pattern(SCHEMA)


class TestSignatureEquivalence:
    def test_identical_patterns_share_key(self, pattern):
        again = paper_query_pattern(SCHEMA)
        assert pattern_signature(pattern) == pattern_signature(again)
        assert pattern_signature(pattern).key == pattern_signature(again).key

    def test_alpha_renaming_shares_key(self, pattern):
        renamed = _q("{A} n1:prop1 {B}, {B} n1:prop2 {C}", select="A, B")
        assert pattern_signature(renamed).key == pattern_signature(pattern).key

    def test_from_clause_reordering_shares_key(self, pattern):
        reordered = _q("{Y} n1:prop2 {Z}, {X} n1:prop1 {Y}")
        assert pattern_signature(reordered).key == pattern_signature(pattern).key

    def test_reordered_and_renamed_shares_key(self, pattern):
        both = _q("{B} n1:prop2 {C}, {A} n1:prop1 {B}", select="A, B")
        assert pattern_signature(both).key == pattern_signature(pattern).key


class TestSignatureDiscrimination:
    def test_different_property_differs(self, pattern):
        other = _q("{X} n1:prop1 {Y}, {Y} n1:prop3 {Z}")
        assert pattern_signature(other).key != pattern_signature(pattern).key

    def test_different_projection_differs(self, pattern):
        other = _q("{X} n1:prop1 {Y}, {Y} n1:prop2 {Z}", select="X")
        assert pattern_signature(other).key != pattern_signature(pattern).key

    def test_different_join_shape_differs(self, pattern):
        # join on X instead of Y: same properties, different sharing
        other = _q("{X} n1:prop1 {Y}, {X} n1:prop2 {Z}")
        assert pattern_signature(other).key != pattern_signature(pattern).key

    def test_single_vs_two_patterns_differ(self, pattern):
        single = _q("{X} n1:prop1 {Y}")
        assert pattern_signature(single).key != pattern_signature(pattern).key


class TestCanonicalOrder:
    def test_order_is_a_permutation(self, pattern):
        signature = pattern_signature(pattern)
        assert sorted(signature.order) == list(range(len(pattern.patterns)))

    def test_order_aligns_equal_keys(self, pattern):
        """Canonical position i points at structurally matching path
        patterns in every pattern sharing the key."""
        reordered = _q("{Y} n1:prop2 {Z}, {X} n1:prop1 {Y}")
        sig_a = pattern_signature(pattern)
        sig_b = pattern_signature(reordered)
        for position in range(len(pattern.patterns)):
            a = pattern.patterns[sig_a.order[position]]
            b = reordered.patterns[sig_b.order[position]]
            assert a.schema_path == b.schema_path


class TestAnnotationFingerprint:
    def test_same_routing_same_fingerprint(self, pattern):
        ads = list(paper_active_schemas(SCHEMA).values())
        first = route_query(pattern, ads, SCHEMA)
        second = route_query(paper_query_pattern(SCHEMA), ads, SCHEMA)
        assert annotation_fingerprint(first) == annotation_fingerprint(second)

    def test_missing_peer_changes_fingerprint(self, pattern):
        ads = paper_active_schemas(SCHEMA)
        full = route_query(pattern, ads.values(), SCHEMA)
        partial = route_query(
            pattern, [a for p, a in ads.items() if p != "P2"], SCHEMA
        )
        assert annotation_fingerprint(full) != annotation_fingerprint(partial)

    def test_renamed_query_same_fingerprint(self, pattern):
        """Routing content is name-independent, so fingerprints agree
        across alpha-renaming (the plan cache adds the exact-pattern
        equality check on top)."""
        ads = list(paper_active_schemas(SCHEMA).values())
        renamed = _q("{A} n1:prop1 {B}, {B} n1:prop2 {C}", select="A, B")
        assert annotation_fingerprint(
            route_query(pattern, ads, SCHEMA)
        ) == annotation_fingerprint(route_query(renamed, ads, SCHEMA))
