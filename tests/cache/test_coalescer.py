"""Tests for request coalescing: unit behaviour and end-to-end flow."""

from repro.cache import QueryCoalescer
from repro.workloads.paper import PAPER_QUERY, paper_peer_bases, paper_schema
from repro.systems import HybridSystem


class TestQueryCoalescer:
    def test_first_is_leader(self):
        coalescer = QueryCoalescer()
        assert coalescer.admit("k", "q1", "req1") is None
        assert coalescer.in_flight() == 1

    def test_second_parks_behind_leader(self):
        coalescer = QueryCoalescer()
        coalescer.admit("k", "q1", "req1")
        assert coalescer.admit("k", "q2", "req2") == "q1"
        assert coalescer.parked() == 1

    def test_distinct_keys_fly_independently(self):
        coalescer = QueryCoalescer()
        assert coalescer.admit("a", "q1", "r1") is None
        assert coalescer.admit("b", "q2", "r2") is None
        assert coalescer.in_flight() == 2

    def test_complete_releases_followers_in_order(self):
        coalescer = QueryCoalescer()
        coalescer.admit("k", "q1", "r1")
        coalescer.admit("k", "q2", "r2")
        coalescer.admit("k", "q3", "r3")
        assert coalescer.complete("q1") == ["r2", "r3"]
        assert coalescer.in_flight() == 0
        assert coalescer.parked() == 0

    def test_complete_retires_key(self):
        coalescer = QueryCoalescer()
        coalescer.admit("k", "q1", "r1")
        coalescer.complete("q1")
        # a later identical query starts a fresh flight
        assert coalescer.admit("k", "q4", "r4") is None

    def test_complete_is_idempotent(self):
        coalescer = QueryCoalescer()
        coalescer.admit("k", "q1", "r1")
        coalescer.admit("k", "q2", "r2")
        assert coalescer.complete("q1") == ["r2"]
        assert coalescer.complete("q1") == []

    def test_non_leader_completion_releases_nothing(self):
        coalescer = QueryCoalescer()
        coalescer.admit("k", "q1", "r1")
        coalescer.admit("k", "q2", "r2")
        assert coalescer.complete("q2") == []
        assert coalescer.parked() == 1


def _system(**kwargs):
    system = HybridSystem(paper_schema(), **kwargs)
    system.add_super_peer("SP1")
    for peer_id, graph in paper_peer_bases().items():
        system.add_peer(peer_id, graph, "SP1")
    return system


class TestCoalescingEndToEnd:
    def test_concurrent_identical_queries_share_one_flight(self):
        system = _system()
        client = system.add_client()
        first = client.submit("P1", PAPER_QUERY)
        second = client.submit("P1", PAPER_QUERY)
        system.run()
        result_a = client.result(first)
        result_b = client.result(second)
        assert result_a is not None and result_a.error is None
        assert result_b is not None and result_b.error is None
        assert len(result_a.table) == len(result_b.table)
        assert system.network.metrics.coalesced_queries == 1
        # the follower triggered no second routing round-trip
        assert system.network.metrics.messages_by_kind["RouteRequest"] == 1

    def test_follower_latency_recorded(self):
        system = _system()
        client = system.add_client()
        first = client.submit("P1", PAPER_QUERY)
        second = client.submit("P1", PAPER_QUERY)
        system.run()
        assert first in system.network.metrics.query_latency
        assert second in system.network.metrics.query_latency

    def test_sequential_queries_do_not_coalesce(self):
        system = _system()
        first = system.query("P1", PAPER_QUERY)
        second = system.query("P1", PAPER_QUERY)
        assert len(first) == len(second)
        assert system.network.metrics.coalesced_queries == 0

    def test_different_constraints_fly_separately(self):
        system = _system()
        client = system.add_client()
        first = client.submit("P1", PAPER_QUERY)
        second = client.submit("P1", PAPER_QUERY, limit=1)
        system.run()
        assert system.network.metrics.coalesced_queries == 0
        assert len(client.result(first).table) >= 1
        assert len(client.result(second).table) == 1

    def test_no_cache_disables_coalescing(self):
        system = _system(cache_enabled=False)
        client = system.add_client()
        first = client.submit("P1", PAPER_QUERY)
        second = client.submit("P1", PAPER_QUERY)
        system.run()
        assert system.network.metrics.coalesced_queries == 0
        assert client.result(first) is not None
        assert client.result(second) is not None
