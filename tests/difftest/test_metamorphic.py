"""Metamorphic properties of the distributed execution pipeline.

Fault-free runs of the same query over the same deployment must return
the same binding multiset regardless of *how* the plan was evaluated:
optimizer rewrites (join/union distribution, same-peer merging),
shipping choices, batch size, and vectorized-versus-scalar operators
are all answer-preserving transformations.  Coverage annotations on
degraded (partial) answers must be invariant too.
"""

import pytest

from .harness import (
    build_adhoc,
    build_hybrid,
    centralized_answer,
    distributed_answer,
    make_workload,
)

SEEDS = [0, 1, 2, 4]

#: Execution-mode variants that must not change any answer.
VARIANTS = [
    ("optimized", {}),
    ("unoptimized", {"optimize_plans": False}),
    ("shipping", {"use_shipping": True}),
    ("unoptimized-shipping", {"optimize_plans": False, "use_shipping": True}),
    ("batch-1", {"batch_size": 1}),
    ("batch-7", {"batch_size": 7}),
    ("batch-256", {"batch_size": 256}),
    ("scalar", {"vectorize": False}),
    ("scalar-unoptimized", {"vectorize": False, "optimize_plans": False}),
]


@pytest.mark.parametrize("seed", SEEDS)
def test_variants_agree_hybrid(seed):
    workload = make_workload(seed, queries=3)
    via = workload.peer_ids[0]
    for text in workload.queries:
        reference = centralized_answer(workload, text)
        for name, options in VARIANTS:
            system = build_hybrid(workload, **options)
            actual = distributed_answer(system, via, text)
            if actual is None:
                assert len(reference) == 0, (
                    f"variant {name} found no peers, reference has rows "
                    f"(seed {seed}, {text!r})"
                )
                continue
            assert actual == reference, (
                f"variant {name} diverged from the reference "
                f"(seed {seed}, {text!r})"
            )


@pytest.mark.parametrize("seed", [0, 2])
def test_variants_agree_adhoc(seed):
    workload = make_workload(seed, queries=2)
    via = workload.peer_ids[-1]
    for text in workload.queries:
        reference = centralized_answer(workload, text)
        for name, options in VARIANTS[:6]:
            system = build_adhoc(workload, **options)
            actual = distributed_answer(system, via, text)
            if actual is None:
                assert len(reference) == 0
                continue
            assert actual == reference, f"adhoc variant {name} diverged (seed {seed})"


def _partial_result(workload, text, **options):
    """Run one query with graceful degradation on; returns the client's
    QueryResult (table + coverage annotation)."""
    system = build_hybrid(workload, **options)
    for peer in system.peers.values():
        peer.partial_results = True
    client = system.add_client()
    query_id = client.submit(workload.peer_ids[0], text)
    system.run()
    result = client.result(query_id)
    assert result is not None
    return result


def test_coverage_annotations_invariant_under_batching():
    """Seed 3 is a vertical layout with 3 peers over 4 chain segments:
    segment 3 has no provider, so a full-chain query degrades to a
    coverage-annotated partial answer.  The annotation and the partial
    table must not depend on batching or vectorization."""
    workload = make_workload(3, queries=0)
    assert workload.distribution.value == "vertical"
    from repro.workloads.query_gen import chain_query

    text = chain_query(workload.synthetic, start=0, length=4)
    reference = _partial_result(workload, text)
    assert reference.error is None
    assert reference.coverage is not None
    assert reference.coverage.unanswered  # something really was degraded
    for options in ({"batch_size": 1}, {"batch_size": 7}, {"vectorize": False}):
        variant = _partial_result(workload, text, **options)
        assert variant.error is None
        assert variant.coverage is not None
        assert variant.coverage.answered == reference.coverage.answered
        assert variant.coverage.unanswered == reference.coverage.unanswered
        assert variant.table == reference.table
