"""Concurrent-vs-sequential differential tests.

The oracle: interleaving queries must not change their answers.  Each
(seed, mode) pair serves 8–32 queries through one deployment with an
open-loop driver whose arrival gaps are far shorter than a query's
latency — so coordinations genuinely overlap, sharing super-peers,
channels and (for repeated texts) the coalescer — and every logical
query's answer must be identical to evaluating the same query on a
*fresh* twin deployment one at a time.

The sweep is 25 seeds x 8 modes = 200 seeded concurrent workloads,
spanning hybrid and ad-hoc architectures, vectorized and scalar
execution, odd batch sizes, admission control and fair scheduling.
"""

import pytest

from repro.workload_engine import AdmissionControl

from .harness import (
    build_adhoc,
    build_hybrid,
    concurrent_answers,
    make_workload,
    sequential_twin_answers,
)

SEEDS = list(range(25))

#: Interleaved submissions per workload: 8 for seed 0 up to 32 for
#: seed 24 (cycling over 8 distinct query texts, rotating the
#: coordinating peer).
def _count(seed: int) -> int:
    return 8 + (seed % 25)


def _with_admission(system):
    """Tight concurrency, generous queue: queries park and drain but
    are never refused, so answers must still all arrive intact."""
    system.enable_admission(
        AdmissionControl(max_concurrent=2, max_queued=64, retry_after=5.0)
    )
    return system


def _with_fair_scheduling(system):
    system.enable_fair_scheduling(quantum=0.25)
    return system


#: (mode id, deployment builder, system options, post-build configure)
MODES = [
    ("hybrid-vectorized", build_hybrid, {}, None),
    ("hybrid-scalar", build_hybrid, {"vectorize": False}, None),
    ("hybrid-batch7", build_hybrid, {"batch_size": 7}, None),
    ("hybrid-admission", build_hybrid, {}, _with_admission),
    ("adhoc-vectorized", build_adhoc, {}, None),
    ("adhoc-scalar", build_adhoc, {"vectorize": False}, None),
    ("adhoc-batch5", build_adhoc, {"batch_size": 5}, None),
    ("adhoc-fair", build_adhoc, {}, _with_fair_scheduling),
]


def test_sweep_is_large_enough():
    """The acceptance floor: 200 seeded concurrent workloads."""
    assert len(SEEDS) * len(MODES) == 200
    assert all(8 <= _count(seed) <= 32 for seed in SEEDS)


@pytest.mark.parametrize("mode,builder,options,configure", MODES,
                         ids=[m[0] for m in MODES])
@pytest.mark.parametrize("seed", SEEDS)
def test_concurrent_matches_sequential(seed, mode, builder, options, configure):
    workload = make_workload(seed, queries=8)
    count = _count(seed)
    system = builder(workload, **options)
    if configure is not None:
        configure(system)
    report, answers = concurrent_answers(
        system, workload, count, arrival_rate=1.5
    )
    expected = sequential_twin_answers(builder, workload, count, **options)

    summary = report.summary()
    assert summary["silent"] == 0, f"silent queries in {mode} seed {seed}"
    assert summary["shed"] == 0, f"unexpected sheds in {mode} seed {seed}"
    assert summary["max_inflight"] >= 2, (
        f"workload never interleaved ({mode}, seed {seed})"
    )
    for index in range(count):
        result = answers[index]
        assert result is not None, f"query {index} got no reply ({mode}, {seed})"
        twin_table, twin_error = expected[index]
        if twin_error is not None:
            assert result.error, (
                f"query {index}: concurrent answered but sequential twin "
                f"failed with {twin_error!r} ({mode}, seed {seed})"
            )
            continue
        assert not result.error, (
            f"query {index}: concurrent failed with {result.error!r} but "
            f"sequential twin answered ({mode}, seed {seed})"
        )
        assert result.table == twin_table, (
            f"query {index}: concurrent {len(result.table)} rows != "
            f"sequential {len(twin_table)} rows ({mode}, seed {seed})"
        )


def test_dense_workload_keeps_many_in_flight():
    """The interleaving is real: a burst-heavy serving run holds at
    least 8 coordinations in flight at once, and the answers still all
    match the sequential twin."""
    workload = make_workload(4, queries=8)
    system = build_hybrid(workload)
    report, answers = concurrent_answers(
        system, workload, 24, arrival_rate=20.0
    )
    expected = sequential_twin_answers(build_hybrid, workload, 24)
    assert report.summary()["max_inflight"] >= 8
    assert report.summary()["silent"] == 0
    for index in range(24):
        twin_table, twin_error = expected[index]
        if twin_error is not None:
            assert answers[index].error
        else:
            assert answers[index].table == twin_table
