"""Cost-planning differential wall: cost-based vs rule-based vs oracle.

The cost-based planner may pick any join order and any shipping split
it likes — what it may never change is the *answer*.  Every (dataset
seed, execution mode) pair deploys the same workload twice, once with
``cost_based=True`` and once on the seed's rule-based path, evaluates
the same seeded queries through both, and requires the outcomes to be
exactly equal: result tables, error strings and coverage annotations
alike.  Successful answers are additionally checked against the
centralized oracle over the merged bases.

The sweep spans hybrid and ad-hoc deployments, scalar and
dictionary-encoded execution, and odd batch sizes, totalling more than
200 seeded comparisons.
"""

import pytest

from .harness import (
    Workload,
    build_adhoc,
    build_hybrid,
    centralized_answer,
    make_workload,
)

SEEDS = list(range(9))
QUERIES_PER_DATASET = 4

#: (mode id, builder, shared system options) — cost_based toggles on top
MODES = [
    ("hybrid-encoded", build_hybrid, {"encode": True}),
    ("hybrid-scalar", build_hybrid, {"vectorize": False}),
    ("hybrid-batch-7", build_hybrid, {"batch_size": 7}),
    ("adhoc-encoded", build_adhoc, {"encode": True}),
    ("adhoc-scalar", build_adhoc, {"vectorize": False}),
    ("adhoc-encoded-batch-13", build_adhoc, {"encode": True, "batch_size": 13}),
]


def test_sweep_is_large_enough():
    """The acceptance floor: at least 200 seeded comparisons."""
    assert len(SEEDS) * len(MODES) * QUERIES_PER_DATASET >= 200


def _outcome(system, via: str, text: str):
    """One query's full observable outcome: (columns, sorted rows,
    error string, coverage repr) — everything a client can see."""
    client = system.add_client()
    query_id = system.submit(via, text, client=client)
    system.run()
    result = client.result(query_id)
    assert result is not None, f"no reply for {text!r}"
    if result.table is None:
        return None, None, result.error, repr(result.coverage)
    rows = sorted(" ".join(term.n3() for term in row) for row in result.table.rows)
    return tuple(result.table.columns), rows, result.error, repr(result.coverage)


def _check_against_oracle(workload: Workload, outcome, text: str) -> None:
    columns, rows, error, _ = outcome
    expected = centralized_answer(workload, text)
    if error is not None:
        assert "no relevant peers" in error, error
        assert len(expected) == 0, (
            f"cost path found no relevant peers but oracle has "
            f"{len(expected)} rows for {text!r}"
        )
        return
    expected_rows = sorted(
        " ".join(
            dict(zip(expected.columns, row))[c].n3() for c in columns
        )
        for row in expected.rows
    )
    assert rows == expected_rows, (
        f"{len(rows)} rows != oracle {len(expected_rows)} for {text!r}"
    )


@pytest.mark.parametrize("mode,builder,options", MODES, ids=[m[0] for m in MODES])
@pytest.mark.parametrize("seed", SEEDS)
def test_cost_based_matches_rule_based_and_oracle(seed, mode, builder, options):
    workload = make_workload(seed, queries=QUERIES_PER_DATASET)
    rule_system = builder(workload, **options)
    cost_system = builder(workload, cost_based=True, **options)
    via = workload.peer_ids[seed % len(workload.peer_ids)]
    compared = 0
    for text in workload.queries:
        rule = _outcome(rule_system, via, text)
        cost = _outcome(cost_system, via, text)
        assert cost == rule, (
            f"cost-based diverged from rule-based for {text!r} "
            f"(seed {seed}, {mode}):\n  cost={cost}\n  rule={rule}"
        )
        _check_against_oracle(workload, cost, text)
        compared += 1
    assert compared == QUERIES_PER_DATASET


@pytest.mark.parametrize("seed", [0, 2, 5])
def test_cost_based_is_deterministic(seed):
    """Same seed, same options → bit-identical twin runs: answers,
    message counts, bytes and the final virtual clock all agree."""
    fingerprints = []
    for _ in range(2):
        workload = make_workload(seed, queries=QUERIES_PER_DATASET)
        system = build_hybrid(workload, cost_based=True, encode=True)
        via = workload.peer_ids[0]
        outcomes = [_outcome(system, via, text) for text in workload.queries]
        metrics = system.network.metrics
        fingerprints.append(
            (
                outcomes,
                metrics.messages_total,
                metrics.bytes_total,
                sorted(metrics.messages_by_kind.items()),
                system.network.now,
            )
        )
    assert fingerprints[0] == fingerprints[1]


def test_cost_decision_trace_emitted():
    """A cost-based coordinator records the chosen-vs-rejected plan
    costs as an ``optimize.cost`` span; the rule-based twin never does."""
    workload = make_workload(1, queries=QUERIES_PER_DATASET)
    cost_system = build_hybrid(workload, cost_based=True)
    rule_system = build_hybrid(workload)
    via = workload.peer_ids[0]
    for text in workload.queries:
        _outcome(cost_system, via, text)
        _outcome(rule_system, via, text)
    def spans_named(system, name):
        collector = system.network.tracer.collector
        return [
            span
            for trace_id in collector.trace_ids()
            for span in collector.spans(trace_id)
            if span.name == name
        ]

    cost_spans = spans_named(cost_system, "optimize.cost")
    rule_spans = spans_named(rule_system, "optimize.cost")
    assert cost_spans, "cost-based run emitted no optimize.cost span"
    assert not rule_spans, "rule-based run emitted optimize.cost spans"
    for span in cost_spans:
        assert "chosen" in span.attributes and "rejected" in span.attributes
