"""Metamorphic properties of the live data plane.

The quiescent state a deployment converges to is a function of the
*final* bases — not of how the updates were delivered.  Three
relations, checked against a baseline run of the same seeded stream:

* **reorder** — commutative records within a batch (no triple both
  inserted and deleted) and whole batches within a revision can be
  delivered in any order;
* **batching** — collapsing every revision into one merged batch per
  peer changes the advertisement cadence, never the outcome;
* **split** — partitioning each revision's batches across two
  independent injection points (two injector peers) is invisible.

Each relation must preserve quiescent answers, coverage annotations
and the final active-schema digest, in hybrid and ad-hoc deployments.
"""

import pytest

from repro.livedata import (
    UpdateInjector,
    UpdateStream,
    active_schema_digest,
)
from repro.livedata.updates import (
    DeleteTriple,
    InsertTriple,
    RedefineViews,
    UpdateBatch,
)

from .harness import build_adhoc, build_hybrid, make_workload
from .live_harness import _normalize, full_result

SEEDS = [1, 4, 9, 14]
KINDS = ["hybrid", "adhoc"]


def _deploy(kind, workload):
    if kind == "hybrid":
        return build_hybrid(workload)
    return build_adhoc(workload)


def _run_stream(kind, workload, revision_lists, injectors=1):
    """Deliver the given revisions through ``injectors`` independent
    injection points, draining the network after every revision."""
    system = _deploy(kind, workload)
    points = []
    for index in range(injectors):
        injector = UpdateInjector(f"live-injector-{index}")
        injector.join(system.network)
        points.append(injector)
    for batches in revision_lists:
        for position, batch in enumerate(batches):
            points[position % len(points)].send(batch.target, batch)
        system.run()
    return system


def _fingerprint(system, workload):
    """(answers+coverage per query, held-advertisement digest)."""
    answers = []
    for text in workload.queries:
        error, table, coverage = _normalize(
            full_result(system, workload.peer_ids[0], text)
        )
        rows = (
            None
            if table is None
            else sorted(tuple(t.n3() for t in row) for row in table.rows)
        )
        answers.append((error, rows, coverage))
    schema_uri = workload.synthetic.schema.namespace.uri
    if hasattr(system, "super_peers"):
        registry = next(iter(system.super_peers.values())).registry.get(
            schema_uri, {}
        )
        digest = active_schema_digest(registry[p] for p in sorted(registry))
    else:
        digest = tuple(
            active_schema_digest(
                ad
                for _, ad in sorted(
                    system.peers[holder]
                    .known_advertisements.get(schema_uri, {})
                    .items()
                )
            )
            for holder in workload.peer_ids
        )
    return answers, digest


def _records_commute(batch: UpdateBatch) -> bool:
    """Safe to permute: no triple is both inserted and deleted (view
    redefinitions commute with triple records — the advertisement is
    derived after the whole batch)."""
    inserted = {r.triple for r in batch.updates if isinstance(r, InsertTriple)}
    deleted = {r.triple for r in batch.updates if isinstance(r, DeleteTriple)}
    views = [r for r in batch.updates if isinstance(r, RedefineViews)]
    return not (inserted & deleted) and len(views) <= 1


def _reordered(revisions):
    """Reverse batch order per revision; reverse records where safe."""
    out = []
    for batches in revisions:
        transformed = []
        for batch in reversed(batches):
            if _records_commute(batch):
                batch = UpdateBatch(
                    batch.target, batch.revision, tuple(reversed(batch.updates))
                )
            transformed.append(batch)
        out.append(transformed)
    return out


def _batched(revisions):
    """One merged batch per peer: the whole stream as a single
    revision."""
    merged = {}
    for batches in revisions:
        for batch in batches:
            merged.setdefault(batch.target, []).extend(batch.updates)
    return [
        [
            UpdateBatch(target, 1, tuple(records))
            for target, records in sorted(merged.items())
        ]
    ]


@pytest.mark.tier1
@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("seed", SEEDS)
def test_reordering_commutative_updates_is_invisible(seed, kind):
    workload = make_workload(seed)
    stream = UpdateStream(
        workload.synthetic.schema, workload.bases, seed=seed, revisions=3
    )
    baseline = _run_stream(kind, workload, stream.revisions)
    transformed = _run_stream(kind, workload, _reordered(stream.revisions))
    assert _fingerprint(baseline, workload) == _fingerprint(
        transformed, workload
    ), f"reorder diverged (seed {seed}, {kind})"


@pytest.mark.tier1
@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("seed", SEEDS)
def test_batching_updates_is_invisible(seed, kind):
    workload = make_workload(seed)
    stream = UpdateStream(
        workload.synthetic.schema, workload.bases, seed=seed, revisions=3
    )
    baseline = _run_stream(kind, workload, stream.revisions)
    transformed = _run_stream(kind, workload, _batched(stream.revisions))
    assert _fingerprint(baseline, workload) == _fingerprint(
        transformed, workload
    ), f"batching diverged (seed {seed}, {kind})"


@pytest.mark.tier1
@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("seed", SEEDS)
def test_splitting_injection_points_is_invisible(seed, kind):
    workload = make_workload(seed)
    stream = UpdateStream(
        workload.synthetic.schema, workload.bases, seed=seed, revisions=3
    )
    baseline = _run_stream(kind, workload, stream.revisions)
    transformed = _run_stream(kind, workload, stream.revisions, injectors=2)
    assert _fingerprint(baseline, workload) == _fingerprint(
        transformed, workload
    ), f"split injection diverged (seed {seed}, {kind})"


@pytest.mark.slow
@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("seed", range(20))
def test_metamorphic_sweep(seed, kind):
    """The wide version: all three relations per seed."""
    workload = make_workload(seed)
    stream = UpdateStream(
        workload.synthetic.schema, workload.bases, seed=seed, revisions=3
    )
    baseline = _fingerprint(
        _run_stream(kind, workload, stream.revisions), workload
    )
    for transform in (
        lambda r: _reordered(r),
        lambda r: _batched(r),
        lambda r: r,
    ):
        transformed = _run_stream(kind, workload, transform(stream.revisions))
        assert _fingerprint(transformed, workload) == baseline
    split = _run_stream(kind, workload, stream.revisions, injectors=2)
    assert _fingerprint(split, workload) == baseline
