"""Differential tests: distributed execution vs the centralized oracle.

Every (dataset seed, execution mode) pair evaluates a batch of seeded
random queries through a full deployment and compares the binding
multiset against centralized evaluation over the merged bases.  The
sweep totals well over 100 seeded query/dataset comparisons.
"""

import pytest

from .harness import (
    assert_equivalent,
    build_adhoc,
    build_hybrid,
    make_workload,
)

SEEDS = list(range(10))
QUERIES_PER_DATASET = 4

#: (mode id, builder, system options)
MODES = [
    ("hybrid-vectorized", build_hybrid, {}),
    ("hybrid-scalar", build_hybrid, {"vectorize": False}),
    ("hybrid-smallbatch", build_hybrid, {"batch_size": 7}),
    ("adhoc-vectorized", build_adhoc, {}),
    ("adhoc-scalar", build_adhoc, {"vectorize": False}),
]


def test_sweep_is_large_enough():
    """The acceptance floor: at least 100 seeded comparisons."""
    assert len(SEEDS) * len(MODES) * QUERIES_PER_DATASET >= 100


@pytest.mark.parametrize("mode,builder,options", MODES, ids=[m[0] for m in MODES])
@pytest.mark.parametrize("seed", SEEDS)
def test_distributed_matches_centralized(seed, mode, builder, options):
    workload = make_workload(seed, queries=QUERIES_PER_DATASET)
    system = builder(workload, **options)
    via = workload.peer_ids[seed % len(workload.peer_ids)]
    compared = 0
    for text in workload.queries:
        assert_equivalent(workload, system, via, text)
        compared += 1
    assert compared == QUERIES_PER_DATASET


@pytest.mark.parametrize("seed", [0, 3, 5])
def test_single_peer_deployment_matches(seed):
    """Degenerate topology: one peer holds everything."""
    workload = make_workload(seed, peers=1, queries=QUERIES_PER_DATASET)
    system = build_hybrid(workload)
    for text in workload.queries:
        assert_equivalent(workload, system, workload.peer_ids[0], text)


@pytest.mark.parametrize("batch_size", [1, 3, 1024])
def test_extreme_batch_sizes_match(batch_size):
    """Fragmentation edge cases: one binding per packet up to one
    packet far larger than any result."""
    workload = make_workload(2, queries=QUERIES_PER_DATASET)
    system = build_hybrid(workload, batch_size=batch_size)
    for text in workload.queries:
        assert_equivalent(workload, system, workload.peer_ids[0], text)
