"""Sim-vs-live differential validation of dynamic membership.

The churn oracle: a seeded membership scenario — crash a peer
mid-workload, recover it from durable state, bring a fresh joiner in —
must produce exactly the same answers, the same coverage annotations
and the same membership accounting whether it runs in-sim on the
virtual clock or as real OS processes over localhost TCP.

Five dataset seeds cycle the distribution spectrum; each cluster
serves twelve sequential queries through a scripted churn schedule
(healthy → crash → degraded → supervised-style restart → healed →
mid-run join → grown), giving 60 seeded churn queries compared
pairwise (>= the 50 the acceptance bar asks for).  A sim-only sweep
then runs a crash/rejoin cycle across many more seeds and checks the
rejoined peer's durable state digests byte-equal against a
never-crashed twin.
"""

import json

import pytest

from repro.deploy import ClusterSpec, LiveCluster, build_sim_system, build_workload
from repro.durability import peer_state_digest
from repro.errors import PeerError
from repro.membership import MembershipManager

#: Seeds 0..4 cover VERTICAL, HORIZONTAL, MIXED, VERTICAL, HORIZONTAL.
SEEDS = (0, 1, 2, 3, 4)
VICTIM = "P2"
JOINER = "P4"

#: The scripted 12-query churn scenario: (phase boundary events are
#: applied *before* the query at the given index).
#:   q0-3  healthy 3-peer cluster
#:   q4-6  degraded: the victim crashed abruptly after q3
#:   q7-8  healed: the victim recovered from durable state after q6
#:   q9-11 grown: a fresh joiner entered after q8
VIA_PLAN = ("P1", "P2", "P3", "P1",   # healthy
            "P1", "P3", "P1",          # victim down
            "P2", "P3",                # victim back (and coordinating)
            "P4", "P1", "P2")          # joiner in rotation
CRASH_BEFORE = 4
REJOIN_BEFORE = 7
JOIN_BEFORE = 9


def _spec(seed):
    return ClusterSpec(seed=seed, peers=3, super_peers=1,
                       resilient=True, joiners=1)


def _sequence(workload):
    return [
        (via, workload.queries[i % len(workload.queries)])
        for i, via in enumerate(VIA_PLAN)
    ]


def _describe(result):
    rows = None if result.table is None else len(result.table)
    return (result.error, rows, result.coverage)


def _sim_answers(spec, workload):
    """The in-sim twin: same churn script over MembershipManager."""
    system = build_sim_system(spec, workload)
    manager = MembershipManager(system)
    manager.attach_all()
    for peer in system.peers.values():
        peer.save_durable_snapshot()
    answers = []
    for index, (via, text) in enumerate(_sequence(workload)):
        if index == CRASH_BEFORE:
            manager.crash(VICTIM)
            system.network.run()
        if index == REJOIN_BEFORE:
            manager.rejoin(VICTIM)
            system.network.run()
        if index == JOIN_BEFORE:
            manager.join(JOINER, workload.bases[JOINER], "SP1")
            system.network.run()
        client = system.add_client()
        query_id = client.submit(via, text)
        system.network.run()
        result = client.result(query_id)
        assert result is not None, f"sim query {query_id} never answered"
        answers.append(result)
    return answers


@pytest.mark.parametrize("seed", SEEDS)
def test_live_churn_matches_sim_exactly(seed, tmp_path):
    spec = _spec(seed)
    workload = build_workload(spec)
    expected = _sim_answers(spec, workload)

    cluster = LiveCluster(spec, tmp_path / f"churn-{seed}",
                          statedir=tmp_path / f"churn-{seed}" / "state")
    actual = []
    try:
        cluster.start()
        for index, (via, text) in enumerate(_sequence(workload)):
            if index == CRASH_BEFORE:
                cluster.kill_peer(VICTIM, sig="kill")
                cluster.processes[VICTIM].wait(timeout=30)
            if index == REJOIN_BEFORE:
                cluster.restart_peer(VICTIM)
            if index == JOIN_BEFORE:
                cluster.spawn_peer(JOINER)
            actual.append(cluster.query(via, text))
    finally:
        summary = cluster.shutdown()

    assert len(actual) == len(expected)
    for index, (sim, live) in enumerate(zip(expected, actual)):
        context = (f"seed {seed} query {index}: "
                   f"sim {_describe(sim)} vs live {_describe(live)}")
        assert (sim.error is None) == (live.error is None), context
        if sim.error is not None:
            assert sim.error == live.error, context
        else:
            assert live.table == sim.table, context
        assert live.coverage == sim.coverage, context
    # membership accounting in the run report
    assert summary["killed"] == [VICTIM]
    assert summary["restarts"] == [VICTIM]
    assert summary["joined"] == [JOINER]
    # the SIGKILL'd incarnation reports the kill; the restarted one (and
    # every survivor) exits 0 on shutdown
    assert summary["first_exit_codes"][VICTIM] == -9, summary
    assert all(code == 0 for code in summary["exit_codes"].values()), summary


def test_sigkill_without_restart_still_merges_artifacts(tmp_path):
    """An abruptly killed process exports nothing, but the survivors'
    artifacts still merge and every per-process series stays
    distinguishable (the satellite contract for SIGKILL runs)."""
    spec = ClusterSpec(seed=0, peers=3, super_peers=1, resilient=True)
    workload = build_workload(spec)
    cluster = LiveCluster(spec, tmp_path / "sigkill-run")
    try:
        cluster.start()
        healthy = cluster.query("P1", workload.queries[0])
        assert healthy.error is None
        cluster.kill_peer(VICTIM, sig="kill")
        cluster.processes[VICTIM].wait(timeout=30)
        degraded = cluster.query("P1", workload.queries[0])
        assert degraded.error is None
    finally:
        summary = cluster.shutdown()
    assert summary["exit_codes"][VICTIM] == -9
    survivors = [n for n in summary["exit_codes"] if n != VICTIM]
    assert all(summary["exit_codes"][n] == 0 for n in survivors), summary
    assert "merged.metrics.prom" in summary["artifacts"]
    merged = (cluster.outdir / "merged.metrics.prom").read_text()
    for node_id in survivors:
        assert f'peer_id="{node_id}"' in merged
    assert f'peer_id="{VICTIM}"' not in merged  # no export from a SIGKILL
    report = json.loads((cluster.outdir / "report.json").read_text())
    assert report["killed"] == [VICTIM]


@pytest.mark.parametrize("seed", range(10))
def test_crash_rejoin_twin_equivalence_in_sim(seed):
    """Across further seeds: after a crash/recover cycle the deployment
    answers exactly like a twin that never churned, and the rejoined
    peer's membership-relevant state digests byte-equal its twin's."""
    spec = ClusterSpec(seed=seed, peers=3, super_peers=1, resilient=True)
    workload = build_workload(spec)

    churned = build_sim_system(spec, workload)
    manager = MembershipManager(churned)
    manager.attach_all()
    for peer in churned.peers.values():
        peer.save_durable_snapshot()
    twin = build_sim_system(spec, workload)

    manager.crash(VICTIM)
    churned.network.run()
    manager.rejoin(VICTIM)
    churned.network.run()

    def outcome(system, via, text):
        # some seeded queries are unanswerable by construction; that
        # verdict must match between the twins just like the rows do
        try:
            return ("rows", system.query(via, text))
        except PeerError as exc:
            return ("error", str(exc).split(": ", 1)[-1])

    for index, text in enumerate(workload.queries):
        via = spec.peer_ids()[index % spec.peers]
        churned_outcome = outcome(churned, via, text)
        twin_outcome = outcome(twin, via, text)
        assert churned_outcome == twin_outcome, (
            f"seed {seed} query {index} diverged after rejoin"
        )

    def digest(system, peer_id):
        peer = system.peers[peer_id]
        return peer_state_digest(
            peer.base.graph, peer.base.views,
            peer.base.active_schema(peer_id),
            {}, peer.quarantine.peers,
        )

    assert digest(churned, VICTIM) == digest(twin, VICTIM)
