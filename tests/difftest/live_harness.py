"""Live-data differential harness: incremental vs from-scratch twins.

The oracle wall this module powers: run a seeded update stream through
a live deployment (incremental active-schema maintenance, delta
advertisements, warm caches), and at every quiescent revision compare
against a *from-scratch oracle twin* — a fresh deployment built from
snapshots of the current bases and views (full active-schema
re-derivation, cold routing/plan caches) — plus the centralized
evaluator over the merged current bases.  Zero tolerance: answers,
coverage annotations and active-schema digests must all agree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.livedata import (
    LiveDataDriver,
    UpdateStream,
    active_schema_digest,
)
from repro.rdf.graph import Graph
from repro.rql.evaluator import query as centralized_query
from repro.systems import AdhocSystem, HybridSystem

from .harness import Workload, build_adhoc, build_hybrid, make_workload


def snapshot_bases(system, peer_ids) -> Dict[str, Tuple[Graph, tuple]]:
    """Copy each peer's current base (graph + views) for twin building."""
    return {
        peer_id: (
            system.peers[peer_id].base.graph.copy(),
            system.peers[peer_id].base.views,
        )
        for peer_id in peer_ids
    }


def build_twin(kind: str, workload: Workload, snapshot, **options):
    """A fresh deployment of the snapshotted bases: full re-derivation
    of every active schema, cold caches — the from-scratch oracle."""
    if kind == "hybrid":
        twin = HybridSystem(workload.synthetic.schema, seed=workload.seed, **options)
        twin.add_super_peer("SP")
        for peer_id in workload.peer_ids:
            graph, views = snapshot[peer_id]
            twin.add_peer(peer_id, graph, "SP", views=views)
        twin.run()
        return twin
    twin = AdhocSystem(workload.synthetic.schema, seed=workload.seed, **options)
    for peer_id in workload.peer_ids:
        graph, views = snapshot[peer_id]
        neighbours = [p for p in workload.peer_ids if p != peer_id]
        twin.add_peer(peer_id, graph, neighbours, views=views)
    twin.discover_all()
    return twin


def merged_current(system, peer_ids) -> Graph:
    """The union of every peer's *current* base (the centralized DB)."""
    merged = Graph()
    for peer_id in peer_ids:
        for triple in system.peers[peer_id].base.graph.triples():
            merged.add_triple(triple)
    return merged


def full_result(system, via: str, text: str):
    """Evaluate through a deployment, keeping the whole QueryResult
    (table, error *and* coverage annotation)."""
    client = system.add_client()
    query_id = client.submit(via, text)
    system.run()
    result = client.result(query_id)
    assert result is not None, f"no reply for {text!r} via {via}"
    return result


def _normalize(result) -> Tuple[Optional[str], Optional[object], Optional[object]]:
    """(error class, table, coverage) with 'no relevant peers' folded
    into a canonical marker (different deployments phrase it alike)."""
    if result.error is not None:
        assert "no relevant peers" in result.error, result.error
        return ("no-peers", None, None)
    return (None, result.table, result.coverage)


def assert_quiescent_equal(live, twin, workload: Workload, texts, via: str) -> int:
    """Snapshot queries at a quiescent point: live == twin == oracle."""
    merged = merged_current(live, workload.peer_ids)
    compared = 0
    for text in texts:
        live_err, live_table, live_cov = _normalize(full_result(live, via, text))
        twin_err, twin_table, twin_cov = _normalize(full_result(twin, via, text))
        expected = centralized_query(
            text, merged, workload.synthetic.schema
        ).distinct()
        assert live_err == twin_err, (
            f"live={live_err!r} twin={twin_err!r} for {text!r} "
            f"(seed {workload.seed})"
        )
        if live_err is not None:
            assert len(expected) == 0, (
                f"'no relevant peers' but oracle has {len(expected)} rows "
                f"for {text!r} (seed {workload.seed})"
            )
        else:
            assert live_table == twin_table, (
                f"live {len(live_table)} rows != twin {len(twin_table)} "
                f"for {text!r} (seed {workload.seed})"
            )
            assert live_cov == twin_cov, (
                f"coverage diverged: live={live_cov} twin={twin_cov} "
                f"for {text!r} (seed {workload.seed})"
            )
            assert live_table == expected, (
                f"live {len(live_table)} rows != centralized "
                f"{len(expected)} for {text!r} (seed {workload.seed})"
            )
        compared += 1
    return compared


def assert_digests_fresh(live, workload: Workload) -> None:
    """Every advertisement any holder believes must be digest-equal to
    a from-scratch ``active_schema`` re-derivation of the current base."""
    schema_uri = workload.synthetic.schema.namespace.uri
    fresh = {
        peer_id: live.peers[peer_id].base.active_schema(peer_id)
        for peer_id in workload.peer_ids
    }
    if hasattr(live, "super_peers"):
        for sp in live.super_peers.values():
            registry = sp.registry.get(schema_uri, {})
            held = [registry[p] for p in sorted(registry)]
            derived = [fresh[p] for p in sorted(registry)]
            assert active_schema_digest(held) == active_schema_digest(derived), (
                f"super-peer {sp.peer_id} registry digest diverged "
                f"(seed {workload.seed})"
            )
    else:
        for holder_id in workload.peer_ids:
            known = live.peers[holder_id].known_advertisements.get(schema_uri, {})
            for src, advertisement in known.items():
                if src not in fresh:
                    continue
                assert active_schema_digest([advertisement]) == active_schema_digest(
                    [fresh[src]]
                ), (
                    f"{holder_id}'s view of {src} went stale "
                    f"(seed {workload.seed})"
                )
    # the incremental maintainer itself must agree with from-scratch
    for peer_id in workload.peer_ids:
        maintainer = live.peers[peer_id]._maintainer
        if maintainer is not None:
            assert maintainer.current == fresh[peer_id], (
                f"{peer_id}'s maintained advertisement diverged "
                f"(seed {workload.seed})"
            )


def run_live_scenario(
    seed: int,
    kind: str,
    options: Optional[dict] = None,
    revisions: int = 3,
    queries_per_point: int = 2,
    rate: float = 0.08,
) -> int:
    """One full live-vs-oracle scenario; returns comparisons made.

    Builds a deployment, subscribes a standing query, then per seeded
    revision: injects the update batches with one query racing them in
    flight, runs to quiescence, and checks digests, snapshot answers
    (vs a from-scratch twin *and* the centralized oracle) and coverage
    annotations.  Finally the standing query's folded delta stream must
    equal the oracle's answer over the end-state bases.
    """
    options = dict(options or {})
    workload = make_workload(seed)
    builder = build_hybrid if kind == "hybrid" else build_adhoc
    system = builder(workload, **options)
    stream = UpdateStream(
        workload.synthetic.schema,
        workload.bases,
        seed=seed,
        revisions=revisions,
        rate=rate,
    )
    driver = LiveDataDriver(system, stream)
    subscriber = system.add_client("C-standing")
    standing_text = workload.queries[0]
    coordinator = workload.peer_ids[0]
    standing_id = subscriber.subscribe(coordinator, standing_text)
    system.run()
    assert standing_id in subscriber.continuous, "no initial snapshot pushed"

    peer_count = len(workload.peer_ids)
    compared = 0
    for revision in range(1, revisions + 1):
        driver.inject(revision - 1)
        # a query racing the update batches mid-flight: must terminate
        # cleanly whatever interleaving the clock deals
        probe_id = subscriber.submit(
            workload.peer_ids[revision % peer_count],
            workload.queries[revision % len(workload.queries)],
        )
        system.run()
        assert driver.acked(revision), f"revision {revision} not acked"
        probe = subscriber.result(probe_id)
        assert probe is not None
        assert probe.error is None or "no relevant peers" in probe.error, (
            f"in-flight query failed hard: {probe.error}"
        )
        driver.refresh_standing([coordinator], revision)
        system.run()
        assert_digests_fresh(system, workload)
        twin = build_twin(
            kind, workload, snapshot_bases(system, workload.peer_ids), **options
        )
        via = workload.peer_ids[revision % peer_count]
        texts = [
            workload.queries[(revision + i) % len(workload.queries)]
            for i in range(queries_per_point)
        ]
        compared += assert_quiescent_equal(system, twin, workload, texts, via)

    # the delta stream folds to the oracle's final table, bit-identically
    assert subscriber.continuous_errors.get(standing_id) is None, (
        subscriber.continuous_errors.get(standing_id)
    )
    folded = subscriber.continuous[standing_id]
    final_oracle = centralized_query(
        standing_text,
        merged_current(system, workload.peer_ids),
        workload.synthetic.schema,
    ).distinct()
    if len(folded) == 0 and len(final_oracle) == 0:
        pass  # both empty; a never-matched standing query has no columns yet
    else:
        assert folded == final_oracle, (
            f"folded {len(folded)} rows != oracle {len(final_oracle)} "
            f"(seed {seed}, {kind})"
        )
    return compared
