"""Metamorphic properties of cost-based planning: statistics only
steer *plan choice*, never the answer.

Each relation perturbs the :class:`~repro.core.cost.Statistics` a
cost-based deployment plans against — scaling every cardinality,
shuffling link costs, injecting adversarial load factors, zeroing
everything out, or forgetting every folded summary (missing peers).
The chosen plans may differ arbitrarily; the observable outcome
(result table, error string, coverage annotation) must be exactly the
unperturbed deployment's, and degenerate statistics must never crash
planning.
"""

import pytest

from repro.core.cost import Statistics

from .harness import build_adhoc, build_hybrid, make_workload
from .test_cost_planning import _outcome

SEEDS = [0, 1, 2, 5]
QUERIES_PER_DATASET = 4


class ScaledStatistics(Statistics):
    """Every cardinality inflated by a constant factor."""

    def __init__(self, factor: float):
        super().__init__()
        self._factor = factor

    def cardinality(self, peer_id, prop):
        return int(super().cardinality(peer_id, prop) * self._factor) + 1


class ShuffledLinkStatistics(Statistics):
    """Link costs replaced by a deterministic per-pair pseudo-shuffle."""

    def link_cost(self, a, b):
        if a == b:
            return 0.0
        return 0.1 + (hash((min(a, b), max(a, b))) % 97) / 10.0


class AdversarialLoadStatistics(Statistics):
    """Load factors that wildly favour some peers over others."""

    def load_factor(self, peer_id):
        return 1.0 + (hash(peer_id) % 13) * 100.0


class ZeroStatistics(Statistics):
    """Degenerate: every estimate collapses to zero."""

    def cardinality(self, peer_id, prop):
        return 0

    def selectivity(self, prop):
        return 0.0

    def link_cost(self, a, b):
        return 0.0


class AmnesiacStatistics(Statistics):
    """Degenerate: folding forgets everything — the planner sees no
    peer's summary (the missing-peers case)."""

    def fold_summary(self, summary):
        return None

    def fold_link_observations(self, observations):
        return None


PERTURBATIONS = [
    ("scaled-up-1000x", lambda: ScaledStatistics(1000.0)),
    ("scaled-down", lambda: ScaledStatistics(0.001)),
    ("shuffled-links", ShuffledLinkStatistics),
    ("adversarial-load", AdversarialLoadStatistics),
    ("all-zero", ZeroStatistics),
    ("missing-peers", AmnesiacStatistics),
]


@pytest.mark.parametrize(
    "name,make_stats", PERTURBATIONS, ids=[p[0] for p in PERTURBATIONS]
)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "builder", [build_hybrid, build_adhoc], ids=["hybrid", "adhoc"]
)
def test_perturbed_statistics_never_change_the_answer(
    seed, name, make_stats, builder
):
    workload = make_workload(seed, queries=QUERIES_PER_DATASET)
    baseline = builder(workload, cost_based=True, encode=True)
    perturbed = builder(
        workload, cost_based=True, encode=True, statistics=make_stats()
    )
    via = workload.peer_ids[seed % len(workload.peer_ids)]
    for text in workload.queries:
        expected = _outcome(baseline, via, text)
        actual = _outcome(perturbed, via, text)
        assert actual == expected, (
            f"perturbation {name} changed the outcome for {text!r} "
            f"(seed {seed}):\n  perturbed={actual}\n  baseline={expected}"
        )


def test_degenerate_statistics_do_not_crash_direct_planning():
    """Belt and braces: drive the optimiser directly with degenerate
    statistics over a real plan — zero estimates and unknown peers must
    yield a plan, not an exception."""
    from repro.core.cost import CostModel
    from repro.core.optimizer import optimize
    from repro.core.planning import build_plan
    from repro.rql.parser import parse_query

    workload = make_workload(3, queries=QUERIES_PER_DATASET)
    system = build_hybrid(workload, cost_based=True)
    peer = system.peers[workload.peer_ids[0]]
    query = parse_query(workload.queries[0])
    annotated = peer._route_local(peer._extract_against_any_schema(query))
    plan = build_plan(annotated)
    for stats in (ZeroStatistics(), AmnesiacStatistics(), Statistics()):
        trace = optimize(
            plan,
            CostModel(stats),
            cost_based=True,
            coordinator="nobody-knows-this-peer",
        )
        assert trace.result is not None
        assert trace.cost_decision is not None
