"""Sim-vs-live differential validation of the transport stack.

The tentpole oracle: the protocol stack must not be able to tell the
transports apart.  For any seeded cluster workload, every query
evaluated over a *live* deployment (real OS processes exchanging
length-prefixed JSON frames over localhost TCP) must produce exactly
the answer set — and exactly the coverage annotation — that the same
workload produces in-sim on the virtual clock.

Five dataset seeds cycle the distribution spectrum (vertical,
horizontal, mixed); each cluster serves twelve sequential queries
rotating the coordinating peer, giving 60 seeded workload queries
compared pairwise (>= the 50 the acceptance bar asks for).

The kill scenario closes the chaos loop: SIGTERMing a peer process
must degrade queries to coverage-annotated partial answers exactly as
``fail_peer`` does in-sim, and the cluster must still shut down
cleanly with merged artifacts.
"""

import json

import pytest

from repro.deploy import ClusterSpec, LiveCluster, build_sim_system, build_workload

#: Seeds 0..4 cover VERTICAL, HORIZONTAL, MIXED, VERTICAL, HORIZONTAL.
SEEDS = (0, 1, 2, 3, 4)
QUERIES_PER_CLUSTER = 12


def _sequence(spec, workload):
    """The (via, text) sequence both deployments serve."""
    peer_ids = spec.peer_ids()
    return [
        (peer_ids[i % len(peer_ids)], workload.queries[i % len(workload.queries)])
        for i in range(QUERIES_PER_CLUSTER)
    ]


def _sim_answers(spec, workload):
    """The in-sim twin's answers, via the same client-submit path the
    live launcher uses (fresh client per query, same id sequence)."""
    system = build_sim_system(spec, workload)
    answers = []
    for via, text in _sequence(spec, workload):
        client = system.add_client()
        query_id = client.submit(via, text)
        system.network.run()
        result = client.result(query_id)
        assert result is not None, f"sim query {query_id} never answered"
        answers.append(result)
    return answers


def _describe(result):
    rows = None if result.table is None else len(result.table)
    return (result.error, rows, result.coverage)


@pytest.mark.parametrize("seed", SEEDS)
def test_live_cluster_matches_sim_exactly(seed, tmp_path):
    spec = ClusterSpec(seed=seed, peers=3, super_peers=1)
    workload = build_workload(spec)
    expected = _sim_answers(spec, workload)

    cluster = LiveCluster(spec, tmp_path / f"run-{seed}")
    try:
        cluster.start()
        actual = [
            cluster.query(via, text) for via, text in _sequence(spec, workload)
        ]
    finally:
        summary = cluster.shutdown()

    assert len(actual) == len(expected)
    for index, (sim, live) in enumerate(zip(expected, actual)):
        context = f"seed {seed} query {index}: sim {_describe(sim)} vs live {_describe(live)}"
        assert (sim.error is None) == (live.error is None), context
        if sim.error is not None:
            assert sim.error == live.error, context
        else:
            assert live.table == sim.table, context
        assert live.coverage == sim.coverage, context
    # every process exited cleanly and left mergeable artifacts
    assert all(code == 0 for code in summary["exit_codes"].values()), summary
    assert "merged.metrics.prom" in summary["artifacts"]
    assert "merged.traces.json" in summary["artifacts"]


def test_mid_run_kill_degrades_to_partial_coverage(tmp_path):
    """SIGTERM of a live peer process == ``fail_peer`` in-sim: the next
    query degrades to a coverage-annotated partial answer."""
    spec = ClusterSpec(seed=0, peers=3, super_peers=1, resilient=True)
    workload = build_workload(spec)
    victim, via = "P2", "P1"
    text = workload.queries[0]

    # the in-sim chaos twin: fail the victim, then pose the query
    sim = build_sim_system(spec, workload)
    healthy = sim.query(via, text)
    sim.network.fail_peer(victim)
    client = sim.add_client()
    query_id = client.submit(via, text)
    sim.network.run()
    sim_result = client.result(query_id)
    assert sim_result.coverage is not None, "sim twin did not degrade"
    assert not sim_result.coverage.is_complete

    cluster = LiveCluster(spec, tmp_path / "kill-run")
    try:
        cluster.start()
        live_healthy = cluster.query(via, text)
        assert live_healthy.table == healthy
        cluster.kill_peer(victim)
        cluster.processes[victim].wait(timeout=30)
        live_result = cluster.query(via, text)
    finally:
        summary = cluster.shutdown()

    assert live_result.error is None, live_result.error
    assert live_result.coverage is not None, "live kill did not degrade"
    assert not live_result.coverage.is_complete
    assert live_result.coverage == sim_result.coverage
    assert live_result.table == sim_result.table
    # the killed peer exited gracefully on SIGTERM, like everyone else
    assert all(code == 0 for code in summary["exit_codes"].values()), summary
    assert summary["killed"] == [victim]

    # merged exposition keeps per-process series distinguishable
    merged = (cluster.outdir / "merged.metrics.prom").read_text()
    for node_id in ("P1", "P3", "SP1", victim):
        assert f'peer_id="{node_id}"' in merged
    assert 'transport="asyncio"' in merged
    report = json.loads((cluster.outdir / "report.json").read_text())
    assert report["killed"] == [victim]
