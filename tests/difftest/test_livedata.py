"""The live-data oracle wall: incremental vs from-scratch, at scale.

Every scenario drives a seeded update stream (triple inserts/deletes,
RVL view redefinitions) through a live deployment whose peers maintain
their active schemas *incrementally* (delta advertisements, in-place
id-column patching, churn-scoped cache invalidation), with queries
racing the update batches in flight.  At every quiescent revision the
scenario is compared against a from-scratch oracle twin — a fresh
deployment of the current bases with full re-derivation and cold
caches — and the centralized evaluator over the merged bases:

* answers bit-identical (binding multisets),
* coverage annotations identical,
* active-schema digests identical at every holder,
* the standing query's folded delta stream equal to the oracle's
  final table.

The full wall (``-m slow``) runs 200 scenarios: 25 seeds x 8 modes
(hybrid/ad-hoc x vectorized/scalar/encoded x odd batch sizes), three
quiescent revisions each.  Tier-1 keeps a fast cross-section.
"""

import pytest

from repro.rql.evaluator import query as centralized_query

from .harness import build_hybrid, make_workload, merged_graph
from .live_harness import run_live_scenario

WALL_SEEDS = list(range(25))

#: (mode id, system kind, system options)
MODES = [
    ("hybrid", "hybrid", {}),
    ("hybrid-scalar", "hybrid", {"vectorize": False}),
    ("hybrid-encoded", "hybrid", {"encode": True}),
    ("hybrid-batch7", "hybrid", {"batch_size": 7}),
    ("adhoc", "adhoc", {}),
    ("adhoc-scalar", "adhoc", {"vectorize": False}),
    ("adhoc-encoded", "adhoc", {"encode": True}),
    ("adhoc-batch3", "adhoc", {"batch_size": 3}),
]
MODE_IDS = [m[0] for m in MODES]


@pytest.mark.tier1
def test_wall_is_large_enough():
    """The acceptance floor: at least 200 seeded live scenarios."""
    assert len(WALL_SEEDS) * len(MODES) >= 200


@pytest.mark.slow
@pytest.mark.parametrize("mode,kind,options", MODES, ids=MODE_IDS)
@pytest.mark.parametrize("seed", WALL_SEEDS)
def test_live_matches_oracle_wall(seed, mode, kind, options):
    compared = run_live_scenario(seed, kind, options)
    assert compared >= 6  # 3 revisions x 2 snapshot queries


#: the tier-1 cross-section: one scenario per mode, rotating seeds
TIER1_CASES = [
    (seed, MODES[i % len(MODES)]) for i, seed in enumerate([0, 3, 5, 8, 9, 12, 17, 21])
]


@pytest.mark.tier1
@pytest.mark.parametrize(
    "seed,mode", TIER1_CASES, ids=[f"{m[0]}-s{s}" for s, m in TIER1_CASES]
)
def test_live_matches_oracle_sample(seed, mode):
    _, kind, options = mode
    assert run_live_scenario(seed, kind, options) >= 6


@pytest.mark.tier1
def test_live_scenario_with_hot_update_rate():
    """A 25%-of-base update rate (well past the incremental sweet
    spot) must still converge to the oracle at every quiescent point."""
    assert run_live_scenario(4, "hybrid", rate=0.25) >= 6


@pytest.mark.tier1
def test_live_scenario_with_skewed_per_peer_rates():
    """One hot peer, one cold: per-peer rates drive different delta
    cadence per advertiser."""
    from repro.livedata import LiveDataDriver, UpdateStream

    from .live_harness import assert_digests_fresh

    workload = make_workload(6)
    system = build_hybrid(workload)
    stream = UpdateStream(
        workload.synthetic.schema,
        workload.bases,
        seed=6,
        revisions=3,
        per_peer_rates={"P1": 0.3, "P2": 0.02},
    )
    driver = LiveDataDriver(system, stream)
    for revision in range(1, 4):
        driver.inject(revision - 1)
        system.run()
        assert driver.acked(revision)
        assert_digests_fresh(system, workload)


# ----------------------------------------------------------------------
# top-k: provable channel cancellation
# ----------------------------------------------------------------------
def _run_topk(workload, limit, cancel_enabled):
    system = build_hybrid(workload)
    for peer_id in workload.peer_ids:
        peer = system.peers[peer_id]
        peer.topk_cancel = cancel_enabled
        peer.stream_chunk_rows = 4  # paced streaming: cancellation has teeth
    client = system.add_client("C-topk")
    query_id = client.submit(workload.peer_ids[0], workload.queries[0], limit=limit)
    system.run()
    result = client.result(query_id)
    assert result is not None and result.error is None, result
    metrics = system.network.metrics
    return result.table, metrics


@pytest.mark.tier1
@pytest.mark.parametrize("seed", [0, 5, 12, 20])
def test_topk_cancels_channels_and_matches_oracle(seed):
    """The cancellation proof: with top-k cancel on, strictly fewer
    binding batches travel than in the unbounded twin, at least one
    ubQL discard fires, and the k answers are drawn from the oracle's
    answer set (any k distinct rows are a correct unordered top-k).

    The seeds are plans where some channel completes while others are
    still streaming — the shape where cancellation can save wire
    traffic.  (A join whose channels all finish together has nothing
    left to discard; those shapes are covered by the correctness
    assertions of the main wall.)"""
    workload = make_workload(seed, statements_per_segment=30)
    limit = 5
    table_on, metrics_on = _run_topk(workload, limit, True)
    table_off, metrics_off = _run_topk(workload, limit, False)

    oracle = centralized_query(
        workload.queries[0], merged_graph(workload), workload.synthetic.schema
    ).distinct()
    oracle_rows = {tuple(r) for r in oracle.rows}
    expected_k = min(limit, len(oracle_rows))

    assert len(table_on) == expected_k
    assert len(table_off) == expected_k
    assert all(tuple(row) in oracle_rows for row in table_on.rows)
    assert len(oracle_rows) > limit  # otherwise there is nothing to cancel
    assert metrics_on.topk_cancels >= 1
    assert metrics_on.batches_sent < metrics_off.batches_sent, (
        f"cancel sent {metrics_on.batches_sent} batches, "
        f"unbounded twin {metrics_off.batches_sent}"
    )
    assert metrics_off.topk_cancels == 0


@pytest.mark.tier1
def test_topk_with_order_by_never_cancels():
    """ORDER BY needs every candidate row: the early-stop gate must
    stay closed so the sorted top-k stays exact."""
    workload = make_workload(3, statements_per_segment=30)
    system = build_hybrid(workload)
    for peer_id in workload.peer_ids:
        system.peers[peer_id].topk_cancel = True
        system.peers[peer_id].stream_chunk_rows = 4
    client = system.add_client("C-ordered")
    query_id = client.submit(
        workload.peer_ids[0], workload.queries[0], limit=3, order_by="V0"
    )
    system.run()
    result = client.result(query_id)
    assert result is not None and result.error is None
    assert system.network.metrics.topk_cancels == 0
    oracle = centralized_query(
        workload.queries[0], merged_graph(workload), workload.synthetic.schema
    ).distinct()
    sorted_rows = sorted(
        oracle.rows, key=lambda r: r[oracle.column_index("V0")].n3()
    )[:3]
    assert sorted(tuple(t.n3() for t in r) for r in result.table.rows) == sorted(
        tuple(t.n3() for t in r) for r in sorted_rows
    )


@pytest.mark.tier1
def test_topk_during_update_storm():
    """Top-k cancellation composes with live updates: inject a
    revision, race a limited query against it, and the answer must be
    k rows from data that existed at some point of the interleaving."""
    from repro.livedata import LiveDataDriver, UpdateStream

    workload = make_workload(11, statements_per_segment=30)
    system = build_hybrid(workload)
    for peer_id in workload.peer_ids:
        system.peers[peer_id].topk_cancel = True
        system.peers[peer_id].stream_chunk_rows = 4
    stream = UpdateStream(
        workload.synthetic.schema, workload.bases, seed=11, revisions=1
    )
    driver = LiveDataDriver(system, stream)
    client = system.add_client("C-storm")
    driver.inject(0)
    query_id = client.submit(workload.peer_ids[0], workload.queries[0], limit=4)
    system.run()
    assert driver.acked(1)
    result = client.result(query_id)
    assert result is not None
    assert result.error is None or "no relevant peers" in result.error
