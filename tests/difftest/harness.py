"""Differential-testing harness: distributed versus centralized.

The oracle: for any seeded workload (synthetic RDF/S schema, peer
bases, conjunctive chain queries), evaluating a query through a
distributed deployment — hybrid or ad-hoc, vectorized or scalar, any
batch size — must return exactly the binding multiset the centralized
evaluator produces over the *union* of every peer base.

The centralized reference is :func:`repro.rql.evaluator.query` on one
merged graph, with a final ``distinct`` to match the coordinator's
``finalize`` (set semantics on the projected answer).  A distributed
"no relevant peers" failure maps to the empty table: advertisements
are derived from base content, so a query no peer advertises has no
entailed matches in the merged base either.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import PeerError
from repro.rdf.graph import Graph
from repro.rql.bindings import BindingTable
from repro.rql.evaluator import query as centralized_query
from repro.systems import AdhocSystem, HybridSystem
from repro.workloads.data_gen import Distribution, generate_bases
from repro.workloads.query_gen import random_queries
from repro.workloads.schema_gen import SyntheticSchema, generate_schema

#: Distributions cycled over dataset seeds, so a sweep of seeds covers
#: join-heavy (vertical), union-heavy (horizontal) and mixed layouts.
DISTRIBUTIONS = (
    Distribution.VERTICAL,
    Distribution.HORIZONTAL,
    Distribution.MIXED,
)


@dataclass
class Workload:
    """One seeded (dataset, queries) pair."""

    seed: int
    synthetic: SyntheticSchema
    bases: Dict[str, Graph]
    queries: List[str]
    distribution: Distribution
    peer_ids: List[str] = field(default_factory=list)


def make_workload(
    seed: int,
    peers: int = 3,
    chain_length: int = 4,
    queries: int = 4,
    statements_per_segment: int = 15,
) -> Workload:
    """A deterministic workload for one seed.

    The distribution cycles with the seed; sizes stay small enough that
    a full sweep of seeds and modes runs in test time, while vertical
    layouts with fewer peers than chain segments deliberately leave
    some segments uncovered (exercising the "no relevant peers" path).
    """
    synthetic = generate_schema(
        chain_length=chain_length,
        refinement_fraction=0.0,
        noise_properties=1,
        seed=seed,
    )
    peer_ids = [f"P{i}" for i in range(1, peers + 1)]
    distribution = DISTRIBUTIONS[seed % len(DISTRIBUTIONS)]
    generated = generate_bases(
        synthetic,
        peer_ids,
        distribution,
        statements_per_segment=statements_per_segment,
        shared_pool=6,
        seed=seed,
    )
    texts = random_queries(
        synthetic, queries, max_length=min(3, chain_length), seed=seed
    )
    return Workload(seed, synthetic, generated.bases, texts, distribution, peer_ids)


def merged_graph(workload: Workload) -> Graph:
    """The union of every peer base (the centralized database)."""
    merged = Graph()
    for graph in workload.bases.values():
        for triple in graph.triples():
            merged.add_triple(triple)
    return merged


def centralized_answer(workload: Workload, text: str) -> BindingTable:
    """The reference result: local evaluation over the merged base."""
    return centralized_query(
        text, merged_graph(workload), workload.synthetic.schema
    ).distinct()


def build_hybrid(workload: Workload, **options) -> HybridSystem:
    """A one-super-peer hybrid deployment of the workload."""
    system = HybridSystem(workload.synthetic.schema, seed=workload.seed, **options)
    system.add_super_peer("SP")
    for peer_id in workload.peer_ids:
        system.add_peer(peer_id, workload.bases[peer_id], "SP")
    system.run()  # settle the advertisement push
    return system


def build_adhoc(workload: Workload, **options) -> AdhocSystem:
    """A fully-connected ad-hoc deployment of the workload."""
    system = AdhocSystem(workload.synthetic.schema, seed=workload.seed, **options)
    for peer_id in workload.peer_ids:
        neighbours = [p for p in workload.peer_ids if p != peer_id]
        system.add_peer(peer_id, workload.bases[peer_id], neighbours)
    system.discover_all()
    return system


def concurrent_answers(system, workload: Workload, count: int,
                       arrival_rate: float = 0.8, clients: int = 4):
    """Serve ``count`` interleaved queries open-loop and capture every
    final answer.

    Submissions cycle through the workload's query texts and rotate the
    coordinating peer, so several coordinations (often of the *same*
    text via different peers) overlap in flight.  Returns ``(report,
    answers)`` where ``answers[index]`` is the
    :class:`~repro.peers.client.QueryResult` the driver's client
    received for logical query ``index``.
    """
    from repro.workload_engine import WorkloadDriver, WorkloadSpec

    spec = WorkloadSpec(
        queries=tuple(
            (
                workload.peer_ids[i % len(workload.peer_ids)],
                workload.queries[i % len(workload.queries)],
            )
            for i in range(count)
        ),
        count=count,
        mode="open",
        arrival_rate=arrival_rate,
        clients=clients,
        seed=workload.seed,
    )
    driver = WorkloadDriver(system, spec)
    driver.install()
    captured = {}

    def capture(client, result):
        captured[result.query_id] = result

    for client in driver.clients:
        client.result_listeners.append(capture)
    system.network.run(max_events=2_000_000)
    report = driver.report()
    answers = {o.index: captured.get(o.query_id) for o in report.outcomes}
    return report, answers


def sequential_twin_answers(builder, workload: Workload, count: int, **options):
    """The oracle for the concurrent sweep: a *fresh* deployment of the
    same workload (same seed, same execution options) evaluating the
    same logical queries one at a time, each to quiescence.  Returns
    ``answers[index] -> (table or None, error or None)``."""
    twin = builder(workload, **options)
    answers = {}
    for index in range(count):
        via = workload.peer_ids[index % len(workload.peer_ids)]
        text = workload.queries[index % len(workload.queries)]
        try:
            answers[index] = (twin.query(via, text), None)
        except PeerError as exc:
            answers[index] = (None, str(exc))
    return answers


def distributed_answer(system, via: str, text: str) -> Optional[BindingTable]:
    """Evaluate through a deployment; ``None`` means "no relevant
    peers" (asserted empty by the caller), any other failure raises."""
    try:
        return system.query(via, text)
    except PeerError as exc:
        if "no relevant peers" in str(exc):
            return None
        raise


def assert_equivalent(workload: Workload, system, via: str, text: str) -> None:
    """One differential comparison: distributed == centralized."""
    expected = centralized_answer(workload, text)
    actual = distributed_answer(system, via, text)
    if actual is None:
        assert len(expected) == 0, (
            f"distributed found no relevant peers but centralized has "
            f"{len(expected)} rows for {text!r} (seed {workload.seed})"
        )
        return
    assert actual == expected, (
        f"distributed {len(actual)} rows != centralized {len(expected)} rows "
        f"for {text!r} (seed {workload.seed}, {workload.distribution.value})"
    )
