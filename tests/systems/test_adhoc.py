"""Tests for the ad-hoc (self-adaptive SON) architecture (paper Figure 7)."""

import pytest

from repro.errors import PeerError
from repro.systems import AdhocSystem
from repro.workloads.paper import DATA, N1, PAPER_QUERY, adhoc_scenario


@pytest.fixture
def system():
    return AdhocSystem.from_scenario(adhoc_scenario())


class TestFigure7:
    def test_query_answers_through_interleaving(self, system):
        """P1's plan has a Q2 hole; P2 fills it with P5 and executes."""
        table = system.query("P1", PAPER_QUERY)
        assert len(table) == 6
        xs = {str(x) for x, _ in table.rows}
        assert any("a2x" in x for x in xs)
        assert any("a3x" in x for x in xs)

    def test_partial_plans_forwarded(self, system):
        system.query("P1", PAPER_QUERY)
        kinds = system.network.metrics.messages_by_kind
        # P1 forwards its partial plan to P2 and P3 (the Q1 answerers)
        assert kinds["PartialPlan"] == 2

    def test_p3_declines(self, system):
        """P3 knows no peer for Q2: its branch fails, mirroring the
        failed P1–P3 channel of Figure 7."""
        system.query("P1", PAPER_QUERY)
        kinds = system.network.metrics.messages_by_kind
        assert kinds["DelegatedResult"] >= 2  # P2 success + P3 decline

    def test_neighbourhood_contents(self):
        system = AdhocSystem.from_scenario(adhoc_scenario())
        p1 = system.peers["P1"]
        # P2, P3 (prop1) and P4 (prop3) all advertise something
        assert set(p1.known_advertisements) == {"P2", "P3", "P4"}
        p2 = system.peers["P2"]
        assert "P5" in p2.known_advertisements

    def test_results_identical_to_hybrid_semantics(self, system):
        """The ad-hoc answer equals a centralised evaluation."""
        from repro.execution.operators import union_all
        from repro.rql import query as local_query
        from repro.rdf import Graph

        scenario = adhoc_scenario()
        merged = Graph()
        for graph in scenario.bases.values():
            merged.update(graph)
        expected = local_query(PAPER_QUERY, merged, scenario.schema).distinct()
        actual = system.query("P1", PAPER_QUERY)
        assert actual == expected


class TestEdgeCases:
    def test_query_at_knowledgeable_peer_needs_no_forwarding(self, system):
        """P2 knows P5 and itself: it can route Q locally... Q1 also
        needs P3's data, which P2 does not know about — but P2 can
        still build a complete plan from what it knows."""
        table = system.query("P2", PAPER_QUERY)
        assert len(table) >= 3  # at least its own chains

    def test_unanswerable_query_errors_after_deepening(self):
        scenario = adhoc_scenario()
        system = AdhocSystem.from_scenario(scenario)
        # prop3 exists only at P4; a two-hop query over prop2,prop3 needs
        # prop3 ⋈ — ask P3 which knows only P1
        text = (
            f"SELECT X, Y FROM {{X}} n1:prop3 {{Y}}, {{Y}} n1:prop3 {{Z}} "
            f"USING NAMESPACE n1 = &{scenario.schema.namespace.uri}&"
        )
        # P4 has prop3 but no chain of two prop3 hops matches; routing
        # still finds P4, execution returns empty — not an error
        table = system.query("P1", text)
        assert len(table) == 0

    def test_depth_discovery_finds_distant_peer(self):
        """A chain topology where the Q2 answerer is 2 hops away and
        nobody on the path can answer Q1 — forwarding cannot help, only
        k-depth discovery can."""
        scenario = adhoc_scenario()
        system = AdhocSystem(scenario.schema)
        # topology: P1 - M - W ; M has nothing, W answers both patterns
        from repro.rdf import Graph, TYPE

        w = Graph()
        for i in range(2):
            x, y, z = DATA[f"wx{i}"], DATA[f"wy{i}"], DATA[f"wz{i}"]
            w.add(x, TYPE, N1.C1)
            w.add(y, TYPE, N1.C2)
            w.add(x, N1.prop1, y)
            w.add(y, N1.prop2, z)
        system.add_peer("P1", Graph(), neighbours=("M",))
        system.add_peer("M", Graph(), neighbours=("P1", "W"))
        system.add_peer("W", w, neighbours=("M",))
        system.discover_all()
        table = system.query("P1", PAPER_QUERY)
        assert len(table) == 2

    def test_failure_gives_error_not_hang(self):
        scenario = adhoc_scenario()
        system = AdhocSystem.from_scenario(scenario)
        system.network.fail_peer("P5")
        with pytest.raises(PeerError):
            system.query("P1", PAPER_QUERY)
