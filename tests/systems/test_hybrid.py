"""Tests for the hybrid (super-peer) architecture (paper Figure 6)."""

import pytest

from repro.errors import PeerError
from repro.systems import HybridSystem
from repro.workloads.paper import DATA, N1, PAPER_QUERY, hybrid_scenario


@pytest.fixture
def system():
    return HybridSystem.from_scenario(hybrid_scenario())


class TestFigure6:
    def test_query_answers(self, system):
        table = system.query("P1", PAPER_QUERY)
        assert len(table) == 6  # P2 x 3 chains + P3 x 3 chains via P5
        xs = {str(x) for x, _ in table.rows}
        assert any("h2x" in x for x in xs)
        assert any("h3x" in x for x in xs)

    def test_routing_happens_at_super_peer(self, system):
        system.query("P1", PAPER_QUERY)
        kinds = system.network.metrics.messages_by_kind
        assert kinds["RouteRequest"] == 1
        assert kinds["RouteReply"] == 1

    def test_channels_deployed_to_relevant_peers_only(self, system):
        system.query("P1", PAPER_QUERY)
        kinds = system.network.metrics.messages_by_kind
        # P2, P3 answer Q1; P5 answers Q2: three subplan shipments
        assert kinds["SubPlanPacket"] == 3
        received = system.network.metrics.messages_received
        # irrelevant P4 got nothing beyond its own join-time advertisement
        assert received.get("P4", 0) == 0

    def test_advertisements_pushed_at_join(self):
        system = HybridSystem.from_scenario(hybrid_scenario())
        system.run()
        sp1 = system.super_peers["SP1"]
        # P1 and P4 hold only prop3 data; all five advertise something
        assert sp1.cluster(system.schema.namespace.uri) == {
            "P1", "P2", "P3", "P4", "P5",
        }

    def test_complete_plan_no_holes(self, system):
        """Super-peers know the whole SON: plans are complete (3.1)."""
        table = system.query("P1", PAPER_QUERY)
        assert table is not None  # an error would have raised


class TestHarness:
    def test_query_via_other_peer_same_answer(self, system):
        t1 = system.query("P1", PAPER_QUERY)
        t2 = system.query("P4", PAPER_QUERY)
        assert t1 == t2

    def test_unknown_super_peer_rejected(self):
        scenario = hybrid_scenario()
        system = HybridSystem(scenario.schema)
        with pytest.raises(PeerError):
            system.add_peer("PX", scenario.bases["P2"], "SP-missing")

    def test_failed_query_raises(self):
        scenario = hybrid_scenario()
        system = HybridSystem(scenario.schema)
        system.add_super_peer("SP1")
        system.add_peer("P1", scenario.bases["P1"], "SP1")
        with pytest.raises(PeerError):
            system.query("P1", PAPER_QUERY)  # nobody answers prop1/prop2

    def test_latency_recorded(self, system):
        system.query("P1", PAPER_QUERY)
        assert system.network.metrics.mean_latency() > 0


class TestAdaptivity:
    def test_peer_failure_triggers_replan(self):
        scenario = hybrid_scenario()
        system = HybridSystem.from_scenario(scenario)
        system.run()  # settle advertisements
        system.network.fail_peer("P2")
        table = system.query("P1", PAPER_QUERY)
        # P3's chains still answer; P2's three are lost
        assert len(table) == 3
        xs = {str(x) for x, _ in table.rows}
        assert all("h3x" in x for x in xs)

    def test_unrepairable_failure_reports_error(self):
        scenario = hybrid_scenario()
        system = HybridSystem.from_scenario(scenario)
        system.run()
        system.network.fail_peer("P5")  # only prop2 provider
        with pytest.raises(PeerError):
            system.query("P1", PAPER_QUERY)

    def test_non_adaptive_mode_fails_fast(self):
        scenario = hybrid_scenario()
        system = HybridSystem.from_scenario(scenario, adaptive=False)
        system.run()
        system.network.fail_peer("P2")
        with pytest.raises(PeerError):
            system.query("P1", PAPER_QUERY)
