"""Tests for concurrent serving: admission control, deadlines, fair
scheduling and the workload driver, on both architectures."""

import pytest

from repro.systems import AdhocSystem, HybridSystem
from repro.workload_engine import AdmissionControl, WorkloadSpec
from repro.workloads.paper import PAPER_QUERY, adhoc_scenario, hybrid_scenario


@pytest.fixture
def system():
    return HybridSystem.from_scenario(hybrid_scenario())


def _spec(count, **overrides):
    options = dict(
        queries=(("P1", PAPER_QUERY),),
        count=count,
        mode="open",
        arrival_rate=1.0,
        clients=2,
    )
    options.update(overrides)
    return WorkloadSpec(**options)


class TestServe:
    def test_open_loop_answers_everything(self, system):
        report = system.serve(_spec(6))
        summary = report.summary()
        assert summary["offered"] == 6
        assert summary["completed"] == 6
        assert summary["silent"] == 0
        assert all(o.rows == 6 for o in report.outcomes)

    def test_closed_loop_answers_everything(self, system):
        report = system.serve(_spec(6, mode="closed", clients=3, think_time=2.0))
        assert report.summary()["completed"] == 6

    def test_adhoc_serves_too(self):
        system = AdhocSystem.from_scenario(adhoc_scenario())
        system.discover_all()
        report = system.serve(_spec(4))
        assert report.summary()["completed"] == 4

    def test_burst_interleaves_queries(self, system):
        report = system.serve(_spec(8, burst_size=8))
        assert report.summary()["max_inflight"] >= 8
        assert report.summary()["completed"] == 8

    def test_driver_injects_mid_run(self, system):
        """Open-loop arrivals land while earlier queries are still in
        flight: submissions are spread over virtual time, not batched
        up front."""
        report = system.serve(_spec(6, arrival_rate=0.5))
        submitted = {o.submitted_at for o in report.outcomes}
        assert len(submitted) > 1


class TestAdmissionControl:
    def test_overflow_is_parked_then_drained(self, system):
        system.enable_admission(
            AdmissionControl(max_concurrent=1, max_queued=32, retry_after=5.0)
        )
        report = system.serve(_spec(6, burst_size=6))
        assert report.summary()["completed"] == 6
        assert report.summary()["shed"] == 0
        # the coordinator's queue was actually exercised
        assert system.network.metrics.queue_depth_histogram.count > 0

    def test_saturation_sheds_with_retry_after(self):
        # cold caches so repeated texts cannot coalesce behind a leader
        system = HybridSystem.from_scenario(hybrid_scenario(), cache_enabled=False)
        system.enable_admission(
            AdmissionControl(max_concurrent=1, max_queued=1, retry_after=7.0)
        )
        report = system.serve(_spec(8, burst_size=8, resubmit_sheds=False))
        summary = report.summary()
        assert summary["shed"] > 0
        assert summary["silent"] == 0
        assert system.network.metrics.queries_shed > 0
        shed = [o for o in report.outcomes if o.status == "shed"]
        assert all("retry after" in o.error for o in shed)

    def test_shed_queries_recover_via_resubmission(self):
        system = HybridSystem.from_scenario(hybrid_scenario(), cache_enabled=False)
        system.enable_admission(
            AdmissionControl(max_concurrent=1, max_queued=1, retry_after=7.0)
        )
        report = system.serve(_spec(8, burst_size=8, max_shed_retries=5))
        summary = report.summary()
        assert summary["completed"] == 8
        assert any(o.shed_retries > 0 for o in report.outcomes)

    def test_deadline_cancels_stragglers(self):
        system = HybridSystem.from_scenario(hybrid_scenario(), cache_enabled=False)
        system.enable_admission(
            AdmissionControl(max_concurrent=8, max_queued=8, deadline=2.0)
        )
        report = system.serve(_spec(4, burst_size=4, resubmit_sheds=False))
        errors = [o for o in report.outcomes if o.status == "error"]
        assert errors, "no query hit the deadline"
        assert all("deadline exceeded" in o.error for o in errors)
        assert system.network.metrics.deadline_expirations > 0
        assert report.summary()["silent"] == 0

    def test_fair_scheduling_preserves_answers(self, system):
        system.enable_fair_scheduling(quantum=0.25)
        report = system.serve(_spec(6, burst_size=6))
        assert report.summary()["completed"] == 6
        assert all(o.rows == 6 for o in report.outcomes)
        assert any(
            p.scheduler is not None and p.scheduler.executed > 0
            for p in system.peers.values()
        )


class TestClientKeywordSymmetry:
    """Regression: ``submit`` and ``query`` accept the same ``client``
    and result-shaping keywords on both systems (``submit`` used to
    reject ``client`` on HybridSystem, and AdhocSystem had no
    ``submit`` at all)."""

    def test_hybrid_submit_accepts_client(self, system):
        mine = system.add_client("C-mine")
        other = system.add_client("C-other")
        query_id = system.submit("P1", PAPER_QUERY, client=mine, limit=3)
        system.run()
        assert mine.result(query_id) is not None
        assert other.result(query_id) is None
        assert len(mine.result(query_id).table) == 3

    def test_hybrid_query_accepts_client(self, system):
        mine = system.add_client("C-mine")
        table = system.query("P1", PAPER_QUERY, client=mine)
        assert len(table) == 6
        assert len(mine.results) == 1

    def test_adhoc_submit_and_query_accept_client(self):
        system = AdhocSystem.from_scenario(adhoc_scenario())
        system.discover_all()
        mine = system.add_client("C-mine")
        query_id = system.submit("P1", PAPER_QUERY, client=mine)
        system.run()
        assert mine.result(query_id) is not None
        table = system.query("P1", PAPER_QUERY, client=mine)
        assert table == mine.result(query_id).table

    def test_submit_and_query_agree(self, system):
        by_query = system.query("P1", PAPER_QUERY, limit=2, order_by="X")
        query_id = system.submit("P1", PAPER_QUERY, limit=2, order_by="X")
        system.run()
        client = next(iter(system.clients.values()))
        assert client.result(query_id).table == by_query


class TestPerQueryIsolation:
    def test_concurrent_traces_do_not_cross_contaminate(self, system):
        """Every in-flight query stitches its own single-rooted,
        gap-free span tree; no span leaks into another query's trace."""
        from repro.obs import validate_trace

        report = system.serve(_spec(6, burst_size=6))
        assert report.summary()["completed"] == 6
        collector = system.network.trace_collector
        trace_ids = collector.trace_ids()
        assert len(trace_ids) >= 6
        for trace_id in trace_ids:
            spans = collector.spans(trace_id)
            assert validate_trace(spans) == [], f"trace {trace_id} invalid"
            assert {s.trace_id for s in spans} == {trace_id}

    def test_concurrent_outcomes_map_to_distinct_queries(self, system):
        report = system.serve(_spec(8, burst_size=8))
        query_ids = [o.query_id for o in report.outcomes]
        assert len(set(query_ids)) == len(query_ids)
        assert {o.index for o in report.outcomes} == set(range(8))


class TestRouteBusy:
    def test_route_saturation_backs_off_and_recovers(self):
        """When the super-peer's routing queue overflows, coordinators
        back off on RouteBusy and retry instead of failing."""
        system = HybridSystem.from_scenario(hybrid_scenario(), cache_enabled=False)
        system.enable_admission(
            AdmissionControl(
                max_concurrent=16, max_queued=1, retry_after=3.0,
                service_time=2.0,
            )
        )
        report = system.serve(_spec(6, burst_size=6))
        assert report.summary()["completed"] == 6
        assert system.network.metrics.messages_by_kind["RouteBusy"] > 0
