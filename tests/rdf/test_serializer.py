"""Tests for N-Triples serialisation."""

import pytest

from repro.errors import ParseError
from repro.rdf import (
    BNode,
    Graph,
    Literal,
    Namespace,
    URI,
    deserialize,
    graph_size_bytes,
    serialize,
)

EX = Namespace("http://example.org/")


def roundtrip(graph: Graph) -> Graph:
    return deserialize(serialize(graph))


class TestRoundTrip:
    def test_uris(self):
        g = Graph()
        g.add(EX.a, EX.p, EX.b)
        assert roundtrip(g) is not g
        assert set(roundtrip(g)) == set(g)

    def test_plain_literal(self):
        g = Graph()
        g.add(EX.a, EX.p, Literal("hello world"))
        assert set(roundtrip(g)) == set(g)

    def test_typed_literal(self):
        g = Graph()
        g.add(EX.a, EX.p, Literal(42))
        back = roundtrip(g)
        (triple,) = list(back)
        assert triple.object.to_python() == 42

    def test_language_literal(self):
        g = Graph()
        g.add(EX.a, EX.p, Literal("bonjour", language="fr"))
        (triple,) = list(roundtrip(g))
        assert triple.object.language == "fr"

    def test_escaped_literal(self):
        g = Graph()
        g.add(EX.a, EX.p, Literal('say "hi"\nplease'))
        assert set(roundtrip(g)) == set(g)

    def test_bnodes(self):
        g = Graph()
        g.add(BNode("n1"), EX.p, BNode("n2"))
        assert set(roundtrip(g)) == set(g)

    def test_empty_graph(self):
        assert serialize(Graph()) == ""
        assert len(deserialize("")) == 0

    def test_multiline(self):
        g = Graph()
        for i in range(10):
            g.add(EX[f"s{i}"], EX.p, EX[f"o{i}"])
        assert len(roundtrip(g)) == 10

    def test_deterministic_output(self):
        g = Graph()
        g.add(EX.b, EX.p, EX.x)
        g.add(EX.a, EX.p, EX.x)
        assert serialize(g) == serialize(g.copy())


class TestParsing:
    def test_comments_and_blanks_skipped(self):
        text = "# comment\n\n<http://a> <http://p> <http://b> .\n"
        assert len(deserialize(text)) == 1

    def test_unterminated_uri(self):
        with pytest.raises(ParseError):
            deserialize("<http://a <http://p> <http://b> .")

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            deserialize("<http://a> <http://p> <http://b>")

    def test_literal_predicate_rejected(self):
        with pytest.raises(ParseError):
            deserialize('<http://a> "p" <http://b> .')

    def test_unterminated_literal(self):
        with pytest.raises(ParseError):
            deserialize('<http://a> <http://p> "open .')

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            deserialize("???")


class TestSize:
    def test_size_positive(self):
        g = Graph()
        g.add(EX.a, EX.p, EX.b)
        assert graph_size_bytes(g) > 0

    def test_size_grows_with_content(self):
        g1, g2 = Graph(), Graph()
        g1.add(EX.a, EX.p, EX.b)
        g2.add(EX.a, EX.p, EX.b)
        g2.add(EX.c, EX.p, EX.d)
        assert graph_size_bytes(g2) > graph_size_bytes(g1)

    def test_empty_size_zero(self):
        assert graph_size_bytes(Graph()) == 0
