"""Tests for the RDF/S schema model and subsumption reasoning."""

import pytest

from repro.errors import SchemaError
from repro.rdf import LITERAL_CLASS, Namespace, RESOURCE, Schema
from repro.workloads.paper import N1, paper_schema


@pytest.fixture
def schema():
    return paper_schema()


class TestConstruction:
    def test_classes_declared(self, schema):
        assert N1.C1 in schema.classes
        assert N1.C6 in schema.classes
        assert len(schema.classes) == 6

    def test_properties_declared(self, schema):
        assert schema.has_property(N1.prop1)
        assert schema.has_property(N1.prop4)
        assert not schema.has_property(N1.nope)

    def test_property_def(self, schema):
        definition = schema.property_def(N1.prop1)
        assert definition.domain == N1.C1
        assert definition.range == N1.C2

    def test_undeclared_property_def_raises(self, schema):
        with pytest.raises(SchemaError):
            schema.property_def(N1.nope)

    def test_subclass_requires_declared_classes(self, schema):
        with pytest.raises(SchemaError):
            schema.add_subclass(N1.C1, N1.Unknown)

    def test_subproperty_requires_declared_properties(self, schema):
        with pytest.raises(SchemaError):
            schema.add_subproperty(N1.prop1, N1.unknown)

    def test_property_domain_must_exist(self, schema):
        with pytest.raises(SchemaError):
            schema.add_property(N1.p9, N1.Unknown, N1.C1)

    def test_literal_range_allowed(self, schema):
        schema.add_property(N1.title, N1.C1, LITERAL_CLASS)
        assert schema.range_of(N1.title) == LITERAL_CLASS

    def test_self_subclass_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.add_subclass(N1.C1, N1.C1)

    def test_cyclic_class_hierarchy_rejected(self, schema):
        # C5 < C1 already; adding C1 < C5 would form a cycle
        with pytest.raises(SchemaError):
            schema.add_subclass(N1.C1, N1.C5)

    def test_cyclic_property_hierarchy_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.add_subproperty(N1.prop1, N1.prop4)


class TestSubsumption:
    def test_is_subclass_reflexive(self, schema):
        assert schema.is_subclass(N1.C1, N1.C1)

    def test_is_subclass_direct(self, schema):
        assert schema.is_subclass(N1.C5, N1.C1)
        assert not schema.is_subclass(N1.C1, N1.C5)

    def test_is_subclass_unrelated(self, schema):
        assert not schema.is_subclass(N1.C3, N1.C1)

    def test_resource_is_top(self, schema):
        assert schema.is_subclass(N1.C3, RESOURCE)

    def test_transitive_chain(self):
        ns = Namespace("http://t#")
        s = Schema(ns)
        for name in ("A", "B", "C"):
            s.add_class(ns[name])
        s.add_subclass(ns.B, ns.A)
        s.add_subclass(ns.C, ns.B)
        assert s.is_subclass(ns.C, ns.A)

    def test_is_subproperty(self, schema):
        assert schema.is_subproperty(N1.prop4, N1.prop1)
        assert schema.is_subproperty(N1.prop1, N1.prop1)
        assert not schema.is_subproperty(N1.prop1, N1.prop4)
        assert not schema.is_subproperty(N1.prop2, N1.prop1)

    def test_superclasses_contains_self(self, schema):
        assert schema.superclasses(N1.C5) == frozenset({N1.C5, N1.C1})

    def test_subclasses(self, schema):
        assert schema.subclasses(N1.C1) == frozenset({N1.C1, N1.C5})

    def test_subproperties(self, schema):
        assert schema.subproperties(N1.prop1) == frozenset({N1.prop1, N1.prop4})

    def test_multiple_inheritance(self):
        ns = Namespace("http://t#")
        s = Schema(ns)
        for name in ("A", "B", "C"):
            s.add_class(ns[name])
        s.add_subclass(ns.C, ns.A)
        s.add_subclass(ns.C, ns.B)
        assert s.is_subclass(ns.C, ns.A)
        assert s.is_subclass(ns.C, ns.B)

    def test_cache_invalidated_on_update(self, schema):
        assert not schema.is_subclass(N1.C3, N1.C1)
        schema.add_subclass(N1.C3, N1.C1)
        assert schema.is_subclass(N1.C3, N1.C1)


class TestRoundTrip:
    def test_to_graph_from_graph(self, schema):
        graph = schema.to_graph()
        rebuilt = Schema.from_graph(graph, schema.namespace, schema.name)
        assert rebuilt.classes == schema.classes
        assert rebuilt.properties == schema.properties
        assert rebuilt.is_subclass(N1.C5, N1.C1)
        assert rebuilt.is_subproperty(N1.prop4, N1.prop1)
        assert rebuilt.domain_of(N1.prop2) == N1.C2

    def test_iteration_yields_property_defs(self, schema):
        names = {d.uri.local_name for d in schema}
        assert names == {"prop1", "prop2", "prop3", "prop4"}
