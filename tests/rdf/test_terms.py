"""Tests for RDF term value objects."""

import pytest

from repro.rdf.terms import BNode, Literal, Namespace, URI, Variable


class TestURI:
    def test_equality_by_value(self):
        assert URI("http://a/x") == URI("http://a/x")
        assert URI("http://a/x") != URI("http://a/y")

    def test_hashable(self):
        assert len({URI("http://a/x"), URI("http://a/x")}) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            URI("")

    def test_local_name_fragment(self):
        assert URI("http://a/ns#C1").local_name == "C1"

    def test_local_name_path(self):
        assert URI("http://a/ns/C1").local_name == "C1"

    def test_namespace_part(self):
        assert URI("http://a/ns#C1").namespace == "http://a/ns#"

    def test_n3(self):
        assert URI("http://a/x").n3() == "<http://a/x>"

    def test_immutable(self):
        uri = URI("http://a/x")
        with pytest.raises(AttributeError):
            uri.value = "other"

    def test_ordering(self):
        assert URI("http://a/a") < URI("http://a/b")

    def test_not_equal_to_literal_with_same_text(self):
        assert URI("http://a/x") != Literal("http://a/x")


class TestLiteral:
    def test_plain_equality(self):
        assert Literal("hi") == Literal("hi")

    def test_language_distinguishes(self):
        assert Literal("hi", language="en") != Literal("hi")

    def test_datatype_and_language_exclusive(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=URI("http://t"), language="en")

    def test_int_coercion(self):
        lit = Literal(42)
        assert lit.lexical == "42"
        assert lit.datatype.local_name == "integer"
        assert lit.to_python() == 42

    def test_float_coercion(self):
        assert Literal(1.5).to_python() == 1.5

    def test_bool_coercion(self):
        lit = Literal(True)
        assert lit.lexical == "true"
        assert lit.to_python() is True

    def test_bool_before_int(self):
        # bool is a subclass of int; make sure it maps to xsd:boolean
        assert Literal(False).datatype.local_name == "boolean"

    def test_n3_plain(self):
        assert Literal("hi").n3() == '"hi"'

    def test_n3_escapes_quotes_and_newlines(self):
        assert Literal('a"b\n').n3() == '"a\\"b\\n"'

    def test_n3_language(self):
        assert Literal("hi", language="en").n3() == '"hi"@en'

    def test_immutable(self):
        lit = Literal("x")
        with pytest.raises(AttributeError):
            lit.lexical = "y"


class TestBNode:
    def test_fresh_ids_unique(self):
        assert BNode() != BNode()

    def test_explicit_id_equality(self):
        assert BNode("b1") == BNode("b1")

    def test_n3(self):
        assert BNode("b7").n3() == "_:b7"


class TestVariable:
    def test_equality(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_n3(self):
        assert Variable("X").n3() == "?X"


class TestNamespace:
    def test_attribute_access(self):
        ns = Namespace("http://a/ns#")
        assert ns.C1 == URI("http://a/ns#C1")

    def test_item_access(self):
        ns = Namespace("http://a/ns#")
        assert ns["prop1"] == URI("http://a/ns#prop1")

    def test_contains(self):
        ns = Namespace("http://a/ns#")
        assert ns.C1 in ns
        assert URI("http://other/x") not in ns

    def test_contains_rejects_literals(self):
        ns = Namespace("http://a/ns#")
        assert Literal("http://a/ns#x") not in ns

    def test_equality(self):
        assert Namespace("http://a/") == Namespace("http://a/")

    def test_dunder_not_minted(self):
        ns = Namespace("http://a/")
        with pytest.raises(AttributeError):
            ns.__wrapped__
