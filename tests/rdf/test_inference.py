"""Tests for RDFS entailment: the semantics subsumption routing relies on."""

import pytest

from repro.rdf import Graph, InferredView, Namespace, TYPE, materialize_closure
from repro.workloads.paper import N1, paper_schema

DATA = Namespace("http://d/")


@pytest.fixture
def schema():
    return paper_schema()


@pytest.fixture
def base():
    """x --prop4--> y (the subproperty), plus one direct prop1 pair."""
    g = Graph()
    g.add(DATA.x, N1.prop4, DATA.y)
    g.add(DATA.u, N1.prop1, DATA.v)
    g.add(DATA.u, TYPE, N1.C1)
    return g


@pytest.fixture
def view(base, schema):
    return InferredView(base, schema)


class TestPropertyEntailment:
    def test_query_on_superproperty_sees_subproperty(self, view):
        triples = list(view.triples(None, N1.prop1, None))
        subjects = {t.subject for t in triples}
        assert subjects == {DATA.x, DATA.u}

    def test_asserted_predicate_preserved(self, view):
        by_subject = {t.subject: t.predicate for t in view.triples(None, N1.prop1, None)}
        assert by_subject[DATA.x] == N1.prop4
        assert by_subject[DATA.u] == N1.prop1

    def test_query_on_subproperty_excludes_superproperty(self, view):
        subjects = {t.subject for t in view.triples(None, N1.prop4, None)}
        assert subjects == {DATA.x}

    def test_unknown_predicate_falls_through(self, view, base):
        base.add(DATA.a, DATA.oddball, DATA.b)
        assert len(list(view.triples(None, DATA.oddball, None))) == 1


class TestTypeEntailment:
    def test_domain_entailment(self, view):
        # x is a C5 instance via prop4's domain, hence also C1
        assert view.is_instance_of(DATA.x, N1.C5)
        assert view.is_instance_of(DATA.x, N1.C1)

    def test_range_entailment(self, view):
        assert view.is_instance_of(DATA.y, N1.C6)
        assert view.is_instance_of(DATA.y, N1.C2)

    def test_asserted_type_with_subclass(self, view, base):
        base.add(DATA.w, TYPE, N1.C5)
        assert view.is_instance_of(DATA.w, N1.C1)
        assert not view.is_instance_of(DATA.w, N1.C2)

    def test_instances_of_superclass(self, view):
        assert DATA.x in set(view.instances_of(N1.C1))
        assert DATA.u in set(view.instances_of(N1.C1))

    def test_instances_of_subclass_excludes_broader(self, view):
        # u is only known to be C1; it must not show up as C5
        assert DATA.u not in set(view.instances_of(N1.C5))

    def test_type_triples_query(self, view):
        members = {t.subject for t in view.triples(None, TYPE, N1.C2)}
        assert DATA.y in members
        assert DATA.v in members


class TestMaterializedClosure:
    def test_closure_adds_superproperty_statement(self, base, schema):
        closed = materialize_closure(base, schema)
        assert closed.count(DATA.x, N1.prop1, DATA.y) == 1

    def test_closure_adds_types(self, base, schema):
        closed = materialize_closure(base, schema)
        assert closed.count(DATA.x, TYPE, N1.C5) == 1
        assert closed.count(DATA.x, TYPE, N1.C1) == 1
        assert closed.count(DATA.y, TYPE, N1.C2) == 1

    def test_closure_preserves_base(self, base, schema):
        before = len(base)
        materialize_closure(base, schema)
        assert len(base) == before

    def test_closure_is_superset(self, base, schema):
        closed = materialize_closure(base, schema)
        assert all(t in closed for t in base)

    def test_closure_idempotent(self, base, schema):
        once = materialize_closure(base, schema)
        twice = materialize_closure(once, schema)
        assert len(once) == len(twice)
