"""Tests for graph/schema persistence."""

import pytest

from repro.rdf import Graph, Literal
from repro.rdf.store_io import load_graph, load_schema, save_graph, save_schema
from repro.workloads.paper import DATA, N1, paper_peer_bases, paper_schema


class TestGraphRoundTrip:
    def test_save_load(self, tmp_path):
        graph = paper_peer_bases()["P1"]
        path = tmp_path / "p1.nt"
        count = save_graph(graph, str(path))
        assert count == len(graph)
        loaded = load_graph(str(path))
        assert set(loaded) == set(graph)

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "empty.nt"
        save_graph(Graph(), str(path))
        assert len(load_graph(str(path))) == 0

    def test_literals_survive(self, tmp_path):
        graph = Graph()
        graph.add(DATA.x, N1.prop1, Literal('tricky "text"\nwith lines'))
        path = tmp_path / "lit.nt"
        save_graph(graph, str(path))
        assert set(load_graph(str(path))) == set(graph)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_graph(str(tmp_path / "nope.nt"))


class TestSchemaRoundTrip:
    def test_save_load(self, tmp_path):
        schema = paper_schema()
        path = tmp_path / "schema.nt"
        save_schema(schema, str(path))
        loaded = load_schema(str(path), schema.namespace.uri, "n1")
        assert loaded.classes == schema.classes
        assert loaded.properties == schema.properties
        assert loaded.is_subproperty(N1.prop4, N1.prop1)
        assert loaded.is_subclass(N1.C5, N1.C1)

    def test_loaded_schema_supports_queries(self, tmp_path):
        from repro.rql import query
        from repro.workloads.paper import PAPER_QUERY

        schema = paper_schema()
        path = tmp_path / "schema.nt"
        save_schema(schema, str(path))
        loaded = load_schema(str(path), schema.namespace.uri)
        base = paper_peer_bases()["P1"]
        assert len(query(PAPER_QUERY, base, loaded)) == 3
