"""Tests for the indexed triple store."""

import pytest

from repro.rdf import Graph, Literal, Namespace, Triple, TYPE, URI

EX = Namespace("http://example.org/")


@pytest.fixture
def graph():
    g = Graph()
    g.add(EX.a, EX.knows, EX.b)
    g.add(EX.a, EX.knows, EX.c)
    g.add(EX.b, EX.knows, EX.c)
    g.add(EX.a, EX.name, Literal("alice"))
    g.add(EX.a, TYPE, EX.Person)
    return g


class TestMutation:
    def test_add_returns_triple(self):
        g = Graph()
        t = g.add(EX.a, EX.p, EX.b)
        assert t == Triple(EX.a, EX.p, EX.b)
        assert t in g

    def test_add_idempotent(self, graph):
        size = len(graph)
        graph.add(EX.a, EX.knows, EX.b)
        assert len(graph) == size

    def test_remove_present(self, graph):
        t = Triple(EX.a, EX.knows, EX.b)
        assert graph.remove_triple(t) is True
        assert t not in graph

    def test_remove_absent(self, graph):
        assert graph.remove_triple(Triple(EX.z, EX.p, EX.z)) is False

    def test_remove_cleans_indexes(self):
        g = Graph()
        t = g.add(EX.a, EX.p, EX.b)
        g.remove_triple(t)
        assert list(g.triples(EX.a, None, None)) == []
        assert list(g.triples(None, EX.p, None)) == []
        assert list(g.triples(None, None, EX.b)) == []

    def test_clear(self, graph):
        graph.clear()
        assert len(graph) == 0
        assert list(graph.triples(None, None, None)) == []

    def test_update(self):
        g = Graph()
        g.update([Triple(EX.a, EX.p, EX.b), Triple(EX.c, EX.p, EX.d)])
        assert len(g) == 2

    def test_predicate_must_be_uri(self):
        with pytest.raises(TypeError):
            Triple(EX.a, Literal("p"), EX.b)


class TestPatternMatching:
    def test_all_wildcards(self, graph):
        assert len(list(graph.triples())) == len(graph)

    def test_by_subject(self, graph):
        assert len(list(graph.triples(EX.a, None, None))) == 4

    def test_by_predicate(self, graph):
        assert len(list(graph.triples(None, EX.knows, None))) == 3

    def test_by_object(self, graph):
        assert len(list(graph.triples(None, None, EX.c))) == 2

    def test_fully_bound_hit(self, graph):
        assert len(list(graph.triples(EX.a, EX.knows, EX.b))) == 1

    def test_fully_bound_miss(self, graph):
        assert list(graph.triples(EX.a, EX.knows, EX.z)) == []

    def test_two_bound_slots(self, graph):
        assert len(list(graph.triples(EX.a, EX.knows, None))) == 2

    def test_subjects_distinct(self, graph):
        assert set(graph.subjects(EX.knows)) == {EX.a, EX.b}

    def test_objects_distinct(self, graph):
        assert set(graph.objects(EX.a, EX.knows)) == {EX.b, EX.c}

    def test_predicates(self, graph):
        assert set(graph.predicates()) == {EX.knows, EX.name, TYPE}

    def test_instances_of(self, graph):
        assert set(graph.instances_of(EX.Person)) == {EX.a}

    def test_count(self, graph):
        assert graph.count(None, EX.knows, None) == 3
        assert graph.count() == len(graph)


class TestProtocol:
    def test_bool(self, graph, ):
        assert graph
        assert not Graph()

    def test_copy_independent(self, graph):
        clone = graph.copy()
        clone.add(EX.z, EX.p, EX.z)
        assert len(clone) == len(graph) + 1

    def test_union_operator(self):
        g1, g2 = Graph(), Graph()
        g1.add(EX.a, EX.p, EX.b)
        g2.add(EX.c, EX.p, EX.d)
        merged = g1 | g2
        assert len(merged) == 2
        assert len(g1) == 1

    def test_iteration_yields_all(self, graph):
        assert set(graph) == set(graph.triples())
