"""Tests for metric collection."""

from repro.metrics import MetricSet


class TestMetricSet:
    def test_record_message(self):
        metrics = MetricSet()
        metrics.record_message("QuerySubmit", "A", "B", 100)
        assert metrics.messages_total == 1
        assert metrics.bytes_total == 100
        assert metrics.messages_by_kind["QuerySubmit"] == 1
        assert metrics.bytes_by_kind["QuerySubmit"] == 100
        assert metrics.messages_sent["A"] == 1
        assert metrics.messages_received["B"] == 1

    def test_query_load_tracking(self):
        metrics = MetricSet()
        metrics.record_query_processed("A", relevant=True)
        metrics.record_query_processed("A", relevant=False)
        assert metrics.queries_processed["A"] == 2
        assert metrics.irrelevant_queries["A"] == 1
        assert metrics.peak_peer_load() == 2

    def test_latency(self):
        metrics = MetricSet()
        metrics.query_started("q1", 10.0)
        metrics.query_finished("q1", 14.0)
        assert metrics.query_latency["q1"] == 4.0
        assert metrics.mean_latency() == 4.0

    def test_finish_without_start_ignored(self):
        metrics = MetricSet()
        metrics.query_finished("ghost", 5.0)
        assert "ghost" not in metrics.query_latency

    def test_mean_latency_empty(self):
        assert MetricSet().mean_latency() is None

    def test_snapshot_delta(self):
        metrics = MetricSet()
        metrics.record_message("X", "A", "B", 10)
        snapshot = metrics.snapshot()
        metrics.record_message("X", "A", "B", 20)
        metrics.record_message("X", "A", "B", 30)
        delta = metrics.delta(snapshot)
        assert delta[:2] == (2, 50)
        assert delta.messages == 2
        assert delta.bytes == 50

    def test_delta_accepts_legacy_pair(self):
        metrics = MetricSet()
        metrics.record_message("X", "A", "B", 10)
        metrics.record_cache_hit()
        delta = metrics.delta((0, 0))
        assert delta.messages == 1
        assert delta.bytes == 10
        assert delta.cache_hits == 1

    def test_cache_counters(self):
        metrics = MetricSet()
        snapshot = metrics.snapshot()
        metrics.record_cache_hit()
        metrics.record_cache_miss()
        metrics.record_cache_invalidation(3)
        metrics.record_coalesced_query()
        delta = metrics.delta(snapshot)
        assert delta.cache_hits == 1
        assert delta.cache_misses == 1
        assert delta.cache_invalidations == 3
        assert delta.coalesced_queries == 1

    def test_summary_keys(self):
        summary = MetricSet().summary()
        assert set(summary) >= {
            "messages",
            "bytes",
            "queries_processed",
            "cache_hits",
            "cache_misses",
            "cache_invalidations",
            "coalesced_queries",
        }

    def test_peak_load_empty(self):
        assert MetricSet().peak_peer_load() == 0


class TestPerAttemptLatency:
    def test_resubmit_records_every_attempt(self):
        """A client resubmit of the same query id must not clobber the
        outstanding attempt: both latencies count."""
        metrics = MetricSet()
        metrics.query_started("q1", 0.0)
        metrics.query_started("q1", 10.0)  # idempotent resubmit
        metrics.query_finished("q1", 4.0)  # closes the oldest attempt
        metrics.query_finished("q1", 16.0)
        assert metrics.query_latencies["q1"] == [4.0, 6.0]
        assert metrics.all_latencies() == [4.0, 6.0]
        assert metrics.mean_latency() == 5.0
        # the legacy view keeps the latest attempt only
        assert metrics.query_latency["q1"] == 6.0

    def test_latency_feeds_histogram_percentiles(self):
        metrics = MetricSet()
        for i in range(100):
            metrics.query_started(f"q{i}", 0.0)
            metrics.query_finished(f"q{i}", float(i + 1))
        percentiles = metrics.latency_percentiles()
        assert percentiles["max"] == 100.0
        assert abs(percentiles["p50"] - 50.0) / 50.0 < 0.06

    def test_percentiles_zero_when_empty(self):
        assert MetricSet().latency_percentiles() == {
            "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0,
        }

    def test_summary_carries_percentile_keys(self):
        summary = MetricSet().summary()
        assert {"latency_p50", "latency_p90", "latency_p99", "latency_max"} <= set(
            summary
        )


class TestStageLatency:
    def test_observations_fold_lazily(self):
        """observe_stage pays one append; histograms materialise on
        the first stage_latency read."""
        metrics = MetricSet()
        metrics.observe_stage("routing", 2.0)
        metrics.observe_stage("routing", 4.0)
        metrics.observe_stage("execute", 1.0)
        assert len(metrics._stage_pending) == 3
        stages = metrics.stage_latency
        assert metrics._stage_pending == []
        assert set(stages) == {"routing", "execute"}
        assert stages["routing"].count == 2
        assert stages["routing"].total == 6.0
        assert stages["execute"].count == 1

    def test_reads_are_idempotent(self):
        metrics = MetricSet()
        metrics.observe_stage("routing", 2.0)
        assert metrics.stage_latency["routing"].count == 1
        assert metrics.stage_latency["routing"].count == 1
        metrics.observe_stage("routing", 3.0)
        assert metrics.stage_latency["routing"].count == 2


class TestPerKindDelta:
    def test_delta_splits_by_kind(self):
        metrics = MetricSet()
        metrics.record_message("RouteRequest", "A", "SP", 10)
        snapshot = metrics.snapshot()
        metrics.record_message("RouteReply", "SP", "A", 30)
        metrics.record_message("RouteReply", "SP", "A", 30)
        delta = metrics.delta(snapshot)
        assert dict(delta.messages_by_kind) == {"RouteReply": 2}
        assert dict(delta.bytes_by_kind) == {"RouteReply": 60}

    def test_legacy_pair_deltas_kinds_against_zero(self):
        metrics = MetricSet()
        metrics.record_message("QuerySubmit", "A", "B", 5)
        delta = metrics.delta((0, 0))
        assert dict(delta.messages_by_kind) == {"QuerySubmit": 1}
        assert dict(delta.bytes_by_kind) == {"QuerySubmit": 5}
