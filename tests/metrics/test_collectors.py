"""Tests for metric collection."""

from repro.metrics import MetricSet


class TestMetricSet:
    def test_record_message(self):
        metrics = MetricSet()
        metrics.record_message("QuerySubmit", "A", "B", 100)
        assert metrics.messages_total == 1
        assert metrics.bytes_total == 100
        assert metrics.messages_by_kind["QuerySubmit"] == 1
        assert metrics.bytes_by_kind["QuerySubmit"] == 100
        assert metrics.messages_sent["A"] == 1
        assert metrics.messages_received["B"] == 1

    def test_query_load_tracking(self):
        metrics = MetricSet()
        metrics.record_query_processed("A", relevant=True)
        metrics.record_query_processed("A", relevant=False)
        assert metrics.queries_processed["A"] == 2
        assert metrics.irrelevant_queries["A"] == 1
        assert metrics.peak_peer_load() == 2

    def test_latency(self):
        metrics = MetricSet()
        metrics.query_started("q1", 10.0)
        metrics.query_finished("q1", 14.0)
        assert metrics.query_latency["q1"] == 4.0
        assert metrics.mean_latency() == 4.0

    def test_finish_without_start_ignored(self):
        metrics = MetricSet()
        metrics.query_finished("ghost", 5.0)
        assert "ghost" not in metrics.query_latency

    def test_mean_latency_empty(self):
        assert MetricSet().mean_latency() is None

    def test_snapshot_delta(self):
        metrics = MetricSet()
        metrics.record_message("X", "A", "B", 10)
        snapshot = metrics.snapshot()
        metrics.record_message("X", "A", "B", 20)
        metrics.record_message("X", "A", "B", 30)
        delta = metrics.delta(snapshot)
        assert delta[:2] == (2, 50)
        assert delta.messages == 2
        assert delta.bytes == 50

    def test_delta_accepts_legacy_pair(self):
        metrics = MetricSet()
        metrics.record_message("X", "A", "B", 10)
        metrics.record_cache_hit()
        delta = metrics.delta((0, 0))
        assert delta.messages == 1
        assert delta.bytes == 10
        assert delta.cache_hits == 1

    def test_cache_counters(self):
        metrics = MetricSet()
        snapshot = metrics.snapshot()
        metrics.record_cache_hit()
        metrics.record_cache_miss()
        metrics.record_cache_invalidation(3)
        metrics.record_coalesced_query()
        delta = metrics.delta(snapshot)
        assert delta.cache_hits == 1
        assert delta.cache_misses == 1
        assert delta.cache_invalidations == 3
        assert delta.coalesced_queries == 1

    def test_summary_keys(self):
        summary = MetricSet().summary()
        assert set(summary) >= {
            "messages",
            "bytes",
            "queries_processed",
            "cache_hits",
            "cache_misses",
            "cache_invalidations",
            "coalesced_queries",
        }

    def test_peak_load_empty(self):
        assert MetricSet().peak_peer_load() == 0
