"""Tests for streamed result chunks and throughput-based adaptation.

Section 2.5: "the optimizer may alter a running query plan by observing
the throughput of a certain channel.  This throughput can be measured
by the number of incoming or outgoing tuples."
"""

import pytest

from repro.errors import PeerError
from repro.net import Message
from repro.peers.base import Peer
from repro.systems import HybridSystem
from repro.workloads.paper import (
    PAPER_QUERY,
    paper_peer_bases,
    paper_schema,
)


class SilentPeer(Peer):
    """Accepts subplans and never answers — a stalled producer."""

    def handle_SubPlanPacket(self, message: Message) -> None:
        pass  # swallow the work


def build_system(**peer_options) -> HybridSystem:
    system = HybridSystem(paper_schema(), **peer_options)
    system.add_super_peer("SP1")
    for peer_id, graph in paper_peer_bases().items():
        system.add_peer(peer_id, graph, "SP1")
    return system


class TestStreaming:
    def test_chunked_results_identical(self):
        plain = build_system().query("P1", PAPER_QUERY)
        streamed_system = build_system()
        for peer in streamed_system.peers.values():
            peer.stream_chunk_rows = 2
        streamed = streamed_system.query("P1", PAPER_QUERY)
        assert streamed == plain

    def test_chunking_multiplies_data_packets(self):
        baseline = build_system()
        baseline.query("P1", PAPER_QUERY)
        base_packets = baseline.network.metrics.messages_by_kind["DataPacket"]

        chunked = build_system()
        for peer in chunked.peers.values():
            peer.stream_chunk_rows = 1
        chunked.query("P1", PAPER_QUERY)
        chunk_packets = chunked.network.metrics.messages_by_kind["DataPacket"]
        assert chunk_packets > base_packets

    def test_single_row_results_not_split(self):
        system = build_system()
        for peer in system.peers.values():
            peer.stream_chunk_rows = 1000  # larger than any result
        table = system.query("P1", PAPER_QUERY)
        assert len(table) == 9


class TestThroughputMonitoring:
    def _with_silent_peer(self, monitoring: bool) -> HybridSystem:
        """The paper scenario plus a silent peer that advertises the
        same fragment as P2 — routing prefers nobody, so the silent
        peer receives a subplan and stalls the query."""
        from repro.peers.protocol import Advertise
        from repro.rvl import ActiveSchema

        system = build_system()
        if monitoring:
            for peer in system.peers.values():
                peer.monitor_channels = True
                peer.monitor_interval = 5.0
        silent = SilentPeer("SILENT", None)
        silent.join(system.network)
        # hand-craft an advertisement claiming prop1 coverage
        schema = system.schema
        from repro.rql.pattern import SchemaPath
        from repro.workloads.paper import N1

        fake = ActiveSchema(
            schema.namespace.uri,
            [SchemaPath(N1.C1, N1.prop1, N1.C2)],
            peer_id="SILENT",
        )
        system.network.send(Message("SILENT", "SP1", Advertise(fake)))
        system.run()
        return system

    def test_without_monitoring_query_stalls(self):
        system = self._with_silent_peer(monitoring=False)
        with pytest.raises(PeerError, match="no reply"):
            system.query("P1", PAPER_QUERY)

    def test_monitoring_replans_away_from_stalled_channel(self):
        system = self._with_silent_peer(monitoring=True)
        table = system.query("P1", PAPER_QUERY)
        assert len(table) == 9  # the real peers' answers survive

    def test_monitoring_does_not_disturb_healthy_queries(self):
        system = build_system()
        for peer in system.peers.values():
            peer.monitor_channels = True
            peer.monitor_interval = 5.0
        table = system.query("P1", PAPER_QUERY)
        assert len(table) == 9

    def test_slow_streamer_detected(self):
        """A peer streaming with an enormous inter-chunk delay is
        treated as stalled and replaced."""
        system = build_system()
        for peer in system.peers.values():
            peer.monitor_channels = True
            peer.monitor_interval = 5.0
        slowpoke = system.peers["P2"]
        slowpoke.stream_chunk_rows = 1
        slowpoke.stream_interval = 1e6  # effectively never finishes
        table = system.query("P1", PAPER_QUERY)
        # P2's four bridge chains are lost, the others answer
        assert len(table) == 5
