"""Tests for schema articulations and super-peer mediation (Section 3.1)."""

import pytest

from repro.errors import MappingError, PeerError
from repro.mappings import Articulation
from repro.rdf import Graph, Namespace, Schema, TYPE
from repro.systems import HybridSystem
from repro.workloads.paper import N1, paper_schema

# a "foreign" community schema describing the same domain differently
M2 = Namespace("http://ics.forth.gr/sqpeer/m2#")
DATA = Namespace("http://ics.forth.gr/sqpeer/shared-data#")


def foreign_schema() -> Schema:
    schema = Schema(M2, "m2")
    for name in ("Thing", "Item", "Detail"):
        schema.add_class(M2[name])
    schema.add_property(M2.linksTo, M2.Thing, M2.Item)
    schema.add_property(M2.describes, M2.Item, M2.Detail)
    return schema


def articulation(source=None, target=None) -> Articulation:
    source = source or paper_schema()
    target = target or foreign_schema()
    return Articulation(
        source,
        target,
        class_map={N1.C1: M2.Thing, N1.C2: M2.Item, N1.C3: M2.Detail},
        property_map={N1.prop1: M2.linksTo, N1.prop2: M2.describes},
    )


@pytest.fixture
def schema():
    return paper_schema()


class TestArticulation:
    def test_validation(self, schema):
        with pytest.raises(MappingError):
            Articulation(schema, foreign_schema(), class_map={N1.C1: M2.Nope})
        with pytest.raises(MappingError):
            Articulation(schema, foreign_schema(), property_map={N1.nope: M2.linksTo})

    def test_reformulate_path(self, schema):
        from repro.workloads.paper import paper_query_pattern

        art = articulation(schema)
        pattern = paper_query_pattern(schema)
        mapped = art.reformulate_path(pattern.root)
        assert mapped.schema_path.property == M2.linksTo
        assert mapped.schema_path.domain == M2.Thing
        assert mapped.subject_var == "X"
        assert mapped.label == "Q1"

    def test_reformulate_whole_pattern(self, schema):
        from repro.workloads.paper import paper_query_pattern

        art = articulation(schema)
        mapped = art.reformulate(paper_query_pattern(schema))
        assert mapped is not None
        assert [p.schema_path.property for p in mapped] == [M2.linksTo, M2.describes]
        assert mapped.projections == ("X", "Y")

    def test_unmapped_property_blocks_reformulation(self, schema):
        from repro.rql.pattern import pattern_from_text

        art = Articulation(
            schema, foreign_schema(), property_map={N1.prop1: M2.linksTo}
        )
        pattern = pattern_from_text(
            f"SELECT X FROM {{X}} n1:prop3 {{Y}} USING NAMESPACE n1 = &{N1.uri}&",
            schema,
        )
        assert art.reformulate(pattern) is None
        assert not art.covers(pattern)

    def test_unmapped_class_defaults_to_target_definition(self, schema):
        from repro.workloads.paper import paper_query_pattern

        art = Articulation(
            schema,
            foreign_schema(),
            property_map={N1.prop1: M2.linksTo, N1.prop2: M2.describes},
        )
        mapped = art.reformulate(paper_query_pattern(schema))
        assert mapped.root.schema_path.domain == M2.Thing  # from linksTo's domain

    def test_inverse(self, schema):
        art = articulation(schema)
        inverse = art.inverse()
        assert inverse.map_property(M2.linksTo) == N1.prop1
        assert inverse.map_class(M2.Item) == N1.C2

    def test_non_injective_not_invertible(self, schema):
        art = Articulation(
            schema,
            foreign_schema(),
            class_map={N1.C1: M2.Thing, N1.C5: M2.Thing},
        )
        with pytest.raises(MappingError):
            art.inverse()


class TestMediatedQueries:
    """A query in n1 vocabulary answered by peers of the m2 SON."""

    @pytest.fixture
    def system(self, schema):
        target = foreign_schema()
        system = HybridSystem(schema)
        super_peer = system.add_super_peer("SP1")
        super_peer.add_articulation(articulation(schema, target))

        # native n1 peer with one chain
        native = Graph()
        native.add(DATA.nx, TYPE, N1.C1)
        native.add(DATA.shared_item, TYPE, N1.C2)
        native.add(DATA.nx, N1.prop1, DATA.shared_item)
        native.add(DATA.shared_item, N1.prop2, DATA.nz)
        native.add(DATA.nz, TYPE, N1.C3)
        system.add_peer("native", native, "SP1")

        # foreign m2 peer whose data continues a shared resource
        foreign = Graph()
        foreign.add(DATA.fx, TYPE, M2.Thing)
        foreign.add(DATA.shared_item, TYPE, M2.Item)
        foreign.add(DATA.fx, M2.linksTo, DATA.shared_item)
        foreign.add(DATA.shared_item, M2.describes, DATA.fz)
        foreign.add(DATA.fz, TYPE, M2.Detail)
        system.add_peer("foreign", foreign, "SP1", schema=target)
        return system

    QUERY = (
        "SELECT X, Y FROM {X} n1:prop1 {Y}, {Y} n1:prop2 {Z} "
        f"USING NAMESPACE n1 = &{N1.uri}&"
    )

    def test_cross_son_answers(self, system):
        table = system.query("native", self.QUERY)
        xs = {x.local_name for x, _ in table.rows}
        # native chain, foreign chain, and the two cross-SON chains
        # joining on the shared item
        assert xs == {"nx", "fx"}
        assert len(table) == 2

    def test_cross_son_join_on_shared_resource(self, system):
        table = system.query("native", self.QUERY)
        rows = {(x.local_name, y.local_name) for x, y in table.rows}
        assert ("nx", "shared_item") in rows
        assert ("fx", "shared_item") in rows

    def test_without_articulation_only_native(self, schema):
        target = foreign_schema()
        system = HybridSystem(schema)
        system.add_super_peer("SP1")
        native = Graph()
        native.add(DATA.nx, N1.prop1, DATA.ny)
        native.add(DATA.ny, N1.prop2, DATA.nz)
        system.add_peer("native", native, "SP1")
        foreign = Graph()
        foreign.add(DATA.fx, M2.linksTo, DATA.fy)
        foreign.add(DATA.fy, M2.describes, DATA.fz)
        system.add_peer("foreign", foreign, "SP1", schema=target)
        table = system.query("native", self.QUERY)
        assert {x.local_name for x, _ in table.rows} == {"nx"}
