"""Integration over synthetic workloads: both architectures, all
distributions, always compared against the centralised answer."""

import pytest

from repro.errors import PeerError
from repro.net import random_neighbour_graph
from repro.rdf import Graph
from repro.rql import query as local_query
from repro.systems import AdhocSystem, HybridSystem
from repro.workloads.data_gen import Distribution, generate_bases
from repro.workloads.query_gen import chain_query
from repro.workloads.schema_gen import generate_schema

import random


def centralised_answer(bases, schema, text):
    merged = Graph()
    for graph in bases.values():
        merged.update(graph)
    return local_query(text, merged, schema).distinct()


def build_hybrid(synth, bases):
    system = HybridSystem(synth.schema)
    system.add_super_peer("SP1")
    for peer_id, graph in bases.items():
        system.add_peer(peer_id, graph, "SP1")
    return system


def build_adhoc(synth, bases, seed=0):
    adjacency = random_neighbour_graph(sorted(bases), 3, random.Random(seed))
    system = AdhocSystem(synth.schema)
    for peer_id, graph in bases.items():
        system.add_peer(peer_id, graph, adjacency[peer_id])
    system.discover_all()
    return system


@pytest.mark.parametrize(
    "distribution",
    [Distribution.VERTICAL, Distribution.HORIZONTAL, Distribution.MIXED],
)
class TestHybridCorrectness:
    def test_two_hop_chain(self, distribution):
        synth = generate_schema(chain_length=3, refinement_fraction=0.0, seed=1)
        peers = [f"P{i}" for i in range(4)]
        gen = generate_bases(
            synth, peers, distribution, statements_per_segment=15, seed=2
        )
        system = build_hybrid(synth, gen.bases)
        text = chain_query(synth, 0, 2)
        expected = centralised_answer(gen.bases, synth.schema, text)
        assert system.query("P0", text) == expected

    def test_single_hop(self, distribution):
        synth = generate_schema(chain_length=3, refinement_fraction=0.0, seed=3)
        peers = [f"P{i}" for i in range(3)]
        gen = generate_bases(synth, peers, distribution, seed=4)
        system = build_hybrid(synth, gen.bases)
        text = chain_query(synth, 1, 1)
        expected = centralised_answer(gen.bases, synth.schema, text)
        assert system.query("P0", text) == expected


@pytest.mark.parametrize(
    "distribution", [Distribution.HORIZONTAL, Distribution.MIXED]
)
class TestAdhocCorrectness:
    def test_two_hop_chain(self, distribution):
        synth = generate_schema(chain_length=3, refinement_fraction=0.0, seed=5)
        peers = [f"P{i}" for i in range(5)]
        gen = generate_bases(
            synth, peers, distribution, statements_per_segment=12, seed=6
        )
        system = build_adhoc(synth, gen.bases, seed=7)
        text = chain_query(synth, 0, 2)
        expected = centralised_answer(gen.bases, synth.schema, text)
        try:
            actual = system.query("P0", text)
        except PeerError:
            pytest.skip("topology left the query unroutable at this depth")
        # ad-hoc completeness is best-effort: the answer must be a
        # sound subset of the centralised one
        expected_rows = {tuple(t.n3() for t in row) for row in expected.rows}
        actual_rows = {tuple(t.n3() for t in row) for row in actual.rows}
        assert actual_rows <= expected_rows
        assert actual_rows  # and non-trivial


class TestSubsumptionEndToEnd:
    def test_refined_property_answers_chain_query(self):
        """Peers holding only the refined subproperty still contribute
        to a query over the backbone property (P4-style, end to end)."""
        synth = generate_schema(chain_length=2, refinement_fraction=1.0, seed=8)
        schema = synth.schema
        from repro.rdf import Namespace, TYPE

        data = Namespace("http://inst#")
        sub_prop, sub_domain, sub_range = synth.refined_properties[0]
        refined_base = Graph()
        for i in range(3):
            s, o = data[f"rs{i}"], data[f"ro{i}"]
            refined_base.add(s, TYPE, sub_domain)
            refined_base.add(o, TYPE, sub_range)
            refined_base.add(s, sub_prop, o)
        system = build_hybrid(synth, {"PR": refined_base, "PE": Graph()})
        text = chain_query(synth, 0, 1)
        table = system.query("PE", text)
        assert len(table) == 3


class TestScale:
    def test_twenty_peer_hybrid(self):
        synth = generate_schema(chain_length=4, refinement_fraction=0.5, seed=9)
        peers = [f"P{i:02d}" for i in range(20)]
        gen = generate_bases(
            synth, peers, Distribution.MIXED, statements_per_segment=8, seed=10
        )
        system = build_hybrid(synth, gen.bases)
        text = chain_query(synth, 0, 2)
        expected = centralised_answer(gen.bases, synth.schema, text)
        assert system.query("P00", text) == expected

    def test_repeated_queries_stable(self):
        synth = generate_schema(chain_length=3, refinement_fraction=0.0, seed=11)
        gen = generate_bases(
            synth, ["A", "B", "C"], Distribution.HORIZONTAL, seed=12
        )
        system = build_hybrid(synth, gen.bases)
        text = chain_query(synth, 0, 2)
        first = system.query("A", text)
        second = system.query("B", text)
        assert first == second
