"""Failure injection: run-time adaptation end to end (Section 2.5)."""

import pytest

from repro.errors import PeerError
from repro.systems import HybridSystem
from repro.workloads.data_gen import Distribution, generate_bases
from repro.workloads.query_gen import chain_query
from repro.workloads.schema_gen import generate_schema
from repro.workloads.paper import PAPER_QUERY, hybrid_scenario


def redundant_system(seed=0):
    """A hybrid SON where every chain segment is held by 3 peers —
    any single failure is survivable."""
    synth = generate_schema(chain_length=2, refinement_fraction=0.0, seed=seed)
    peers = [f"P{i}" for i in range(6)]
    gen = generate_bases(
        synth, peers, Distribution.HORIZONTAL, statements_per_segment=10, seed=seed
    )
    system = HybridSystem(synth.schema)
    system.add_super_peer("SP1")
    for peer_id, graph in gen.bases.items():
        system.add_peer(peer_id, graph, "SP1")
    return system, synth


class TestSingleFailure:
    def test_replan_survives_one_peer_loss(self):
        system, synth = redundant_system()
        system.run()
        system.network.fail_peer("P3")
        table = system.query("P0", chain_query(synth, 0, 2))
        assert len(table) > 0

    def test_replan_excludes_failed_peer_channels(self):
        system, synth = redundant_system()
        system.run()
        system.network.fail_peer("P3")
        system.query("P0", chain_query(synth, 0, 2))
        # after adaptation no open channel targets the dead peer
        coordinator = system.peers["P0"]
        open_destinations = {
            ch.destination for ch in coordinator.channels.open_channels().values()
        }
        assert "P3" not in open_destinations

    def test_multiple_failures_until_unrepairable(self):
        scenario = hybrid_scenario()
        system = HybridSystem.from_scenario(scenario)
        system.run()
        system.network.fail_peer("P2")
        system.network.fail_peer("P3")  # both Q1 providers gone
        with pytest.raises(PeerError) as err:
            system.query("P1", PAPER_QUERY)
        assert "failed" in str(err.value) or "no relevant peers" in str(err.value)


class TestReplanBudget:
    def test_max_replans_respected(self):
        system, synth = redundant_system()
        system.run()
        # kill every other data holder so each replan hits a new corpse
        for peer_id in ("P1", "P2", "P3", "P4", "P5"):
            system.network.fail_peer(peer_id)
        with pytest.raises(PeerError):
            system.query("P0", chain_query(synth, 0, 2))

    def test_failure_after_success_does_not_retrigger(self):
        system, synth = redundant_system()
        system.run()
        text = chain_query(synth, 0, 2)
        table = system.query("P0", text)
        system.network.fail_peer("P5")
        table2 = system.query("P0", text)
        # both queries answered (second with adaptation if P5 was used)
        assert len(table) >= len(table2) >= 0


class TestDiscardSemantics:
    def test_partial_results_discarded_on_replan(self):
        """The ubQL policy: a replanned query never mixes results from
        the failed attempt — equivalently, the final answer equals a
        fresh evaluation excluding the dead peer."""
        system, synth = redundant_system(seed=4)
        system.run()
        text = chain_query(synth, 0, 2)
        baseline = system.query("P0", text)

        system2, synth2 = redundant_system(seed=4)
        system2.run()
        system2.network.fail_peer("P1")
        adapted = system2.query("P0", chain_query(synth2, 0, 2))
        # the adapted answer is exactly the no-P1 evaluation
        from repro.rdf import Graph
        from repro.rql import query as local_query

        merged = Graph()
        for peer_id, peer in system2.peers.items():
            if peer_id != "P1":
                merged.update(peer.base.graph)
        expected = local_query(
            chain_query(synth2, 0, 2), merged, synth2.schema
        ).distinct()
        assert adapted == expected
        assert len(baseline) >= len(adapted)
