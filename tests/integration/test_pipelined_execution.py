"""End-to-end pipelined evaluation: identical answers, earlier first
rows (Section 2.5: Plan 2 'offers the ability to evaluate this plan in
a pipeline way')."""

import pytest

from repro.systems import HybridSystem
from repro.workloads.paper import PAPER_QUERY, paper_peer_bases, paper_schema
from repro.workloads.data_gen import Distribution, generate_bases
from repro.workloads.query_gen import chain_query
from repro.workloads.schema_gen import generate_schema


def build_system(pipelined: bool, chunk_rows=2, interval=5.0) -> HybridSystem:
    system = HybridSystem(paper_schema())
    system.add_super_peer("SP1")
    for peer_id, graph in paper_peer_bases().items():
        system.add_peer(peer_id, graph, "SP1")
    for peer in system.peers.values():
        peer.pipelined_execution = pipelined
        peer.stream_chunk_rows = chunk_rows
        peer.stream_interval = interval
    return system


class TestCorrectness:
    def test_same_answer_as_blocking(self):
        blocking = build_system(False).query("P1", PAPER_QUERY)
        pipelined = build_system(True).query("P1", PAPER_QUERY)
        assert pipelined == blocking

    def test_without_streaming_still_correct(self):
        system = build_system(True, chunk_rows=None)
        assert len(system.query("P1", PAPER_QUERY)) == 9

    def test_synthetic_workload_equivalence(self):
        synth = generate_schema(chain_length=3, refinement_fraction=0.5, seed=13)
        gen = generate_bases(
            synth, [f"P{i}" for i in range(5)], Distribution.MIXED, seed=14
        )

        def run(pipelined):
            system = HybridSystem(synth.schema)
            system.add_super_peer("SP1")
            for peer_id, graph in gen.bases.items():
                system.add_peer(peer_id, graph, "SP1")
            for peer in system.peers.values():
                peer.pipelined_execution = pipelined
                peer.stream_chunk_rows = 3
            return system.query("P0", chain_query(synth, 0, 2))

        assert run(True) == run(False)

    def test_single_scan_plan(self):
        """A plan that is just one remote scan also works pipelined."""
        from repro.workloads.paper import N1

        system = build_system(True)
        text = (
            "SELECT X, Y FROM {X} n1:prop2 {Y} "
            f"USING NAMESPACE n1 = &{N1.uri}&"
        )
        table = system.query("P2", text)
        assert len(table) > 0

    def test_failure_during_pipelined_execution(self):
        system = build_system(True)
        system.run()
        system.network.fail_peer("P2")
        table = system.query("P1", PAPER_QUERY)
        assert len(table) == 5  # adaptation still works


class TestFirstResultLatency:
    def test_pipelined_first_rows_earlier(self):
        """With slow streaming producers, the pipelined coordinator
        materialises its first join rows before the blocking one has
        even finished collecting inputs."""
        pipelined_system = build_system(True, chunk_rows=1, interval=10.0)
        pipelined_system.query("P1", PAPER_QUERY)
        first_at = pipelined_system.peers["P1"].last_first_output_at
        assert first_at is not None

        blocking_system = build_system(False, chunk_rows=1, interval=10.0)
        blocking_system.query("P1", PAPER_QUERY)
        completion_at = blocking_system.network.now
        assert first_at < completion_at

    def test_first_output_unset_for_empty_answers(self):
        from repro.workloads.paper import N1

        system = build_system(True)
        text = (
            "SELECT X, Y FROM {X} n1:prop3 {Y} "
            f"USING NAMESPACE n1 = &{N1.uri}&"
        )
        # nobody holds prop3 in this SON: the query fails to route
        from repro.errors import PeerError

        with pytest.raises(PeerError):
            system.query("P1", text)
