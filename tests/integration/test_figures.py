"""End-to-end reproduction of every figure's scenario (Figures 1–7).

These are the repository's ground-truth checks: each test asserts the
exact artefact the corresponding paper figure shows.
"""

import pytest

from repro.core import (
    CostModel,
    Statistics,
    assign_sites,
    build_plan,
    compare_policies,
    optimize,
    route_query,
)
from repro.core.shipping import ShippingPolicy
from repro.rql import parse_query, pattern_from_text
from repro.rvl import ActiveSchema, parse_view
from repro.systems import AdhocSystem, HybridSystem
from repro.workloads.paper import (
    N1,
    PAPER_QUERY,
    PAPER_VIEW,
    adhoc_scenario,
    hybrid_scenario,
    paper_active_schemas,
    paper_peer_bases,
    paper_query_pattern,
    paper_schema,
)


@pytest.fixture
def schema():
    return paper_schema()


class TestFigure1:
    """Schema, query pattern and RVL advertisement of Figure 1."""

    def test_schema(self, schema):
        assert schema.is_subclass(N1.C5, N1.C1)
        assert schema.is_subclass(N1.C6, N1.C2)
        assert schema.is_subproperty(N1.prop4, N1.prop1)
        assert schema.domain_of(N1.prop1) == N1.C1
        assert schema.range_of(N1.prop2) == N1.C3

    def test_query_pattern_endpoints_from_schema(self, schema):
        pattern = pattern_from_text(PAPER_QUERY, schema)
        q1, q2 = pattern.patterns
        assert (q1.schema_path.domain, q1.schema_path.range) == (N1.C1, N1.C2)
        assert (q2.schema_path.domain, q2.schema_path.range) == (N1.C2, N1.C3)
        assert q1.projected == ("X", "Y")

    def test_view_active_schema(self, schema):
        advertisement = ActiveSchema.from_view(parse_view(PAPER_VIEW), schema, "P")
        assert advertisement.covers_property(N1.prop4)
        assert {c.local_name for c in advertisement.classes} == {"C5", "C6"}


class TestFigure2:
    def test_annotations(self, schema):
        pattern = paper_query_pattern(schema)
        annotated = route_query(pattern, paper_active_schemas(schema).values(), schema)
        assert annotated.peers_for(pattern.root) == ("P1", "P2", "P4")
        assert annotated.peers_for(pattern.patterns[1]) == ("P1", "P3", "P4")


class TestFigure3:
    def test_plan(self, schema):
        pattern = paper_query_pattern(schema)
        annotated = route_query(pattern, paper_active_schemas(schema).values(), schema)
        plan = build_plan(annotated)
        assert plan.render() == (
            "⋈(∪(Q1@P1, Q1@P2, Q1@P4), ∪(Q2@P1, Q2@P3, Q2@P4))"
        )


class TestFigure4:
    def test_three_plans(self, schema):
        pattern = paper_query_pattern(schema)
        annotated = route_query(pattern, paper_active_schemas(schema).values(), schema)
        trace = optimize(build_plan(annotated))
        plans = [plan for _, plan in trace]
        assert len(plans) == 3
        plan2, plan3 = plans[1], plans[2]
        assert len(plan2.children()) == 9
        assert "(Q1∪Q2)@P1" in plan3.render()
        assert "(Q1∪Q2)@P4" in plan3.render()
        assert "⋈(Q1@P2, Q2@P3)" in plan3.render()


class TestFigure5:
    def test_policy_crossover(self, schema):
        from repro.core.algebra import Join, Scan

        q1, q2 = paper_query_pattern(schema).patterns
        plan = Join([Scan((q1,), "P2"), Scan((q2,), "P3")])

        # fast P2—P3 link and slow links to P1: query shipping wins
        stats = Statistics(default_cardinality=1000, join_selectivity=0.0001)
        stats.set_link_cost("P1", "P2", 10.0)
        stats.set_link_cost("P1", "P3", 10.0)
        stats.set_link_cost("P2", "P3", 0.01)
        assignment = assign_sites(plan, "P1", CostModel(stats))
        assert assignment.policy() is ShippingPolicy.QUERY

        # heavy load at P2/P3: data shipping wins
        stats2 = Statistics(default_cardinality=10)
        stats2.set_load("P2", load=100, slots=1)
        stats2.set_load("P3", load=100, slots=1)
        assignment2 = assign_sites(plan, "P1", CostModel(stats2))
        assert assignment2.policy() is ShippingPolicy.DATA


class TestFigure6:
    def test_hybrid_flow(self):
        system = HybridSystem.from_scenario(hybrid_scenario())
        table = system.query("P1", PAPER_QUERY)
        assert len(table) == 6
        kinds = system.network.metrics.messages_by_kind
        assert kinds["RouteRequest"] == 1  # routing exclusively at SP1
        assert kinds["SubPlanPacket"] == 3  # channels to P2, P3, P5


class TestFigure7:
    def test_adhoc_flow(self):
        system = AdhocSystem.from_scenario(adhoc_scenario())
        table = system.query("P1", PAPER_QUERY)
        assert len(table) == 6
        kinds = system.network.metrics.messages_by_kind
        assert kinds["PartialPlan"] == 2  # to P2 and P3
        assert kinds["DelegatedResult"] >= 2  # P2 completes, P3 declines

    def test_plan1_shape_at_root(self, schema):
        """P1's partial plan is exactly the paper's Plan 1."""
        scenario = adhoc_scenario()
        ads = [
            ActiveSchema.from_base(scenario.bases[p], schema, p)
            for p in ("P2", "P3", "P4")
        ]
        pattern = paper_query_pattern(schema)
        annotated = route_query(pattern, ads, schema)
        plan = optimize(build_plan(annotated)).result
        assert plan.render() == "∪(⋈(Q1@P2, Q2@?), ⋈(Q1@P3, Q2@?))"


class TestDistributedAnswerCorrectness:
    """Distributed execution returns exactly the centralised answer."""

    def test_paper_peers(self, schema):
        from repro.rdf import Graph
        from repro.rql import query as local_query
        from repro.peers.base import PeerBase
        from repro.peers.client import ClientPeer
        from repro.peers.simple import SimplePeer
        from repro.net import Network

        bases = paper_peer_bases()
        merged = Graph()
        for graph in bases.values():
            merged.update(graph)
        expected = local_query(PAPER_QUERY, merged, schema).distinct()

        network = Network()
        coordinator = SimplePeer("P1", PeerBase(bases["P1"], schema))
        coordinator.join(network)
        for peer_id in ("P2", "P3", "P4"):
            peer = SimplePeer(peer_id, PeerBase(bases[peer_id], schema))
            peer.join(network)
            coordinator.remember_advertisement(peer.own_advertisement())
        client = ClientPeer("C")
        client.join(network)
        qid = client.submit("P1", PAPER_QUERY)
        network.run()
        assert client.result(qid).table == expected
