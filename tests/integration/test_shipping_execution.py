"""End-to-end execution with cost-model operator placement
(``use_shipping=True``): answers must match the default data-shipping
execution regardless of where joins land."""

import pytest

from repro.systems import AdhocSystem, HybridSystem
from repro.workloads.data_gen import Distribution, generate_bases
from repro.workloads.paper import PAPER_QUERY, adhoc_scenario, paper_peer_bases, paper_schema
from repro.workloads.query_gen import chain_query
from repro.workloads.schema_gen import generate_schema


class TestHybridWithShipping:
    def build(self, use_shipping: bool) -> HybridSystem:
        system = HybridSystem(paper_schema(), use_shipping=use_shipping)
        system.add_super_peer("SP1")
        for peer_id, graph in paper_peer_bases().items():
            system.add_peer(peer_id, graph, "SP1")
        return system

    def test_same_answer_as_data_shipping(self):
        reference = self.build(False).query("P1", PAPER_QUERY)
        shipped = self.build(True).query("P1", PAPER_QUERY)
        assert shipped == reference

    def test_statistics_can_push_joins_remote(self):
        """With costly coordinator links recorded, the join lands at a
        contributing peer; the answer is unchanged."""
        from repro.core import Statistics

        stats = Statistics(default_cardinality=1000, join_selectivity=0.0001)
        for other in ("P2", "P3", "P4"):
            stats.set_link_cost("P1", other, 50.0)
        stats.set_link_cost("P2", "P3", 0.01)
        stats.set_link_cost("P2", "P4", 0.01)
        stats.set_link_cost("P3", "P4", 0.01)
        system = HybridSystem(paper_schema(), use_shipping=True, statistics=stats)
        system.add_super_peer("SP1")
        for peer_id, graph in paper_peer_bases().items():
            system.add_peer(peer_id, graph, "SP1")
        table = system.query("P1", PAPER_QUERY)
        reference = self.build(False).query("P1", PAPER_QUERY)
        assert table == reference

    def test_shipping_with_synthetic_workload(self):
        synth = generate_schema(chain_length=3, refinement_fraction=0.5, seed=6)
        gen = generate_bases(
            synth, [f"P{i}" for i in range(6)], Distribution.MIXED, seed=7
        )

        def run(use_shipping):
            system = HybridSystem(synth.schema, use_shipping=use_shipping)
            system.add_super_peer("SP1")
            for peer_id, graph in gen.bases.items():
                system.add_peer(peer_id, graph, "SP1")
            return system.query("P0", chain_query(synth, 0, 2))

        assert run(True) == run(False)


class TestAdhocWithShipping:
    def test_figure7_with_shipping(self):
        scenario = adhoc_scenario()
        system = AdhocSystem(scenario.schema, use_shipping=True)
        for peer_id in scenario.peers:
            system.add_peer(
                peer_id, scenario.bases[peer_id], scenario.neighbours.get(peer_id, ())
            )
        system.discover_all()
        table = system.query("P1", PAPER_QUERY)
        assert len(table) == 6

    def test_shipping_with_failures(self):
        system = HybridSystem(paper_schema(), use_shipping=True)
        system.add_super_peer("SP1")
        for peer_id, graph in paper_peer_bases().items():
            system.add_peer(peer_id, graph, "SP1")
        system.run()
        system.network.fail_peer("P2")
        table = system.query("P1", PAPER_QUERY)
        assert len(table) == 5  # P2's bridge chains lost, rest answered
