"""Integration tests for the resilience layer under chaos: realistic
(non-omniscient) crashes discovered through timeouts, duplicate
deliveries, lost submits, graceful degradation and seeded replay."""

import pytest

from repro.resilience import (
    CrashEvent,
    FaultPlan,
    LinkPartition,
    ResilienceConfig,
    RetryPolicy,
    run_chaos,
)
from repro.systems import AdhocSystem, HybridSystem
from repro.workloads.data_gen import Distribution, generate_bases
from repro.workloads.query_gen import chain_query
from repro.workloads.schema_gen import generate_schema

SYNTH = generate_schema(chain_length=2, refinement_fraction=0.0, seed=13)
PEERS = [f"P{i}" for i in range(6)]
QUERY = chain_query(SYNTH, 0, 2)


def fast_config(**overrides) -> ResilienceConfig:
    """Default resilience with short deadlines to keep tests quick."""
    options = dict(
        channel_retry=RetryPolicy(max_attempts=3, base_timeout=10.0),
        routing_retry=RetryPolicy(max_attempts=3, base_timeout=10.0),
        client_retry=RetryPolicy(max_attempts=3, base_timeout=80.0),
        delegation_timeout=30.0,
    )
    options.update(overrides)
    return ResilienceConfig(**options)


def hybrid_system(seed=0, distribution=Distribution.HORIZONTAL, config=None):
    gen = generate_bases(
        SYNTH, PEERS, distribution, statements_per_segment=6, seed=13
    )
    system = HybridSystem(SYNTH.schema, seed=seed)
    system.add_super_peer("SP1")
    for peer_id, graph in gen.bases.items():
        system.add_peer(peer_id, graph, "SP1")
    system.run()
    system.enable_resilience(config or fast_config())
    return system


def adhoc_system(seed=0, config=None):
    gen = generate_bases(
        SYNTH, PEERS, Distribution.HORIZONTAL, statements_per_segment=6, seed=13
    )
    system = AdhocSystem(SYNTH.schema, seed=seed)
    for index, peer_id in enumerate(PEERS):
        neighbours = (
            PEERS[(index - 1) % len(PEERS)],
            PEERS[(index + 1) % len(PEERS)],
        )
        system.add_peer(peer_id, gen.bases[peer_id], neighbours)
    system.discover_all()
    system.enable_resilience(config or fast_config())
    return system


class TestCrashDiscoveredByTimeout:
    """Without omniscient bounces the coordinator only learns about a
    dead peer from its own channel deadlines."""

    def test_silent_crash_repaired_by_replan(self):
        system = hybrid_system()
        system.network.install_faults(FaultPlan())  # realistic mode, no faults
        system.network.fail_peer("P3")
        table = system.query("P0", QUERY)
        assert len(table) > 0
        # the repair was observational: retransmits preceded the replan
        assert system.network.metrics.retransmits > 0
        assert system.network.metrics.suspicions > 0

    def test_peer_fails_during_in_progress_replan(self):
        """A second peer dies while the replan triggered by the first
        death is still executing; the bounded budget absorbs both."""
        system = hybrid_system()
        network = system.network
        network.install_faults(FaultPlan())
        network.fail_peer("P3")
        # P4 dies mid-replan: after the first channel deadline (t≈30)
        # has forced the replan but before its channels can finish
        network.call_later(35.0, lambda: network.fail_peer("P4"))
        table = system.query("P0", QUERY)
        assert len(table) > 0
        coordinator = system.peers["P0"]
        assert coordinator._pending == {}  # nothing leaked
        open_destinations = {
            ch.destination for ch in coordinator.channels.open_channels().values()
        }
        assert not ({"P3", "P4"} & open_destinations)


class TestDuplicateDeliveryIdempotence:
    """duplicate_rate=1.0 delivers every message twice; sequence-number
    dedup, result tokens and idempotent submits must keep the answer
    exactly-once correct."""

    def test_hybrid_rows_exact_under_full_duplication(self):
        baseline = hybrid_system().query("P0", QUERY)
        system = hybrid_system()
        system.network.install_faults(FaultPlan(seed=3, duplicate_rate=1.0))
        table = system.query("P0", QUERY)
        assert table == baseline
        assert system.network.metrics.duplicated_messages > 0

    def test_adhoc_rows_exact_under_full_duplication(self):
        baseline = adhoc_system().query("P0", QUERY)
        system = adhoc_system()
        system.network.install_faults(FaultPlan(seed=3, duplicate_rate=1.0))
        table = system.query("P0", QUERY)
        assert table == baseline

    def test_adhoc_duplicated_partial_plan_answered_once(self):
        """A network-duplicated PartialPlan must not double-decrement
        the root's outstanding-branch accounting (each forward token is
        answered at most once)."""
        system = adhoc_system()
        system.network.install_faults(FaultPlan(seed=5, duplicate_rate=1.0))
        root = system.peers["P0"]
        table = system.query("P0", QUERY)
        assert len(table) > 0
        assert root._delegations == {}
        # outstanding counters never went negative into a spurious
        # deepen/fail round: the query is gone from pending exactly once
        assert root._pending == {}


class TestLostMessages:
    def test_lost_submit_recovered_by_client_resubmit(self):
        """The first QuerySubmit vanishes in a partition window; the
        client's resubmit after the window heals the query."""
        system = hybrid_system()
        client = system.add_client("C1")
        plan = FaultPlan(
            partitions=(
                LinkPartition(frozenset({"C1"}), frozenset({"P0"}), 0.0, 40.0),
            )
        )
        system.network.install_faults(plan)
        query_id = client.submit("P0", QUERY)
        system.run()
        result = client.result(query_id)
        assert result is not None and result.error is None
        assert len(result.table) > 0
        assert system.network.metrics.retries > 0

    def test_duplicate_submit_answered_from_completed_cache(self):
        """A resubmit arriving after the answer was already sent gets
        the remembered result, not a second execution."""
        system = hybrid_system()
        client = system.add_client("C1")
        query_id = client.submit("P0", QUERY)
        system.run()
        processed = dict(system.network.metrics.queries_processed)
        first = client.result(query_id)
        # replay the exact submit (a late duplicate delivery)
        from repro.net.message import Message
        from repro.peers.protocol import QuerySubmit

        submit = QuerySubmit(query_id, QUERY, "C1")
        system.network.send(Message("C1", "P0", submit))
        client.results.pop(query_id)
        system.run()
        assert client.result(query_id).table == first.table
        # no second query execution was started
        assert dict(system.network.metrics.queries_processed) == processed


class TestGracefulDegradation:
    def test_partial_answer_with_coverage_when_unrepairable(self):
        """Vertical distribution: the second chain segment lives only
        on P1/P3/P5, so killing all three makes the query unrepairable
        — the root degrades to a coverage-annotated partial answer."""
        system = hybrid_system(distribution=Distribution.VERTICAL)
        system.network.install_faults(FaultPlan())
        client = system.add_client("C1")
        for victim in ("P1", "P3", "P5"):
            system.network.fail_peer(victim)
        query_id = client.submit("P0", QUERY)
        system.run()
        result = client.result(query_id)
        assert result is not None and result.error is None
        assert result.is_partial
        assert len(result.table) > 0
        coverage = result.coverage
        assert not coverage.is_complete
        assert coverage.answered and coverage.unanswered
        assert set(coverage.excluded_peers) >= {"P1", "P3", "P5"}
        assert system.network.metrics.partial_results == 1
        assert system.peers["P0"]._pending == {}

    def test_partial_results_disabled_errors_instead(self):
        config = fast_config(partial_results=False)
        system = hybrid_system(distribution=Distribution.VERTICAL, config=config)
        system.network.install_faults(FaultPlan())
        client = system.add_client("C1")
        for victim in ("P1", "P3", "P5"):
            system.network.fail_peer(victim)
        query_id = client.submit("P0", QUERY)
        system.run()
        result = client.result(query_id)
        assert result is not None
        assert result.error is not None  # seed behaviour: hard failure
        assert result.table is None


class TestSeededReplay:
    def test_same_seed_identical_chaos_digest(self):
        def run(arch):
            system = hybrid_system(seed=2) if arch == "h" else adhoc_system(seed=2)
            plan = FaultPlan(
                seed=9,
                drop_rate=0.12,
                duplicate_rate=0.06,
                jitter=0.5,
                crashes=(CrashEvent(at=5.0, peer_id="P2", recover_at=300.0),),
            )
            return run_chaos(system, [("P0", QUERY)] * 4, plan)

        for arch in ("h", "a"):
            first, second = run(arch), run(arch)
            assert first.digest() == second.digest()
            assert first.answer_ratio >= 0.75

    def test_loss_and_crash_mostly_answered(self):
        system = hybrid_system(seed=4)
        plan = FaultPlan(
            seed=11,
            drop_rate=0.10,
            duplicate_rate=0.05,
            jitter=0.5,
            crashes=(CrashEvent(at=5.0, peer_id="P2", recover_at=400.0),),
        )
        chaos = run_chaos(system, [("P0", QUERY)] * 5, plan)
        assert chaos.answer_ratio >= 0.9
