"""Heterogeneous SONs: relational and XML peers behind virtual views,
queried together with native RDF peers (Section 2.2's virtual scenario
plus the SWIM reformulation role)."""

import pytest

from repro.peers.base import PeerBase
from repro.rvl import parse_view
from repro.systems import HybridSystem
from repro.rdf import Graph, TYPE
from repro.workloads.paper import N1, PAPER_QUERY, DATA, paper_schema
from repro.wrappers import (
    ElementMapping,
    PropertyMapping,
    RelationalPeerMapping,
    RelationalStore,
    XMLElement,
    XMLPeerMapping,
    XMLStore,
)

PREFIX = str(DATA)


@pytest.fixture
def schema():
    return paper_schema()


def relational_prop1_graph(schema):
    """A legacy relational peer exposing prop1 pairs."""
    store = RelationalStore()
    table = store.create_table("links", ["src", "dst"])
    for i in range(3):
        table.insert(f"rx{i}", f"shared{i}")
    mapping = RelationalPeerMapping(
        store, schema, [PropertyMapping("links", "src", "dst", N1.prop1, PREFIX)]
    )
    return mapping.virtual_graph()


def xml_prop2_graph(schema):
    """A legacy XML peer exposing prop2 pairs continuing the chain."""
    store = XMLStore()
    root = XMLElement("doc")
    for i in range(3):
        root.append(XMLElement("link", {"id": f"shared{i}", "next": f"xz{i}"}))
    store.add_document(root)
    mapping = XMLPeerMapping(
        store,
        schema,
        [
            ElementMapping(
                path=("doc", "link"),
                subject_attribute="id",
                property=N1.prop2,
                uri_prefix=PREFIX,
                object_attribute="next",
            )
        ],
    )
    return mapping.virtual_graph()


class TestHeterogeneousSON:
    def test_relational_and_xml_peers_answer_together(self, schema):
        system = HybridSystem(schema)
        system.add_super_peer("SP1")
        system.add_peer("REL", relational_prop1_graph(schema), "SP1")
        system.add_peer("XML", xml_prop2_graph(schema), "SP1")
        system.add_peer("ASK", Graph(), "SP1")
        table = system.query("ASK", PAPER_QUERY)
        assert len(table) == 3  # rx_i joins shared_i -> xz_i across stores

    def test_mixed_with_native_rdf_peer(self, schema):
        native = Graph()
        x, y, z = DATA.nx, DATA.ny, DATA.nz
        native.add(x, TYPE, N1.C1)
        native.add(y, TYPE, N1.C2)
        native.add(x, N1.prop1, y)
        native.add(y, N1.prop2, z)
        system = HybridSystem(schema)
        system.add_super_peer("SP1")
        system.add_peer("REL", relational_prop1_graph(schema), "SP1")
        system.add_peer("XML", xml_prop2_graph(schema), "SP1")
        system.add_peer("RDF", native, "SP1")
        table = system.query("RDF", PAPER_QUERY)
        assert len(table) == 4  # 3 cross-store + 1 native chain


class TestVirtualViewAdvertisement:
    def test_view_defined_base_advertises_view_footprint(self, schema):
        """A peer whose base is defined by an RVL view advertises the
        view's intensional footprint even while the base is empty."""
        view_text = (
            f"VIEW n1:prop4(X, Y) FROM {{X}} n1:prop4 {{Y}} "
            f"USING NAMESPACE n1 = &{N1.uri}&"
        )
        base = PeerBase(Graph(), schema, views=[parse_view(view_text)])
        advertisement = base.active_schema("V")
        assert advertisement.covers_property(N1.prop4)
        assert len(base.graph) == 0
