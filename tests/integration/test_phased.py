"""Tests for the phased execution policy vs the ubQL discard policy.

The paper (Section 2.5) contrasts two ways of handling partial results
when a running plan changes: ubQL discards everything (SQPeer's
choice), [Ives02] enters a new phase and reuses completed subresults.
Both are implemented; these tests check the phased variant reuses
shipped scans after a failure while producing the same answers.
"""

import pytest

from repro.systems import HybridSystem
from repro.workloads.data_gen import Distribution, generate_bases
from repro.workloads.query_gen import chain_query
from repro.workloads.schema_gen import generate_schema


def build(failure_policy: str, seed: int = 0):
    synth = generate_schema(chain_length=2, refinement_fraction=0.0, seed=seed)
    peers = [f"P{i}" for i in range(6)]
    gen = generate_bases(
        synth, peers, Distribution.HORIZONTAL, statements_per_segment=8, seed=seed
    )
    system = HybridSystem(synth.schema, failure_policy=failure_policy)
    system.add_super_peer("SP1")
    for peer_id, graph in gen.bases.items():
        system.add_peer(peer_id, graph, "SP1")
    system.run()
    return system, synth


class TestPolicies:
    def test_invalid_policy_rejected(self):
        from repro.peers.simple import SimplePeer

        with pytest.raises(ValueError):
            SimplePeer("X", failure_policy="yolo")

    def test_same_answers_without_failures(self):
        discard_system, synth = build("discard")
        phased_system, _ = build("phased")
        text = chain_query(synth, 0, 2)
        assert discard_system.query("P0", text) == phased_system.query("P0", text)

    def test_same_answers_under_failure(self):
        discard_system, synth = build("discard", seed=1)
        phased_system, _ = build("phased", seed=1)
        text = chain_query(synth, 0, 2)
        discard_system.network.fail_peer("P3")
        phased_system.network.fail_peer("P3")
        assert discard_system.query("P0", text) == phased_system.query("P0", text)

    def test_phased_reuses_subresults(self):
        """After a failure, the phased replan answers cached scans
        locally instead of re-shipping them."""
        phased_system, synth = build("phased", seed=2)
        text = chain_query(synth, 0, 2)
        phased_system.network.fail_peer("P2")
        phased_system.query("P0", text)
        coordinator = phased_system.peers["P0"]
        # reuse accounting comes from completed queries' pending records:
        # run a second failing scenario and inspect metrics instead
        kinds = phased_system.network.metrics.messages_by_kind

        discard_system, _ = build("discard", seed=2)
        discard_system.network.fail_peer("P2")
        discard_system.query("P0", text)
        discard_kinds = discard_system.network.metrics.messages_by_kind
        # the phased run ships strictly fewer subplans on the retry
        assert kinds["SubPlanPacket"] < discard_kinds["SubPlanPacket"]

    def test_discard_reships_everything(self):
        discard_system, synth = build("discard", seed=3)
        text = chain_query(synth, 0, 2)
        baseline_system, _ = build("discard", seed=3)
        baseline_system.query("P0", text)
        baseline = baseline_system.network.metrics.messages_by_kind["SubPlanPacket"]
        discard_system.network.fail_peer("P4")
        discard_system.query("P0", text)
        retried = discard_system.network.metrics.messages_by_kind["SubPlanPacket"]
        assert retried > baseline  # the failed attempt's work repeats
