"""Protocol robustness under arbitrary link latencies.

The event-driven protocol must not depend on message arrival order:
whatever latencies links have, every query returns exactly the
centralised answer.
"""

import random

import pytest

from repro.rdf import Graph
from repro.rql import query as local_query
from repro.systems import AdhocSystem, HybridSystem
from repro.workloads.paper import (
    PAPER_QUERY,
    adhoc_scenario,
    paper_peer_bases,
    paper_schema,
)


def centralised_answer():
    schema = paper_schema()
    merged = Graph()
    for graph in paper_peer_bases().values():
        merged.update(graph)
    return local_query(PAPER_QUERY, merged, schema).distinct()


def scramble_links(network, seed):
    rng = random.Random(seed)
    ids = network.peer_ids()
    for i, a in enumerate(ids):
        for b in ids[i + 1 :]:
            network.set_link(a, b, latency=rng.uniform(0.1, 30.0))


@pytest.mark.parametrize("seed", range(8))
class TestHybridUnderRandomLatency:
    def test_answer_invariant(self, seed):
        system = HybridSystem(paper_schema())
        system.add_super_peer("SP1")
        for peer_id, graph in paper_peer_bases().items():
            system.add_peer(peer_id, graph, "SP1")
        system.add_client("C")
        scramble_links(system.network, seed)
        table = system.query("P1", PAPER_QUERY)
        assert table == centralised_answer()


@pytest.mark.parametrize("seed", range(8))
class TestAdhocUnderRandomLatency:
    def test_answer_invariant(self, seed):
        system = AdhocSystem.from_scenario(adhoc_scenario())
        system.add_client("C")
        scramble_links(system.network, seed)
        table = system.query("P1", PAPER_QUERY)
        # ad-hoc answers are sound; for this scenario they are also
        # complete (P2 reaches everything through P5)
        assert len(table) == 6


class TestSlowRoutingPhase:
    def test_late_route_reply_still_answers(self):
        """An extremely slow super-peer link delays but never breaks
        the two-phase flow."""
        system = HybridSystem(paper_schema())
        system.add_super_peer("SP1")
        for peer_id, graph in paper_peer_bases().items():
            system.add_peer(peer_id, graph, "SP1")
        for peer_id in list(system.peers):
            system.network.set_link(peer_id, "SP1", latency=500.0)
        table = system.query("P1", PAPER_QUERY)
        assert len(table) == 9
        assert system.network.now > 1000.0  # it genuinely waited
