"""Tests for ubQL "changing plan" packets (Section 2.4): a replanning
root tells the destinations of discarded channels to terminate their
on-going computation."""

import pytest

from repro.systems import HybridSystem
from repro.workloads.paper import PAPER_QUERY, paper_peer_bases, paper_schema


def build_system(monitoring: bool = True) -> HybridSystem:
    system = HybridSystem(paper_schema())
    system.add_super_peer("SP1")
    for peer_id, graph in paper_peer_bases().items():
        system.add_peer(peer_id, graph, "SP1")
    for peer in system.peers.values():
        if monitoring:
            peer.monitor_channels = True
            peer.monitor_interval = 5.0
    return system


class TestChangePlanPackets:
    def test_sent_on_stall_replan(self):
        """When the watchdog replans away from a stalled streamer, the
        healthy channels of the abandoned attempt get ChangePlanPackets."""
        system = build_system()
        slowpoke = system.peers["P2"]
        slowpoke.stream_chunk_rows = 1
        slowpoke.stream_interval = 1e6
        table = system.query("P1", PAPER_QUERY)
        kinds = system.network.metrics.messages_by_kind
        assert kinds.get("ChangePlanPacket", 0) >= 1
        assert len(table) == 5

    def test_cancelled_stream_stops_sending(self):
        """The stalled streamer's remaining chunks are never sent after
        the cancel arrives."""
        system = build_system()
        for peer in system.peers.values():
            peer.stream_chunk_rows = 1
            peer.stream_interval = 30.0  # slow enough to be stalled
        system.query("P1", PAPER_QUERY)
        data_packets = system.network.metrics.messages_by_kind["DataPacket"]

        # without cancellation the streams would run to completion; with
        # it, a bounded number of chunks crosses the wire.  Every result
        # row as a chunk plus retries would exceed this bound otherwise.
        assert data_packets < 60

    def test_no_change_plan_without_failures(self):
        system = build_system(monitoring=False)
        system.query("P1", PAPER_QUERY)
        kinds = system.network.metrics.messages_by_kind
        assert kinds.get("ChangePlanPacket", 0) == 0

    def test_crash_replan_notifies_survivors(self):
        """A crash-triggered replan also cancels the surviving open
        channels of the failed attempt."""
        system = build_system(monitoring=False)
        for peer in system.peers.values():
            peer.stream_chunk_rows = 1
            peer.stream_interval = 3.0
        system.run()
        system.network.fail_peer("P2")
        table = system.query("P1", PAPER_QUERY)
        assert len(table) == 5
        kinds = system.network.metrics.messages_by_kind
        assert kinds.get("ChangePlanPacket", 0) >= 1
