"""Tests for peers belonging to several SONs (paper Section 3.1:
"a simple-peer can be connected to multiple super-peers when it
provides descriptions conforming to more than one schema")."""

import pytest

from repro.rdf import Graph, Namespace, Schema, TYPE
from repro.systems import HybridSystem
from repro.workloads.paper import DATA, N1, PAPER_QUERY, paper_schema

# a second, unrelated community schema (a "music" SON)
MU = Namespace("http://ics.forth.gr/sqpeer/music#")


def music_schema() -> Schema:
    schema = Schema(MU, "music")
    for name in ("Artist", "Album"):
        schema.add_class(MU[name])
    schema.add_property(MU.recorded, MU.Artist, MU.Album)
    return schema


MUSIC_QUERY = (
    "SELECT A, B FROM {A} mu:recorded {B} "
    f"USING NAMESPACE mu = &{MU.uri}&"
)


@pytest.fixture
def system():
    """SP-N1 serves the paper SON, SP-MU serves the music SON; the
    'hybrid' peer is a member of both."""
    n1_schema = paper_schema()
    system = HybridSystem(n1_schema)
    system.add_super_peer("SP-N1")
    system.add_super_peer("SP-MU", schemas=[music_schema()])

    n1_graph = Graph()
    n1_graph.add(DATA.mx, TYPE, N1.C1)
    n1_graph.add(DATA.my, TYPE, N1.C2)
    n1_graph.add(DATA.mx, N1.prop1, DATA.my)
    n1_graph.add(DATA.my, N1.prop2, DATA.mz)
    n1_graph.add(DATA.mz, TYPE, N1.C3)

    music_graph = Graph()
    music_graph.add(DATA.artist1, TYPE, MU.Artist)
    music_graph.add(DATA.album1, TYPE, MU.Album)
    music_graph.add(DATA.artist1, MU.recorded, DATA.album1)

    system.add_peer(
        "hybrid",
        n1_graph,
        "SP-N1",
        secondary=[(music_graph, music_schema(), "SP-MU")],
    )
    system.add_peer("plain", Graph(), "SP-N1")
    return system


class TestMultiSONMembership:
    def test_advertised_to_both_super_peers(self, system):
        system.run()
        assert "hybrid" in system.super_peers["SP-N1"].cluster(N1.uri)
        assert "hybrid" in system.super_peers["SP-MU"].cluster(MU.uri)

    def test_not_cross_registered(self, system):
        system.run()
        assert "hybrid" not in system.super_peers["SP-MU"].cluster(N1.uri)
        assert "hybrid" not in system.super_peers["SP-N1"].cluster(MU.uri)

    def test_answers_primary_schema_query(self, system):
        table = system.query("plain", PAPER_QUERY)
        assert len(table) == 1

    def test_answers_secondary_schema_query(self, system):
        """The coordinator parses the music query against the peer's
        secondary schema and routes it via SP-MU."""
        table = system.query("hybrid", MUSIC_QUERY)
        assert len(table) == 1
        assert table.rows[0][0].local_name == "artist1"

    def test_secondary_query_via_foreign_peer_uses_backbone(self, system):
        """'plain' speaks only n1; it cannot even parse the music
        query — the submission fails with a schema error."""
        from repro.errors import PeerError

        with pytest.raises(PeerError):
            system.query("plain", MUSIC_QUERY)

    def test_departure_clears_both_sons(self, system):
        system.run()
        system.peers["hybrid"].leave()
        system.run()
        assert "hybrid" not in system.super_peers["SP-N1"].cluster(N1.uri)
        assert "hybrid" not in system.super_peers["SP-MU"].cluster(MU.uri)
