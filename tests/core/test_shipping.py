"""Tests for data/query/hybrid shipping decisions (paper Figure 5)."""

import pytest

from repro.core import CostModel, Statistics, assign_sites, compare_policies
from repro.core.algebra import Join, Scan, Union
from repro.core.shipping import ShippingPolicy
from repro.workloads.paper import N1, paper_query_pattern, paper_schema


@pytest.fixture
def patterns():
    return paper_query_pattern(paper_schema()).patterns


@pytest.fixture
def figure5_plan(patterns):
    """P1 coordinates; Q2 answered by P2, Q3 (modelled by the second
    pattern at P3) joins with it — the Figure 5 set-up."""
    q1, q2 = patterns
    return Join([Scan((q1,), "P2"), Scan((q2,), "P3")])


class TestAssignment:
    def test_all_local_stays_at_coordinator(self, patterns):
        q1, q2 = patterns
        plan = Join([Scan((q1,), "P1"), Scan((q2,), "P1")])
        assignment = assign_sites(plan, "P1")
        assert assignment.policy() is ShippingPolicy.DATA
        assert assignment.site_of(()) == "P1"

    def test_scan_sites_are_their_peers(self, figure5_plan):
        assignment = assign_sites(figure5_plan, "P1")
        assert assignment.site_of((0,)) == "P2"
        assert assignment.site_of((1,)) == "P3"

    def test_cheap_remote_link_pushes_join(self, figure5_plan):
        """Figure 5 right: P2—P3 fast, P1—P3 slow → query shipping via P2."""
        stats = Statistics(default_cardinality=1000)
        stats.set_link_cost("P1", "P3", 50.0)
        stats.set_link_cost("P1", "P2", 1.0)
        stats.set_link_cost("P2", "P3", 0.01)
        stats.join_selectivity = 0.0001  # small join result: worth pushing
        assignment = assign_sites(figure5_plan, "P1", CostModel(stats))
        assert assignment.site_of(()) in ("P2", "P3")
        assert assignment.policy() is ShippingPolicy.QUERY

    def test_loaded_peer_keeps_join_at_coordinator(self, figure5_plan):
        """Figure 5 left: P2 heavily loaded → data shipping at P1."""
        stats = Statistics(default_cardinality=10)
        stats.set_load("P2", load=100, slots=1)
        stats.set_load("P3", load=100, slots=1)
        assignment = assign_sites(figure5_plan, "P1", CostModel(stats))
        assert assignment.site_of(()) == "P1"
        assert assignment.policy() is ShippingPolicy.DATA

    def test_describe_lists_every_node(self, figure5_plan):
        assignment = assign_sites(figure5_plan, "P1")
        description = assignment.describe()
        assert "root" in description
        assert description.count("@") >= 3


class TestComparePolicies:
    def test_returns_all_three(self, figure5_plan):
        out = compare_policies(figure5_plan, "P1")
        assert set(out) == {
            ShippingPolicy.DATA,
            ShippingPolicy.QUERY,
            ShippingPolicy.HYBRID,
        }

    def test_hybrid_never_worse(self, figure5_plan):
        """The optimal assignment is at most the best pure policy."""
        stats = Statistics(default_cardinality=500)
        stats.set_link_cost("P1", "P3", 10.0)
        out = compare_policies(figure5_plan, "P1", CostModel(stats))
        best_pure = min(
            out[ShippingPolicy.DATA].total, out[ShippingPolicy.QUERY].total
        )
        assert out[ShippingPolicy.HYBRID].total <= best_pure + 1e-6

    def test_crossover_with_link_cost(self, figure5_plan):
        """Sweeping the P1—P3 link cost flips the winning policy."""
        def winner(link_cost):
            stats = Statistics(default_cardinality=1000, join_selectivity=0.0001)
            stats.set_link_cost("P1", "P2", link_cost)
            stats.set_link_cost("P1", "P3", link_cost)
            stats.set_link_cost("P2", "P3", 0.01)
            out = compare_policies(figure5_plan, "P1", CostModel(stats))
            return min(
                (ShippingPolicy.DATA, ShippingPolicy.QUERY),
                key=lambda p: out[p].total,
            )

        assert winner(0.001) is ShippingPolicy.DATA
        assert winner(100.0) is ShippingPolicy.QUERY

    def test_mixed_plan_can_be_hybrid(self, patterns):
        q1, q2 = patterns
        plan = Join([
            Union([Scan((q1,), "P2"), Scan((q1,), "P4")]),
            Scan((q2,), "P3"),
        ])
        stats = Statistics(default_cardinality=100)
        stats.set_link_cost("P1", "P3", 30.0)
        stats.set_link_cost("P2", "P3", 0.01)
        assignment = assign_sites(plan, "P1", CostModel(stats))
        assert assignment.policy() in (
            ShippingPolicy.HYBRID,
            ShippingPolicy.QUERY,
            ShippingPolicy.DATA,
        )
