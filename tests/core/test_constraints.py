"""Tests for Top-N / broadcast constraints (paper Section 5 future work)."""

import pytest

from repro.core import (
    QueryConstraints,
    Statistics,
    UNCONSTRAINED,
    apply_peer_bound,
    route_query,
)
from repro.systems import HybridSystem
from repro.workloads.paper import (
    N1,
    PAPER_QUERY,
    paper_active_schemas,
    paper_peer_bases,
    paper_query_pattern,
    paper_schema,
)


@pytest.fixture
def schema():
    return paper_schema()


@pytest.fixture
def annotated(schema):
    pattern = paper_query_pattern(schema)
    return route_query(pattern, paper_active_schemas(schema).values(), schema)


class TestQueryConstraints:
    def test_unconstrained(self):
        assert UNCONSTRAINED.is_unconstrained()
        assert QueryConstraints(max_peers_per_pattern=2).is_unconstrained() is False

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryConstraints(max_peers_per_pattern=0)
        with pytest.raises(ValueError):
            QueryConstraints(max_results=0)

    def test_immutable(self):
        constraints = QueryConstraints(max_results=5)
        with pytest.raises(AttributeError):
            constraints.max_results = 10

    def test_equality(self):
        assert QueryConstraints(2, 5) == QueryConstraints(2, 5)
        assert QueryConstraints(2, 5) != QueryConstraints(2, 6)


class TestPeerBound:
    def test_no_bound_is_identity(self, annotated):
        trimmed = apply_peer_bound(annotated, UNCONSTRAINED)
        for pattern in annotated.query_pattern:
            assert trimmed.peers_for(pattern) == annotated.peers_for(pattern)

    def test_bound_limits_each_pattern(self, annotated):
        trimmed = apply_peer_bound(annotated, QueryConstraints(max_peers_per_pattern=2))
        for pattern in annotated.query_pattern:
            assert len(trimmed.peers_for(pattern)) == 2

    def test_exact_matches_preferred(self, annotated):
        """P4 matches Q1 only via subsumption: with bound 2 the exact
        peers P1 and P2 win."""
        trimmed = apply_peer_bound(annotated, QueryConstraints(max_peers_per_pattern=2))
        q1 = annotated.query_pattern.root
        assert set(trimmed.peers_for(q1)) == {"P1", "P2"}

    def test_statistics_break_ties(self, annotated):
        stats = Statistics()
        stats.set_cardinality("P2", N1.prop1, 1000)
        stats.set_cardinality("P1", N1.prop1, 1)
        trimmed = apply_peer_bound(
            annotated, QueryConstraints(max_peers_per_pattern=1), stats
        )
        q1 = annotated.query_pattern.root
        assert trimmed.peers_for(q1) == ("P2",)  # biggest contributor first

    def test_bound_of_one_still_covers(self, annotated):
        trimmed = apply_peer_bound(annotated, QueryConstraints(max_peers_per_pattern=1))
        assert trimmed.is_fully_annotated()


class TestEndToEnd:
    @pytest.fixture
    def system(self, schema):
        system = HybridSystem(schema)
        system.add_super_peer("SP1")
        for peer_id, graph in paper_peer_bases().items():
            system.add_peer(peer_id, graph, "SP1")
        return system

    def test_unbounded_full_answer(self, system):
        assert len(system.query("P1", PAPER_QUERY)) == 9

    def test_limit_truncates(self, system):
        table = system.query("P1", PAPER_QUERY, limit=4)
        assert len(table) == 4

    def test_limit_larger_than_answer(self, system):
        table = system.query("P1", PAPER_QUERY, limit=100)
        assert len(table) == 9

    def test_max_peers_trades_completeness_for_load(self, schema):
        def run(max_peers):
            system = HybridSystem(schema)
            system.add_super_peer("SP1")
            for peer_id, graph in paper_peer_bases().items():
                system.add_peer(peer_id, graph, "SP1")
            table = system.query("P1", PAPER_QUERY, max_peers=max_peers)
            return len(table), system.network.metrics.messages_total

        rows_bounded, messages_bounded = run(1)
        rows_full, messages_full = run(None)
        assert rows_bounded <= rows_full
        assert messages_bounded <= messages_full

    def test_bounded_answer_is_sound(self, system):
        full = system.query("P1", PAPER_QUERY)
        bounded = system.query("P1", PAPER_QUERY, max_peers=2)
        full_rows = {tuple(t.n3() for t in row) for row in full.rows}
        bounded_rows = {tuple(t.n3() for t in row) for row in bounded.rows}
        assert bounded_rows <= full_rows
