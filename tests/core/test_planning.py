"""Tests for the Query-Processing Algorithm (paper Section 2.4, Figure 3)."""

import pytest

from repro.core import build_plan, plan_is_executable, route_query
from repro.core.algebra import Hole, Join, Scan, Union
from repro.rql.pattern import pattern_from_text
from repro.workloads.paper import (
    N1,
    PAPER_QUERY,
    paper_active_schemas,
    paper_query_pattern,
    paper_schema,
)


@pytest.fixture
def schema():
    return paper_schema()


@pytest.fixture
def pattern(schema):
    return paper_query_pattern(schema)


@pytest.fixture
def advertisements(schema):
    return paper_active_schemas(schema)


class TestFigure3:
    def test_paper_plan_shape(self, schema, pattern, advertisements):
        """build_plan reproduces Figure 3's Plan 1 exactly."""
        annotated = route_query(pattern, advertisements.values(), schema)
        plan = build_plan(annotated)
        assert plan.render() == (
            "⋈(∪(Q1@P1, Q1@P2, Q1@P4), ∪(Q2@P1, Q2@P3, Q2@P4))"
        )

    def test_horizontal_distribution_is_union(self, schema, pattern, advertisements):
        annotated = route_query(pattern, advertisements.values(), schema)
        plan = build_plan(annotated)
        assert isinstance(plan, Join)
        assert all(isinstance(c, Union) for c in plan.children())

    def test_plan_is_executable(self, schema, pattern, advertisements):
        annotated = route_query(pattern, advertisements.values(), schema)
        assert plan_is_executable(build_plan(annotated))


class TestHoles:
    def test_uncovered_pattern_becomes_hole(self, schema, pattern, advertisements):
        """Figure 7's Plan 1: no peer for Q2 yields Q2@?."""
        annotated = route_query(pattern, [advertisements["P2"]], schema)
        plan = build_plan(annotated)
        assert not plan.is_complete()
        assert any(isinstance(n, Hole) for n in plan.walk())
        assert plan.render() == "⋈(Q1@P2, Q2@?)"

    def test_all_uncovered(self, schema, pattern):
        annotated = route_query(pattern, [], schema)
        plan = build_plan(annotated)
        assert len(plan.holes()) == 2


class TestShapes:
    def test_single_pattern_single_peer_is_scan(self, schema, advertisements):
        single = pattern_from_text(
            f"SELECT X FROM {{X}} n1:prop2 {{Y}} USING NAMESPACE n1 = &{N1.uri}&",
            schema,
        )
        annotated = route_query(single, [advertisements["P3"]], schema)
        plan = build_plan(annotated)
        assert isinstance(plan, Scan)
        assert plan.render() == "Q1@P3"

    def test_single_pattern_many_peers_is_union(self, schema, advertisements):
        single = pattern_from_text(
            f"SELECT X FROM {{X}} n1:prop2 {{Y}} USING NAMESPACE n1 = &{N1.uri}&",
            schema,
        )
        annotated = route_query(single, advertisements.values(), schema)
        plan = build_plan(annotated)
        assert isinstance(plan, Union)
        assert len(plan.children()) == 3  # P1, P3, P4

    def test_three_hop_chain_nests_joins(self, schema, advertisements):
        text = (
            f"SELECT X FROM {{X}} n1:prop1 {{Y}}, {{Y}} n1:prop2 {{Z}}, "
            f"{{Z}} n1:prop3 {{W}} USING NAMESPACE n1 = &{N1.uri}&"
        )
        chain = pattern_from_text(text, schema)
        annotated = route_query(chain, advertisements.values(), schema)
        plan = build_plan(annotated)
        # Q3 (prop3) has no peer: the plan carries a hole at depth 2
        assert "Q3@?" in plan.render()

    def test_every_annotated_peer_appears(self, schema, pattern, advertisements):
        annotated = route_query(pattern, advertisements.values(), schema)
        plan = build_plan(annotated)
        assert plan.peers() == {"P1", "P2", "P3", "P4"}

    def test_deterministic_order(self, schema, pattern, advertisements):
        annotated = route_query(pattern, advertisements.values(), schema)
        assert build_plan(annotated).render() == build_plan(annotated).render()
