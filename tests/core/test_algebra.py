"""Tests for the plan algebra."""

import pytest

from repro.core.algebra import (
    Hole,
    Join,
    Scan,
    Union,
    count_scans,
    depth,
    flatten,
    join_of,
    substitute_hole,
    union_of,
)
from repro.errors import PlanningError
from repro.workloads.paper import paper_query_pattern, paper_schema


@pytest.fixture
def patterns():
    return paper_query_pattern(paper_schema()).patterns


@pytest.fixture
def q1(patterns):
    return patterns[0]


@pytest.fixture
def q2(patterns):
    return patterns[1]


class TestLeaves:
    def test_scan_render(self, q1):
        assert Scan((q1,), "P2").render() == "Q1@P2"

    def test_composite_scan_render(self, q1, q2):
        assert Scan((q1, q2), "P1").render() == "(Q1∪Q2)@P1"

    def test_scan_requires_patterns(self):
        with pytest.raises(PlanningError):
            Scan((), "P1")

    def test_scan_requires_peer(self, q1):
        with pytest.raises(PlanningError):
            Scan((q1,), "")

    def test_hole_render(self, q2):
        assert Hole(q2).render() == "Q2@?"

    def test_hole_is_incomplete(self, q2):
        assert not Hole(q2).is_complete()
        assert Hole(q2).holes() == (Hole(q2),)

    def test_scan_is_complete(self, q1):
        assert Scan((q1,), "P1").is_complete()

    def test_value_equality(self, q1):
        assert Scan((q1,), "P1") == Scan((q1,), "P1")
        assert Scan((q1,), "P1") != Scan((q1,), "P2")
        assert hash(Scan((q1,), "P1")) == hash(Scan((q1,), "P1"))


class TestInnerNodes:
    def test_paper_plan_render(self, q1, q2):
        plan = Join([
            Union([Scan((q1,), "P1"), Scan((q1,), "P2"), Scan((q1,), "P4")]),
            Union([Scan((q2,), "P1"), Scan((q2,), "P3"), Scan((q2,), "P4")]),
        ])
        assert plan.render() == (
            "⋈(∪(Q1@P1, Q1@P2, Q1@P4), ∪(Q2@P1, Q2@P3, Q2@P4))"
        )

    def test_peers_collected(self, q1, q2):
        plan = Join([Scan((q1,), "P1"), Scan((q2,), "P3")])
        assert plan.peers() == {"P1", "P3"}

    def test_patterns_collected(self, q1, q2):
        plan = Join([Scan((q1,), "P1"), Scan((q2,), "P3")])
        assert plan.patterns() == (q1, q2)

    def test_variables(self, q1, q2):
        plan = Join([Scan((q1,), "P1"), Scan((q2,), "P3")])
        assert plan.variables() == ("X", "Y", "Z")

    def test_walk_preorder(self, q1, q2):
        plan = Join([Scan((q1,), "P1"), Scan((q2,), "P3")])
        kinds = [type(n).__name__ for n in plan.walk()]
        assert kinds == ["Join", "Scan", "Scan"]

    def test_empty_inner_rejected(self):
        with pytest.raises(PlanningError):
            Join([])

    def test_non_plan_child_rejected(self, q1):
        with pytest.raises(PlanningError):
            Join([Scan((q1,), "P1"), "nope"])


class TestHelpers:
    def test_union_of_collapses_singleton(self, q1):
        scan = Scan((q1,), "P1")
        assert union_of([scan]) is scan
        assert isinstance(union_of([scan, scan]), Union)

    def test_join_of_collapses_singleton(self, q1):
        scan = Scan((q1,), "P1")
        assert join_of([scan]) is scan

    def test_flatten_nested_joins(self, q1, q2):
        nested = Join([Join([Scan((q1,), "P1"), Scan((q2,), "P2")]), Scan((q2,), "P3")])
        flat = flatten(nested)
        assert isinstance(flat, Join)
        assert len(flat.children()) == 3

    def test_flatten_nested_unions(self, q1):
        nested = Union([Union([Scan((q1,), "P1"), Scan((q1,), "P2")]), Scan((q1,), "P3")])
        assert len(flatten(nested).children()) == 3

    def test_flatten_preserves_mixed(self, q1, q2):
        plan = Join([Union([Scan((q1,), "P1"), Scan((q1,), "P2")]), Scan((q2,), "P3")])
        flat = flatten(plan)
        assert isinstance(flat.children()[0], Union)

    def test_substitute_hole(self, q1, q2):
        hole = Hole(q2)
        plan = Join([Scan((q1,), "P1"), hole])
        filled = substitute_hole(plan, hole, Scan((q2,), "P5"))
        assert filled.is_complete()
        assert "Q2@P5" in filled.render()

    def test_substitute_leaves_other_nodes(self, q1, q2):
        hole = Hole(q2)
        plan = Join([Scan((q1,), "P1"), hole])
        filled = substitute_hole(plan, hole, Scan((q2,), "P5"))
        assert "Q1@P1" in filled.render()

    def test_count_scans(self, q1, q2):
        plan = Join([
            Union([Scan((q1,), "P1"), Scan((q1,), "P2")]),
            Scan((q2,), "P3"),
        ])
        assert count_scans(plan) == 3

    def test_depth(self, q1, q2):
        plan = Join([Union([Scan((q1,), "P1"), Scan((q1,), "P2")]), Scan((q2,), "P3")])
        assert depth(plan) == 3
        assert depth(Scan((q1,), "P1")) == 1
