"""Tests for statistics and the cost model."""

import pytest

from repro.core import CostModel, Statistics, build_plan, route_query
from repro.core.algebra import Hole, Join, Scan, Union
from repro.workloads.paper import (
    N1,
    paper_active_schemas,
    paper_query_pattern,
    paper_schema,
)


@pytest.fixture
def schema():
    return paper_schema()


@pytest.fixture
def patterns(schema):
    return paper_query_pattern(schema).patterns


@pytest.fixture
def stats():
    s = Statistics(default_cardinality=100, join_selectivity=0.01)
    s.set_cardinality("P1", N1.prop1, 50)
    s.set_cardinality("P2", N1.prop1, 200)
    s.set_link_cost("P1", "P2", 2.0)
    s.set_load("P2", load=4, slots=2)
    return s


class TestStatistics:
    def test_recorded_cardinality(self, stats):
        assert stats.cardinality("P1", N1.prop1) == 50

    def test_default_cardinality(self, stats):
        assert stats.cardinality("P9", N1.prop1) == 100

    def test_link_cost_symmetric(self, stats):
        assert stats.link_cost("P1", "P2") == 2.0
        assert stats.link_cost("P2", "P1") == 2.0

    def test_self_link_free(self, stats):
        assert stats.link_cost("P1", "P1") == 0.0

    def test_default_link_cost(self, stats):
        assert stats.link_cost("P1", "P9") == 1.0

    def test_load_factor(self, stats):
        assert stats.load_factor("P2") == 3.0  # 1 + 4/2
        assert stats.load_factor("P9") == 1.0

    def test_known_peers(self, stats):
        assert "P1" in stats.known_peers()
        assert "P2" in stats.known_peers()


class TestCardinalityEstimation:
    def test_scan(self, stats, patterns):
        model = CostModel(stats)
        assert model.cardinality(Scan((patterns[0],), "P1")) == 50

    def test_composite_scan_applies_selectivity(self, stats, patterns):
        model = CostModel(stats)
        composite = Scan((patterns[0], patterns[1]), "P1")
        assert model.cardinality(composite) == pytest.approx(50 * 100 * 0.01)

    def test_union_sums(self, stats, patterns):
        model = CostModel(stats)
        union = Union([Scan((patterns[0],), "P1"), Scan((patterns[0],), "P2")])
        assert model.cardinality(union) == 250

    def test_join_scales_by_selectivity(self, stats, patterns):
        model = CostModel(stats)
        join = Join([Scan((patterns[0],), "P1"), Scan((patterns[1],), "P3")])
        assert model.cardinality(join) == pytest.approx(50 * 100 * 0.01)

    def test_hole_is_zero(self, patterns):
        assert CostModel().cardinality(Hole(patterns[0])) == 0.0


class TestPlanCost:
    def test_local_scan_ships_nothing(self, stats, patterns):
        model = CostModel(stats)
        estimate = model.plan_cost(Scan((patterns[0],), "P1"), "P1")
        assert estimate.bytes_shipped > 0  # payload accounted
        # but time has no transfer component (link cost 0)
        assert estimate.time < 1.0

    def test_remote_scan_costs_more(self, stats, patterns):
        model = CostModel(stats)
        local = model.plan_cost(Scan((patterns[0],), "P1"), "P1")
        remote = model.plan_cost(Scan((patterns[0],), "P1"), "P2")
        assert remote.time > local.time

    def test_bigger_plan_more_messages(self, schema, stats):
        model = CostModel(stats)
        pattern = paper_query_pattern(schema)
        ads = paper_active_schemas(schema)
        plan = build_plan(route_query(pattern, ads.values(), schema))
        estimate = model.plan_cost(plan, "P1")
        assert estimate.messages == 12  # 6 scans x 2

    def test_intermediate_rows(self, stats, patterns):
        model = CostModel(stats)
        plan = Union([Scan((patterns[0],), "P1"), Scan((patterns[0],), "P2")])
        assert model.intermediate_result_rows(plan) == 250

    def test_estimate_total_monotone_in_time(self):
        from repro.core.cost import CostEstimate

        fast = CostEstimate(100.0, 2, 1.0)
        slow = CostEstimate(100.0, 2, 9.0)
        assert slow.total > fast.total
