"""Tests for compile-time optimisation (paper Section 2.5, Figure 4)."""

import pytest

from repro.core import (
    CostModel,
    Statistics,
    build_plan,
    distribute_joins_over_unions,
    merge_same_peer_scans,
    optimize,
    route_query,
)
from repro.core.algebra import Join, Scan, Union, flatten
from repro.workloads.paper import (
    N1,
    paper_active_schemas,
    paper_query_pattern,
    paper_schema,
)


@pytest.fixture
def schema():
    return paper_schema()


@pytest.fixture
def plan1(schema):
    pattern = paper_query_pattern(schema)
    ads = paper_active_schemas(schema)
    return build_plan(route_query(pattern, ads.values(), schema))


class TestDistribution:
    def test_plan2_shape(self, plan1):
        """Figure 4's Plan 2: a union of nine pairwise joins."""
        plan2 = distribute_joins_over_unions(plan1)
        assert isinstance(plan2, Union)
        assert len(plan2.children()) == 9
        assert all(isinstance(c, Join) for c in plan2.children())

    def test_plan2_contains_pairings(self, plan1):
        rendered = distribute_joins_over_unions(plan1).render()
        assert "⋈(Q1@P1, Q2@P1)" in rendered
        assert "⋈(Q1@P2, Q2@P3)" in rendered
        assert "⋈(Q1@P4, Q2@P4)" in rendered

    def test_distribution_without_unions_is_identity(self, schema):
        pattern = paper_query_pattern(schema)
        q1, q2 = pattern.patterns
        plan = Join([Scan((q1,), "P1"), Scan((q2,), "P3")])
        assert distribute_joins_over_unions(plan) == flatten(plan)

    def test_max_terms_guard(self, plan1):
        untouched = distribute_joins_over_unions(plan1, max_terms=4)
        assert isinstance(untouched, Join)

    def test_cost_guard_blocks_unprofitable(self, plan1):
        """With join selectivity 1 the join is never smaller than its
        inputs, so the paper's 'beneficial' condition fails."""
        stats = Statistics(join_selectivity=1.0)
        model = CostModel(stats)
        plan = distribute_joins_over_unions(plan1, model)
        assert isinstance(plan, Join)

    def test_cost_guard_allows_profitable(self, plan1):
        stats = Statistics(join_selectivity=0.0001)
        model = CostModel(stats)
        plan = distribute_joins_over_unions(plan1, model)
        assert isinstance(plan, Union)


class TestSamePeerMerging:
    def test_plan3_merges_p1_and_p4(self, plan1):
        """Figure 4's Plan 3: the prop1⋈prop2 joins are pushed into P1
        and P4 as composite subqueries."""
        plan3 = merge_same_peer_scans(distribute_joins_over_unions(plan1))
        rendered = plan3.render()
        assert "(Q1∪Q2)@P1" in rendered
        assert "(Q1∪Q2)@P4" in rendered

    def test_plan3_keeps_cross_peer_joins(self, plan1):
        plan3 = merge_same_peer_scans(distribute_joins_over_unions(plan1))
        rendered = plan3.render()
        assert "⋈(Q1@P2, Q2@P3)" in rendered

    def test_tr1_full_collapse(self, schema):
        """⋈(Q1@P, Q2@P) → (Q1∪Q2)@P (Transformation Rule 1)."""
        pattern = paper_query_pattern(schema)
        q1, q2 = pattern.patterns
        plan = Join([Scan((q1,), "P1"), Scan((q2,), "P1")])
        merged = merge_same_peer_scans(plan)
        assert isinstance(merged, Scan)
        assert merged.render() == "(Q1∪Q2)@P1"

    def test_tr2_partial_merge(self, schema):
        """⋈(⋈(QP, Q1@Pi), Q2@Pi) → ⋈(QP, (Q1∪Q2)@Pi) (Rule 2)."""
        pattern = paper_query_pattern(schema)
        q1, q2 = pattern.patterns
        inner = Join([Scan((q1,), "P3"), Scan((q1,), "P2")])
        plan = Join([Join([inner, Scan((q1,), "P1")]), Scan((q2,), "P1")])
        merged = merge_same_peer_scans(plan)
        assert "(Q1∪Q2)@P1" in merged.render()

    def test_merge_preserves_pattern_order(self, schema):
        pattern = paper_query_pattern(schema)
        q1, q2 = pattern.patterns
        plan = Join([Scan((q2,), "P1"), Scan((q1,), "P1")])
        merged = merge_same_peer_scans(plan)
        assert merged.patterns() == (q1, q2)

    def test_scan_count_drops(self, plan1):
        plan2 = distribute_joins_over_unions(plan1)
        plan3 = merge_same_peer_scans(plan2)
        from repro.core.algebra import count_scans

        assert count_scans(plan3) < count_scans(plan2)


class TestPipeline:
    def test_trace_records_three_steps(self, plan1):
        trace = optimize(plan1)
        names = [rule for rule, _ in trace]
        assert names[0] == "input"
        assert "distribute joins/unions" in names
        assert "merge same-peer (TR1/TR2)" in names

    def test_trace_result_is_last(self, plan1):
        trace = optimize(plan1)
        assert trace.result == trace.steps[-1][1]

    def test_disable_distribute(self, plan1):
        trace = optimize(plan1, distribute=False)
        assert isinstance(trace.result, Join)

    def test_disable_merge(self, plan1):
        trace = optimize(plan1, merge=False)
        assert "(Q1∪Q2)" not in trace.result.render()

    def test_noop_steps_not_recorded(self, schema):
        pattern = paper_query_pattern(schema)
        scan = Scan((pattern.root,), "P1")
        trace = optimize(scan)
        assert len(trace.steps) == 1

    def test_optimized_plan_equivalent_peers(self, plan1):
        assert optimize(plan1).result.peers() == plan1.peers()
