"""Tests for run-time plan adaptation (paper Section 2.5)."""

import pytest

from repro.core import replan
from repro.core.adaptivity import ChannelMonitor
from repro.workloads.paper import (
    paper_active_schemas,
    paper_query_pattern,
    paper_schema,
)


@pytest.fixture
def schema():
    return paper_schema()


@pytest.fixture
def pattern(schema):
    return paper_query_pattern(schema)


@pytest.fixture
def advertisements(schema):
    return paper_active_schemas(schema)


class TestReplan:
    def test_excludes_failed_peer(self, schema, pattern, advertisements):
        result = replan(pattern, advertisements.values(), {"P1"}, schema)
        assert result.repaired
        assert "P1" not in result.plan.peers()

    def test_survives_redundant_failures(self, schema, pattern, advertisements):
        result = replan(pattern, advertisements.values(), {"P2", "P3"}, schema)
        assert result.repaired  # P1 and P4 still cover both patterns

    def test_unrepairable_when_pattern_uncovered(self, schema, pattern, advertisements):
        result = replan(pattern, advertisements.values(), {"P1", "P3", "P4"}, schema)
        assert not result.repaired
        assert result.plan is None
        assert result.annotated.unannotated_patterns()

    def test_records_discards(self, schema, pattern, advertisements):
        result = replan(
            pattern, advertisements.values(), {"P1"}, schema, discarded_results=3
        )
        assert result.discarded_results == 3

    def test_no_failures_is_full_plan(self, schema, pattern, advertisements):
        result = replan(pattern, advertisements.values(), set(), schema)
        assert result.repaired
        assert result.plan.peers() == {"P1", "P2", "P3", "P4"}

    def test_repr_mentions_state(self, schema, pattern, advertisements):
        good = replan(pattern, advertisements.values(), {"P1"}, schema)
        bad = replan(pattern, advertisements.values(), {"P1", "P2", "P4"}, schema)
        assert "repaired" in repr(good)
        assert "unrepairable" in repr(bad)


class TestChannelMonitor:
    def test_healthy_channel_not_flagged(self):
        monitor = ChannelMonitor(minimum_ratio=0.5)
        monitor.expect("c1", 100)
        monitor.observe("c1", 80)
        assert monitor.underperforming() == []

    def test_starved_channel_flagged(self):
        monitor = ChannelMonitor(minimum_ratio=0.5)
        monitor.expect("c1", 100)
        monitor.observe("c1", 10)
        assert monitor.underperforming() == ["c1"]

    def test_ratio_computation(self):
        monitor = ChannelMonitor()
        monitor.expect("c1", 200)
        monitor.observe("c1", 50)
        assert monitor.throughput_ratio("c1") == 0.25

    def test_unknown_channel_ratio_is_one(self):
        assert ChannelMonitor().throughput_ratio("nope") == 1.0

    def test_observations_accumulate(self):
        monitor = ChannelMonitor(minimum_ratio=0.5)
        monitor.expect("c1", 100)
        monitor.observe("c1", 30)
        monitor.observe("c1", 30)
        assert monitor.underperforming() == []

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            ChannelMonitor(minimum_ratio=0.0)
        with pytest.raises(ValueError):
            ChannelMonitor(minimum_ratio=1.5)
