"""Tests for the Query-Routing Algorithm (paper Section 2.3, Figure 2)."""

import pytest

from repro.core import route_query
from repro.errors import RoutingError
from repro.rql.pattern import SchemaPath
from repro.rvl import ActiveSchema
from repro.workloads.paper import (
    N1,
    paper_active_schemas,
    paper_query_pattern,
    paper_schema,
)


@pytest.fixture
def schema():
    return paper_schema()


@pytest.fixture
def pattern(schema):
    return paper_query_pattern(schema)


@pytest.fixture
def advertisements(schema):
    return paper_active_schemas(schema)


class TestFigure2:
    """The exact annotation outcome the paper's Figure 2 shows."""

    def test_q1_annotation(self, schema, pattern, advertisements):
        annotated = route_query(pattern, advertisements.values(), schema)
        assert annotated.peers_for(pattern.root) == ("P1", "P2", "P4")

    def test_q2_annotation(self, schema, pattern, advertisements):
        annotated = route_query(pattern, advertisements.values(), schema)
        assert annotated.peers_for(pattern.patterns[1]) == ("P1", "P3", "P4")

    def test_fully_annotated(self, schema, pattern, advertisements):
        annotated = route_query(pattern, advertisements.values(), schema)
        assert annotated.is_fully_annotated()
        assert annotated.all_peers() == ("P1", "P2", "P3", "P4")

    def test_p4_annotation_is_subsumption_not_exact(self, schema, pattern, advertisements):
        annotated = route_query(pattern, advertisements.values(), schema)
        by_peer = {a.peer_id: a for a in annotated.annotations(pattern.root)}
        assert by_peer["P4"].exact is False
        assert by_peer["P1"].exact is True

    def test_p4_rewrite_narrows_classes(self, schema, pattern, advertisements):
        annotated = route_query(pattern, advertisements.values(), schema)
        rewritten = annotated.rewritten_for(pattern.root, "P4")
        assert rewritten.schema_path.domain == N1.C5
        assert rewritten.schema_path.range == N1.C6


class TestEdgeCases:
    def test_no_advertisements(self, schema, pattern):
        annotated = route_query(pattern, [], schema)
        assert not annotated.is_fully_annotated()
        assert annotated.unannotated_patterns() == pattern.patterns

    def test_partial_coverage(self, schema, pattern, advertisements):
        annotated = route_query(pattern, [advertisements["P2"]], schema)
        assert annotated.peers_for(pattern.root) == ("P2",)
        assert annotated.unannotated_patterns() == (pattern.patterns[1],)

    def test_advertisement_without_peer_id_rejected(self, schema, pattern):
        anonymous = ActiveSchema(
            schema.namespace.uri, [SchemaPath(N1.C1, N1.prop1, N1.C2)]
        )
        with pytest.raises(RoutingError):
            route_query(pattern, [anonymous], schema)

    def test_foreign_schema_ignored(self, schema, pattern):
        foreign = ActiveSchema(
            "http://other-son#", [SchemaPath(N1.C1, N1.prop1, N1.C2)], peer_id="PX"
        )
        annotated = route_query(pattern, [foreign], schema)
        assert not annotated.is_fully_annotated()

    def test_duplicate_advertisements_annotate_once(self, schema, pattern, advertisements):
        doubled = [advertisements["P2"], advertisements["P2"]]
        annotated = route_query(pattern, doubled, schema)
        assert annotated.peers_for(pattern.root) == ("P2",)


class TestAnnotatedPatternOperations:
    def test_without_peers(self, schema, pattern, advertisements):
        annotated = route_query(pattern, advertisements.values(), schema)
        reduced = annotated.without_peers({"P1", "P4"})
        assert reduced.peers_for(pattern.root) == ("P2",)
        assert reduced.peers_for(pattern.patterns[1]) == ("P3",)

    def test_without_all_peers_leaves_holes(self, schema, pattern, advertisements):
        annotated = route_query(pattern, advertisements.values(), schema)
        reduced = annotated.without_peers({"P1", "P2", "P3", "P4"})
        assert not reduced.is_fully_annotated()

    def test_merge_combines_knowledge(self, schema, pattern, advertisements):
        left = route_query(pattern, [advertisements["P2"]], schema)
        right = route_query(pattern, [advertisements["P3"]], schema)
        merged = left.merge(right)
        assert merged.is_fully_annotated()
        assert merged.all_peers() == ("P2", "P3")

    def test_str_mentions_unannotated(self, schema, pattern):
        annotated = route_query(pattern, [], schema)
        assert "?" in str(annotated)
