"""Tests for ORDER BY + Top-N / Bottom-N result bounds."""

import pytest

from repro.core import QueryConstraints
from repro.rdf import Graph, LITERAL_CLASS, Literal, TYPE
from repro.rql.bindings import BindingTable
from repro.systems import HybridSystem
from repro.workloads.paper import DATA, N1, paper_schema


class TestApplyResultBounds:
    def table(self):
        return BindingTable(
            ("X", "N"),
            [
                (DATA.a, Literal(30)),
                (DATA.b, Literal(10)),
                (DATA.c, Literal(20)),
            ],
        )

    def test_ascending_order(self):
        constraints = QueryConstraints(order_by="N")
        out = constraints.apply_result_bounds(self.table())
        assert [t.to_python() for t in out.column("N")] == [10, 20, 30]

    def test_descending_order(self):
        constraints = QueryConstraints(order_by="N", descending=True)
        out = constraints.apply_result_bounds(self.table())
        assert [t.to_python() for t in out.column("N")] == [30, 20, 10]

    def test_top_n(self):
        constraints = QueryConstraints(order_by="N", descending=True, max_results=2)
        out = constraints.apply_result_bounds(self.table())
        assert [t.to_python() for t in out.column("N")] == [30, 20]

    def test_bottom_n(self):
        constraints = QueryConstraints(order_by="N", max_results=1)
        out = constraints.apply_result_bounds(self.table())
        assert [t.to_python() for t in out.column("N")] == [10]

    def test_order_by_uri_column(self):
        constraints = QueryConstraints(order_by="X")
        out = constraints.apply_result_bounds(self.table())
        assert [t.local_name for t in out.column("X")] == ["a", "b", "c"]

    def test_missing_column_ignored(self):
        constraints = QueryConstraints(order_by="Z", max_results=2)
        out = constraints.apply_result_bounds(self.table())
        assert len(out) == 2  # limit still applied

    def test_mixed_types_stable(self):
        mixed = BindingTable(
            ("V",), [(Literal("zeta"),), (Literal(5),), (DATA.x,)]
        )
        out = QueryConstraints(order_by="V").apply_result_bounds(mixed)
        values = out.column("V")
        assert values[0].to_python() == 5  # numbers first
        assert values[-1] == DATA.x  # URIs last


class TestEndToEndOrdering:
    @pytest.fixture
    def system(self):
        schema = paper_schema()
        schema.add_property(N1.year, N1.C1, LITERAL_CLASS)
        graph = Graph()
        for i, year in enumerate((1999, 2004, 2001)):
            resource = DATA[f"doc{i}"]
            graph.add(resource, TYPE, N1.C1)
            graph.add(resource, N1.year, Literal(year))
        system = HybridSystem(schema)
        system.add_super_peer("SP1")
        system.add_peer("P1", graph, "SP1")
        return system

    QUERY = (
        "SELECT X, Y FROM {X} n1:year {Y} "
        f"USING NAMESPACE n1 = &{N1.uri}&"
    )

    def test_top1_latest(self, system):
        table = system.query("P1", self.QUERY, order_by="Y", descending=True, limit=1)
        assert table.column("Y")[0].to_python() == 2004

    def test_bottom1_earliest(self, system):
        table = system.query("P1", self.QUERY, order_by="Y", limit=1)
        assert table.column("Y")[0].to_python() == 1999

    def test_full_ordering(self, system):
        table = system.query("P1", self.QUERY, order_by="Y")
        assert [t.to_python() for t in table.column("Y")] == [1999, 2001, 2004]
