"""Tests for the property-bucket routing index."""

import pytest

from repro.core import route_query
from repro.core.routing_index import RoutingIndex
from repro.rql.pattern import SchemaPath
from repro.rvl import ActiveSchema
from repro.workloads.paper import (
    N1,
    paper_active_schemas,
    paper_query_pattern,
    paper_schema,
)


@pytest.fixture
def schema():
    return paper_schema()


@pytest.fixture
def index(schema):
    idx = RoutingIndex(schema)
    for advertisement in paper_active_schemas(schema).values():
        idx.add(advertisement)
    return idx


class TestMaintenance:
    def test_add_and_contains(self, index):
        assert "P1" in index
        assert len(index) == 4

    def test_refile_replaces(self, schema, index):
        updated = ActiveSchema(
            schema.namespace.uri, [SchemaPath(N1.C3, N1.prop3, N1.C4)], peer_id="P2"
        )
        index.add(updated)
        assert len(index) == 4
        assert not any(a.peer_id == "P2" for a in index.candidates(N1.prop1))
        assert any(a.peer_id == "P2" for a in index.candidates(N1.prop3))

    def test_remove(self, index):
        index.remove("P4")
        assert "P4" not in index
        assert not any(a.peer_id == "P4" for a in index.candidates(N1.prop1))

    def test_remove_unknown_noop(self, index):
        index.remove("ghost")
        assert len(index) == 4

    def test_anonymous_rejected(self, schema):
        with pytest.raises(ValueError):
            RoutingIndex(schema).add(ActiveSchema(schema.namespace.uri))


class TestSubsumptionBuckets:
    def test_prop4_advertiser_in_prop1_bucket(self, index):
        peers = {a.peer_id for a in index.candidates(N1.prop1)}
        assert peers == {"P1", "P2", "P4"}

    def test_prop4_bucket_excludes_prop1_only_peers(self, index):
        peers = {a.peer_id for a in index.candidates(N1.prop4)}
        assert peers == {"P4"}

    def test_empty_bucket(self, index):
        assert index.candidates(N1.prop3) == []


class TestEquivalenceWithExhaustiveScan:
    def test_paper_scenario(self, schema, index):
        pattern = paper_query_pattern(schema)
        via_index = index.route(pattern)
        exhaustive = route_query(
            pattern, paper_active_schemas(schema).values(), schema
        )
        for path_pattern in pattern:
            assert via_index.peers_for(path_pattern) == exhaustive.peers_for(
                path_pattern
            )

    def test_random_populations(self, schema):
        """Index routing equals exhaustive routing over random ad sets."""
        import random

        from repro.workloads.data_gen import Distribution, generate_bases
        from repro.workloads.schema_gen import generate_schema
        from repro.workloads.query_gen import chain_query
        from repro.rql.pattern import pattern_from_text

        synth = generate_schema(chain_length=4, refinement_fraction=0.6, seed=9)
        peers = [f"R{i}" for i in range(25)]
        gen = generate_bases(synth, peers, Distribution.MIXED, seed=10)
        ads = [
            ActiveSchema.from_base(graph, synth.schema, peer)
            for peer, graph in gen.bases.items()
        ]
        idx = RoutingIndex(synth.schema)
        for advertisement in ads:
            idx.add(advertisement)
        for start in range(3):
            pattern = pattern_from_text(
                chain_query(synth, start, 2), synth.schema
            )
            via_index = idx.route(pattern)
            exhaustive = route_query(pattern, ads, synth.schema)
            for path_pattern in pattern:
                assert via_index.peers_for(path_pattern) == exhaustive.peers_for(
                    path_pattern
                )
