"""Tests for the RQL parser."""

import pytest

from repro.errors import ParseError
from repro.rdf import Literal
from repro.rql import parse_query

NS = "USING NAMESPACE n1 = &http://a#&"


class TestSkeleton:
    def test_minimal_query(self):
        q = parse_query(f"SELECT X FROM {{X}} n1:p {{Y}} {NS}")
        assert q.projections == ("X",)
        assert len(q.paths) == 1
        assert q.namespaces == {"n1": "http://a#"}

    def test_select_star(self):
        q = parse_query(f"SELECT * FROM {{X}} n1:p {{Y}} {NS}")
        assert q.projections == ()
        assert q.effective_projections() == ("X", "Y")

    def test_multiple_projections(self):
        q = parse_query(f"SELECT X, Y FROM {{X}} n1:p {{Y}} {NS}")
        assert q.projections == ("X", "Y")

    def test_paper_query(self):
        q = parse_query(
            f"SELECT X, Y FROM {{X}} n1:prop1 {{Y}}, {{Y}} n1:prop2 {{Z}} {NS}"
        )
        assert len(q.paths) == 2
        assert q.paths[0].property_name == "n1:prop1"
        assert q.paths[1].subject.variable == "Y"
        assert q.variables() == ("X", "Y", "Z")

    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse_query("SELECT X")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_query(f"SELECT X FROM {{X}} n1:p {{Y}} {NS} bogus")


class TestNodes:
    def test_class_filter_after_semicolon(self):
        q = parse_query(f"SELECT X FROM {{X;n1:C1}} n1:p {{Y}} {NS}")
        assert q.paths[0].subject.class_name == "n1:C1"

    def test_class_only_node(self):
        q = parse_query(f"SELECT Y FROM {{n1:C1}} n1:p {{Y}} {NS}")
        assert q.paths[0].subject.variable is None
        assert q.paths[0].subject.class_name == "n1:C1"

    def test_anonymous_node(self):
        q = parse_query(f"SELECT X FROM {{X}} n1:p {{}} {NS}")
        assert q.paths[0].object.variable is None

    def test_node_requires_braces(self):
        with pytest.raises(ParseError):
            parse_query(f"SELECT X FROM X n1:p {{Y}} {NS}")


class TestWhere:
    def test_string_condition(self):
        q = parse_query(f'SELECT X FROM {{X}} n1:p {{Z}} WHERE Z = "v" {NS}')
        (cond,) = q.conditions
        assert cond.variable == "Z"
        assert cond.operator == "="
        assert cond.value == Literal("v")

    def test_numeric_condition(self):
        q = parse_query(f"SELECT X FROM {{X}} n1:p {{Z}} WHERE Z > 5 {NS}")
        assert q.conditions[0].value == Literal(5)

    def test_float_condition(self):
        q = parse_query(f"SELECT X FROM {{X}} n1:p {{Z}} WHERE Z <= 2.5 {NS}")
        assert q.conditions[0].value == Literal(2.5)

    def test_variable_comparison(self):
        q = parse_query(
            f"SELECT X FROM {{X}} n1:p {{Y}}, {{X}} n1:p {{Z}} WHERE Y != Z {NS}"
        )
        cond = q.conditions[0]
        assert cond.value_is_variable
        assert cond.value == "Z"

    def test_like_condition(self):
        q = parse_query(f'SELECT X FROM {{X}} n1:p {{Z}} WHERE Z LIKE "sub" {NS}')
        assert q.conditions[0].operator == "like"

    def test_conjunction(self):
        q = parse_query(
            f'SELECT X FROM {{X}} n1:p {{Z}} WHERE Z > 1 AND Z < 9 {NS}'
        )
        assert len(q.conditions) == 2


class TestValidation:
    def test_unbound_projection_rejected(self):
        with pytest.raises(ParseError):
            parse_query(f"SELECT W FROM {{X}} n1:p {{Y}} {NS}")

    def test_unbound_filter_rejected(self):
        with pytest.raises(ParseError):
            parse_query(f"SELECT X FROM {{X}} n1:p {{Y}} WHERE W = 1 {NS}")

    def test_unbound_comparison_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_query(f"SELECT X FROM {{X}} n1:p {{Y}} WHERE X = W {NS}")

    def test_undeclared_prefix_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT X FROM {X} n1:p {Y}, {Y} n2:q {Z} "
                        "USING NAMESPACE n1 = &http://a#&")

    def test_no_namespace_clause_allowed(self):
        # defaults may be supplied at pattern-extraction time instead
        q = parse_query("SELECT X FROM {X} n1:p {Y}")
        assert q.namespaces == {}


class TestRendering:
    def test_str_roundtrip_parses(self):
        text = (
            f'SELECT X, Y FROM {{X;n1:C1}} n1:prop1 {{Y}}, {{Y}} n1:prop2 {{Z}} '
            f'WHERE Z = "v" {NS}'
        )
        q = parse_query(text)
        again = parse_query(str(q))
        assert again.projections == q.projections
        assert again.paths == q.paths
        assert again.conditions == q.conditions
