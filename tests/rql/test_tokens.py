"""Tests for the RQL/RVL lexer."""

import pytest

from repro.errors import ParseError
from repro.rql.tokens import tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)]


class TestBasics:
    def test_keywords_case_insensitive(self):
        assert kinds("select FROM Where") == ["SELECT", "FROM", "WHERE"]

    def test_identifier(self):
        assert kinds("X") == ["IDENT"]

    def test_qname(self):
        tokens = tokenize("n1:prop1")
        assert tokens[0].kind == "QNAME"
        assert tokens[0].value == "n1:prop1"

    def test_qname_with_underscores(self):
        assert tokenize("my_ns:my_prop")[0].value == "my_ns:my_prop"

    def test_punctuation(self):
        assert kinds("{ } ; , ( ) * @") == [
            "LBRACE", "RBRACE", "SEMI", "COMMA", "LPAREN", "RPAREN", "STAR", "AT",
        ]

    def test_operators(self):
        assert values("= != < <= > >=") == ["=", "!=", "<", "<=", ">", ">="]

    def test_two_char_operators_greedy(self):
        assert values("<=") == ["<="]


class TestLiterals:
    def test_string(self):
        (token,) = tokenize('"hello"')
        assert token.kind == "STRING"
        assert token.value == "hello"

    def test_string_with_escape(self):
        (token,) = tokenize('"a\\"b"')
        assert token.value == 'a"b'

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('"open')

    def test_integer(self):
        (token,) = tokenize("42")
        assert token.kind == "NUMBER"
        assert token.value == "42"

    def test_negative_number(self):
        assert tokenize("-7")[0].value == "-7"

    def test_decimal(self):
        assert tokenize("3.14")[0].value == "3.14"

    def test_uri_in_ampersands(self):
        (token,) = tokenize("&http://example.org/ns#&")
        assert token.kind == "URI"
        assert token.value == "http://example.org/ns#"

    def test_unterminated_uri(self):
        with pytest.raises(ParseError):
            tokenize("&http://nope")


class TestFullQuery:
    def test_paper_query_tokenizes(self):
        text = (
            "SELECT X, Y FROM {X} n1:prop1 {Y}, {Y} n1:prop2 {Z} "
            "USING NAMESPACE n1 = &http://a#&"
        )
        token_kinds = kinds(text)
        assert token_kinds[0] == "SELECT"
        assert "QNAME" in token_kinds
        assert token_kinds[-1] == "URI"

    def test_positions_recorded(self):
        tokens = tokenize("SELECT X")
        assert tokens[0].position == 0
        assert tokens[1].position == 7

    def test_unexpected_character(self):
        with pytest.raises(ParseError) as err:
            tokenize("SELECT %")
        assert err.value.position == 7

    def test_whitespace_insensitive(self):
        assert kinds("{X}n1:p{Y}") == kinds("{ X } n1:p { Y }")
