"""Tests for semantic query pattern extraction (paper Section 2.1)."""

import pytest

from repro.errors import SchemaError
from repro.rql import parse_query
from repro.rql.pattern import (
    PathPattern,
    QueryPattern,
    SchemaPath,
    extract_pattern,
    pattern_from_text,
    resolve_qname,
)
from repro.workloads.paper import N1, PAPER_QUERY, paper_schema

NS = f"USING NAMESPACE n1 = &{N1.uri}&"


@pytest.fixture
def schema():
    return paper_schema()


class TestExtraction:
    def test_paper_query_pattern(self, schema):
        pattern = pattern_from_text(PAPER_QUERY, schema)
        assert len(pattern) == 2
        q1, q2 = pattern.patterns
        assert q1.label == "Q1"
        assert q1.schema_path == SchemaPath(N1.C1, N1.prop1, N1.C2)
        assert q2.schema_path == SchemaPath(N1.C2, N1.prop2, N1.C3)

    def test_endpoint_classes_from_schema(self, schema):
        """Classes omitted in the text come from property definitions."""
        pattern = pattern_from_text(f"SELECT X FROM {{X}} n1:prop2 {{Y}} {NS}", schema)
        assert pattern.root.schema_path.domain == N1.C2
        assert pattern.root.schema_path.range == N1.C3

    def test_explicit_class_filter_narrows(self, schema):
        pattern = pattern_from_text(
            f"SELECT X FROM {{X;n1:C5}} n1:prop1 {{Y}} {NS}", schema
        )
        assert pattern.root.schema_path.domain == N1.C5

    def test_projection_marks(self, schema):
        pattern = pattern_from_text(PAPER_QUERY, schema)
        assert pattern.root.projected == ("X", "Y")
        assert pattern.patterns[1].projected == ("Y",)

    def test_undeclared_property_rejected(self, schema):
        with pytest.raises(SchemaError):
            pattern_from_text(f"SELECT X FROM {{X}} n1:nope {{Y}} {NS}", schema)

    def test_undeclared_class_rejected(self, schema):
        with pytest.raises(SchemaError):
            pattern_from_text(f"SELECT X FROM {{X;n1:Nope}} n1:prop1 {{Y}} {NS}", schema)

    def test_default_namespaces(self, schema):
        query = parse_query("SELECT X FROM {X} n1:prop1 {Y}")
        pattern = extract_pattern(query, schema, {"n1": N1.uri})
        assert pattern.root.schema_path.property == N1.prop1

    def test_missing_prefix_raises(self, schema):
        query = parse_query("SELECT X FROM {X} zz:prop1 {Y}")
        with pytest.raises(SchemaError):
            extract_pattern(query, schema, {"n1": N1.uri})


class TestTree:
    def test_root_is_first_pattern(self, schema):
        pattern = pattern_from_text(PAPER_QUERY, schema)
        assert pattern.root.label == "Q1"

    def test_children_via_shared_variable(self, schema):
        pattern = pattern_from_text(PAPER_QUERY, schema)
        children = pattern.children(pattern.root)
        assert [c.label for c in children] == ["Q2"]
        assert pattern.children(children[0]) == ()

    def test_three_hop_chain(self, schema):
        text = (
            f"SELECT X FROM {{X}} n1:prop1 {{Y}}, {{Y}} n1:prop2 {{Z}}, "
            f"{{Z}} n1:prop3 {{W}} {NS}"
        )
        pattern = pattern_from_text(text, schema)
        q1 = pattern.root
        (q2,) = pattern.children(q1)
        (q3,) = pattern.children(q2)
        assert (q1.label, q2.label, q3.label) == ("Q1", "Q2", "Q3")

    def test_star_join_children(self, schema):
        """Two patterns sharing the root's variable both become children."""
        text = (
            f"SELECT X FROM {{X}} n1:prop1 {{Y}}, {{Y}} n1:prop2 {{Z}}, "
            f"{{Y}} n1:prop2 {{W}} {NS}"
        )
        pattern = pattern_from_text(text, schema)
        labels = {c.label for c in pattern.children(pattern.root)}
        assert labels == {"Q2", "Q3"}

    def test_disconnected_component_attaches_to_root(self, schema):
        text = (
            f"SELECT X FROM {{X}} n1:prop1 {{Y}}, {{A}} n1:prop3 {{B}} {NS}"
        )
        pattern = pattern_from_text(text, schema)
        assert {c.label for c in pattern.children(pattern.root)} == {"Q2"}

    def test_pattern_by_label(self, schema):
        pattern = pattern_from_text(PAPER_QUERY, schema)
        assert pattern.pattern_by_label("Q2").schema_path.property == N1.prop2
        with pytest.raises(KeyError):
            pattern.pattern_by_label("Q9")

    def test_variables_in_order(self, schema):
        pattern = pattern_from_text(PAPER_QUERY, schema)
        assert pattern.variables() == ("X", "Y", "Z")


class TestValueSemantics:
    def test_schema_path_equality(self):
        a = SchemaPath(N1.C1, N1.prop1, N1.C2)
        b = SchemaPath(N1.C1, N1.prop1, N1.C2)
        assert a == b
        assert hash(a) == hash(b)

    def test_schema_path_immutable(self):
        path = SchemaPath(N1.C1, N1.prop1, N1.C2)
        with pytest.raises(AttributeError):
            path.domain = N1.C3

    def test_path_pattern_shares_variable(self, schema):
        pattern = pattern_from_text(PAPER_QUERY, schema)
        q1, q2 = pattern.patterns
        assert q1.shares_variable_with(q2)

    def test_pattern_rendering_mentions_stars(self, schema):
        pattern = pattern_from_text(PAPER_QUERY, schema)
        assert "X*" in str(pattern.root)

    def test_resolve_qname(self):
        assert resolve_qname("n1:C1", {"n1": N1.uri}) == N1.C1
        with pytest.raises(SchemaError):
            resolve_qname("plain", {"n1": N1.uri})

    def test_empty_pattern_rejected(self, schema):
        with pytest.raises(SchemaError):
            QueryPattern([], (), schema)
