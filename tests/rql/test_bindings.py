"""Tests for binding tables (the distributed operators' operand type)."""

import pytest

from repro.errors import EvaluationError
from repro.rdf import Literal, Namespace, URI
from repro.rql.bindings import BindingTable

EX = Namespace("http://e/")


def table(columns, rows):
    return BindingTable(columns, rows)


class TestConstruction:
    def test_empty(self):
        t = BindingTable.empty(("X",))
        assert len(t) == 0
        assert not t

    def test_unit_is_join_identity(self):
        t = table(("X",), [(EX.a,)])
        assert BindingTable.unit().join(t) == t
        assert t.join(BindingTable.unit()) == t

    def test_duplicate_columns_rejected(self):
        with pytest.raises(EvaluationError):
            BindingTable(("X", "X"))

    def test_row_width_checked(self):
        t = BindingTable(("X", "Y"))
        with pytest.raises(EvaluationError):
            t.append((EX.a,))

    def test_append_binding(self):
        t = BindingTable(("X", "Y"))
        t.append_binding({"Y": EX.b, "X": EX.a})
        assert t.rows == [(EX.a, EX.b)]

    def test_bindings_iteration(self):
        t = table(("X",), [(EX.a,)])
        assert list(t.bindings()) == [{"X": EX.a}]


class TestJoin:
    def test_shared_column_join(self):
        left = table(("X", "Y"), [(EX.a, EX.b), (EX.c, EX.d)])
        right = table(("Y", "Z"), [(EX.b, EX.z1), (EX.b, EX.z2)])
        out = left.join(right)
        assert set(out.columns) == {"X", "Y", "Z"}
        assert len(out) == 2
        assert all(row[out.column_index("X")] == EX.a for row in out)

    def test_no_match_empty(self):
        left = table(("X", "Y"), [(EX.a, EX.b)])
        right = table(("Y", "Z"), [(EX.q, EX.z)])
        assert len(left.join(right)) == 0

    def test_cartesian_product_without_shared(self):
        left = table(("X",), [(EX.a,), (EX.b,)])
        right = table(("Y",), [(EX.c,), (EX.d,)])
        assert len(left.join(right)) == 4

    def test_join_commutative_on_content(self):
        left = table(("X", "Y"), [(EX.a, EX.b)])
        right = table(("Y", "Z"), [(EX.b, EX.z)])
        assert left.join(right) == right.join(left)

    def test_multi_column_join_key(self):
        left = table(("X", "Y"), [(EX.a, EX.b), (EX.a, EX.c)])
        right = table(("X", "Y"), [(EX.a, EX.b)])
        assert len(left.join(right)) == 1

    def test_join_empty_right(self):
        left = table(("X", "Y"), [(EX.a, EX.b)])
        right = BindingTable(("Y", "Z"))
        assert len(left.join(right)) == 0


class TestUnion:
    def test_same_columns(self):
        a = table(("X",), [(EX.a,)])
        b = table(("X",), [(EX.b,)])
        assert len(a.union(b)) == 2

    def test_column_permutation_aligned(self):
        a = table(("X", "Y"), [(EX.a, EX.b)])
        b = table(("Y", "X"), [(EX.b, EX.a)])
        out = a.union(b)
        assert len(out) == 2
        assert out.rows[0] == out.rows[1]

    def test_mismatched_columns_rejected(self):
        with pytest.raises(EvaluationError):
            table(("X",), []).union(table(("Y",), []))

    def test_bag_semantics(self):
        a = table(("X",), [(EX.a,)])
        assert len(a.union(a)) == 2


class TestProjectSelectDistinct:
    def test_project(self):
        t = table(("X", "Y"), [(EX.a, EX.b)])
        out = t.project(["Y"])
        assert out.columns == ("Y",)
        assert out.rows == [(EX.b,)]

    def test_project_unknown_column(self):
        with pytest.raises(EvaluationError):
            table(("X",), []).project(["Z"])

    def test_select(self):
        t = table(("X",), [(EX.a,), (EX.b,)])
        out = t.select(lambda b: b["X"] == EX.a)
        assert out.rows == [(EX.a,)]

    def test_distinct(self):
        t = table(("X",), [(EX.a,), (EX.a,), (EX.b,)])
        assert len(t.distinct()) == 2

    def test_column_values(self):
        t = table(("X", "Y"), [(EX.a, EX.b), (EX.c, EX.b)])
        assert t.column("Y") == [EX.b, EX.b]


class TestEqualityAndSize:
    def test_equality_ignores_column_order(self):
        a = table(("X", "Y"), [(EX.a, EX.b)])
        b = table(("Y", "X"), [(EX.b, EX.a)])
        assert a == b

    def test_equality_ignores_row_order(self):
        a = table(("X",), [(EX.a,), (EX.b,)])
        b = table(("X",), [(EX.b,), (EX.a,)])
        assert a == b

    def test_inequality_different_rows(self):
        assert table(("X",), [(EX.a,)]) != table(("X",), [(EX.b,)])

    def test_size_bytes_grows(self):
        small = table(("X",), [(EX.a,)])
        big = table(("X",), [(EX.a,)] * 10)
        assert big.size_bytes() > small.size_bytes()

    def test_size_counts_literals(self):
        t = table(("X",), [(Literal("a long literal value"),)])
        assert t.size_bytes() > 20
