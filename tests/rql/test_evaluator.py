"""Tests for local RQL evaluation with RDFS entailment."""

import pytest

from repro.rdf import Graph, InferredView, Literal, Namespace, TYPE
from repro.rdf.vocabulary import LITERAL_CLASS
from repro.rql import evaluate_path_pattern, pattern_from_text, query
from repro.workloads.paper import N1, PAPER_QUERY, paper_schema

DATA = Namespace("http://d/")
NS = f"USING NAMESPACE n1 = &{N1.uri}&"


@pytest.fixture
def schema():
    s = paper_schema()
    s.add_property(N1.title, N1.C1, LITERAL_CLASS)
    return s


@pytest.fixture
def base(schema):
    g = Graph()
    # chain x0 -prop1-> y0 -prop2-> z0
    g.add(DATA.x0, TYPE, N1.C1)
    g.add(DATA.y0, TYPE, N1.C2)
    g.add(DATA.z0, TYPE, N1.C3)
    g.add(DATA.x0, N1.prop1, DATA.y0)
    g.add(DATA.y0, N1.prop2, DATA.z0)
    # subproperty chain x1 -prop4-> y1 -prop2-> z1
    g.add(DATA.x1, N1.prop4, DATA.y1)
    g.add(DATA.y1, N1.prop2, DATA.z1)
    # a literal-valued statement
    g.add(DATA.x0, N1.title, Literal("intro"))
    g.add(DATA.x1, N1.title, Literal("advanced"))
    return g


class TestPathPatternEvaluation:
    def test_direct_property(self, base, schema):
        pattern = pattern_from_text(f"SELECT X FROM {{X}} n1:prop2 {{Y}} {NS}", schema)
        table = evaluate_path_pattern(pattern.root, InferredView(base, schema))
        assert set(table.column("X")) == {DATA.y0, DATA.y1}

    def test_subproperty_included(self, base, schema):
        pattern = pattern_from_text(f"SELECT X FROM {{X}} n1:prop1 {{Y}} {NS}", schema)
        table = evaluate_path_pattern(pattern.root, InferredView(base, schema))
        assert set(table.column("X")) == {DATA.x0, DATA.x1}

    def test_subclass_filter_excludes_broader(self, base, schema):
        pattern = pattern_from_text(
            f"SELECT X FROM {{X;n1:C5}} n1:prop1 {{Y}} {NS}", schema
        )
        table = evaluate_path_pattern(pattern.root, InferredView(base, schema))
        # only x1 (a prop4 subject, hence C5) qualifies
        assert set(table.column("X")) == {DATA.x1}

    def test_anonymous_endpoint_unbound(self, base, schema):
        pattern = pattern_from_text(f"SELECT X FROM {{X}} n1:prop1 {{}} {NS}", schema)
        table = evaluate_path_pattern(pattern.root, InferredView(base, schema))
        assert table.columns == ("X",)
        assert len(table) == 2

    def test_literal_range_pattern(self, base, schema):
        pattern = pattern_from_text(f"SELECT X FROM {{X}} n1:title {{T}} {NS}", schema)
        table = evaluate_path_pattern(pattern.root, InferredView(base, schema))
        assert len(table) == 2
        assert all(isinstance(t, Literal) for t in table.column("T"))

    def test_literal_object_rejected_for_resource_range(self, schema):
        g = Graph()
        g.add(DATA.x, N1.prop1, Literal("oops"))
        pattern = pattern_from_text(f"SELECT X FROM {{X}} n1:prop1 {{Y}} {NS}", schema)
        table = evaluate_path_pattern(pattern.root, InferredView(g, schema))
        assert len(table) == 0


class TestFullQueries:
    def test_paper_query_joins(self, base, schema):
        table = query(PAPER_QUERY, base, schema)
        assert set(table.rows) == {(DATA.x0, DATA.y0), (DATA.x1, DATA.y1)}

    def test_projection_applied(self, base, schema):
        table = query(f"SELECT Y FROM {{X}} n1:prop1 {{Y}} {NS}", base, schema)
        assert table.columns == ("Y",)

    def test_select_star(self, base, schema):
        table = query(f"SELECT * FROM {{X}} n1:prop1 {{Y}} {NS}", base, schema)
        assert set(table.columns) == {"X", "Y"}

    def test_where_equality(self, base, schema):
        table = query(
            f'SELECT X FROM {{X}} n1:title {{T}} WHERE T = "intro" {NS}', base, schema
        )
        assert table.rows == [(DATA.x0,)]

    def test_where_like(self, base, schema):
        table = query(
            f'SELECT X FROM {{X}} n1:title {{T}} WHERE T LIKE "adv" {NS}', base, schema
        )
        assert table.rows == [(DATA.x1,)]

    def test_where_inequality_numbers(self, schema):
        g = Graph()
        schema.add_property(N1.year, N1.C1, LITERAL_CLASS)
        g.add(DATA.a, N1.year, Literal(1999))
        g.add(DATA.b, N1.year, Literal(2004))
        table = query(
            f"SELECT X FROM {{X}} n1:year {{Y}} WHERE Y > 2000 {NS}", g, schema
        )
        assert table.rows == [(DATA.b,)]

    def test_where_variable_comparison(self, base, schema):
        text = (
            f"SELECT X FROM {{X}} n1:prop1 {{Y}}, {{X}} n1:prop1 {{Z}} "
            f"WHERE Y = Z {NS}"
        )
        table = query(text, base, schema)
        assert len(table) == 2  # each x relates to exactly one y

    def test_empty_base(self, schema):
        table = query(PAPER_QUERY, Graph(), schema)
        assert len(table) == 0
        assert set(table.columns) == {"X", "Y"}

    def test_incomparable_condition_rejects_row(self, base, schema):
        table = query(
            f"SELECT X FROM {{X}} n1:title {{T}} WHERE T > 100 {NS}", base, schema
        )
        assert len(table) == 0
