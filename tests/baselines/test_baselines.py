"""Tests for the baseline comparators (flooding, coarse ads, indexing)."""

import random

import pytest

from repro.baselines import (
    FloodingPeer,
    run_active_schema_advertisements,
    run_churn,
    run_global_advertisements,
    son_routing_contacts,
)
from repro.net import Network, random_neighbour_graph
from repro.peers.base import PeerBase
from repro.rdf import Graph
from repro.rvl import ActiveSchema
from repro.workloads.paper import (
    N1,
    paper_active_schemas,
    paper_peer_bases,
    paper_query_pattern,
    paper_schema,
)


@pytest.fixture
def schema():
    return paper_schema()


@pytest.fixture
def pattern(schema):
    return paper_query_pattern(schema)


def build_flooding_network(schema, extra_empty_peers=6):
    """The four paper peers plus empty peers in a random graph."""
    bases = paper_peer_bases()
    ids = sorted(bases) + [f"E{i}" for i in range(extra_empty_peers)]
    adjacency = random_neighbour_graph(ids, 3, random.Random(0))
    network = Network()
    peers = {}
    for peer_id in ids:
        graph = bases.get(peer_id, Graph())
        peer = FloodingPeer(peer_id, PeerBase(graph, schema), adjacency[peer_id])
        peer.join(network)
        peers[peer_id] = peer
    return network, peers


class TestFlooding:
    def test_flood_reaches_relevant_peers(self, schema, pattern):
        network, peers = build_flooding_network(schema)
        origin = peers["E0"]
        origin.flood("q1", pattern, ttl=8)
        network.run()
        assert origin.hits["q1"] == {"P1", "P2", "P3", "P4"}

    def test_flood_message_count_far_exceeds_son(self, schema, pattern):
        network, peers = build_flooding_network(schema)
        peers["E0"].flood("q1", pattern, ttl=8)
        network.run()
        flood_messages = network.metrics.messages_total
        son_peers = son_routing_contacts(
            pattern, list(paper_active_schemas(schema).values()), schema
        )
        # SON: one request + one reply per relevant peer
        son_messages = 2 * len(son_peers)
        assert flood_messages > son_messages

    def test_ttl_limits_reach(self, schema, pattern):
        network, peers = build_flooding_network(schema)
        peers["E0"].flood("q1", pattern, ttl=1)
        network.run()
        # ttl=1 stops forwarding at first hop: not everything is reached
        assert network.metrics.messages_total < 30

    def test_duplicate_floods_suppressed(self, schema, pattern):
        network, peers = build_flooding_network(schema)
        peers["E0"].flood("q1", pattern, ttl=8)
        network.run()
        first = network.metrics.messages_total
        peers["E0"].flood("q1", pattern, ttl=8)  # same id: peers have seen it
        network.run()
        assert network.metrics.messages_total < first * 2

    def test_irrelevant_peers_counted(self, schema, pattern):
        network, peers = build_flooding_network(schema)
        peers["E0"].flood("q1", pattern, ttl=8)
        network.run()
        assert sum(network.metrics.irrelevant_queries.values()) > 0

    def test_son_contacts_exactly_annotated(self, schema, pattern):
        contacts = son_routing_contacts(
            pattern, list(paper_active_schemas(schema).values()), schema
        )
        assert contacts == {"P1", "P2", "P3", "P4"}


class TestAdvertisementPolicies:
    def test_global_forwards_to_everyone(self, schema, pattern):
        ads = paper_active_schemas(schema)
        outcome = run_global_advertisements([pattern] * 5, ads, schema)
        assert outcome.queries_forwarded == 5 * len(ads)

    def test_active_forwards_to_relevant_only(self, schema, pattern):
        ads = paper_active_schemas(schema)
        outcome = run_active_schema_advertisements([pattern] * 5, ads, schema)
        assert outcome.queries_forwarded == 5 * 4  # all four are relevant here
        assert outcome.irrelevant_processed == 0

    def test_global_wastes_on_irrelevant_peers(self, schema, pattern):
        ads = dict(paper_active_schemas(schema))
        # add peers with an unrelated footprint
        from repro.rql.pattern import SchemaPath

        for i in range(4):
            ads[f"X{i}"] = ActiveSchema(
                schema.namespace.uri,
                [SchemaPath(N1.C3, N1.prop3, N1.C4)],
                peer_id=f"X{i}",
            )
        global_outcome = run_global_advertisements([pattern] * 5, ads, schema)
        active_outcome = run_active_schema_advertisements([pattern] * 5, ads, schema)
        assert global_outcome.wasted_fraction > 0
        assert active_outcome.wasted_fraction == 0
        assert active_outcome.queries_forwarded < global_outcome.queries_forwarded

    def test_per_peer_load_smaller_under_active(self, schema, pattern):
        ads = dict(paper_active_schemas(schema))
        from repro.rql.pattern import SchemaPath

        ads["X0"] = ActiveSchema(
            schema.namespace.uri, [SchemaPath(N1.C3, N1.prop3, N1.C4)], peer_id="X0"
        )
        global_outcome = run_global_advertisements([pattern] * 10, ads, schema)
        active_outcome = run_active_schema_advertisements([pattern] * 10, ads, schema)
        assert active_outcome.per_peer_load.get("X0", 0) == 0
        assert global_outcome.per_peer_load["X0"] == 10

    def test_advertisement_bytes_tradeoff(self, schema, pattern):
        """Active-schemas cost more advertisement bytes — the price of
        fine-grained routing."""
        ads = paper_active_schemas(schema)
        global_outcome = run_global_advertisements([pattern], ads, schema)
        active_outcome = run_active_schema_advertisements([pattern], ads, schema)
        assert active_outcome.advertisement_bytes > global_outcome.advertisement_bytes


class TestIndexMaintenance:
    def test_full_index_pays_per_update(self, schema):
        result = run_churn(Graph(), schema, updates=100, seed=0)
        assert result.full_index_cost.update_messages == 100

    def test_active_schema_pays_rarely(self, schema):
        result = run_churn(Graph(), schema, updates=200, seed=1)
        assert result.active_schema_cost.update_messages < 40

    def test_ratio_grows_with_stable_footprint(self, schema):
        """Once every property is populated, churn is free for
        active-schemas: the ratio grows with the update count."""
        short = run_churn(Graph(), schema, updates=50, seed=2)
        long = run_churn(Graph(), schema, updates=1000, seed=2)
        assert long.message_ratio > short.message_ratio

    def test_zero_updates(self, schema):
        result = run_churn(Graph(), schema, updates=0, seed=0)
        assert result.full_index_cost.update_messages == 0
        assert result.active_schema_cost.update_messages == 0

    def test_negative_updates_rejected(self, schema):
        with pytest.raises(ValueError):
            run_churn(Graph(), schema, updates=-1)
