"""Tests for the isSubsumed routing check (paper Section 2.3)."""

import pytest

from repro.rql.pattern import SchemaPath
from repro.rdf.vocabulary import LITERAL_CLASS
from repro.subsumption import can_answer, class_compatible, covers_pattern, is_subsumed
from repro.workloads.paper import (
    N1,
    paper_active_schemas,
    paper_query_pattern,
    paper_schema,
)


@pytest.fixture
def schema():
    return paper_schema()


@pytest.fixture
def q1(schema):
    return paper_query_pattern(schema).root


@pytest.fixture
def q2(schema):
    return paper_query_pattern(schema).patterns[1]


class TestIsSubsumed:
    def test_exact_match(self, schema):
        path = SchemaPath(N1.C1, N1.prop1, N1.C2)
        assert is_subsumed(path, path, schema)

    def test_subproperty_subsumed(self, schema):
        """Figure 2: P4's prop4 path is subsumed by Q1's prop1 path."""
        advertised = SchemaPath(N1.C5, N1.prop4, N1.C6)
        queried = SchemaPath(N1.C1, N1.prop1, N1.C2)
        assert is_subsumed(advertised, queried, schema)

    def test_superproperty_not_subsumed(self, schema):
        advertised = SchemaPath(N1.C1, N1.prop1, N1.C2)
        queried = SchemaPath(N1.C5, N1.prop4, N1.C6)
        assert not is_subsumed(advertised, queried, schema)

    def test_unrelated_property(self, schema):
        advertised = SchemaPath(N1.C2, N1.prop2, N1.C3)
        queried = SchemaPath(N1.C1, N1.prop1, N1.C2)
        assert not is_subsumed(advertised, queried, schema)

    def test_broader_advertised_class_accepted(self, schema):
        """A peer populating the broad class may hold narrow instances."""
        advertised = SchemaPath(N1.C1, N1.prop1, N1.C2)
        queried = SchemaPath(N1.C5, N1.prop1, N1.C2)
        assert is_subsumed(advertised, queried, schema)

    def test_incomparable_classes_rejected(self, schema):
        advertised = SchemaPath(N1.C3, N1.prop1, N1.C2)
        queried = SchemaPath(N1.C1, N1.prop1, N1.C2)
        assert not is_subsumed(advertised, queried, schema)

    def test_literal_ranges_must_match(self, schema):
        a = SchemaPath(N1.C1, N1.prop1, LITERAL_CLASS)
        q = SchemaPath(N1.C1, N1.prop1, N1.C2)
        assert not is_subsumed(a, q, schema)
        assert is_subsumed(
            SchemaPath(N1.C1, N1.prop1, LITERAL_CLASS),
            SchemaPath(N1.C1, N1.prop1, LITERAL_CLASS),
            schema,
        )


class TestClassCompatible:
    def test_reflexive(self, schema):
        assert class_compatible(N1.C1, N1.C1, schema)

    def test_both_directions(self, schema):
        assert class_compatible(N1.C5, N1.C1, schema)
        assert class_compatible(N1.C1, N1.C5, schema)

    def test_siblings_incompatible(self, schema):
        assert not class_compatible(N1.C3, N1.C1, schema)


class TestFigure2Annotations:
    """The full annotation table of Figure 2."""

    def test_q1_peers(self, schema, q1):
        ads = paper_active_schemas(schema)
        relevant = {p for p, a in ads.items() if can_answer(a, q1, schema)}
        assert relevant == {"P1", "P2", "P4"}

    def test_q2_peers(self, schema, q2):
        ads = paper_active_schemas(schema)
        relevant = {p for p, a in ads.items() if can_answer(a, q2, schema)}
        assert relevant == {"P1", "P3", "P4"}

    def test_covers_pattern(self, schema, q1):
        ads = paper_active_schemas(schema)
        assert covers_pattern(ads.values(), q1, schema)
        assert not covers_pattern([ads["P3"]], q1, schema)
