"""Tests for per-peer query rewriting."""

import pytest

from repro.errors import RoutingError
from repro.rql.pattern import SchemaPath
from repro.rvl import ActiveSchema
from repro.subsumption import narrow_class, rewrite_for_peer
from repro.workloads.paper import N1, paper_query_pattern, paper_schema


@pytest.fixture
def schema():
    return paper_schema()


@pytest.fixture
def q1(schema):
    return paper_query_pattern(schema).root


def advertisement(schema, *paths, peer="P"):
    return ActiveSchema(schema.namespace.uri, paths, peer_id=peer)


class TestNarrowClass:
    def test_keeps_narrower_advertised(self, schema):
        assert narrow_class(N1.C5, N1.C1, schema) == N1.C5

    def test_keeps_narrower_queried(self, schema):
        assert narrow_class(N1.C1, N1.C5, schema) == N1.C5

    def test_equal_classes(self, schema):
        assert narrow_class(N1.C1, N1.C1, schema) == N1.C1

    def test_incomparable_raises(self, schema):
        with pytest.raises(RoutingError):
            narrow_class(N1.C3, N1.C1, schema)


class TestRewrite:
    def test_irrelevant_peer_returns_none(self, schema, q1):
        ad = advertisement(schema, SchemaPath(N1.C2, N1.prop2, N1.C3))
        assert rewrite_for_peer(q1, ad, schema) is None

    def test_exact_match_unchanged(self, schema, q1):
        ad = advertisement(schema, SchemaPath(N1.C1, N1.prop1, N1.C2))
        rewritten = rewrite_for_peer(q1, ad, schema)
        assert rewritten is not None
        assert rewritten.schema_path == q1.schema_path

    def test_subsumed_narrows_classes(self, schema, q1):
        """P4's rewrite: Q1's classes narrow to C5/C6 but the property
        stays prop1 (entailment finds the prop4 statements)."""
        ad = advertisement(schema, SchemaPath(N1.C5, N1.prop4, N1.C6))
        rewritten = rewrite_for_peer(q1, ad, schema)
        assert rewritten.schema_path.domain == N1.C5
        assert rewritten.schema_path.range == N1.C6
        assert rewritten.schema_path.property == N1.prop1

    def test_variables_preserved(self, schema, q1):
        ad = advertisement(schema, SchemaPath(N1.C5, N1.prop4, N1.C6))
        rewritten = rewrite_for_peer(q1, ad, schema)
        assert rewritten.subject_var == q1.subject_var
        assert rewritten.object_var == q1.object_var
        assert rewritten.projected == q1.projected
        assert rewritten.label == q1.label

    def test_multiple_matching_paths_keep_query_classes(self, schema, q1):
        """A peer with prop1 *and* prop4: one general subquery covers both."""
        ad = advertisement(
            schema,
            SchemaPath(N1.C1, N1.prop1, N1.C2),
            SchemaPath(N1.C5, N1.prop4, N1.C6),
        )
        rewritten = rewrite_for_peer(q1, ad, schema)
        assert rewritten.schema_path == q1.schema_path
