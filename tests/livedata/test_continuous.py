"""Unit tests for continuous (standing) queries and top-k cancel."""

from repro.livedata import LiveDataDriver, UpdateStream
from repro.livedata.updates import RefreshStanding
from repro.obs.telemetry import FlightRecorder
from repro.rql.evaluator import query as centralized_query
from tests.difftest.harness import build_hybrid, make_workload
from tests.difftest.live_harness import merged_current


def _deployment(seed=5):
    workload = make_workload(seed)
    system = build_hybrid(workload)
    return workload, system


class TestStandingQueries:
    def test_initial_snapshot_is_pushed(self):
        workload, system = _deployment()
        client = system.add_client("C")
        query_id = client.subscribe("P1", workload.queries[0])
        system.run()
        assert query_id in client.continuous
        assert len(client.continuous_updates[query_id]) == 1
        assert client.continuous_updates[query_id][0].revision == 0

    def test_refresh_without_data_change_pushes_nothing(self):
        workload, system = _deployment()
        client = system.add_client("C")
        query_id = client.subscribe("P1", workload.queries[0])
        system.run()
        client.send("P1", RefreshStanding(1))
        system.run()
        assert len(client.continuous_updates[query_id]) == 1  # snapshot only

    def test_update_then_refresh_pushes_a_folding_delta(self):
        workload, system = _deployment()
        client = system.add_client("C")
        text = workload.queries[0]
        query_id = client.subscribe("P1", text)
        system.run()
        stream = UpdateStream(
            workload.synthetic.schema,
            workload.bases,
            seed=5,
            revisions=1,
            rate=0.3,
        )
        driver = LiveDataDriver(system, stream)
        driver.inject(0)
        system.run()
        driver.refresh_standing(["P1"], 1)
        system.run()
        expected = centralized_query(
            text,
            merged_current(system, workload.peer_ids),
            workload.synthetic.schema,
        ).distinct()
        assert client.continuous[query_id] == expected

    def test_cancel_stops_pushes(self):
        workload, system = _deployment()
        client = system.add_client("C")
        query_id = client.subscribe("P1", workload.queries[0])
        system.run()
        client.unsubscribe("P1", query_id)
        system.run()
        stream = UpdateStream(
            workload.synthetic.schema,
            workload.bases,
            seed=5,
            revisions=1,
            rate=0.3,
        )
        driver = LiveDataDriver(system, stream)
        driver.inject(0)
        system.run()
        driver.refresh_standing(["P1"], 1)
        system.run()
        assert len(client.continuous_updates[query_id]) == 1  # snapshot only

    def test_malformed_standing_query_reports_an_error(self):
        _, system = _deployment()
        client = system.add_client("C")
        query_id = client.subscribe("P1", "THIS IS NOT RQL")
        system.run()
        assert query_id in client.continuous_errors

    def test_burst_of_refreshes_queues_revisions(self):
        """Refreshes arriving faster than evaluations must all be
        served, in order (pending_revisions drain)."""
        workload, system = _deployment()
        client = system.add_client("C")
        query_id = client.subscribe("P1", workload.queries[0])
        system.run()
        for revision in (1, 2, 3):
            client.send("P1", RefreshStanding(revision))
        system.run()
        standing = system.peers["P1"]._standing[query_id]
        assert standing.pending_revisions == []
        assert not standing.evaluating

    def test_continuous_push_metric_counts(self):
        workload, system = _deployment()
        client = system.add_client("C")
        client.subscribe("P1", workload.queries[0])
        system.run()
        assert system.network.metrics.continuous_pushes >= 1


class TestTopKCancelGates:
    def test_disabled_by_default(self):
        workload, system = _deployment(0)
        client = system.add_client("C")
        query_id = client.submit("P1", workload.queries[0], limit=3)
        system.run()
        assert client.result(query_id).error is None
        assert system.network.metrics.topk_cancels == 0

    def test_no_limit_means_no_cancel(self):
        workload, system = _deployment(0)
        for peer_id in workload.peer_ids:
            system.peers[peer_id].topk_cancel = True
            system.peers[peer_id].stream_chunk_rows = 2
        client = system.add_client("C")
        query_id = client.submit("P1", workload.queries[0])
        system.run()
        assert client.result(query_id).error is None
        assert system.network.metrics.topk_cancels == 0

    def test_cancel_emits_flight_recorder_event(self):
        workload, system = _deployment(0)
        recorder = FlightRecorder(clock=lambda: system.network.now)
        system.network.flight_recorder = recorder
        for peer_id in workload.peer_ids:
            system.peers[peer_id].topk_cancel = True
            system.peers[peer_id].stream_chunk_rows = 4
        client = system.add_client("C")
        query_id = client.submit("P1", workload.queries[0], limit=5)
        system.run()
        assert client.result(query_id).error is None
        events = recorder.events(kind="topk_cancel")
        assert events and events[0]["peer"] == "P1"
