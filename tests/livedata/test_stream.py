"""Unit tests for seeded update streams (repro.livedata.stream)."""

from repro.livedata import UpdateStream, covering_view_text
from repro.livedata.updates import DeleteTriple, InsertTriple, RedefineViews
from repro.peers.base import PeerBase
from repro.rvl.parser import parse_view
from tests.difftest.harness import make_workload


def _stream(seed, **kwargs):
    workload = make_workload(seed)
    defaults = dict(revisions=3)
    defaults.update(kwargs)
    return workload, UpdateStream(
        workload.synthetic.schema, workload.bases, seed=seed, **defaults
    )


class TestDeterminism:
    def test_same_seed_same_stream(self):
        _, first = _stream(9)
        _, second = _stream(9)
        assert first.revisions == second.revisions

    def test_different_seeds_differ(self):
        _, first = _stream(9)
        _, second = _stream(10)
        assert first.revisions != second.revisions

    def test_generation_never_mutates_the_real_bases(self):
        workload = make_workload(4)
        before = {p: set(workload.bases[p].triples()) for p in workload.peer_ids}
        UpdateStream(
            workload.synthetic.schema, workload.bases, seed=4, revisions=3
        )
        for peer in workload.peer_ids:
            assert set(workload.bases[peer].triples()) == before[peer]


class TestRecordValidity:
    def test_deletes_hit_and_inserts_are_fresh(self):
        """Replaying the stream against base copies: every delete
        retracts an existing statement, every insert asserts a new one
        (generation ran against shadows, so records always apply)."""
        workload, stream = _stream(2, revisions=4)
        shadows = {p: workload.bases[p].copy() for p in workload.peer_ids}
        for batch in stream.all_batches():
            shadow = shadows[batch.target]
            for record in batch.updates:
                if isinstance(record, InsertTriple):
                    assert shadow.add_triple(record.triple)
                elif isinstance(record, DeleteTriple):
                    assert shadow.remove_triple(record.triple)
        for peer in workload.peer_ids:
            assert set(shadows[peer].triples()) == set(
                stream.final_shadows[peer].triples()
            )

    def test_per_peer_rates_scale_batch_sizes(self):
        workload, hot = _stream(3, per_peer_rates={"P1": 0.4})
        _, cold = _stream(3, per_peer_rates={"P1": 0.02})
        hot_records = sum(
            len(b.updates) for b in hot.all_batches() if b.target == "P1"
        )
        cold_records = sum(
            len(b.updates) for b in cold.all_batches() if b.target == "P1"
        )
        assert hot_records > cold_records


class TestCoveringViews:
    def test_view_redefinitions_stay_covering(self):
        """After any prefix of the stream, a peer's views must cover
        every populated property — the invariant that keeps routing
        complete (and the centralized oracle valid)."""
        workload, stream = _stream(1, revisions=4, view_probability=0.9)
        schema = workload.synthetic.schema
        shadows = {p: workload.bases[p].copy() for p in workload.peer_ids}
        views = {p: () for p in workload.peer_ids}
        saw_a_view = False
        for batches in stream.revisions:
            for batch in batches:
                shadow = shadows[batch.target]
                for record in batch.updates:
                    if isinstance(record, InsertTriple):
                        shadow.add_triple(record.triple)
                    elif isinstance(record, DeleteTriple):
                        shadow.remove_triple(record.triple)
                    elif isinstance(record, RedefineViews):
                        views[batch.target] = tuple(
                            parse_view(text) for text in record.texts
                        )
            for peer in workload.peer_ids:
                if not views[peer]:
                    continue
                saw_a_view = True
                base = PeerBase(shadows[peer], schema, views=views[peer])
                advertised = {
                    path.property for path in base.active_schema(peer).paths
                }
                populated = {
                    prop
                    for prop in schema.properties
                    if next(shadows[peer].triples(None, prop, None), None)
                    is not None
                }
                assert populated <= advertised, (
                    f"{peer} view under-advertises {populated - advertised}"
                )
        assert saw_a_view  # the scenario actually exercised views


class TestCoveringViewText:
    def test_generates_parsable_covering_view(self):
        workload = make_workload(0)
        schema = workload.synthetic.schema
        properties = sorted(schema.properties, key=lambda u: u.value)[:2]
        text = covering_view_text(schema, properties)
        view = parse_view(text)
        assert view is not None
