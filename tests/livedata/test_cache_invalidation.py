"""Churn-scoped cache invalidation driven by live updates, end to end.

The satellite-4 hazard, pinned at the protocol level: a coordinator
holds a compiled plan whose subqueries were rewritten against a peer's
*old* view definition.  When that peer redefines its views, the
resulting advertisement delta must evict every such plan at every
holder — otherwise a raced stale annotation (same fingerprint, old
routing) would be served the outdated rewrite.
"""

from repro.livedata import LiveDataDriver, covering_view_text
from repro.livedata.updates import DeleteTriple, RedefineViews, UpdateBatch
from repro.rql.evaluator import query as centralized_query
from tests.difftest.harness import build_adhoc, build_hybrid, make_workload
from tests.difftest.live_harness import merged_current


class _OneShot:
    """A minimal single-batch injector reusing the driver machinery."""

    def __init__(self, system, batch):
        class _Stream:
            revisions = [[batch]]

            def all_batches(self):
                return [batch]

        self.driver = LiveDataDriver(system, _Stream())

    def fire(self):
        self.driver.inject(0)


def _populated(workload, peer_id):
    schema = workload.synthetic.schema
    base = workload.bases[peer_id]
    return sorted(
        (
            prop
            for prop in schema.properties
            if next(base.triples(None, prop, None), None) is not None
        ),
        key=lambda u: u.value,
    )


def _redefinition_batch(workload, peer_id, revision=1):
    """A footprint-*changing* redefinition: empty one populated property
    and redefine views to cover the survivors.  (A same-footprint
    redefinition is deliberately silent — footprint economy — so the
    hazard only arises when a delta actually flows.)"""
    populated = _populated(workload, peer_id)
    assert len(populated) >= 2, f"{peer_id} too sparse for this scenario"
    victim, survivors = populated[0], populated[1:]
    deletes = tuple(
        DeleteTriple(t)
        for t in workload.bases[peer_id].triples(None, victim, None)
    )
    text = covering_view_text(workload.synthetic.schema, survivors)
    return UpdateBatch(
        peer_id, revision, deletes + (RedefineViews((text,)),)
    )


def test_view_redefinition_evicts_plans_naming_the_peer_adhoc():
    workload = make_workload(1)
    system = build_adhoc(workload)
    coordinator = system.peers["P1"]
    assert coordinator.plan_cache is not None
    # warm the plan cache with a query routed through P2's data
    for text in workload.queries:
        try:
            system.query("P1", text)
        except Exception:
            pass
    planned_peers = {
        peer for entry in coordinator.plan_cache._entries.values()
        for peer in entry[2]
    }
    assert planned_peers, "no plans cached; scenario is vacuous"
    target = next(
        p
        for p in sorted(planned_peers)
        if len(_populated(workload, p)) >= 2
    )
    before = coordinator.plan_cache.stats.invalidations
    shot = _OneShot(system, _redefinition_batch(workload, target))
    shot.fire()
    system.run()
    assert coordinator.plan_cache.stats.invalidations > before
    assert not any(
        target in entry[2]
        for entry in coordinator.plan_cache._entries.values()
    ), f"a plan naming {target} survived its view redefinition"
    # and the system still answers correctly afterwards
    for text in workload.queries:
        try:
            actual = system.query("P1", text)
        except Exception as exc:
            assert "no relevant peers" in str(exc)
            continue
        expected = centralized_query(
            text,
            merged_current(system, workload.peer_ids),
            workload.synthetic.schema,
        ).distinct()
        assert actual == expected


def test_own_view_redefinition_evicts_own_plans_hybrid():
    workload = make_workload(1)
    system = build_hybrid(workload)
    coordinator = system.peers["P1"]
    assert coordinator.plan_cache is not None
    for text in workload.queries:
        try:
            system.query("P1", text)
        except Exception:
            pass
    if not any(
        "P1" in entry[2] for entry in coordinator.plan_cache._entries.values()
    ):
        return  # no plan names P1 under this seed; covered by adhoc twin
    shot = _OneShot(system, _redefinition_batch(workload, "P1"))
    shot.fire()
    system.run()
    assert not any(
        "P1" in entry[2] for entry in coordinator.plan_cache._entries.values()
    )
