"""Unit tests for incremental active-schema maintenance."""

from repro.livedata import LiveMaintainer, covering_view_text
from repro.livedata.updates import (
    DeleteTriple,
    InsertTriple,
    RedefineViews,
    UpdateBatch,
)
from repro.peers.base import PeerBase
from repro.rdf.terms import URI
from repro.rdf.triple import Triple
from repro.workloads.paper import N1, paper_peer_bases, paper_schema

SCHEMA = paper_schema()


def _maintainer(peer_id="P1"):
    base = PeerBase(paper_peer_bases()[peer_id], SCHEMA)
    return base, LiveMaintainer(base, peer_id)


class TestFootprintEconomy:
    def test_extensional_churn_stays_silent(self):
        """Inserting a statement of an already-populated property moves
        data, not the footprint: no advertisement delta is pushed."""
        base, maintainer = _maintainer()
        populated = next(iter(maintainer.current.paths)).property
        fresh = Triple(URI("urn:t:new-s"), populated, URI("urn:t:new-o"))
        result = maintainer.apply(UpdateBatch("P1", 1, (InsertTriple(fresh),)))
        assert result.applied == 1
        assert result.delta is None
        assert maintainer.current == base.active_schema("P1")

    def test_idempotent_reinsert_applies_nothing(self):
        base, maintainer = _maintainer()
        existing = next(base.graph.triples(None, None, None))
        result = maintainer.apply(
            UpdateBatch("P1", 1, (InsertTriple(existing),))
        )
        assert result.applied == 0
        assert result.delta is None

    def test_missing_delete_applies_nothing(self):
        _, maintainer = _maintainer()
        ghost = Triple(URI("urn:t:ghost"), N1.prop1, URI("urn:t:ghost-o"))
        result = maintainer.apply(UpdateBatch("P1", 1, (DeleteTriple(ghost),)))
        assert result.applied == 0
        assert result.delta is None


class TestFootprintMoves:
    def test_emptying_a_property_retracts_its_path(self):
        base, maintainer = _maintainer()
        target = next(iter(maintainer.current.paths)).property
        victims = list(base.graph.triples(None, target, None))
        result = maintainer.apply(
            UpdateBatch("P1", 1, tuple(DeleteTriple(t) for t in victims))
        )
        assert result.delta is not None
        assert any(p.property == target for p in result.delta.removed_paths)
        assert maintainer.current == base.active_schema("P1")

    def test_populating_a_property_advertises_its_path(self):
        base, maintainer = _maintainer("P2")
        advertised = {p.property for p in maintainer.current.paths}
        silent = next(
            p for p in SCHEMA.properties if p not in advertised
        )
        fresh = Triple(URI("urn:t:s"), silent, URI("urn:t:o"))
        result = maintainer.apply(
            UpdateBatch("P2", 1, (InsertTriple(fresh),))
        )
        assert result.delta is not None
        assert any(p.property == silent for p in result.delta.added_paths)
        assert maintainer.current == base.active_schema("P2")


class TestViewRedefinition:
    def test_redefinition_changes_footprint_and_flags_batch(self):
        base, maintainer = _maintainer()
        properties = sorted(
            {p.property for p in maintainer.current.paths},
            key=lambda u: u.value,
        )[:1]
        text = covering_view_text(SCHEMA, properties, prefix="n1")
        result = maintainer.apply(
            UpdateBatch("P1", 1, (RedefineViews((text,)),))
        )
        assert result.views_changed
        assert maintainer.current == base.active_schema("P1")

    def test_reverting_to_materialised_rescans(self):
        base, maintainer = _maintainer()
        properties = sorted(
            {p.property for p in maintainer.current.paths},
            key=lambda u: u.value,
        )[:1]
        text = covering_view_text(SCHEMA, properties, prefix="n1")
        maintainer.apply(UpdateBatch("P1", 1, (RedefineViews((text,)),)))
        result = maintainer.apply(UpdateBatch("P1", 2, (RedefineViews(()),)))
        assert result.views_changed
        assert base.views == ()
        assert maintainer.current == base.active_schema("P1")


class TestEncodedPatching:
    def test_warm_encoded_twin_is_patched_in_place(self):
        base, maintainer = _maintainer()
        encoded = base.encoded_base()
        encoded.warm()
        populated = next(iter(maintainer.current.paths)).property
        fresh = Triple(URI("urn:t:enc-s"), populated, URI("urn:t:enc-o"))
        version_before = encoded._version
        maintainer.apply(UpdateBatch("P1", 1, (InsertTriple(fresh),)))
        # patched forward, not wiped: version tracked the graph
        assert encoded._version == base.graph.version
        assert encoded._version != version_before
        definition = SCHEMA.property_def(populated)
        from repro.rql.pattern import SchemaPath

        subjects, objects = encoded.pattern_columns(
            SchemaPath(definition.domain, populated, definition.range)
        )
        sid = encoded.dictionary.encode(fresh.subject)
        oid = encoded.dictionary.encode(fresh.object)
        assert (sid, oid) in set(zip(subjects, objects))
