"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.rdf import save_graph, save_schema
from repro.workloads.paper import N1, paper_peer_bases, paper_schema


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "⋈(∪(Q1@P1, Q1@P2, Q1@P4), ∪(Q2@P1, Q2@P3, Q2@P4))" in out
        assert "answer (9 rows):" in out


class TestFigures:
    def test_figures_match_paper(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Q1<-[P1, P2, P4] Q2<-[P1, P3, P4]" in out
        assert "∪(⋈(Q1@P2, Q2@?), ⋈(Q1@P3, Q2@?))" in out


class TestQuery:
    @pytest.fixture
    def files(self, tmp_path):
        schema = paper_schema()
        schema_path = tmp_path / "schema.nt"
        save_schema(schema, str(schema_path))
        peer_paths = {}
        for peer_id, graph in paper_peer_bases().items():
            path = tmp_path / f"{peer_id}.nt"
            save_graph(graph, str(path))
            peer_paths[peer_id] = str(path)
        return str(schema_path), peer_paths

    def _args(self, files, extra=()):
        schema_path, peer_paths = files
        args = ["query", "--schema", schema_path, "--namespace", N1.uri]
        for peer_id, path in peer_paths.items():
            args += ["--peer", f"{peer_id}={path}"]
        args += ["--via", "P1", *extra]
        args.append(
            "SELECT X, Y FROM {X} n1:prop1 {Y}, {Y} n1:prop2 {Z} "
            f"USING NAMESPACE n1 = &{N1.uri}&"
        )
        return args

    def test_query_from_files(self, files, capsys):
        assert main(self._args(files)) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines()[0] == "X\tY"
        assert "# 9 rows" in captured.err

    def test_limit_flag(self, files, capsys):
        assert main(self._args(files, extra=["--limit", "3"])) == 0
        assert "# 3 rows" in capsys.readouterr().err

    def test_bad_peer_spec(self, files, capsys):
        schema_path, peer_paths = files
        args = [
            "query", "--schema", schema_path, "--namespace", N1.uri,
            "--peer", "broken-spec", "--via", "P1", "SELECT X FROM {X} n1:prop1 {Y}",
        ]
        assert main(args) == 2

    def test_unknown_via(self, files):
        schema_path, peer_paths = files
        path = next(iter(peer_paths.values()))
        args = [
            "query", "--schema", schema_path, "--namespace", N1.uri,
            "--peer", f"P1={path}", "--via", "ZZZ",
            "SELECT X FROM {X} n1:prop1 {Y}",
        ]
        assert main(args) == 2

    def test_failing_query_exit_code(self, files, capsys):
        schema_path, peer_paths = files
        path = next(iter(peer_paths.values()))
        args = [
            "query", "--schema", schema_path, "--namespace", N1.uri,
            "--peer", f"P1={path}", "--via", "P1",
            "THIS IS NOT RQL",
        ]
        assert main(args) == 1
        assert "query failed" in capsys.readouterr().err


class TestTrace:
    def test_trace_check_hybrid(self, capsys):
        assert main(["trace", "--check"]) == 0
        captured = capsys.readouterr()
        assert "query @client1" in captured.out
        assert "route @SP1" in captured.out
        assert "trace OK" in captured.err
        assert "no gaps" in captured.err

    def test_trace_check_adhoc(self, capsys):
        assert main(["trace", "--check", "--arch", "adhoc"]) == 0
        captured = capsys.readouterr()
        assert "delegate @" in captured.out
        assert "trace OK" in captured.err

    def test_trace_json_export(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.json"
        assert main(["trace", "--json", str(path)]) == 0
        export = json.loads(path.read_text())
        assert export["schema"] == "repro.obs/trace-v1"
        assert export["traces"][0]["spans"]

    def test_trace_no_events_hides_annotations(self, capsys):
        assert main(["trace", "--arch", "adhoc", "--no-events"]) == 0
        with_flag = capsys.readouterr().out
        assert main(["trace", "--arch", "adhoc"]) == 0
        without_flag = capsys.readouterr().out
        # the delegation rounds annotate events; --no-events drops them
        assert "· " not in with_flag
        assert "· " in without_flag


class TestTraceFollow:
    def test_query_filter_hits(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.json"
        assert main(["trace", "--json", str(path)]) == 0
        trace_id = json.loads(path.read_text())["traces"][0]["trace_id"]
        capsys.readouterr()
        assert main(["trace", "--query", trace_id, "--check"]) == 0
        assert "trace OK" in capsys.readouterr().err

    def test_query_filter_miss_lists_available(self, capsys):
        assert main(["trace", "--query", "nope-q9"]) == 1
        err = capsys.readouterr().err
        assert "no trace for query 'nope-q9'" in err
        assert "collected:" in err

    def test_from_export_file(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.json"
        assert main(["trace", "--json", str(path)]) == 0
        trace_id = json.loads(path.read_text())["traces"][0]["trace_id"]
        capsys.readouterr()
        assert main(["trace", "--from", str(path), "--query", trace_id,
                     "--check"]) == 0
        captured = capsys.readouterr()
        assert "query @client1" in captured.out
        assert "trace OK" in captured.err

    def test_from_export_miss(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["trace", "--json", str(path)]) == 0
        capsys.readouterr()
        assert main(["trace", "--from", str(path), "--query", "absent"]) == 1
        assert "export holds:" in capsys.readouterr().err

    def test_from_unreadable_file(self, tmp_path, capsys):
        assert main(["trace", "--from", str(tmp_path / "missing.json")]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestMetrics:
    def test_metrics_exposition(self, capsys):
        assert main(["metrics", "--queries", "2"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_messages_total counter" in out
        assert 'repro_query_latency_quantile{quantile="p50"}' in out
        assert 'repro_stage_duration_bucket{stage="execute"' in out
        assert "# TYPE repro_peer_gauge gauge" in out

    def test_metrics_adhoc(self, capsys):
        assert main(["metrics", "--arch", "adhoc", "--queries", "1"]) == 0
        assert "repro_messages_total" in capsys.readouterr().out


class TestMetricsWatch:
    def test_watch_without_a_source_is_an_error(self, capsys):
        assert main(["metrics", "--watch", "1"]) == 2
        assert "--watch needs" in capsys.readouterr().err

    def test_scrape_empty_dir(self, tmp_path, capsys):
        assert main(["metrics", "--scrape", str(tmp_path)]) == 1
        assert "*.endpoint.json" in capsys.readouterr().err


class TestTop:
    def test_empty_dir_is_an_error(self, tmp_path, capsys):
        assert main(["top", str(tmp_path)]) == 1
        assert "no *.endpoint.json" in capsys.readouterr().err

    def test_dead_endpoints_render_as_down(self, tmp_path, capsys):
        import socket

        from repro.obs.telemetry import write_endpoint_file

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        write_endpoint_file(tmp_path, "P1", "127.0.0.1", port)
        assert main(["top", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "peers 0/1 up" in out
        assert "availability 0%" in out
        assert "down" in out


class TestAlerts:
    def test_demo_fires_the_shed_rate_alert(self, capsys):
        assert main(["alerts", "--demo"]) == 0
        out = capsys.readouterr().out
        assert "FIRING" in out and "shed-rate" in out
        assert "fired rules:" in out

    def test_no_directory_and_no_demo_is_usage_error(self, capsys):
        assert main(["alerts"]) == 2
        assert "--demo" in capsys.readouterr().err

    def test_replay_reports_transitions_and_active(self, tmp_path, capsys):
        import json

        records = [
            {"kind": "rollup", "t": 1.0},
            {"kind": "alert", "schema": "repro.obs/alert-v1", "state": "firing",
             "rule": "shed-rate", "scope": "cluster", "t": 1.0,
             "metric": "shed_rate", "value": 0.4, "threshold": 0.25,
             "op": ">", "window": 60.0},
            {"kind": "rollup", "t": 2.0},
        ]
        (tmp_path / "timeline.jsonl").write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        assert main(["alerts", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "FIRING" in captured.out and "shed-rate" in captured.out
        assert "2 scrape rounds, 1 transitions, 1 still firing" in captured.err
        assert main(["alerts", str(tmp_path), "--fail-on-active"]) == 1

    def test_replay_without_timeline(self, tmp_path, capsys):
        assert main(["alerts", str(tmp_path)]) == 1
        assert "no timeline.jsonl" in capsys.readouterr().err


class TestServe:
    def test_serve_answers_everything(self, capsys):
        assert main(["serve", "--count", "8", "--clients", "2",
                     "--arrival-rate", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "deployment : hybrid" in out
        assert "8 queries (8 answered" in out
        assert "throughput" in out

    def test_serve_adhoc_closed_loop(self, capsys):
        assert main(["serve", "--arch", "adhoc", "--mode", "closed",
                     "--count", "6", "--clients", "3", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "deployment : adhoc" in out
        assert "0 silent" in out

    def test_serve_with_admission_and_fairness(self, capsys):
        assert main(["serve", "--count", "10", "--max-concurrent", "2",
                     "--max-queued", "8", "--fair-quantum", "0.5",
                     "--arrival-rate", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "10 queries (10 answered" in out

    def test_serve_exhausted_budget_fails_with_diagnostics(self, capsys):
        assert main(["serve", "--count", "8", "--arrival-rate", "5.0",
                     "--max-events", "30"]) == 1
        err = capsys.readouterr().err
        assert "event budget exhausted" in err
        assert "queries in flight" in err
