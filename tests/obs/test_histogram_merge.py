"""Property tests for Histogram.merge: the distributed-aggregation
algebra behind merged live-run metrics and cluster latency rollups."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.histogram import DEFAULT_GROWTH, Histogram

values = st.lists(
    st.floats(min_value=1e-3, max_value=1e4, allow_nan=False,
              allow_infinity=False),
    min_size=1,
    max_size=40,
)


def hist(samples):
    histogram = Histogram()
    histogram.record_many(samples)
    return histogram


def merged(*histograms):
    out = Histogram()
    for histogram in histograms:
        out.merge(histogram)
    return out


def state(histogram):
    return (
        histogram.cumulative_buckets(),
        histogram.count,
        pytest.approx(histogram.total),
        histogram.min,
        histogram.max,
    )


class TestAlgebra:
    @given(values, values)
    @settings(max_examples=60)
    def test_commutative(self, a, b):
        assert state(merged(hist(a), hist(b))) == state(merged(hist(b), hist(a)))

    @given(values, values, values)
    @settings(max_examples=40)
    def test_associative(self, a, b, c):
        left = merged(merged(hist(a), hist(b)), hist(c))
        right = merged(hist(a), merged(hist(b), hist(c)))
        assert state(left) == state(right)

    @given(values, values)
    @settings(max_examples=60)
    def test_merge_equals_recording_everything_in_one(self, a, b):
        # identical bucket boundaries make the merge exact: every
        # percentile of the merged histogram equals the all-in-one one
        together = hist(a + b)
        via_merge = merged(hist(a), hist(b))
        assert state(via_merge) == state(together)
        for p in (0, 25, 50, 90, 99, 100):
            assert via_merge.percentile(p) == pytest.approx(
                together.percentile(p)
            )

    def test_mismatched_growth_refused(self):
        with pytest.raises(ValueError):
            Histogram(growth=1.05).merge(Histogram(growth=2.0))


class TestQuantileError:
    @given(values, values, st.sampled_from([50.0, 90.0, 99.0]))
    @settings(max_examples=80)
    def test_merged_quantile_within_one_bucket_of_the_data(self, a, b, p):
        # the geometric buckets guarantee ~(growth-1) relative error:
        # the winning bucket contains the true order statistic, and the
        # interpolated answer stays inside that bucket
        histogram = merged(hist(a), hist(b))
        data = sorted(a + b)
        rank = p / 100.0 * len(data)
        true_value = data[max(0, math.ceil(rank) - 1)]
        observed = histogram.percentile(p)
        assert abs(observed - true_value) <= true_value * (DEFAULT_GROWTH - 1) + 1e-9

    @given(values)
    @settings(max_examples=40)
    def test_quantiles_are_monotone_and_clamped(self, a):
        histogram = hist(a)
        quantiles = [histogram.percentile(p) for p in (0, 10, 50, 90, 100)]
        assert quantiles == sorted(quantiles)
        assert histogram.min <= quantiles[0]
        assert quantiles[-1] <= histogram.max
