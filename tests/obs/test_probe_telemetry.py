"""Tests for the in-sim telemetry probe and the sampling pipeline."""

import json

from repro.obs.telemetry import (
    ClusterSeries,
    PeerSeries,
    TelemetryProbe,
    parse_exposition,
    sample_from_exposition,
    sample_metricset,
)
from repro.obs.telemetry.probe import HEALTH_SCHEMA, TRACEZ_SCHEMA
from repro.systems import HybridSystem
from repro.workloads.paper import PAPER_QUERY, paper_peer_bases, paper_schema


def paper_system(seed=0):
    system = HybridSystem(paper_schema(), seed=seed)
    system.add_super_peer("SP1")
    for peer_id, graph in paper_peer_bases().items():
        system.add_peer(peer_id, graph, "SP1")
    return system


def probed(system):
    peers = list(system.peers.values()) + list(system.super_peers.values())
    return TelemetryProbe(system.network, peers=peers)


class TestProbe:
    def test_healthz_schema_and_fields(self):
        system = paper_system()
        system.query("P1", PAPER_QUERY)
        health = probed(system).healthz()
        assert health["schema"] == HEALTH_SCHEMA
        assert health["status"] == "ok"
        assert health["role"] == "system"
        assert health["queries_finished"] >= 1
        assert health["inflight_queries"] == 0
        assert health["quarantined"] == []
        json.dumps(health)  # JSON-clean

    def test_tracez_summarises_the_query(self):
        system = paper_system()
        system.query("P1", PAPER_QUERY)
        tracez = probed(system).tracez()
        assert tracez["schema"] == TRACEZ_SCHEMA
        assert tracez["collected"] >= 1
        trace = tracez["traces"][-1]
        assert trace["spans"] > 1
        assert trace["problems"] == []
        assert trace["duration"] is not None

    def test_metrics_text_parses_with_the_scrape_parser(self):
        system = paper_system()
        system.query("P1", PAPER_QUERY)
        samples = parse_exposition(probed(system).metrics_text())
        families = {name for name, _, _ in samples}
        assert "repro_messages_total" in families
        assert "repro_query_latency_bucket" in families

    def test_probing_perturbs_nothing(self):
        # the probe is pull-based: two same-seed runs, one probed after
        # every query, end with identical metric snapshots
        bare, watched = paper_system(seed=3), paper_system(seed=3)
        probe = probed(watched)
        series = PeerSeries()
        for _ in range(3):
            bare.query("P1", PAPER_QUERY)
            watched.query("P1", PAPER_QUERY)
            probe.healthz()
            probe.tracez()
            series.append(probe.sample())
        assert bare.network.metrics.snapshot() == watched.network.metrics.snapshot()


class TestSamplingPipeline:
    def test_sim_and_exposition_paths_agree(self):
        # one MetricSet, read both ways: directly and through the
        # rendered exposition — the difftest invariant of the pipeline
        system = paper_system()
        system.query("P1", PAPER_QUERY)
        probe = probed(system)
        direct = sample_metricset(system.network.metrics, t=1.0)
        scraped = sample_from_exposition(
            parse_exposition(probe.metrics_text()), t=1.0
        )
        assert scraped.counters == direct.counters
        assert scraped.latency_buckets == direct.latency_buckets

    def test_rollup_rates_and_percentiles(self):
        system = paper_system()
        probe = probed(system)
        series = PeerSeries()
        for round_index in range(3):
            system.query("P1", PAPER_QUERY)
            series.append(probe.sample())
        rollup = series.rollup(window=10_000.0)
        assert rollup["queries_finished"] == 2.0  # deltas span 3 samples
        assert rollup["query_rate"] > 0
        assert rollup["shed_rate"] == 0.0
        assert rollup["p99_latency"] is not None
        assert rollup["p50_latency"] <= rollup["p99_latency"]

    def test_cluster_rollup_availability(self):
        from repro.obs.telemetry import TelemetrySample

        cluster = ClusterSeries()
        up = TelemetrySample(t=1.0, counters={"queries_finished": 4.0},
                             latency_buckets=((1.0, 4),), gauges={})
        down = TelemetrySample(t=1.0, counters={}, latency_buckets=(),
                               gauges={}, up=False)
        cluster.append("P1", up)
        cluster.append("P2", down)
        rollup = cluster.rollup(window=60.0)
        assert rollup["peers"] == 2
        assert rollup["peers_up"] == 1
        assert rollup["availability"] == 0.5
