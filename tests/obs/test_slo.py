"""Tests for the declarative SLO monitors (repro.obs.telemetry.slo)."""

from repro.obs.telemetry import SLOMonitor, SLORule, default_slo_rules, render_alert
from repro.obs.telemetry.slo import ALERT_SCHEMA


def rule(**overrides):
    base = dict(
        name="shed-rate", metric="shed_rate", op=">", threshold=0.25,
        window=60.0, for_samples=2, description="too many sheds",
    )
    base.update(overrides)
    return SLORule(**base)


class TestRule:
    def test_violated_ops(self):
        assert rule().violated({"shed_rate": 0.5}) is True
        assert rule().violated({"shed_rate": 0.1}) is False
        assert rule(op="<", threshold=0.75).violated({"shed_rate": 0.5}) is True

    def test_missing_metric_is_none(self):
        assert rule().violated({}) is None
        assert rule(metric="p99_latency").violated({"p99_latency": None}) is None


class TestMonitor:
    def test_debounce_needs_consecutive_violations(self):
        monitor = SLOMonitor((rule(for_samples=2),), scope="cluster")
        assert monitor.evaluate(1.0, {"shed_rate": 0.5}) == []
        events = monitor.evaluate(2.0, {"shed_rate": 0.5})
        assert [e["state"] for e in events] == ["firing"]
        assert events[0]["schema"] == ALERT_SCHEMA
        assert events[0]["rule"] == "shed-rate"
        assert events[0]["scope"] == "cluster"
        assert events[0]["value"] == 0.5

    def test_interrupted_streak_resets_the_debounce(self):
        monitor = SLOMonitor((rule(for_samples=2),))
        monitor.evaluate(1.0, {"shed_rate": 0.5})
        monitor.evaluate(2.0, {"shed_rate": 0.0})
        assert monitor.evaluate(3.0, {"shed_rate": 0.5}) == []
        assert monitor.active() == []

    def test_transitions_only(self):
        monitor = SLOMonitor((rule(for_samples=1),))
        assert len(monitor.evaluate(1.0, {"shed_rate": 0.5})) == 1
        # still violating: no repeat event while firing
        assert monitor.evaluate(2.0, {"shed_rate": 0.6}) == []
        resolved = monitor.evaluate(3.0, {"shed_rate": 0.0})
        assert [e["state"] for e in resolved] == ["resolved"]
        assert resolved[0]["fired_at"] == 1.0
        assert monitor.active() == []
        assert [e["state"] for e in monitor.history] == ["firing", "resolved"]

    def test_unavailable_metric_freezes_state(self):
        monitor = SLOMonitor((rule(for_samples=1),))
        monitor.evaluate(1.0, {"shed_rate": 0.5})
        # an empty window neither refires nor resolves
        assert monitor.evaluate(2.0, {}) == []
        assert len(monitor.active()) == 1

    def test_active_sorted_by_fire_time(self):
        rules = (rule(for_samples=1), rule(name="p99", metric="p99_latency",
                                           op=">", threshold=10.0, for_samples=1))
        monitor = SLOMonitor(rules)
        monitor.evaluate(1.0, {"shed_rate": 0.5})
        monitor.evaluate(2.0, {"shed_rate": 0.5, "p99_latency": 99.0})
        assert [e["rule"] for e in monitor.active()] == ["shed-rate", "p99"]


class TestDefaults:
    def test_stock_rules_cover_the_objectives(self):
        rules = default_slo_rules()
        assert {r.name for r in rules} == {
            "p99-latency", "shed-rate", "availability", "partial-rate",
        }
        availability = next(r for r in rules if r.name == "availability")
        assert availability.for_samples == 1  # a down peer is never noise

    def test_bounds_are_tunable(self):
        rules = default_slo_rules(p99_bound=42.0, shed_bound=0.1, window=5.0)
        p99 = next(r for r in rules if r.name == "p99-latency")
        assert p99.threshold == 42.0 and p99.window == 5.0
        shed = next(r for r in rules if r.name == "shed-rate")
        assert shed.threshold == 0.1

    def test_render_alert_is_one_line(self):
        monitor = SLOMonitor((rule(for_samples=1),))
        (event,) = monitor.evaluate(7.0, {"shed_rate": 0.5})
        line = render_alert(event)
        assert "FIRING" in line and "shed-rate" in line and "\n" not in line
