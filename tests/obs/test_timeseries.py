"""Tests for the windowed time-series layer (repro.obs.telemetry)."""

import pytest

from repro.obs.telemetry import TimeSeries, delta_buckets, percentile_from_buckets


class TestRing:
    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            TimeSeries(capacity=1)

    def test_appends_in_order(self):
        series = TimeSeries(capacity=4)
        for t in range(3):
            series.append(float(t), float(t * 10))
        assert len(series) == 3
        assert series.samples() == [(0.0, 0.0), (1.0, 10.0), (2.0, 20.0)]
        assert series.latest() == (2.0, 20.0)

    def test_overwrites_oldest_at_capacity(self):
        series = TimeSeries(capacity=3)
        for t in range(5):
            series.append(float(t), float(t))
        assert len(series) == 3
        assert series.samples() == [(2.0, 2.0), (3.0, 3.0), (4.0, 4.0)]
        assert series.latest() == (4.0, 4.0)

    def test_window_filters_on_time(self):
        series = TimeSeries(capacity=10)
        for t in (0.0, 5.0, 9.0, 10.0):
            series.append(t, t)
        assert [t for t, _ in series.window(5.0)] == [5.0, 9.0, 10.0]
        assert [t for t, _ in series.window(5.0, now=20.0)] == []


class TestIncreaseAndRate:
    def test_monotone_growth(self):
        series = TimeSeries()
        for t, value in ((0.0, 10.0), (1.0, 15.0), (2.0, 25.0)):
            series.append(t, value)
        assert series.increase(10.0) == pytest.approx(15.0)
        assert series.rate(10.0) == pytest.approx(7.5)

    def test_single_sample_is_zero(self):
        series = TimeSeries()
        series.append(0.0, 42.0)
        assert series.increase(10.0) == 0.0
        assert series.rate(10.0) == 0.0

    def test_counter_reset_counts_growth_from_zero(self):
        # a restarted peer's counter starts over: 100 -> 3 means
        # "+3 since the restart", not "-97"
        series = TimeSeries()
        for t, value in ((0.0, 100.0), (1.0, 3.0), (2.0, 8.0)):
            series.append(t, value)
        assert series.increase(10.0) == pytest.approx(8.0)

    def test_zero_elapsed_rate_is_zero(self):
        series = TimeSeries()
        series.append(1.0, 5.0)
        series.append(1.0, 9.0)
        assert series.rate(10.0) == 0.0


class TestDeltaBuckets:
    def test_growth_between_snapshots(self):
        earlier = [(1.0, 2), (2.0, 5)]
        later = [(1.0, 3), (2.0, 7), (4.0, 8)]
        assert delta_buckets(earlier, later) == [(1.0, 1), (2.0, 1), (4.0, 1)]

    def test_no_growth_is_empty(self):
        snapshot = [(1.0, 2), (2.0, 5)]
        assert delta_buckets(snapshot, snapshot) == []

    def test_reset_returns_later_snapshot_whole(self):
        earlier = [(1.0, 10), (2.0, 20)]
        later = [(1.0, 1), (2.0, 2)]
        assert delta_buckets(earlier, later) == [(1.0, 1), (2.0, 1)]

    def test_fresh_peer_with_empty_earlier(self):
        assert delta_buckets([], [(1.0, 2)]) == [(1.0, 2)]


class TestPercentileFromBuckets:
    def test_empty_is_none(self):
        assert percentile_from_buckets([], 50) is None
        assert percentile_from_buckets([(1.0, 0)], 50, cumulative=True) is None

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile_from_buckets([(1.0, 1)], 101)

    def test_single_bucket_interpolates_from_zero(self):
        assert percentile_from_buckets([(10.0, 2)], 50) == pytest.approx(5.0)
        assert percentile_from_buckets([(10.0, 2)], 100) == pytest.approx(10.0)

    def test_cumulative_and_delta_forms_agree(self):
        delta = [(1.0, 2), (2.0, 3), (4.0, 5)]
        cumulative = [(1.0, 2), (2.0, 5), (4.0, 10)]
        for p in (0, 10, 50, 90, 99, 100):
            assert percentile_from_buckets(delta, p) == pytest.approx(
                percentile_from_buckets(cumulative, p, cumulative=True)
            )

    def test_high_quantile_lands_in_top_bucket(self):
        buckets = [(1.0, 98), (100.0, 2)]
        p99 = percentile_from_buckets(buckets, 99)
        assert 1.0 <= p99 <= 100.0
        assert percentile_from_buckets(buckets, 50) <= 1.0
