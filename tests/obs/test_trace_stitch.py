"""Tests for cross-process trace stitching and canonical export."""

import json

import pytest

from repro.obs import (
    render_trace,
    spans_from_dicts,
    stitch_trace_exports,
    validate_trace_dicts,
)
from repro.systems import HybridSystem
from repro.workloads.paper import PAPER_QUERY, paper_peer_bases, paper_schema


def span(span_id, parent_id, name, peer, start, end, trace_id="q1"):
    return {
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "peer": peer,
        "start": start,
        "end": end,
        "status": "ok",
        "attributes": {},
        "events": [],
    }


def two_process_exports():
    """The launcher fragment (root) plus a node fragment, with the
    ``@node`` id suffixes live tracers mint and per-process clocks."""
    launcher = {
        "schema": "repro.obs/trace-v1",
        "traces": [{"trace_id": "q1", "spans": [
            span("s1@launcher", None, "query", "client1", 50.0, 51.0),
        ]}],
    }
    node = {
        "schema": "repro.obs/trace-v1",
        "traces": [{"trace_id": "q1", "spans": [
            span("s1@P1", "s1@launcher", "coordinate", "P1", 10.0, 10.8),
            span("s2@P1", "s1@P1", "execute", "P1", 10.1, 10.7),
        ]}],
    }
    return [launcher, node]


class TestStitching:
    def test_fragments_merge_by_trace_id(self):
        stitched = stitch_trace_exports(two_process_exports())
        assert list(stitched) == ["q1"]
        assert [s["span_id"] for s in stitched["q1"]] == [
            "s1@P1", "s2@P1", "s1@launcher",
        ]  # ordered by start time across fragments

    def test_cross_clock_validation_skips_foreign_epochs(self):
        spans = stitch_trace_exports(two_process_exports())["q1"]
        # strict check trips: the node's epoch starts before the
        # launcher's, which is clock skew, not a causality bug
        assert validate_trace_dicts(spans) != []
        assert validate_trace_dicts(spans, cross_clock=True) == []

    def test_same_peer_causality_still_enforced(self):
        exports = two_process_exports()
        exports[1]["traces"][0]["spans"][1]["start"] = 9.0  # before parent
        spans = stitch_trace_exports(exports)["q1"]
        problems = validate_trace_dicts(spans, cross_clock=True)
        assert any("starts" in p for p in problems)

    def test_missing_fragment_is_a_context_gap(self):
        exports = two_process_exports()[1:]  # lose the launcher's root
        spans = stitch_trace_exports(exports)["q1"]
        problems = validate_trace_dicts(spans, cross_clock=True)
        assert any("orphan" in p for p in problems)

    def test_stitched_spans_render(self):
        spans = spans_from_dicts(
            stitch_trace_exports(two_process_exports())["q1"]
        )
        text = render_trace(spans)
        assert "query @client1" in text
        assert "execute @P1" in text


class TestCanonicalExport:
    def test_export_json_is_strict_and_round_trips(self):
        system = HybridSystem(paper_schema())
        system.add_super_peer("SP1")
        for peer_id, graph in paper_peer_bases().items():
            system.add_peer(peer_id, graph, "SP1")
        system.query("P1", PAPER_QUERY)
        collector = system.network.trace_collector
        # strict dump: any non-JSON scalar in a span is a crash, not a
        # silently stringified soup
        text = collector.export_json()
        export = json.loads(text)
        assert export["schema"] == "repro.obs/trace-v1"
        for trace in export["traces"]:
            for record in trace["spans"]:
                for value in record["attributes"].values():
                    assert isinstance(value, (str, int, float, bool, type(None)))
            assert validate_trace_dicts(trace["spans"]) == []

    def test_span_attributes_stringify_canonically(self):
        from repro.obs.span import _stringify

        class Renderable:
            def render(self):
                return object()  # a render() that forgets to return str

        assert _stringify(Renderable()) != ""
        assert isinstance(_stringify(Renderable()), str)
        assert _stringify(3.5) == 3.5
        assert _stringify(True) is True
        assert isinstance(_stringify(object()), str)
