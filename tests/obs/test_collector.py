"""Tests for trace collection, validation and rendering (repro.obs)."""

import json

from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    TraceCollector,
    Tracer,
    render_trace,
    span_tree,
    validate_trace,
)


def make_tracer(max_traces=256, max_spans=50_000):
    clock = {"now": 0.0}
    collector = TraceCollector(max_traces=max_traces, max_spans=max_spans)
    tracer = Tracer(lambda: clock["now"], collector)
    return tracer, collector, clock


class TestCollector:
    def test_spans_ordered_by_start_then_mint_order(self):
        tracer, collector, clock = make_tracer()
        root = tracer.start_span("query", peer="P1", trace_id="q")
        # mint >10 children at the same instant: creation order must
        # survive (lexicographic span ids would put s10 before s2)
        children = [
            tracer.start_span(f"stage{i}", peer="P1", parent=root.context())
            for i in range(12)
        ]
        for span in children:
            span.finish()
        root.finish()
        names = [s.name for s in collector.spans("q")]
        assert names == ["query"] + [f"stage{i}" for i in range(12)]

    def test_whole_trace_eviction(self):
        tracer, collector, clock = make_tracer(max_traces=2)
        for n in range(4):
            tracer.start_span("query", peer="P1", trace_id=f"q{n}").finish()
        assert collector.trace_ids() == ["q2", "q3"]
        assert collector.evicted_traces == 2
        assert len(collector) == 2

    def test_span_budget_eviction(self):
        tracer, collector, clock = make_tracer(max_spans=3)
        for n in range(3):
            root = tracer.start_span("query", peer="P1", trace_id=f"q{n}")
            tracer.start_span("child", peer="P1", parent=root.context()).finish()
            root.finish()
        # 3 traces x 2 spans exceeds the budget; oldest traces dropped,
        # but the newest trace always survives
        assert collector.latest_trace_id() == "q2"
        assert len(collector) <= 4

    def test_export_schema(self):
        tracer, collector, clock = make_tracer()
        span = tracer.start_span("query", peer="P1", trace_id="q", via="P1")
        clock["now"] = 2.0
        span.annotate("something happened")
        span.finish()
        export = json.loads(collector.export_json())
        assert export["schema"] == "repro.obs/trace-v1"
        assert export["evicted_traces"] == 0
        (trace,) = export["traces"]
        assert trace["trace_id"] == "q"
        (record,) = trace["spans"]
        assert record["name"] == "query"
        assert record["peer"] == "P1"
        assert record["parent_id"] is None
        assert record["status"] == "ok"
        assert record["attributes"] == {"via": "P1"}
        assert record["events"] == [[2.0, "something happened"]]

    def test_unfinished_span_exports_open_end(self):
        tracer, collector, clock = make_tracer()
        tracer.start_span("query", peer="P1", trace_id="q")
        export = collector.export("q")
        assert export["traces"][0]["spans"][0]["end"] is None


class TestValidation:
    def test_valid_tree(self):
        tracer, collector, clock = make_tracer()
        root = tracer.start_span("query", peer="P1", trace_id="q")
        clock["now"] = 1.0
        child = tracer.start_span("execute", peer="P2", parent=root.context())
        child.finish()
        root.finish()
        assert validate_trace(collector.spans("q")) == []

    def test_empty_trace(self):
        assert validate_trace([]) == ["empty trace"]

    def test_multiple_roots_detected(self):
        tracer, collector, clock = make_tracer()
        tracer.start_span("query", peer="P1", trace_id="q").finish()
        tracer.start_span("query", peer="P2", trace_id="q").finish()
        problems = validate_trace(collector.spans("q"))
        assert any("exactly 1 root" in p for p in problems)

    def test_orphan_detected(self):
        """A dropped trace context shows up as a gap (missing parent)."""
        tracer, collector, clock = make_tracer()
        root = tracer.start_span("query", peer="P1", trace_id="q")
        child = tracer.start_span("execute", peer="P2", parent=root.context())
        child.finish()
        root.finish()
        spans = [s for s in collector.spans("q") if s.name != "query"]
        problems = validate_trace(spans)
        assert any("context gap" in p for p in problems)

    def test_unfinished_detected(self):
        tracer, collector, clock = make_tracer()
        tracer.start_span("query", peer="P1", trace_id="q")
        problems = validate_trace(collector.spans("q"))
        assert any("never finished" in p for p in problems)

    def test_child_before_parent_detected(self):
        tracer, collector, clock = make_tracer()
        clock["now"] = 5.0
        root = tracer.start_span("query", peer="P1", trace_id="q")
        clock["now"] = 1.0
        child = tracer.start_span("execute", peer="P2", parent=root.context())
        child.finish()
        clock["now"] = 6.0
        root.finish()
        problems = validate_trace(collector.spans("q"))
        assert any("before its parent" in p for p in problems)


class TestTreeAndRender:
    def test_span_tree_shape(self):
        tracer, collector, clock = make_tracer()
        root = tracer.start_span("query", peer="P1", trace_id="q")
        a = tracer.start_span("routing", peer="P1", parent=root.context())
        b = tracer.start_span("execute", peer="P1", parent=root.context())
        for span in (a, b, root):
            span.finish()
        tree = span_tree(collector.spans("q"))
        assert [s.name for s in tree[None]] == ["query"]
        assert [s.name for s in tree[root.span_id]] == ["routing", "execute"]

    def test_render_trace(self):
        tracer, collector, clock = make_tracer()
        root = tracer.start_span("query", peer="client1", trace_id="q")
        clock["now"] = 1.0
        child = tracer.start_span(
            "execute", peer="P2", parent=root.context(), rows=6
        )
        child.annotate("retry attempt=1")
        clock["now"] = 2.0
        child.finish()
        root.finish()
        text = render_trace(collector.spans("q"))
        assert "query @client1" in text
        assert "execute @P2" in text
        assert "rows=6" in text
        assert "retry attempt=1" in text
        assert render_trace([]) == "(empty trace)"


class TestDisabledPath:
    def test_null_tracer_returns_null_span(self):
        span = NULL_TRACER.start_span("query", peer="P1", attr=1)
        assert span is NULL_SPAN
        assert not span  # falsy: guards like `if span:` skip work
        assert span.context() is None
        span.set(rows=1)
        span.annotate("ignored")
        span.finish("error")
        assert span.to_dict() == {}
