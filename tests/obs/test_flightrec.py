"""Tests for the flight recorder and slow-query log."""

import json

import pytest

from repro.metrics import MetricSet
from repro.obs.telemetry import FlightRecorder, JsonlSink, SlowQueryLog
from repro.obs.telemetry.flightrec import EVENT_SCHEMA, KNOWN_KINDS


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestFlightRecorder:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(clock=FakeClock(), capacity=0)

    def test_records_are_timestamped_and_filtered(self):
        clock = FakeClock()
        recorder = FlightRecorder(clock=clock)
        clock.now = 5.0
        recorder.record("shed", peer="P1", query_id="q1")
        clock.now = 6.0
        recorder.record("quarantine", peer="P2", suspect="P3")
        recorder.record("shed", peer="P2", query_id="q2")
        assert len(recorder) == 3
        sheds = recorder.events(kind="shed")
        assert [r["t"] for r in sheds] == [5.0, 6.0]
        assert recorder.events(kind="shed", peer="P2") == [
            {"t": 6.0, "kind": "shed", "peer": "P2", "query_id": "q2"}
        ]
        assert recorder.counts["shed"] == 2

    def test_bounded_ring_drops_oldest(self):
        recorder = FlightRecorder(clock=FakeClock(), capacity=2)
        for i in range(5):
            recorder.record("shed", query_id=f"q{i}")
        assert len(recorder) == 2
        assert recorder.dropped == 3
        assert [r["query_id"] for r in recorder.events()] == ["q3", "q4"]
        assert recorder.counts["shed"] == 5  # counts survive eviction

    def test_export_schema(self):
        recorder = FlightRecorder(clock=FakeClock())
        recorder.record("replan", peer="P1", failed_peer="P2", attempt=1)
        export = recorder.export()
        assert export["schema"] == EVENT_SCHEMA
        assert export["counts"] == {"replan": 1}
        json.dumps(export)  # JSON-clean without default=str

    def test_sink_sees_every_record(self):
        seen = []
        recorder = FlightRecorder(clock=FakeClock(), sink=seen.append)
        recorder.record("crash", peer="P1")
        assert seen == [{"t": 0.0, "kind": "crash", "peer": "P1"}]

    def test_documented_kinds_are_strings(self):
        assert "shed" in KNOWN_KINDS and "breaker_trip" in KNOWN_KINDS


class TestJsonlSink:
    def test_appends_one_json_line_per_record(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink({"t": 1.0, "kind": "shed"})
        sink({"t": 2.0, "kind": "crash", "peer": "P1"})
        # durable without close(): flushed per write
        lines = path.read_text().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == ["shed", "crash"]
        sink.close()


class TestSlowQueryLog:
    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold=0.0)

    def test_only_logs_above_threshold(self):
        log = SlowQueryLog(threshold=100.0)
        log.observe("fast", 50.0)
        log.observe("slow", 150.0)
        assert log.observed == 2
        assert [e["query_id"] for e in log.entries] == ["slow"]

    def test_keeps_the_worst_n(self):
        log = SlowQueryLog(threshold=10.0, capacity=2)
        for i, latency in enumerate((20.0, 40.0, 30.0)):
            log.observe(f"q{i}", latency)
        assert [e["latency"] for e in log.entries] == [40.0, 30.0]

    def test_attaches_the_trace_when_collected(self):
        class StubCollector:
            def trace_ids(self):
                return ["q1"]

            def export(self, trace_id):
                return {"schema": "repro.obs/trace-v1", "traces": [trace_id]}

        log = SlowQueryLog(threshold=10.0, collector=StubCollector())
        log.observe("q1", 99.0)
        log.observe("q2", 99.0)  # no trace collected for this one
        by_id = {e["query_id"]: e for e in log.entries}
        assert by_id["q1"]["trace"]["traces"] == ["q1"]
        assert "trace" not in by_id["q2"]

    def test_on_slow_callback_and_metricset_hook(self):
        dumped = []
        metrics = MetricSet()
        log = SlowQueryLog(threshold=100.0, on_slow=dumped.append).install(metrics)
        metrics.query_started("q1", time=0.0)
        metrics.query_finished("q1", time=500.0)
        metrics.query_started("q2", time=0.0)
        metrics.query_finished("q2", time=5.0)
        assert log.observed == 2
        assert [e["query_id"] for e in dumped] == ["q1"]
