"""Tests for the bucketed histogram (repro.obs.histogram)."""

import pytest

from repro.obs.histogram import FLUSH_THRESHOLD, Histogram


class TestRecording:
    def test_empty(self):
        histogram = Histogram()
        assert histogram.count == 0
        assert histogram.mean is None
        assert histogram.min is None
        assert histogram.max is None
        assert histogram.percentile(50) is None
        assert len(histogram) == 0

    def test_count_total_min_max(self):
        histogram = Histogram()
        histogram.record_many([4.0, 1.0, 3.0, 2.0])
        assert histogram.count == 4
        assert histogram.total == pytest.approx(10.0)
        assert histogram.min == 1.0
        assert histogram.max == 4.0
        assert histogram.mean == pytest.approx(2.5)

    def test_underflow_bucket(self):
        histogram = Histogram()
        histogram.record(0.0)
        histogram.record(-1.0)
        assert histogram.count == 2
        assert histogram.percentile(50) is not None

    def test_pending_flushes_at_threshold_without_read(self):
        histogram = Histogram()
        for _ in range(FLUSH_THRESHOLD):
            histogram.record(1.0)
        # memory bound: the pending list folded without any read
        assert not histogram._pending
        assert histogram._count == FLUSH_THRESHOLD

    def test_invalid_growth(self):
        with pytest.raises(ValueError):
            Histogram(growth=1.0)


class TestPercentiles:
    def test_single_value(self):
        histogram = Histogram()
        histogram.record(7.0)
        for p in (0, 50, 99, 100):
            assert histogram.percentile(p) == pytest.approx(7.0, rel=0.06)

    def test_uniform_known_distribution(self):
        """1..1000: every percentile must land within bucket resolution
        (5% relative error) of the exact answer."""
        histogram = Histogram()
        histogram.record_many(float(v) for v in range(1, 1001))
        for p, exact in ((50, 500.0), (90, 900.0), (99, 990.0)):
            assert histogram.percentile(p) == pytest.approx(exact, rel=0.06)
        assert histogram.percentile(100) == 1000.0

    def test_skewed_distribution(self):
        """99 fast samples and one huge outlier: p50 stays at the fast
        mode, max captures the outlier."""
        histogram = Histogram()
        histogram.record_many([1.0] * 99)
        histogram.record(1000.0)
        assert histogram.percentile(50) == pytest.approx(1.0, rel=0.06)
        assert histogram.max == 1000.0
        assert histogram.percentile(99) == pytest.approx(1.0, rel=0.06)

    def test_clamped_to_observed_bounds(self):
        histogram = Histogram()
        histogram.record_many([10.0, 20.0])
        assert histogram.percentile(0) >= 10.0 - 1e-9
        assert histogram.percentile(100) <= 20.0 + 1e-9

    def test_out_of_range(self):
        histogram = Histogram()
        histogram.record(1.0)
        with pytest.raises(ValueError):
            histogram.percentile(101)


class TestMergeAndExport:
    def test_merge(self):
        a, b = Histogram(), Histogram()
        a.record_many([1.0, 2.0])
        b.record_many([3.0, 4.0])
        a.merge(b)
        assert a.count == 4
        assert a.min == 1.0
        assert a.max == 4.0
        assert a.total == pytest.approx(10.0)

    def test_merge_growth_mismatch(self):
        with pytest.raises(ValueError):
            Histogram(growth=1.05).merge(Histogram(growth=1.5))

    def test_cumulative_buckets_monotonic(self):
        histogram = Histogram()
        histogram.record_many([1.0, 5.0, 25.0, 125.0])
        buckets = histogram.cumulative_buckets()
        uppers = [upper for upper, _ in buckets]
        counts = [count for _, count in buckets]
        assert uppers == sorted(uppers)
        assert counts == sorted(counts)
        assert counts[-1] == 4

    def test_summary_keys(self):
        histogram = Histogram()
        histogram.record_many([1.0, 2.0, 3.0])
        summary = histogram.summary()
        assert set(summary) == {"count", "mean", "p50", "p90", "p99", "min", "max"}
        assert Histogram().summary() == {"count": 0}
