"""Property tests: the exposition renderer against the scrape parser.

``parse_exposition`` is the inverse of the renderer's escaping; the
merge keeps every sample under exactly one ``# HELP``/``# TYPE`` header
per family; const labels survive the round trip with hostile values
(spaces, quotes, backslashes).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import MetricSet
from repro.obs import add_const_labels, merge_expositions, render_prometheus
from repro.obs.telemetry import parse_exposition

# label values the renderer must escape and the parser must recover:
# anything printable except newlines (the text format is line-based)
label_values = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs",), blacklist_characters="\n\r"
    ),
    min_size=0,
    max_size=24,
)

label_sets = st.dictionaries(
    st.sampled_from(["peer_id", "pid", "transport", "zone"]),
    label_values,
    min_size=1,
    max_size=3,
)


def metricset(messages=3, queries=2):
    metrics = MetricSet()
    for i in range(messages):
        metrics.record_message("data", f"P{i % 2}", "SP", size=100 + i)
    for i in range(queries):
        metrics.query_started(f"q{i}", time=float(i))
        metrics.query_finished(f"q{i}", time=float(i) + 2.5)
    return metrics


class TestConstLabelRoundTrip:
    @given(label_sets)
    @settings(max_examples=60)
    def test_hostile_label_values_survive(self, labels):
        text = render_prometheus(metricset(), const_labels=labels)
        for _, parsed_labels, _ in parse_exposition(text):
            for name, value in labels.items():
                assert parsed_labels[name] == value

    @given(label_sets)
    @settings(max_examples=30)
    def test_every_sample_is_labelled(self, labels):
        bare = parse_exposition(render_prometheus(metricset()))
        tagged = parse_exposition(
            add_const_labels(render_prometheus(metricset()), labels)
        )
        assert len(tagged) == len(bare)
        for (name, bare_labels, value), (tname, tlabels, tvalue) in zip(
            bare, tagged
        ):
            assert (name, value) == (tname, tvalue)
            # existing labels (le, kind, ...) preserved alongside
            for key, val in bare_labels.items():
                assert tlabels[key] == val

    def test_explicit_escape_cases(self):
        labels = {"peer_id": 'a "quoted" \\ backslash and space'}
        text = add_const_labels(render_prometheus(metricset()), labels)
        for _, parsed, _ in parse_exposition(text):
            assert parsed["peer_id"] == labels["peer_id"]

    def test_newline_escape_is_parsed(self):
        # the parser accepts the full Prometheus escape set even though
        # the renderer never emits newlines
        ((name, labels, value),) = parse_exposition(
            'family{key="line1\\nline2"} 4.0'
        )
        assert labels["key"] == "line1\nline2"
        assert (name, value) == ("family", 4.0)


class TestMerge:
    @given(st.lists(label_sets, min_size=1, max_size=4, unique_by=lambda d: tuple(sorted(d.items()))))
    @settings(max_examples=30)
    def test_one_header_per_family_and_all_samples_kept(self, label_runs):
        texts = [
            render_prometheus(metricset(messages=2 + i), const_labels=labels)
            for i, labels in enumerate(label_runs)
        ]
        merged = merge_expositions(texts)
        # exactly one HELP and one TYPE line per family
        help_lines = [l for l in merged.splitlines() if l.startswith("# HELP ")]
        type_lines = [l for l in merged.splitlines() if l.startswith("# TYPE ")]
        families = [l.split(" ", 3)[2] for l in help_lines]
        assert len(families) == len(set(families))
        assert len(help_lines) == len(type_lines)
        # every input sample survives, values intact
        merged_samples = parse_exposition(merged)
        expected = [s for text in texts for s in parse_exposition(text)]
        assert sorted(
            (n, tuple(sorted(l.items())), v) for n, l, v in merged_samples
        ) == sorted((n, tuple(sorted(l.items())), v) for n, l, v in expected)

    def test_merge_groups_families_in_first_seen_order(self):
        texts = [
            render_prometheus(metricset(), const_labels={"peer_id": "P1"}),
            render_prometheus(metricset(), const_labels={"peer_id": "P2"}),
        ]
        merged = merge_expositions(texts).splitlines()
        first = merged.index('# HELP repro_messages_total Messages delivered')
        samples = [l for l in merged[first + 2:] if not l.startswith("#")]
        assert 'peer_id="P1"' in samples[0]
        assert 'peer_id="P2"' in samples[1]


class TestParserStrictness:
    def test_malformed_line_raises(self):
        import pytest

        with pytest.raises(ValueError):
            parse_exposition('family{key=unquoted} 1')

    def test_comments_and_blanks_skipped(self):
        assert parse_exposition("# HELP x y\n# TYPE x counter\n\n") == []
