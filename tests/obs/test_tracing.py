"""End-to-end trace propagation (repro.obs wired through the systems).

A query's spans are minted on several peers — client, coordinator,
super-peers, executing data peers — with the trace context riding
inside the network messages.  These tests assert the result is ONE
rooted, gap-free causal tree per query, for the hybrid architecture
(including a backbone hop between two super-peers) and for ad-hoc
delegation, and that turning observability off changes nothing the
simulator measures.
"""

from repro.obs import validate_trace
from repro.systems import AdhocSystem, HybridSystem
from repro.workloads.paper import (
    PAPER_QUERY,
    adhoc_scenario,
    hybrid_scenario,
)


def latest_spans(system):
    collector = system.network.trace_collector
    trace_id = collector.latest_trace_id()
    assert trace_id is not None, "no trace recorded"
    return collector.spans(trace_id)


class TestHybridPropagation:
    def test_figure6_query_yields_one_rooted_tree(self):
        system = HybridSystem.from_scenario(hybrid_scenario())
        table = system.query("P1", PAPER_QUERY)
        assert len(table) == 6
        spans = latest_spans(system)
        assert validate_trace(spans) == []
        roots = [s for s in spans if s.parent_id is None]
        assert [r.name for r in roots] == ["query"]
        # client, coordinator, super-peer and the executing data peers
        assert len({s.peer_id for s in spans}) >= 3
        names = {s.name for s in spans}
        assert {
            "query",
            "coordinate",
            "routing",
            "route",
            "subsumption",
            "plan.compile",
            "execute",
            "channel",
        } <= names
        # the optimiser's rewrites trace as children of plan.compile
        assert any(name.startswith("optimize.") for name in names)

    def test_all_spans_share_the_query_trace_id(self):
        system = HybridSystem.from_scenario(hybrid_scenario())
        system.query("P1", PAPER_QUERY)
        spans = latest_spans(system)
        assert len({s.trace_id for s in spans}) == 1

    def test_backbone_hop_nests_route_spans(self):
        """The coordinator's home super-peer is not responsible for the
        query's schema: the request forwards across the backbone, and
        the second hop's route span nests under the first's."""
        scenario = hybrid_scenario()
        system = HybridSystem(scenario.schema)
        system.add_super_peer("SP1", schemas=[])  # owns no SON
        system.add_super_peer("SP2")  # responsible for n1
        homes = {"P1": "SP1"}  # coordinator asks the wrong super-peer
        for peer_id in scenario.simple_peers:
            system.add_peer(
                peer_id, scenario.bases[peer_id], homes.get(peer_id, "SP2")
            )
        table = system.query("P1", PAPER_QUERY)
        assert len(table) == 6
        spans = latest_spans(system)
        assert validate_trace(spans) == []
        routes = {s.peer_id: s for s in spans if s.name == "route"}
        assert set(routes) == {"SP1", "SP2"}
        assert routes["SP1"].attributes["forwarded_to"] == "SP2"
        assert routes["SP2"].parent_id == routes["SP1"].span_id
        assert routes["SP2"].attributes["hops"] == 1
        # the routing work spanned two super-peers plus the data peers
        assert len({s.peer_id for s in spans}) >= 4


class TestAdhocPropagation:
    def test_figure7_delegation_stitches_into_one_tree(self):
        """P1's local plan has a Q2 hole; P2 fills it by interleaved
        routing and executes.  Every delegate span must stitch under
        the root query's tree via the PartialPlan's trace context."""
        system = AdhocSystem.from_scenario(adhoc_scenario())
        table = system.query("P1", PAPER_QUERY)
        assert len(table) > 0
        spans = latest_spans(system)
        assert validate_trace(spans) == []
        roots = [s for s in spans if s.parent_id is None]
        assert [r.name for r in roots] == ["query"]
        delegates = [s for s in spans if s.name == "delegate"]
        assert delegates, "delegation happened but produced no spans"
        # the winning delegate executed the completed plan remotely
        winner = [s for s in delegates if s.status == "ok"]
        assert any("rows" in s.attributes for s in winner)
        assert len({s.peer_id for s in spans}) >= 3
        names = {s.name for s in spans}
        assert {"query", "routing", "delegate", "execute", "channel"} <= names


class TestDisabledObservability:
    def test_disabled_runs_identical_simulation(self):
        """observability=False must change no simulated quantity —
        tracing is uncharged metadata, on or off."""
        on = HybridSystem.from_scenario(hybrid_scenario(), observability=True)
        off = HybridSystem.from_scenario(hybrid_scenario(), observability=False)
        rows_on = len(on.query("P1", PAPER_QUERY))
        rows_off = len(off.query("P1", PAPER_QUERY))
        assert off.network.trace_collector is None
        assert on.network.trace_collector is not None
        assert rows_on == rows_off
        m_on, m_off = on.network.metrics, off.network.metrics
        assert m_on.messages_total == m_off.messages_total
        assert m_on.bytes_total == m_off.bytes_total
        assert dict(m_on.messages_by_kind) == dict(m_off.messages_by_kind)
        assert on.network.now == off.network.now

    def test_disabled_adhoc_still_answers(self):
        system = AdhocSystem.from_scenario(
            adhoc_scenario(), observability=False
        )
        assert len(system.query("P1", PAPER_QUERY)) > 0
        assert system.network.trace_collector is None


class TestDeterminism:
    def test_trace_export_identical_across_same_seed_runs(self):
        exports = []
        for _ in range(2):
            system = HybridSystem.from_scenario(hybrid_scenario(), seed=3)
            system.query("P1", PAPER_QUERY)
            collector = system.network.trace_collector
            exports.append(collector.export_json(collector.latest_trace_id()))
        assert exports[0] == exports[1]
