"""Tests for the paper fixtures and synthetic generators."""

import pytest

from repro.rdf import TYPE
from repro.rql import pattern_from_text, query
from repro.rvl import ActiveSchema
from repro.workloads.data_gen import Distribution, generate_bases, populate_with_refinements
from repro.workloads.paper import (
    N1,
    PAPER_QUERY,
    adhoc_scenario,
    hybrid_scenario,
    paper_active_schemas,
    paper_peer_bases,
    paper_query_pattern,
    paper_schema,
)
from repro.workloads.query_gen import chain_query, random_queries
from repro.workloads.schema_gen import generate_schema


class TestPaperFixtures:
    def test_schema_shape(self):
        schema = paper_schema()
        assert len(schema.classes) == 6
        assert len(schema.properties) == 4
        assert schema.is_subproperty(N1.prop4, N1.prop1)

    def test_bases_match_advertisements(self):
        schema = paper_schema()
        bases = paper_peer_bases()
        expected = paper_active_schemas(schema)
        for peer_id, graph in bases.items():
            scanned = ActiveSchema.from_base(graph, schema, peer_id)
            assert scanned.paths == expected[peer_id].paths, peer_id

    def test_cross_peer_joins_possible(self):
        """P2's prop1 objects appear as P3's prop2 subjects."""
        bases = paper_peer_bases()
        p2_objects = {t.object for t in bases["P2"].triples(None, N1.prop1, None)}
        p3_subjects = {t.subject for t in bases["P3"].triples(None, N1.prop2, None)}
        assert p2_objects == p3_subjects

    def test_hybrid_scenario_consistent(self):
        scenario = hybrid_scenario()
        assert set(scenario.bases) == set(scenario.simple_peers)
        assert all(sp in scenario.super_peers or True for sp in scenario.home_super_peer.values())
        # P2/P3 hold prop1; P5 holds prop2
        assert scenario.bases["P2"].count(None, N1.prop1, None) == 3
        assert scenario.bases["P5"].count(None, N1.prop2, None) == 3

    def test_adhoc_scenario_neighbours_symmetric(self):
        scenario = adhoc_scenario()
        for peer, neighbours in scenario.neighbours.items():
            for other in neighbours:
                assert peer in scenario.neighbours[other], (peer, other)

    def test_paper_query_parses(self):
        pattern = paper_query_pattern()
        assert [p.label for p in pattern] == ["Q1", "Q2"]


class TestSchemaGen:
    def test_chain_structure(self):
        synth = generate_schema(chain_length=5, seed=0)
        assert len(synth.chain_properties) == 5
        schema = synth.schema
        for i, prop in enumerate(synth.chain_properties):
            definition = schema.property_def(prop)
            assert definition.domain.local_name == f"K{i}"
            assert definition.range.local_name == f"K{i + 1}"

    def test_refinements_are_subproperties(self):
        synth = generate_schema(chain_length=4, refinement_fraction=1.0, seed=1)
        assert len(synth.refined_properties) == 4
        for sub_prop, sub_domain, sub_range in synth.refined_properties:
            parent = synth.chain_properties[
                int(sub_prop.local_name.replace("chain", "").replace("sub", ""))
            ]
            assert synth.schema.is_subproperty(sub_prop, parent)
            assert synth.schema.is_subclass(sub_domain, synth.schema.domain_of(parent))

    def test_no_refinements(self):
        synth = generate_schema(refinement_fraction=0.0, seed=2)
        assert synth.refined_properties == ()

    def test_deterministic(self):
        a = generate_schema(seed=9)
        b = generate_schema(seed=9)
        assert a.schema.classes == b.schema.classes
        assert a.chain_properties == b.chain_properties

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            generate_schema(chain_length=0)
        with pytest.raises(ValueError):
            generate_schema(refinement_fraction=2.0)


class TestDataGen:
    @pytest.fixture
    def synth(self):
        return generate_schema(chain_length=3, refinement_fraction=0.0, seed=0)

    def test_vertical_coverage_disjoint_segments(self, synth):
        peers = [f"P{i}" for i in range(3)]
        gen = generate_bases(synth, peers, Distribution.VERTICAL, seed=1)
        assert gen.coverage == {"P0": (0,), "P1": (1,), "P2": (2,)}

    def test_horizontal_coverage_full(self, synth):
        gen = generate_bases(synth, ["A", "B"], Distribution.HORIZONTAL, seed=1)
        assert gen.coverage["A"] == (0, 1, 2)
        assert gen.coverage["B"] == (0, 1, 2)

    def test_mixed_coverage_nonempty(self, synth):
        gen = generate_bases(synth, [f"P{i}" for i in range(5)], Distribution.MIXED, seed=1)
        assert all(coverage for coverage in gen.coverage.values())

    def test_bases_populated_consistently(self, synth):
        gen = generate_bases(synth, ["A"], Distribution.HORIZONTAL,
                             statements_per_segment=10, seed=3)
        graph = gen.bases["A"]
        for prop in synth.chain_properties:
            assert graph.count(None, prop, None) >= 1

    def test_vertical_chain_joinable_across_peers(self, synth):
        """The shared pool guarantees cross-peer joins for chain queries."""
        peers = ["A", "B", "C"]
        gen = generate_bases(
            synth, peers, Distribution.VERTICAL, statements_per_segment=40,
            shared_pool=5, seed=4,
        )
        from repro.rdf import Graph

        merged = Graph()
        for graph in gen.bases.values():
            merged.update(graph)
        table = query(chain_query(synth, 0, 3), merged, synth.schema)
        assert len(table) > 0

    def test_deterministic(self, synth):
        a = generate_bases(synth, ["A", "B"], Distribution.MIXED, seed=5)
        b = generate_bases(synth, ["A", "B"], Distribution.MIXED, seed=5)
        assert a.coverage == b.coverage
        assert all(set(a.bases[p]) == set(b.bases[p]) for p in a.bases)

    def test_refinement_population(self, synth):
        refined = generate_schema(chain_length=3, refinement_fraction=1.0, seed=0)
        gen = generate_bases(refined, ["A"], Distribution.HORIZONTAL, seed=0)
        graph = gen.bases["A"]
        before = len(graph)
        populate_with_refinements(refined, graph, statements=5, seed=0)
        assert len(graph) > before
        sub_prop = refined.refined_properties[0][0]
        assert graph.count(None, sub_prop, None) == 5

    def test_validation(self, synth):
        with pytest.raises(ValueError):
            generate_bases(synth, [], Distribution.MIXED)
        with pytest.raises(ValueError):
            generate_bases(synth, ["A"], Distribution.MIXED, shared_pool=0)


class TestQueryGen:
    @pytest.fixture
    def synth(self):
        return generate_schema(chain_length=4, seed=0)

    def test_chain_query_parses_and_extracts(self, synth):
        text = chain_query(synth, 1, 2)
        pattern = pattern_from_text(text, synth.schema)
        assert len(pattern) == 2
        assert pattern.root.schema_path.property == synth.chain_properties[1]

    def test_out_of_range_rejected(self, synth):
        with pytest.raises(ValueError):
            chain_query(synth, 3, 4)

    def test_random_queries_all_valid(self, synth):
        for text in random_queries(synth, 20, seed=1):
            pattern = pattern_from_text(text, synth.schema)
            assert 1 <= len(pattern) <= 3

    def test_random_queries_deterministic(self, synth):
        assert random_queries(synth, 5, seed=2) == random_queries(synth, 5, seed=2)

    def test_negative_count_rejected(self, synth):
        with pytest.raises(ValueError):
            random_queries(synth, -1)
