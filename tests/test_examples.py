"""Smoke tests: every example script runs to completion and prints the
outputs its walkthrough promises."""

import runpy
import sys

import pytest

EXAMPLES = [
    ("examples/quickstart.py", "distributed answer (9 rows)"),
    ("examples/elearning_hybrid.py", "presents h_sem0"),
    ("examples/adhoc_discovery.py", "Q2@?"),
    ("examples/optimizer_walkthrough.py", "chosen: query"),
    ("examples/heterogeneous_peers.py", "dave     reads stephenson"),
    ("examples/advanced_features.py", "stalled P2 detected"),
]


@pytest.mark.parametrize("path,marker", EXAMPLES, ids=[p for p, _ in EXAMPLES])
def test_example_runs(path, marker, capsys):
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert marker in out
