"""Tests for graceful degradation (repro.resilience.partial)."""

import pytest

from repro.core import route_query
from repro.resilience import Coverage, full_coverage, restrict_to_answerable
from repro.workloads.paper import (
    paper_active_schemas,
    paper_query_pattern,
    paper_schema,
)


@pytest.fixture
def schema():
    return paper_schema()


@pytest.fixture
def annotated(schema):
    pattern = paper_query_pattern(schema)
    return route_query(pattern, paper_active_schemas(schema).values(), schema)


class TestCoverage:
    def test_complete(self):
        coverage = Coverage(answered=("Q1", "Q2"))
        assert coverage.is_complete
        assert coverage.ratio == 1.0
        assert "complete" in coverage.describe()

    def test_partial(self):
        coverage = Coverage(
            answered=("Q1",), unanswered=("Q2",), excluded_peers=("P5",), attempts=3
        )
        assert not coverage.is_complete
        assert coverage.ratio == 0.5
        description = coverage.describe()
        assert "Q2" in description and "P5" in description

    def test_full_coverage_helper(self, annotated):
        coverage = full_coverage(annotated, attempts=2)
        assert coverage.is_complete
        assert len(coverage.answered) == len(annotated.query_pattern.patterns)
        assert coverage.attempts == 2


class TestRestrictToAnswerable:
    def test_fully_annotated_returned_unchanged(self, annotated):
        assert restrict_to_answerable(annotated) is annotated

    def test_restricts_to_surviving_patterns(self, annotated):
        # kill every provider of Q2 (P1, P3, P4) — Q1 survives via P2
        reduced = annotated.without_peers({"P1", "P3", "P4"})
        restricted = restrict_to_answerable(reduced)
        assert restricted is not None
        labels = [p.label for p in restricted.query_pattern]
        assert len(labels) == len(annotated.query_pattern.patterns) - 1
        for pattern in restricted.query_pattern:
            assert restricted.annotations(pattern)
        # projections survive so the answer stays schema-compatible
        assert (
            restricted.query_pattern.projections
            == annotated.query_pattern.projections
        )

    def test_nothing_answerable_returns_none(self, annotated):
        reduced = annotated.without_peers(set(annotated.all_peers()))
        assert restrict_to_answerable(reduced) is None
