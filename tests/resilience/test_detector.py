"""Tests for failure detection (repro.resilience.detector)."""

import pytest

from repro.net import Network
from repro.resilience import FailureDetector, PeerQuarantine


@pytest.fixture
def network():
    return Network(seed=0, default_latency=1.0, default_cost_per_byte=0.0)


def advance(network, dt):
    network.call_later(dt, lambda: None)
    network.run()


class TestPeerQuarantine:
    def test_trips_after_threshold(self):
        quarantine = PeerQuarantine(trip_threshold=2)
        assert not quarantine.record_failure("P1")
        assert quarantine.record_failure("P1")
        assert "P1" in quarantine
        assert quarantine.peers == {"P1"}

    def test_restore_closes_and_resets(self):
        quarantine = PeerQuarantine(trip_threshold=2)
        quarantine.record_failure("P1")
        quarantine.record_failure("P1")
        assert quarantine.restore("P1")
        assert "P1" not in quarantine
        # the failure count restarted from zero
        assert not quarantine.record_failure("P1")

    def test_validation(self):
        with pytest.raises(ValueError):
            PeerQuarantine(trip_threshold=0)


class TestFailureDetector:
    def test_silent_peer_suspected(self, network):
        events = []
        detector = FailureDetector(
            "SP", network, suspicion_timeout=30.0, on_suspect=events.append
        )
        detector.watch("P1")
        detector.watch("P2")
        advance(network, 100.0)
        detector.beat("P1")  # P1 heard from, P2 silent
        assert detector.poll() == {"P2"}
        assert events == ["P2"]
        assert detector.suspected == {"P2"}

    def test_suspicion_is_watermark_relative(self, network):
        """A bursty cadence must not suspect live peers: everyone lags
        the clock, but nobody lags the freshest observation."""
        detector = FailureDetector("SP", network, suspicion_timeout=30.0)
        detector.watch("P1")
        detector.watch("P2")
        advance(network, 500.0)  # a long quiet gap, then a beat round
        detector.beat("P1")
        detector.beat("P2")
        assert detector.poll() == set()

    def test_beat_restores_with_callback(self, network):
        restored = []
        detector = FailureDetector(
            "SP", network, suspicion_timeout=10.0, on_restore=restored.append
        )
        detector.watch("P1")
        detector.watch("P2")
        advance(network, 50.0)
        detector.beat("P2")
        detector.poll()
        assert detector.suspected == {"P1"}
        detector.beat("P1")
        assert detector.suspected == set()
        assert restored == ["P1"]

    def test_suspect_fires_once_per_transition(self, network):
        events = []
        detector = FailureDetector(
            "SP", network, suspicion_timeout=10.0, on_suspect=events.append
        )
        detector.watch("P1")
        detector.watch("P2")
        advance(network, 50.0)
        detector.beat("P2")
        detector.poll()
        detector.poll()
        assert events == ["P1"]

    def test_unwatch_forgets(self, network):
        detector = FailureDetector("SP", network, suspicion_timeout=10.0)
        detector.watch("P1")
        detector.watch("P2")
        advance(network, 50.0)
        detector.beat("P2")
        detector.unwatch("P1")
        assert detector.poll() == set()
        assert detector.watched() == {"P2"}

    def test_bounded_self_scheduling(self, network):
        """start(rounds) polls periodically and still quiesces."""
        events = []
        detector = FailureDetector(
            "SP",
            network,
            suspicion_timeout=5.0,
            interval=10.0,
            on_suspect=events.append,
        )
        detector.watch("P1")
        detector.watch("P2")
        detector.beat("P2")
        advance(network, 20.0)
        detector.beat("P2")  # P2 keeps beating, P1 never does
        detector.start(rounds=3)
        network.run()
        assert events == ["P1"]
        assert network.now == pytest.approx(50.0)

    def test_validation(self, network):
        with pytest.raises(ValueError):
            FailureDetector("SP", network, suspicion_timeout=0.0)
