"""Rehabilitation at the super-peer: lifting a quarantine must be as
loud as imposing one — routing-cache scope invalidated, the verdict
logged — and a rejoin-flagged advertisement must lift quarantines at
the SON's other members too."""

import pytest

from repro.durability import MemoryStore, PeerStateStore
from repro.peers.protocol import Advertise
from repro.resilience import ResilienceConfig
from repro.rvl import ActiveSchema
from repro.systems import HybridSystem
from repro.workloads.paper import PAPER_QUERY, paper_peer_bases, paper_schema


@pytest.fixture
def system():
    system = HybridSystem(paper_schema(), seed=0)
    system.add_super_peer("SP1")
    for peer_id, graph in paper_peer_bases().items():
        system.add_peer(peer_id, graph, "SP1")
    system.run()
    system.enable_resilience(ResilienceConfig.default(0))
    return system


def test_restore_invalidates_routing_cache_scope(system):
    """Symmetry with suspicion: entries computed while the peer was
    excluded must not linger once it is rehabilitated."""
    super_peer = system.super_peers["SP1"]
    system.query("P1", PAPER_QUERY)  # populate the SP's routing cache
    metrics = system.network.metrics
    super_peer.suspect_peer("P2")
    invalidations_after_suspect = metrics.cache_invalidations
    assert invalidations_after_suspect > 0
    system.query("P1", PAPER_QUERY)  # re-populate during the quarantine
    super_peer.restore_peer("P2")
    assert not super_peer.quarantine.is_quarantined("P2")
    assert metrics.cache_invalidations > invalidations_after_suspect


def test_restore_of_unquarantined_peer_is_silent(system):
    super_peer = system.super_peers["SP1"]
    system.query("P1", PAPER_QUERY)
    before = system.network.metrics.cache_invalidations
    super_peer.restore_peer("P2")  # never suspected
    assert system.network.metrics.cache_invalidations == before


def test_verdicts_are_logged_durably(system):
    super_peer = system.super_peers["SP1"]
    store = PeerStateStore(MemoryStore(), "SP1")
    super_peer.attach_durability(store)
    super_peer.suspect_peer("P2")
    assert store.recover().quarantined == {"P2"}
    super_peer.restore_peer("P2")
    assert store.recover().quarantined == set()


def test_liveness_recovery_rehabilitates(system):
    """A ``recover_peer`` control event (the sim's out-of-band liveness
    plane) lifts the quarantine through ``restore_peer``."""
    super_peer = system.super_peers["SP1"]
    system.network.fail_peer("P2")
    super_peer.suspect_peer("P2")
    assert super_peer.quarantine.is_quarantined("P2")
    system.network.recover_peer("P2")
    assert not super_peer.quarantine.is_quarantined("P2")


def test_rejoin_advertisement_rebroadcasts_to_son_members(system):
    """A rejoin-flagged Advertise at the super-peer is rebroadcast to
    the SON's other members, lifting their local quarantines without
    any out-of-band liveness plane (live-transport compatible)."""
    schema = paper_schema()
    coordinator = system.peers["P1"]
    witness = system.peers["P3"]
    coordinator.quarantine.record_failure("P2")
    witness.quarantine.record_failure("P2")
    advertisement = ActiveSchema.from_base(
        paper_peer_bases()["P2"], schema, "P2"
    )
    rejoiner = system.peers["P2"]
    rejoiner.send("SP1", Advertise(advertisement, rejoin=True))
    system.run()
    assert not coordinator.quarantine.is_quarantined("P2")
    assert not witness.quarantine.is_quarantined("P2")


def test_plain_advertisement_does_not_rebroadcast(system):
    """Initial joins never rebroadcast — the seed protocol byte flow is
    untouched when nobody rejoins."""
    metrics = system.network.metrics
    before = dict(metrics.messages_by_kind)
    schema = paper_schema()
    advertisement = ActiveSchema.from_base(
        paper_peer_bases()["P2"], schema, "P2"
    )
    system.peers["P2"].send("SP1", Advertise(advertisement))
    system.run()
    sent = metrics.messages_by_kind["Advertise"] - before.get("Advertise", 0)
    assert sent == 1  # only the push itself, no fan-out
