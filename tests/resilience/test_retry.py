"""Tests for retry policies (repro.resilience.retry)."""

import pytest

from repro.resilience import RetryPolicy, stable_seed


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("P1", 7) == stable_seed("P1", 7)

    def test_varies_with_parts(self):
        assert stable_seed("P1", 7) != stable_seed("P2", 7)
        assert stable_seed("P1", 7) != stable_seed("P1", 8)


class TestRetryPolicy:
    def test_exponential_backoff(self):
        policy = RetryPolicy(max_attempts=4, base_timeout=10.0, backoff=2.0)
        assert policy.timeout(1) == 10.0
        assert policy.timeout(2) == 20.0
        assert policy.timeout(3) == 40.0

    def test_timeout_capped(self):
        policy = RetryPolicy(
            max_attempts=8, base_timeout=10.0, backoff=10.0, max_timeout=50.0
        )
        assert policy.timeout(5) == 50.0

    def test_attempt_budget(self):
        policy = RetryPolicy(max_attempts=3, base_timeout=1.0)
        assert policy.attempts_left(1)
        assert policy.attempts_left(3)
        assert not policy.attempts_left(4)

    def test_attempts_are_one_based(self):
        policy = RetryPolicy(max_attempts=3, base_timeout=1.0)
        with pytest.raises(ValueError):
            policy.timeout(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_timeout=0.0)

    def test_jitter_bounded_and_deterministic(self):
        first = RetryPolicy(max_attempts=3, base_timeout=10.0, jitter=0.2, seed=5)
        second = RetryPolicy(max_attempts=3, base_timeout=10.0, jitter=0.2, seed=5)
        deadlines = [first.timeout(1) for _ in range(10)]
        assert deadlines == [second.timeout(1) for _ in range(10)]
        assert all(10.0 <= d <= 12.0 for d in deadlines)
        assert len(set(deadlines)) > 1  # jitter actually varies

    def test_for_peer_derives_distinct_streams(self):
        base = RetryPolicy(max_attempts=3, base_timeout=10.0, jitter=0.5)
        p1 = base.for_peer("P1")
        p2 = base.for_peer("P2")
        assert p1.max_attempts == base.max_attempts
        seq1 = [p1.timeout(1) for _ in range(5)]
        seq2 = [p2.timeout(1) for _ in range(5)]
        assert seq1 != seq2
        replay = base.for_peer("P1")
        assert seq1 == [replay.timeout(1) for _ in range(5)]
