"""Tests for fault injection (repro.resilience.faults) and its
integration with the network simulator."""

import pytest

from repro.net import Message, Network
from repro.resilience import CrashEvent, FaultInjector, FaultPlan, LinkPartition


class Echo:
    def __init__(self, peer_id):
        self.peer_id = peer_id
        self.received = []

    def receive(self, message, network):
        self.received.append((network.now, message))


def pair(plan=None, seed=7):
    network = Network(seed=seed, default_latency=1.0, default_cost_per_byte=0.0)
    a, b = Echo("A"), Echo("B")
    network.register(a)
    network.register(b)
    if plan is not None:
        network.install_faults(plan)
    return network, a, b


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.5).validate()
        with pytest.raises(ValueError):
            FaultPlan(jitter=-1.0).validate()
        FaultPlan(drop_rate=0.5, duplicate_rate=0.1).validate()

    def test_injector_decisions_replay(self):
        plan = FaultPlan(seed=3, drop_rate=0.3, duplicate_rate=0.3, jitter=2.0)
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        decisions = [
            (first.drops(None), first.duplicates(None), first.extra_delay())
            for _ in range(50)
        ]
        replayed = [
            (second.drops(None), second.duplicates(None), second.extra_delay())
            for _ in range(50)
        ]
        assert decisions == replayed
        assert first.dropped > 0 and first.duplicated > 0

    def test_partition_window(self):
        partition = LinkPartition(
            frozenset({"A"}), frozenset({"B"}), start=10.0, end=20.0
        )
        assert not partition.cuts("A", "B", 5.0)
        assert partition.cuts("A", "B", 10.0)
        assert partition.cuts("B", "A", 15.0)  # symmetric
        assert not partition.cuts("A", "B", 20.0)
        assert not partition.cuts("A", "C", 15.0)


class TestNetworkFaults:
    def test_loss_drops_messages_and_meters_them(self):
        network, _, b = pair(FaultPlan(seed=1, drop_rate=1.0))
        network.send(Message("A", "B", "x"))
        network.run()
        assert b.received == []
        assert network.metrics.dropped_messages == 1

    def test_duplication_delivers_twice(self):
        network, _, b = pair(FaultPlan(seed=1, duplicate_rate=1.0))
        network.send(Message("A", "B", "x"))
        network.run()
        assert len(b.received) == 2
        assert network.metrics.duplicated_messages == 1

    def test_jitter_delays_delivery(self):
        network, _, b = pair(FaultPlan(seed=1, jitter=5.0))
        network.send(Message("A", "B", "x"))
        network.run()
        (when, _), = b.received
        assert 1.0 <= when <= 6.0

    def test_partition_silently_cuts_link(self):
        plan = FaultPlan(
            partitions=(
                LinkPartition(frozenset({"A"}), frozenset({"B"}), 0.0, 10.0),
            )
        )
        network, a, b = pair(plan)
        network.send(Message("A", "B", "x"))
        network.run()
        assert b.received == []
        assert a.received == []  # no omniscient bounce
        # after the window the link heals
        network.call_later(12.0 - network.now, lambda: None)
        network.run()
        network.send(Message("A", "B", "y"))
        network.run()
        assert len(b.received) == 1

    def test_crash_schedule_fires(self):
        plan = FaultPlan(crashes=(CrashEvent(at=5.0, peer_id="B", recover_at=9.0),))
        network, _, b = pair(plan)
        transitions = []
        network.add_liveness_listener(
            lambda peer_id, alive: transitions.append((network.now, peer_id, alive))
        )
        network.run()
        assert transitions == [(5.0, "B", False), (9.0, "B", True)]
        assert not network.is_down("B")

    def test_down_peer_drops_silently_without_omniscience(self):
        network, a, b = pair(FaultPlan())
        network.fail_peer("B")
        network.send(Message("A", "B", "x"))
        network.run()
        assert b.received == []
        assert a.received == []  # sender not told: must time out instead
        assert network.metrics.dropped_messages == 1

    def test_omniscient_plan_keeps_legacy_bounces(self):
        network, a, b = pair(FaultPlan(omniscient=True))
        network.fail_peer("B")
        network.send(Message("A", "B", "x"))
        network.run()
        assert b.received == []
        assert len(a.received) == 1  # DeliveryFailure bounce

    def test_bounces_are_metered(self):
        network, a, _ = pair(FaultPlan(omniscient=True))
        network.fail_peer("B")
        before = network.metrics.messages_total
        network.send(Message("A", "B", "x"))
        network.run()
        # the request AND its DeliveryFailure bounce both count
        assert network.metrics.messages_total == before + 2

    def test_same_seed_same_delivery_trace(self):
        def trace():
            network, _, b = pair(
                FaultPlan(seed=5, drop_rate=0.3, duplicate_rate=0.2, jitter=1.0)
            )
            for index in range(30):
                network.send(Message("A", "B", f"m{index}"))
            network.run()
            return [(when, message.payload) for when, message in b.received]

        assert trace() == trace()
