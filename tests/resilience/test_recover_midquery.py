"""``Network.recover_peer`` while queries are in flight.

The contract: a recovery landing mid-query must never hang the
coordination — the query finishes as a full answer (the replan budget
reached the recovered peer) or as a coverage-annotated partial (it did
not) — and the in-flight gauge drains back to zero either way.
"""

import pytest

from repro.resilience import ResilienceConfig
from repro.systems import HybridSystem
from repro.workloads.paper import PAPER_QUERY, paper_peer_bases, paper_schema


def _system(seed=0):
    system = HybridSystem(paper_schema(), seed=seed)
    system.add_super_peer("SP1")
    for peer_id, graph in paper_peer_bases().items():
        system.add_peer(peer_id, graph, "SP1")
    system.run()
    system.enable_resilience(ResilienceConfig.default(seed))
    return system


def _finish(system, client, query_id):
    system.run()
    result = client.result(query_id)
    assert result is not None, "query hung"
    return result


@pytest.mark.parametrize("recover_delay", [1.0, 5.0, 20.0, 80.0, 300.0])
def test_recovery_mid_query_never_hangs(recover_delay):
    """Whatever the recovery timing, the query terminates and the
    in-flight gauge drains."""
    system = _system()
    system.network.fail_peer("P2")
    client = system.add_client()
    query_id = client.submit("P1", PAPER_QUERY)
    system.network.call_later(
        recover_delay, lambda: system.network.recover_peer("P2")
    )
    result = _finish(system, client, query_id)
    assert result.error is None
    assert result.table is not None
    if result.coverage is not None:
        # degraded before the recovery landed: the partial is honest
        assert not result.coverage.is_complete
        assert "P2" in result.coverage.excluded_peers
    assert system.network.metrics.inflight_queries == 0


def test_prompt_recovery_upgrades_to_full_answer():
    """A recovery within the replan budget yields the uncrashed answer."""
    baseline_system = _system()
    baseline = baseline_system.query("P1", PAPER_QUERY)

    system = _system()
    system.network.fail_peer("P2")
    client = system.add_client()
    query_id = client.submit("P1", PAPER_QUERY)
    system.network.call_later(1.0, lambda: system.network.recover_peer("P2"))
    result = _finish(system, client, query_id)
    assert result.error is None and result.coverage is None
    assert len(result.table) == len(baseline)


def test_recovery_after_partial_does_not_leak_state():
    """A recovery landing only after the query already finished (full
    or degraded) leaves no pending coordination or in-flight
    accounting behind."""
    system = _system()
    system.network.fail_peer("P2")
    client = system.add_client()
    query_id = client.submit("P1", PAPER_QUERY)
    result = _finish(system, client, query_id)  # finishes without P2
    assert result.error is None
    system.network.recover_peer("P2")
    system.run()
    coordinator = system.peers["P1"]
    assert coordinator._pending == {}
    assert system.network.metrics.inflight_queries == 0
    # and the next query is whole again
    follow_up = system.query("P1", PAPER_QUERY)
    assert len(follow_up) > 0


def test_back_to_back_crash_recover_cycles():
    """Repeated fail/recover cycles with queries in flight stay sound."""
    system = _system(seed=3)
    for cycle in range(3):
        system.network.fail_peer("P2")
        client = system.add_client()
        query_id = client.submit("P1", PAPER_QUERY)
        system.network.call_later(
            10.0 * cycle + 1.0, lambda: system.network.recover_peer("P2")
        )
        result = _finish(system, client, query_id)
        assert result.error is None
        assert system.network.metrics.inflight_queries == 0
