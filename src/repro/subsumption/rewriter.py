"""Per-peer query rewriting.

After routing decides that a peer is relevant to a path pattern, the
query actually *sent* to that peer is rewritten against the peer's
active-schema ("rewrite accordingly the query sent to a peer",
Section 2.3): the property is kept at the query's level of generality
when the peer advertises a subsumed property (local RDFS entailment
recovers the instances), but end-point classes are narrowed to the
intersection of the query's and the advertisement's classes so a peer
populating a broader class only ships sound answers.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import RoutingError
from ..rdf.schema import Schema
from ..rdf.terms import URI
from ..rdf.vocabulary import LITERAL_CLASS
from ..rql.pattern import PathPattern, SchemaPath
from ..rvl.active_schema import ActiveSchema
from .checker import is_subsumed


def narrow_class(advertised: URI, queried: URI, schema: Schema) -> URI:
    """The more specific of two compatible classes.

    Both subsumption directions were accepted by routing; rewriting
    keeps the narrower class so the peer-side filter is sound.
    """
    if advertised == LITERAL_CLASS or queried == LITERAL_CLASS:
        return queried
    if schema.is_subclass(advertised, queried):
        return advertised
    if schema.is_subclass(queried, advertised):
        return queried
    raise RoutingError(f"classes {advertised} and {queried} are not comparable")


def rewrite_for_peer(
    pattern: PathPattern, active_schema: ActiveSchema, schema: Schema
) -> Optional[PathPattern]:
    """Rewrite ``pattern`` into the subquery to send to one peer.

    Returns ``None`` when no advertised path of the peer is subsumed by
    the pattern (the peer is irrelevant).  When several advertised
    paths match (e.g. the peer populates both ``prop1`` and
    ``prop4 ⊑ prop1``), the queried property is kept — one subquery
    retrieves all of them via local entailment — and end-point classes
    are narrowed to the least upper bound of the matching paths.
    """
    matching: List[SchemaPath] = [
        p for p in active_schema if is_subsumed(p, pattern.schema_path, schema)
    ]
    if not matching:
        return None
    query_path = pattern.schema_path
    domain = query_path.domain
    range_ = query_path.range
    if len(matching) == 1:
        advertised = matching[0]
        domain = narrow_class(advertised.domain, query_path.domain, schema)
        range_ = narrow_class(advertised.range, query_path.range, schema)
    return PathPattern(
        label=pattern.label,
        schema_path=SchemaPath(domain, query_path.property, range_),
        subject_var=pattern.subject_var,
        object_var=pattern.object_var,
        projected=pattern.projected,
    )
