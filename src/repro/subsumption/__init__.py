"""Query/view subsumption and per-peer rewriting (SWIM's role in SQPeer)."""

from .checker import (
    can_answer,
    class_compatible,
    covers_pattern,
    is_subsumed,
    matching_paths,
)
from .rewriter import narrow_class, rewrite_for_peer

__all__ = [
    "can_answer",
    "class_compatible",
    "covers_pattern",
    "is_subsumed",
    "matching_paths",
    "narrow_class",
    "rewrite_for_peer",
]
