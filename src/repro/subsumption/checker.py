"""Query/view subsumption — the logic core of semantic routing.

The routing algorithm's test ``isSubsumed(AS_jk, AQ_i)`` (paper
Section 2.3) asks whether active-schema path ``AS_jk`` can contribute
answers to query path pattern ``AQ_i``.  Under RDF/S semantics this
holds when the advertised property is subsumed by the queried property
and the advertised end-point classes are *compatible* with the queried
ones: every instance pair the peer stores under ``AS_jk`` is then an
(entailed) instance pair of ``AQ_i`` — the check is sound — and
because advertisements enumerate every populated path, scanning them
all keeps routing complete (the SWIM guarantee the paper relies on).

Figure 2's example: P4 advertises ``(C5)prop4(C6)``; since
``prop4 ⊑ prop1``, ``C5 ⊑ C1`` and ``C6 ⊑ C2``, the path is subsumed
by Q1 = ``(C1)prop1(C2)`` and P4 is annotated for Q1.
"""

from __future__ import annotations

from typing import Iterable, List

from ..rdf.schema import Schema
from ..rdf.terms import URI
from ..rdf.vocabulary import LITERAL_CLASS
from ..rql.pattern import PathPattern, SchemaPath
from ..rvl.active_schema import ActiveSchema


def class_compatible(advertised: URI, queried: URI, schema: Schema) -> bool:
    """True when instances advertised under ``advertised`` may satisfy
    a query end point of class ``queried``.

    Exact subsumption ``advertised ⊑ queried`` is the sound direction.
    The converse ``queried ⊑ advertised`` is also accepted: a peer
    populating the *broader* class may hold instances of the narrower
    one, and the query rewriting step narrows the class filter so only
    correct answers are returned (sound after rewriting, and necessary
    for completeness).
    """
    if advertised == LITERAL_CLASS or queried == LITERAL_CLASS:
        return advertised == queried
    return schema.is_subclass(advertised, queried) or schema.is_subclass(
        queried, advertised
    )


def is_subsumed(advertised: SchemaPath, query_path: SchemaPath, schema: Schema) -> bool:
    """The routing test: can ``advertised`` contribute to ``query_path``?

    Requires property subsumption ``advertised.property ⊑
    query_path.property`` and end-point class compatibility on both
    sides.
    """
    if not schema.is_subproperty(advertised.property, query_path.property):
        return False
    return class_compatible(advertised.domain, query_path.domain, schema) and (
        class_compatible(advertised.range, query_path.range, schema)
    )


def matching_paths(
    active_schema: ActiveSchema, pattern: PathPattern, schema: Schema
) -> List[SchemaPath]:
    """The advertised paths of ``active_schema`` subsumed by ``pattern``."""
    return [
        path for path in active_schema if is_subsumed(path, pattern.schema_path, schema)
    ]


def can_answer(active_schema: ActiveSchema, pattern: PathPattern, schema: Schema) -> bool:
    """True when the peer advertising ``active_schema`` is relevant to
    ``pattern`` — i.e. at least one advertised path is subsumed."""
    return any(is_subsumed(p, pattern.schema_path, schema) for p in active_schema)


def covers_pattern(
    active_schemas: Iterable[ActiveSchema], pattern: PathPattern, schema: Schema
) -> bool:
    """True when at least one advertisement in the collection can
    answer ``pattern`` (used to detect plan "holes")."""
    return any(can_answer(a, pattern, schema) for a in active_schemas)
