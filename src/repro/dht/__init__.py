"""Chord-style DHT for RDF/S schema lookup (paper Section 5 future work)."""

from .chord import ChordNode, ChordRing, chord_hash
from .schema_index import SchemaDHT

__all__ = ["ChordNode", "ChordRing", "SchemaDHT", "chord_hash"]
