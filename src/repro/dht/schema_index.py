"""The schema DHT: property-keyed advertisement lookup with subsumption.

Peers publish their active-schemas into the ring keyed by **property
URI** — and, crucially, under every *superproperty* as well, which is
what "DHTs for RDF/S schemas **with subsumption information**"
(Section 5) calls for: a lookup on ``prop1`` then finds peers that only
populate ``prop4 ⊑ prop1``, without any flooding.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..rdf.schema import Schema
from ..rdf.terms import URI
from ..rql.pattern import PathPattern, QueryPattern
from ..rvl.active_schema import ActiveSchema
from .chord import ChordRing


class SchemaDHT:
    """Advertisement directory over a Chord ring.

    Args:
        ring: The identifier ring (peers should already be members, or
            will be joined on first publish).
        schema: The community schema supplying the subsumption closure.
    """

    def __init__(self, ring: ChordRing, schema: Schema):
        self.ring = ring
        self.schema = schema
        self._advertisements: Dict[str, ActiveSchema] = {}
        #: cumulative overlay hops spent on maintenance and lookups
        self.publish_hops = 0
        self.lookup_hops = 0

    # ------------------------------------------------------------------
    # publication
    # ------------------------------------------------------------------
    def _keys_for(self, advertisement: ActiveSchema) -> Set[str]:
        """Index keys: each advertised property plus its superproperties
        (the subsumption information baked into the index)."""
        keys: Set[str] = set()
        for path in advertisement:
            if self.schema.has_property(path.property):
                for parent in self.schema.superproperties(path.property):
                    keys.add(parent.value)
            else:
                keys.add(path.property.value)
        return keys

    def publish(self, advertisement: ActiveSchema) -> int:
        """Publish a peer's advertisement; returns the hops spent."""
        peer_id = advertisement.peer_id
        if peer_id is None:
            raise ValueError("advertisement must carry a peer id")
        if peer_id not in [n for n in self._members()]:
            self.ring.join(peer_id)
        self._advertisements[peer_id] = advertisement
        hops = 0
        for key in sorted(self._keys_for(advertisement)):
            hops += self.ring.put(key, peer_id, start=peer_id)
        self.publish_hops += hops
        return hops

    def unpublish(self, peer_id: str) -> None:
        """Remove a departed peer's entries and ring membership."""
        advertisement = self._advertisements.pop(peer_id, None)
        if advertisement is not None:
            for key in self._keys_for(advertisement):
                self.ring.remove_value(key, peer_id)
        if peer_id in self._members():
            self.ring.leave(peer_id)

    def _members(self) -> List[str]:
        return [node.name for node in self.ring._ordered]

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def lookup_property(
        self, prop: URI, start: Optional[str] = None
    ) -> Tuple[Set[str], int]:
        """Peers advertising ``prop`` or any subproperty of it."""
        peers, hops = self.ring.get(prop.value, start=start)
        self.lookup_hops += hops
        return peers, hops

    def lookup_pattern(
        self, pattern: PathPattern, start: Optional[str] = None
    ) -> Tuple[Set[str], int]:
        """Peers relevant to one query path pattern."""
        return self.lookup_property(pattern.schema_path.property, start)

    def advertisements_for_pattern(
        self, pattern: PathPattern, start: Optional[str] = None
    ) -> Tuple[List[ActiveSchema], int]:
        """The full advertisements of the peers a lookup returns
        (fetched so the caller can run precise subsumption routing)."""
        peers, hops = self.lookup_pattern(pattern, start)
        found = [
            self._advertisements[p] for p in sorted(peers) if p in self._advertisements
        ]
        return found, hops

    def route(
        self, pattern: QueryPattern, start: Optional[str] = None
    ) -> Tuple[List[ActiveSchema], int]:
        """One lookup per path pattern; the union of advertisements."""
        total_hops = 0
        merged: Dict[str, ActiveSchema] = {}
        for path_pattern in pattern:
            ads, hops = self.advertisements_for_pattern(path_pattern, start)
            total_hops += hops
            for advertisement in ads:
                merged[advertisement.peer_id] = advertisement
        return [merged[p] for p in sorted(merged)], total_hops
