"""A Chord-style consistent-hashing ring (substrate for the schema DHT).

The paper's footnote 2 ("more elaborated techniques based on DHT for
RDF/S schemas can be used") and its future work ("investigate the
possible use of Distributed Hash Tables for RDF/S schemas with
subsumption information") reference a Chord-like structured overlay.
This module implements the lookup substrate: nodes own arcs of a
2^bits identifier ring, finger tables give O(log N) greedy routing,
and lookups report their hop count so experiments can charge routing
cost.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Tuple

from ..errors import NetworkError


def chord_hash(value: str, bits: int = 16) -> int:
    """Deterministic identifier for a key or node name."""
    digest = hashlib.sha1(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (1 << bits)


class ChordNode:
    """One ring member: identifier, finger table, local key store."""

    __slots__ = ("name", "node_id", "fingers", "store")

    def __init__(self, name: str, node_id: int):
        self.name = name
        self.node_id = node_id
        self.fingers: List["ChordNode"] = []
        self.store: Dict[str, set] = {}

    def __repr__(self) -> str:
        return f"ChordNode({self.name}@{self.node_id})"


class ChordRing:
    """The ring: membership, finger maintenance, greedy lookup.

    Args:
        bits: Identifier space size (2^bits positions).
    """

    def __init__(self, bits: int = 16):
        if not 4 <= bits <= 48:
            raise NetworkError("bits must be within [4, 48]")
        self.bits = bits
        self._nodes: Dict[str, ChordNode] = {}
        self._ordered: List[ChordNode] = []
        #: full stabilisation pending (set on departures and every few
        #: joins); run at the next lookup, as Chord's periodic
        #: stabilisation would
        self._dirty = False
        self._joins_since_stabilize = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def join(self, name: str) -> ChordNode:
        """Add a node; keys it now owns move over from its successor."""
        if name in self._nodes:
            raise NetworkError(f"node {name} already on the ring")
        node = ChordNode(name, chord_hash(name, self.bits))
        if any(n.node_id == node.node_id for n in self._ordered):
            # identifier collision: probe deterministically
            suffix = 1
            while any(
                n.node_id == chord_hash(f"{name}#{suffix}", self.bits)
                for n in self._ordered
            ):
                suffix += 1
            node = ChordNode(name, chord_hash(f"{name}#{suffix}", self.bits))
        self._nodes[name] = node
        self._ordered.append(node)
        self._ordered.sort(key=lambda n: n.node_id)
        # incremental maintenance: build the newcomer's fingers and move
        # over the keys it now owns from its ring successor.  Other
        # nodes' fingers stay temporarily suboptimal (never wrong —
        # lookups still converge through authoritative successor steps)
        # until the next full stabilisation.
        node.fingers = [
            self.successor((node.node_id + (1 << k)) % (1 << self.bits))
            for k in range(self.bits)
        ]
        self._steal_keys(node)
        self._joins_since_stabilize += 1
        if self._joins_since_stabilize * 4 >= max(8, len(self._ordered)):
            self._dirty = True
        return node

    def _steal_keys(self, node: ChordNode) -> None:
        """Move keys the new node owns from its ring successor."""
        index = self._ordered.index(node)
        neighbour = self._ordered[(index + 1) % len(self._ordered)]
        if neighbour is node:
            return
        for key in list(neighbour.store):
            if self.successor(chord_hash(key, self.bits)) is node:
                node.store.setdefault(key, set()).update(neighbour.store.pop(key))

    def leave(self, name: str) -> None:
        """Remove a node; its keys move to its successor."""
        node = self._nodes.pop(name, None)
        if node is None:
            return
        self._ordered.remove(node)
        self._dirty = True
        if self._ordered:
            for key, values in node.store.items():
                successor = self.successor(chord_hash(key, self.bits))
                successor.store.setdefault(key, set()).update(values)
        node.store.clear()

    def node(self, name: str) -> ChordNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"unknown ring node {name}") from None

    def __len__(self) -> int:
        return len(self._ordered)

    # ------------------------------------------------------------------
    # topology maintenance
    # ------------------------------------------------------------------
    def successor(self, key_id: int) -> ChordNode:
        """The node owning identifier ``key_id`` (binary search)."""
        if not self._ordered:
            raise NetworkError("empty ring")
        ids = [n.node_id for n in self._ordered]
        index = bisect.bisect_left(ids, key_id)
        if index == len(ids):
            index = 0  # wrap around
        return self._ordered[index]

    def _stabilize(self) -> None:
        """Run deferred maintenance after membership changes."""
        if not self._dirty:
            return
        self._dirty = False
        self._joins_since_stabilize = 0
        self._rebuild_fingers()
        self._redistribute_keys()

    def _rebuild_fingers(self) -> None:
        for node in self._ordered:
            node.fingers = [
                self.successor((node.node_id + (1 << k)) % (1 << self.bits))
                for k in range(self.bits)
            ]

    def _redistribute_keys(self) -> None:
        """Move every stored key to its current owner (after a join)."""
        relocations = []
        for node in self._ordered:
            for key in list(node.store):
                owner = self.successor(chord_hash(key, self.bits))
                if owner is not node:
                    relocations.append((node, owner, key))
        for source, owner, key in relocations:
            owner.store.setdefault(key, set()).update(source.store.pop(key))

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def lookup(self, key: str, start: Optional[str] = None) -> Tuple[ChordNode, int]:
        """Greedy finger routing from ``start`` to the key's owner.

        Returns:
            ``(owner, hops)`` — the owning node and the overlay hops
            the lookup traversed (0 when the start node owns the key).
        """
        if not self._ordered:
            raise NetworkError("empty ring")
        self._stabilize()
        key_id = chord_hash(key, self.bits)
        owner = self.successor(key_id)
        current = self.node(start) if start else self._ordered[0]
        hops = 0
        while current is not owner:
            step = self._closest_preceding(current, key_id)
            if step is current:
                current = owner  # direct successor hop
            else:
                current = step
            hops += 1
            if hops > 2 * self.bits:
                raise NetworkError("lookup failed to converge")
        return owner, hops

    def _closest_preceding(self, node: ChordNode, key_id: int) -> ChordNode:
        """The finger closest below the key, Chord's greedy step."""
        best = node
        for finger in reversed(node.fingers):
            if _in_open_interval(finger.node_id, node.node_id, key_id, self.bits):
                best = finger
                break
        return best

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    def put(self, key: str, value, start: Optional[str] = None) -> int:
        """Store ``value`` under ``key`` at its owner; returns hops."""
        owner, hops = self.lookup(key, start)
        owner.store.setdefault(key, set()).add(value)
        return hops

    def get(self, key: str, start: Optional[str] = None) -> Tuple[set, int]:
        """Fetch the values stored under ``key``; returns (values, hops)."""
        owner, hops = self.lookup(key, start)
        return set(owner.store.get(key, ())), hops

    def remove_value(self, key: str, value) -> None:
        """Drop one value from a key's set (peer departure)."""
        if not self._ordered:
            return
        self._stabilize()
        owner = self.successor(chord_hash(key, self.bits))
        bucket = owner.store.get(key)
        if bucket is not None:
            bucket.discard(value)
            if not bucket:
                del owner.store[key]


def _in_open_interval(x: int, a: int, b: int, bits: int) -> bool:
    """True when x lies in the ring interval (a, b) going clockwise."""
    if a == b:
        return x != a
    if a < b:
        return a < x < b
    return x > a or x < b
