"""Client-peers: query entry points with no base of their own.

Client-peers "have only the ability to pose RQL queries to the rest of
the P2P system" (Section 3); they connect to a simple peer, submit
queries and collect answers.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from ..livedata.continuous import fold_delta
from ..livedata.updates import ContinuousCancel, ContinuousSubscribe, ContinuousUpdate
from ..net.message import Message
from .base import Peer
from .protocol import QueryResult, QueryShed, QuerySubmit


class ClientPeer(Peer):
    """A query-only peer.

    Example:
        >>> client = ClientPeer("C1")          # doctest: +SKIP
        >>> client.join(network)               # doctest: +SKIP
        >>> qid = client.submit("P1", "SELECT ...")  # doctest: +SKIP
        >>> network.run()                      # doctest: +SKIP
        >>> client.result(qid)                 # doctest: +SKIP
    """

    def __init__(self, peer_id: str):
        super().__init__(peer_id, base=None)
        self.results: Dict[str, QueryResult] = {}
        self._counter = itertools.count(1)
        #: resubmit policy when no result arrives (None: wait forever,
        #: the seed behaviour); coordinators answer duplicate submits
        #: idempotently, so resubmission is always safe
        self.submit_retry = None
        #: open root spans per in-flight query (repro.obs)
        self._spans: Dict[str, object] = {}
        #: retry-after hints of queries shed by admission control,
        #: keyed by query id (the workload driver resubmits from these)
        self.sheds: Dict[str, float] = {}
        #: called with ``(client, result)`` whenever a query terminates
        #: — answer, error or shed (repro.workload_engine drivers hook
        #: closed-loop submission and shed resubmission here)
        self.result_listeners: List[Callable[["ClientPeer", QueryResult], None]] = []
        #: continuous subscriptions (repro.livedata): the folded
        #: current answer and the raw pushed deltas, per query id
        self.continuous: Dict[str, object] = {}
        self.continuous_updates: Dict[str, List[ContinuousUpdate]] = {}
        self.continuous_errors: Dict[str, str] = {}

    def submit(
        self,
        via_peer: str,
        text: str,
        max_peers: Optional[int] = None,
        limit: Optional[int] = None,
        order_by: Optional[str] = None,
        descending: bool = False,
    ) -> str:
        """Submit an RQL query through a simple peer; returns the
        query id to look the answer up with.

        Args:
            via_peer: The simple peer acting as coordinator.
            text: RQL source text.
            max_peers: Broadcast bound per path pattern (Section 5's
                completeness/load trade-off).
            limit: Top-N / Bottom-N bound on the answer size.
            order_by: Variable to order the answer by before the limit.
            descending: Sort direction for ``order_by``.
        """
        query_id = f"{self.peer_id}-q{next(self._counter)}"
        submit = QuerySubmit(
            query_id, text, self.peer_id, max_peers, limit, order_by, descending
        )
        # root span of the whole distributed trace; the query id doubles
        # as the trace id so exports are deterministic across runs
        span = self._require_network().tracer.start_span(
            "query", peer=self.peer_id, trace_id=query_id, via=via_peer
        )
        if span:
            self._spans[query_id] = span
        self.send(via_peer, submit, trace=span.context())
        if self.submit_retry is not None:
            self._arm_resubmit(via_peer, submit, 1)
        return query_id

    def _arm_resubmit(self, via_peer: str, submit: QuerySubmit, attempt: int) -> None:
        network = self._require_network()
        retry = self.submit_retry

        def check() -> None:
            if submit.query_id in self.results:
                return
            span = self._spans.get(submit.query_id)
            if retry.attempts_left(attempt + 1):
                network.metrics.record_retry()
                if span is not None:
                    span.annotate(f"resubmit attempt={attempt + 1}")
                self.send(
                    via_peer,
                    submit,
                    trace=span.context() if span is not None else None,
                )
                self._arm_resubmit(via_peer, submit, attempt + 1)
            else:
                timeout_result = QueryResult(
                    submit.query_id, None, f"no reply from {via_peer}"
                )
                self.results.setdefault(submit.query_id, timeout_result)
                self._finish_span(submit.query_id, "timeout")
                self._notify(self.results[submit.query_id])

        network.call_later(retry.timeout(attempt), check)

    def _finish_span(self, query_id: str, status: str) -> None:
        span = self._spans.pop(query_id, None)
        if span is not None:
            span.finish(status)

    def handle_QueryResult(self, message: Message) -> None:
        result: QueryResult = message.payload
        if result.query_id in self.results:
            return  # late duplicate (ad-hoc races): first answer won
        self.results[result.query_id] = result
        if result.error:
            status = "error"
        elif result.coverage is not None:
            status = "partial"
        else:
            status = "ok"
        self._finish_span(result.query_id, status)
        self._notify(result)

    def handle_QueryShed(self, message: Message) -> None:
        """The coordinator refused the query under load.  Record an
        explicit shed outcome (never silence) with the retry-after hint;
        resubmission is the caller's (or the workload driver's) call."""
        shed: QueryShed = message.payload
        if shed.query_id in self.results:
            return  # raced a result from an earlier duplicate submit
        self.sheds[shed.query_id] = shed.retry_after
        result = QueryResult(
            shed.query_id,
            None,
            f"shed by {shed.from_peer}: retry after {shed.retry_after:g}",
        )
        self.results[shed.query_id] = result
        self._finish_span(shed.query_id, "shed")
        self._notify(result)

    # ------------------------------------------------------------------
    # continuous queries (repro.livedata)
    # ------------------------------------------------------------------
    def subscribe(self, via_peer: str, text: str) -> str:
        """Keep ``text`` standing at ``via_peer``: the coordinator
        pushes binding deltas per quiescent revision, folded here into
        :attr:`continuous` (``next = (prev - removed) + added``)."""
        query_id = f"{self.peer_id}-c{next(self._counter)}"
        self.continuous_updates[query_id] = []
        self.send(via_peer, ContinuousSubscribe(query_id, text, self.peer_id))
        return query_id

    def unsubscribe(self, via_peer: str, query_id: str) -> None:
        """Stop the standing query's pushes (the folded answer and the
        recorded deltas stay readable)."""
        self.send(via_peer, ContinuousCancel(query_id))

    def handle_ContinuousUpdate(self, message: Message) -> None:
        update: ContinuousUpdate = message.payload
        self.continuous_updates.setdefault(update.query_id, []).append(update)
        if update.error is not None:
            self.continuous_errors[update.query_id] = update.error
            return
        self.continuous[update.query_id] = fold_delta(
            self.continuous.get(update.query_id), update
        )

    def _notify(self, result: QueryResult) -> None:
        for listener in list(self.result_listeners):
            listener(self, result)

    def result(self, query_id: str) -> Optional[QueryResult]:
        return self.results.get(query_id)
