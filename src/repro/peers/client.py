"""Client-peers: query entry points with no base of their own.

Client-peers "have only the ability to pose RQL queries to the rest of
the P2P system" (Section 3); they connect to a simple peer, submit
queries and collect answers.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from ..net.message import Message
from .base import Peer
from .protocol import QueryResult, QuerySubmit


class ClientPeer(Peer):
    """A query-only peer.

    Example:
        >>> client = ClientPeer("C1")          # doctest: +SKIP
        >>> client.join(network)               # doctest: +SKIP
        >>> qid = client.submit("P1", "SELECT ...")  # doctest: +SKIP
        >>> network.run()                      # doctest: +SKIP
        >>> client.result(qid)                 # doctest: +SKIP
    """

    def __init__(self, peer_id: str):
        super().__init__(peer_id, base=None)
        self.results: Dict[str, QueryResult] = {}
        self._counter = itertools.count(1)
        #: resubmit policy when no result arrives (None: wait forever,
        #: the seed behaviour); coordinators answer duplicate submits
        #: idempotently, so resubmission is always safe
        self.submit_retry = None
        #: open root spans per in-flight query (repro.obs)
        self._spans: Dict[str, object] = {}

    def submit(
        self,
        via_peer: str,
        text: str,
        max_peers: Optional[int] = None,
        limit: Optional[int] = None,
        order_by: Optional[str] = None,
        descending: bool = False,
    ) -> str:
        """Submit an RQL query through a simple peer; returns the
        query id to look the answer up with.

        Args:
            via_peer: The simple peer acting as coordinator.
            text: RQL source text.
            max_peers: Broadcast bound per path pattern (Section 5's
                completeness/load trade-off).
            limit: Top-N / Bottom-N bound on the answer size.
            order_by: Variable to order the answer by before the limit.
            descending: Sort direction for ``order_by``.
        """
        query_id = f"{self.peer_id}-q{next(self._counter)}"
        submit = QuerySubmit(
            query_id, text, self.peer_id, max_peers, limit, order_by, descending
        )
        # root span of the whole distributed trace; the query id doubles
        # as the trace id so exports are deterministic across runs
        span = self._require_network().tracer.start_span(
            "query", peer=self.peer_id, trace_id=query_id, via=via_peer
        )
        if span:
            self._spans[query_id] = span
        self.send(via_peer, submit, trace=span.context())
        if self.submit_retry is not None:
            self._arm_resubmit(via_peer, submit, 1)
        return query_id

    def _arm_resubmit(self, via_peer: str, submit: QuerySubmit, attempt: int) -> None:
        network = self._require_network()
        retry = self.submit_retry

        def check() -> None:
            if submit.query_id in self.results:
                return
            span = self._spans.get(submit.query_id)
            if retry.attempts_left(attempt + 1):
                network.metrics.record_retry()
                if span is not None:
                    span.annotate(f"resubmit attempt={attempt + 1}")
                self.send(
                    via_peer,
                    submit,
                    trace=span.context() if span is not None else None,
                )
                self._arm_resubmit(via_peer, submit, attempt + 1)
            else:
                self.results.setdefault(
                    submit.query_id,
                    QueryResult(
                        submit.query_id, None, f"no reply from {via_peer}"
                    ),
                )
                self._finish_span(submit.query_id, "timeout")

        network.call_later(retry.timeout(attempt), check)

    def _finish_span(self, query_id: str, status: str) -> None:
        span = self._spans.pop(query_id, None)
        if span is not None:
            span.finish(status)

    def handle_QueryResult(self, message: Message) -> None:
        result: QueryResult = message.payload
        if result.query_id in self.results:
            return  # late duplicate (ad-hoc races): first answer won
        self.results[result.query_id] = result
        if result.error:
            status = "error"
        elif result.coverage is not None:
            status = "partial"
        else:
            status = "ok"
        self._finish_span(result.query_id, status)

    def result(self, query_id: str) -> Optional[QueryResult]:
        return self.results.get(query_id)
