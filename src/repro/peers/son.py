"""Semantic Overlay Network membership bookkeeping.

A SON clusters the peers that employ one community RDF/S schema
(Section 1).  The registry groups advertisements by schema URI; both
architectures use it — super-peers hold one per cluster, ad-hoc peers
grow one incrementally from neighbourhood pulls.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

from ..rvl.active_schema import ActiveSchema


class SONRegistry:
    """Advertisements grouped into SONs by community schema URI."""

    def __init__(self):
        self._sons: Dict[str, Dict[str, ActiveSchema]] = {}

    def add(self, advertisement: ActiveSchema) -> None:
        """File an advertisement under its schema's SON."""
        if advertisement.peer_id is None:
            raise ValueError("advertisement must carry a peer id")
        son = self._sons.setdefault(advertisement.schema_uri, {})
        existing = son.get(advertisement.peer_id)
        if existing is not None:
            advertisement = existing.merge(advertisement)
        son[advertisement.peer_id] = advertisement

    def remove_peer(self, peer_id: str) -> None:
        """Drop a departed peer from every SON."""
        for son in self._sons.values():
            son.pop(peer_id, None)
        self._sons = {uri: son for uri, son in self._sons.items() if son}

    def members(self, schema_uri: str) -> Set[str]:
        """Peers belonging to one SON."""
        return set(self._sons.get(schema_uri, {}))

    def advertisements(self, schema_uri: str) -> List[ActiveSchema]:
        """The SON's advertisements, sorted by peer id."""
        son = self._sons.get(schema_uri, {})
        return [son[p] for p in sorted(son)]

    def sons(self) -> List[str]:
        """The schema URIs with at least one member."""
        return sorted(self._sons)

    def sons_of(self, peer_id: str) -> List[str]:
        """The SONs one peer belongs to."""
        return sorted(uri for uri, son in self._sons.items() if peer_id in son)

    def __len__(self) -> int:
        return len(self._sons)

    def __iter__(self) -> Iterator[str]:
        return iter(self.sons())
