"""Peer churn: departures and advertisement refresh.

"We would like to support loosely coupled communities of databases
where each peer base can join and leave the network at will"
(Section 1).  This module supplies the two protocol pieces joining
(already on the peer classes) does not cover:

* **departure** — a leaving peer notifies the parties holding its
  advertisement (its super-peer in the hybrid architecture, its
  neighbours in the ad-hoc one) with a :class:`Goodbye`, so routing
  stops annotating it *before* queries fail over to it;
* **refresh** — when a peer's base changes *intensionally* (a property
  becomes populated or empties out), a fresh advertisement is pushed;
  purely extensional churn stays silent — the economy Section 2.2
  claims over full data indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from ..rdf.terms import URI
from ..rvl.active_schema import ActiveSchema


@dataclass(frozen=True)
class Goodbye:
    """Departing peer → advertisement holders: forget me."""

    peer_id: str

    def size_bytes(self) -> int:
        return 48 + len(self.peer_id)


class AdvertisementTracker:
    """Tracks a base's intensional footprint across updates.

    Args:
        base: The peer's :class:`~repro.peers.base.PeerBase`.

    The tracker remembers the footprint last advertised;
    :meth:`refresh` returns a new advertisement only when the footprint
    changed since.
    """

    def __init__(self, base):
        self.base = base
        self._advertised: Optional[FrozenSet[URI]] = None

    def _footprint(self) -> FrozenSet[URI]:
        if self.base.views:
            merged = None
            for view in self.base.views:
                derived = ActiveSchema.from_view(view, self.base.schema, "_")
                merged = derived if merged is None else merged.merge(derived)
            return frozenset(p.property for p in (merged or ActiveSchema("_")))
        return frozenset(
            prop
            for prop in self.base.schema.properties
            if next(self.base.graph.triples(None, prop, None), None) is not None
        )

    def mark_advertised(self) -> None:
        """Record the current footprint as the advertised one."""
        self._advertised = self._footprint()

    def needs_refresh(self) -> bool:
        """True when the footprint drifted from the advertised one."""
        return self._footprint() != self._advertised

    def refresh(self, peer_id: str) -> Optional[ActiveSchema]:
        """A fresh advertisement when needed, else ``None``."""
        if not self.needs_refresh():
            return None
        self.mark_advertised()
        advertisement = self.base.active_schema(peer_id)
        return advertisement
