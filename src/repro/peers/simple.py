"""Simple peers: storage, query coordination and execution.

A simple peer shares its base with the SON, answers subplans, and —
when a client submits a query to it — acts as the query's coordinator:
it obtains an annotated query pattern (how depends on the
architecture), generates and optimises the plan, deploys channels, and
assembles the final answer.  Run-time adaptation lives here too: when
a channel fails, the coordinator discards partial results (ubQL),
re-routes without the obsolete peers and re-executes.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import replace
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from ..cache.coalescer import QueryCoalescer
from ..cache.plan_cache import PlanCache
from ..cache.routing_cache import RoutingCache
from ..core.adaptivity import ReplanBudget
from ..core.algebra import PlanNode
from ..core.annotations import AnnotatedQueryPattern
from ..core.constraints import QueryConstraints, UNCONSTRAINED, apply_peer_bound
from ..core.cost import CostModel, StatSummary, Statistics, harvest_stat_summary
from ..core.optimizer import optimize
from ..core.planning import build_plan
from ..core.routing import route_query
from ..core.shipping import assign_sites
from ..errors import ParseError, SchemaError
from ..execution.engine import PlanExecutor
from ..execution.encoded import is_id_table
from ..execution.operators import finalize, finalize_encoded
from ..livedata.continuous import StandingQuery, table_delta
from ..livedata.maintenance import LiveMaintainer
from ..livedata.updates import (
    AdvertiseDelta,
    ContinuousUpdate,
    UpdateAck,
    apply_advertisement_delta,
)
from ..net.message import Message
from ..obs.tracer import NULL_SPAN, NULL_TRACER
from ..rdf.schema import Schema
from ..resilience.detector import PeerQuarantine
from ..resilience.partial import Coverage, restrict_to_answerable
from ..rql.ast import RQLQuery
from ..rql.bindings import BindingTable
from ..rql.parser import parse_query
from ..rql.pattern import QueryPattern, extract_pattern
from ..rvl.active_schema import ActiveSchema
from .base import Peer, PeerBase
from .churn import AdvertisementTracker, Goodbye
from .protocol import (
    Advertise,
    AdvertisementReply,
    AdvertisementRequest,
    QueryResult,
    QueryShed,
    QuerySubmit,
)


class PendingQuery:
    """Coordinator-side state of one in-flight query."""

    def __init__(
        self,
        query_id: str,
        query: RQLQuery,
        pattern: QueryPattern,
        reply_to: str,
        constraints: Optional[QueryConstraints] = None,
    ):
        self.query_id = query_id
        self.query = query
        self.pattern = pattern
        self.reply_to = reply_to
        self.constraints = constraints or UNCONSTRAINED
        self.excluded: Set[str] = set()
        self.attempts = 0
        self.executor: Optional[PlanExecutor] = None
        self.annotated: Optional[AnnotatedQueryPattern] = None
        self.discarded_results = 0
        #: scan-result cache carried across phases (phased policy only)
        self.scan_cache: Dict = {}
        self.reused_rows = 0
        #: routing round-trips attempted (hybrid RouteRequest retries)
        self.routing_attempts = 0
        #: True while a RouteReply is awaited (stale/duplicate replies
        #: and timeouts check against this)
        self.awaiting_routing = False
        #: RouteBusy back-offs taken this routing round (bounded by the
        #: requester's shed budget before it gives up)
        self.routing_busy_retries = 0
        #: tracing (repro.obs): the coordinator-side span covering the
        #: whole coordination, and the currently open routing round
        self.span = NULL_SPAN
        self.routing_span = NULL_SPAN


class SimplePeer(Peer):
    """A peer with a local base that can coordinate queries.

    The base class routes from *local knowledge* (its own base plus
    advertisements it has received); the hybrid and ad-hoc subclasses
    override :meth:`_obtain_routing` / :meth:`_handle_incomplete` with
    their architecture's behaviour.

    Args:
        peer_id: Network address.
        base: Local description base.
        adaptive: Replan on channel failures (Section 2.5).
        max_replans: Bound on adaptation rounds per query.
        optimize_plans: Apply compile-time optimisation.
        use_shipping: Let the cost model place operators (hybrid
            shipping); otherwise everything joins at the coordinator.
        failure_policy: What happens to partial results on a replan —
            ``"discard"`` (the ubQL policy SQPeer adopts: previous
            intermediate results are thrown away) or ``"phased"`` (the
            [Ives02] alternative: completed subresults carry over into
            the next phase and are combined at cleanup).
        cache_enabled: Run the :mod:`repro.cache` subsystem — routing
            cache, plan cache and request coalescing.  Off reproduces
            the paper's cold per-query routing exactly (``--no-cache``).
        cost_based: Statistics-driven planning (``--cost-based``): the
            peer advertises a :class:`~repro.core.cost.StatSummary`
            alongside its active-schema, folds observed link behaviour
            into the shared statistics before compiling, lets the
            optimiser reorder joins by estimated cardinality and the
            cost model place operators per subplan.  Off (the default)
            preserves the rule-based path bit-identically.
        encode: Dictionary-encoded columnar execution (``--encode``):
            scans run over interned id columns and results ship as
            :class:`~repro.execution.encoded.EncodedTable` packets.
    """

    def __init__(
        self,
        peer_id: str,
        base: Optional[PeerBase] = None,
        adaptive: bool = True,
        max_replans: int = 3,
        optimize_plans: bool = True,
        use_shipping: bool = False,
        statistics: Optional[Statistics] = None,
        failure_policy: str = "discard",
        secondary_bases=(),
        cache_enabled: bool = True,
        vectorize: bool = True,
        batch_size: int = 256,
        cost_based: bool = False,
        encode: bool = False,
    ):
        super().__init__(peer_id, base, secondary_bases=secondary_bases)
        if failure_policy not in ("discard", "phased"):
            raise ValueError("failure_policy must be 'discard' or 'phased'")
        #: vectorized execution + batched shipping (``--no-vectorize``
        #: turns both off: scalar operators, one DataPacket per binding)
        self.vectorize = vectorize
        self.batch_size = batch_size
        self.adaptive = adaptive
        self.max_replans = max_replans
        self.optimize_plans = optimize_plans
        self.use_shipping = use_shipping
        self.cost_based = cost_based
        self.encode = encode
        self.failure_policy = failure_policy
        #: phased policy: virtual-time window for the old phase's
        #: in-flight results to land in the cache before the new phase
        self.phase_settle_time = 10.0
        #: pipelined evaluation (Section 2.5's "pipeline way"): stream
        #: remote chunks through incremental joins/unions at the
        #: coordinator; ``last_first_output_at`` records when the most
        #: recent query produced its first rows
        self.pipelined_execution = False
        self.last_first_output_at: Optional[float] = None
        #: run-time throughput monitoring (Section 2.5): watch per-
        #: channel tuple flow and replan away from stalled channels
        self.monitor_channels = False
        self.monitor_interval = 15.0
        self.stall_checks = 2
        #: channel id -> (tuples seen at last tick, consecutive stalls)
        self._stall_counts: Dict[str, tuple] = {}
        self.statistics = statistics or Statistics()
        self.known_advertisements: Dict[str, ActiveSchema] = {}
        self._pending: Dict[str, PendingQuery] = {}
        self._query_counter = itertools.count(1)
        self._tracker = AdvertisementTracker(base) if base is not None else None
        #: the repro.cache subsystem (None of each when disabled)
        self.cache_enabled = cache_enabled
        schemas = [b.schema for b in self.all_bases()]
        self.routing_cache = RoutingCache(schemas) if cache_enabled else None
        self.plan_cache = PlanCache() if cache_enabled else None
        self._coalescer = QueryCoalescer() if cache_enabled else None
        #: the own-advertisement set the cache's entries were routed
        #: with; silent base drift is detected against it per query
        self._cached_own_ads: Optional[tuple] = None
        #: resilience (repro.resilience) — all off by default so the
        #: seed's omniscient-failure behaviour is reproduced exactly
        self.quarantine = PeerQuarantine()
        self.quarantine_enabled = False
        self.partial_results = False
        self.routing_retry = None
        self.replan_budget: Optional[ReplanBudget] = None
        #: True while this peer is re-entering the overlay after a
        #: crash/departure: the advertisements pushed by ``join`` carry
        #: the rejoin flag so holders rehabilitate instead of merely
        #: registering (repro.membership)
        self.rejoining = False
        #: answered queries remembered so duplicate QuerySubmits are
        #: served idempotently instead of re-coordinated
        self._completed: Dict[str, QueryResult] = {}
        self.completed_query_limit = 128
        #: admission control (repro.workload_engine): bound concurrent
        #: coordinations, park overflow, shed beyond the queue bound and
        #: cancel deadline stragglers.  None admits everything (seed).
        self.admission = None
        self._admission_queue: Deque[Tuple[QuerySubmit, object]] = deque()
        self._parked_ids: Set[str] = set()
        #: live data plane (repro.livedata): the incremental maintainer
        #: is created on the first UpdateBatch; standing queries push
        #: binding deltas per quiescent revision; ``topk_cancel`` opts
        #: this coordinator into any-k early termination for LIMIT
        #: queries (remaining channels discarded the ubQL way).  All
        #: off/empty by default — the seed behaviour is untouched.
        self.topk_cancel = False
        #: baseline mode for the maintenance-cost experiments: re-derive
        #: and re-push the *full* advertisement after every applied
        #: update batch, the way a per-statement data index would.  The
        #: default (False) is the paper's economy — deltas, and only
        #: when the intensional footprint moved.
        self.live_full_refresh = False
        self._maintainer: Optional[LiveMaintainer] = None
        self._standing: Dict[str, StandingQuery] = {}
        self._result_hooks: Dict[str, Callable[[QueryResult], None]] = {}

    def join(self, network) -> None:
        super().join(network)
        if self.routing_cache is not None:
            self.routing_cache.bind_metrics(network.metrics)
            self.routing_cache.on_invalidate = lambda count: network.emit_event(
                "cache_invalidate", peer=self.peer_id, entries=count
            )
        if self.plan_cache is not None:
            self.plan_cache.bind_metrics(network.metrics)
        # liveness control events keep the routing cache honest: cached
        # annotations must never resurrect a peer known to be down
        network.add_liveness_listener(self._on_liveness)

    # ------------------------------------------------------------------
    # liveness / suspicion
    # ------------------------------------------------------------------
    def _on_liveness(self, peer_id: str, alive: bool) -> None:
        if peer_id == self.peer_id:
            return
        if alive:
            self.quarantine.restore(peer_id)
        elif self.routing_cache is not None:
            self.routing_cache.invalidate_peer(peer_id)

    def suspect_peer(self, peer_id: str) -> None:
        """An observation (timeout, missed heartbeats, bounced channel)
        says ``peer_id`` may be dead: invalidate its cached routing and,
        when quarantine is on, exclude it from future routing."""
        if peer_id == self.peer_id:
            return
        network = self._require_network()
        network.metrics.record_suspicion()
        if self.routing_cache is not None:
            self.routing_cache.invalidate_peer(peer_id)
        if self.quarantine_enabled:
            tripped = self.quarantine.record_failure(peer_id)
            if tripped:
                network.emit_event("quarantine", peer=self.peer_id, suspect=peer_id)
                if self.state_store is not None:
                    self.state_store.log_quarantine(peer_id)

    def restore_peer(self, peer_id: str) -> None:
        """The peer was heard from again: lift its quarantine and drop
        routing entries computed while it was excluded."""
        if self.quarantine.restore(peer_id) and self.routing_cache is not None:
            self.routing_cache.invalidate_peer(peer_id)

    def _rehabilitate(self, peer_id: str) -> None:
        """A rejoin-flagged advertisement announced the peer is back:
        lift its quarantine, drop routing entries computed while it was
        excluded, and let every in-flight query replan onto it — a
        recovery landing within the :class:`~repro.core.adaptivity.
        ReplanBudget` upgrades a would-be partial to a full answer."""
        if peer_id == self.peer_id:
            return
        if self.quarantine.restore(peer_id):
            self._require_network().emit_event(
                "rehabilitate", peer=self.peer_id, suspect=peer_id
            )
            if self.routing_cache is not None:
                self.routing_cache.invalidate_peer(peer_id)
            if self.state_store is not None:
                self.state_store.log_rehabilitate(peer_id)
        for pending in self._pending.values():
            pending.excluded.discard(peer_id)

    # ------------------------------------------------------------------
    # advertisements
    # ------------------------------------------------------------------
    def own_advertisement(self) -> Optional[ActiveSchema]:
        if self.base is None:
            return None
        if self._tracker is not None:
            self._tracker.mark_advertised()
        advertisement = self.base.active_schema(self.peer_id)
        return None if advertisement.is_empty() else advertisement

    def own_advertisements(self) -> List[ActiveSchema]:
        """One advertisement per non-empty base (multi-SON peers)."""
        out = []
        primary = self.own_advertisement()
        if primary is not None:
            out.append(primary)
        for base in self.secondary_bases:
            advertisement = base.active_schema(self.peer_id)
            if not advertisement.is_empty():
                out.append(advertisement)
        return out

    def remember_advertisement(self, advertisement: ActiveSchema) -> None:
        if advertisement.peer_id and advertisement.peer_id != self.peer_id:
            previous = self.known_advertisements.get(advertisement.peer_id)
            self.known_advertisements[advertisement.peer_id] = advertisement
            if self.routing_cache is not None:
                self.routing_cache.on_advertise(advertisement, previous)
            if (
                self.plan_cache is not None
                and previous is not None
                and previous != advertisement
            ):
                # the peer's footprint moved (live updates, view
                # redefinitions): cached plans naming it may embed
                # subqueries rewritten against the old advertisement,
                # and a racing stale annotation would still hit them
                self.plan_cache.invalidate_peer(advertisement.peer_id)
            if self.state_store is not None and previous != advertisement:
                self.state_store.log_advertise(advertisement)

    def handle_Advertise(self, message: Message) -> None:
        advertisement = message.payload.active_schema
        stats = getattr(message.payload, "stats", None)
        if stats is not None:
            # a cost-based sender shared its per-predicate statistics:
            # fold them so this coordinator prices plans with them
            self.statistics.fold_summary(stats)
        if getattr(message.payload, "rejoin", False) and advertisement.peer_id:
            self._rehabilitate(advertisement.peer_id)
        self.remember_advertisement(advertisement)

    def handle_AdvertisementRequest(self, message: Message) -> None:
        request: AdvertisementRequest = message.payload
        own = self.own_advertisement()
        schemas = (own,) if own is not None else ()
        self.send(request.requester, AdvertisementReply(tuple(schemas), self.peer_id))

    def handle_AdvertisementReply(self, message: Message) -> None:
        for advertisement in message.payload.schemas:
            self.remember_advertisement(advertisement)

    def _advertisement_targets(self) -> List[str]:
        """Who holds this peer's advertisement (architecture-specific:
        the home super-peer in hybrid SONs, the neighbours in ad-hoc)."""
        return []

    def own_stat_summary(self) -> Optional[StatSummary]:
        """This peer's :class:`~repro.core.cost.StatSummary`, harvested
        from its own base — attached to advertisements only when
        cost-based planning is on, so the default wire format stays
        seed-identical.  The summary is also folded locally, giving the
        coordinator exact cardinalities for its own base."""
        if not self.cost_based or self.base is None:
            return None
        summary = harvest_stat_summary(
            self.base.graph, self.base.schema, self.peer_id
        )
        self.statistics.fold_summary(summary)
        return summary

    def refresh_advertisement(self) -> bool:
        """Push a fresh advertisement when the base's intensional
        footprint changed (Section 2.2: extensional churn is free).
        Returns True when an advertisement was sent."""
        if self._tracker is None:
            return False
        advertisement = self._tracker.refresh(self.peer_id)
        if advertisement is None:
            return False
        for target in self._advertisement_targets():
            self.send(target, Advertise(advertisement, stats=self.own_stat_summary()))
        if self.state_store is not None:
            self.state_store.log_self_advertise(advertisement)
        return True

    def leave(self) -> None:
        """Depart gracefully: holders of this peer's advertisement
        forget it, then the peer goes dark (in-flight subplans bounce,
        triggering the roots' run-time adaptation)."""
        network = self._require_network()
        self.save_durable_snapshot()
        for target in self._advertisement_targets():
            self.send(target, Goodbye(self.peer_id))
        network.fail_peer(self.peer_id)

    def handle_Goodbye(self, message: Message) -> None:
        departed = message.payload.peer_id
        if self.known_advertisements.pop(departed, None) is not None:
            self._require_network().metrics.record_goodbye()
            if self.state_store is not None:
                self.state_store.log_goodbye(departed)
        if self.routing_cache is not None:
            self.routing_cache.on_goodbye(departed)
        if self.plan_cache is not None:
            self.plan_cache.invalidate_peer(departed)

    # ------------------------------------------------------------------
    # live data plane (repro.livedata)
    # ------------------------------------------------------------------
    def live_maintainer(self) -> Optional[LiveMaintainer]:
        """The incremental active-schema maintainer, created lazily on
        the first update batch (peers without a base have none)."""
        if self._maintainer is None and self.base is not None:
            self._maintainer = LiveMaintainer(self.base, self.peer_id)
        return self._maintainer

    def handle_UpdateBatch(self, message: Message) -> None:
        """Apply a live update batch to the base, patch the encoded
        twin, and — only when the intensional footprint moved — push an
        :class:`~repro.livedata.updates.AdvertiseDelta` to the holders
        (Section 2.2: extensional churn stays silent)."""
        batch = message.payload
        network = self._require_network()
        maintainer = self.live_maintainer()
        if maintainer is None:
            self.send(message.src, UpdateAck(self.peer_id, batch.revision, 0))
            return
        result = maintainer.apply(batch)
        network.emit_event(
            "update_batch",
            peer=self.peer_id,
            revision=batch.revision,
            applied=result.applied,
        )
        if self.live_full_refresh:
            if result.applied or result.views_changed:
                self._push_full_refresh()
        elif result.delta is not None:
            self._push_advertisement_delta(result.delta)
        self.send(
            message.src, UpdateAck(self.peer_id, batch.revision, result.applied)
        )

    def _push_full_refresh(self) -> None:
        """The :attr:`live_full_refresh` baseline: re-push every own
        advertisement wholesale (correct, but pays full-advertisement
        bytes for extensional churn the delta path ships nothing for)."""
        stats = self.own_stat_summary()
        for advertisement in self.own_advertisements():
            for target in self._advertisement_targets():
                self.send(target, Advertise(advertisement, stats=stats))
        if self._tracker is not None:
            self._tracker.mark_advertised()
        if self.routing_cache is not None:
            self.routing_cache.invalidate_peer(self.peer_id)
        if self.plan_cache is not None:
            self.plan_cache.invalidate_peer(self.peer_id)

    def _push_advertisement_delta(self, delta: AdvertiseDelta) -> None:
        """Ship only the flipped schema fragments to the advertisement
        holders, and drop this peer's own cached routing and plans (its
        annotations were computed under the old footprint)."""
        network = self._require_network()
        delta = replace(delta, stats=self.own_stat_summary())
        for target in self._advertisement_targets():
            self.send(target, delta)
        if self._tracker is not None:
            # the delta already told holders everything a full
            # refresh() would re-push: keep the tracker coherent
            self._tracker.mark_advertised()
        if self.routing_cache is not None:
            self.routing_cache.invalidate_peer(self.peer_id)
        if self.plan_cache is not None:
            self.plan_cache.invalidate_peer(self.peer_id)
        if self.state_store is not None and self._maintainer is not None:
            self.state_store.log_self_advertise(self._maintainer.current)
        network.emit_event(
            "advertise_delta",
            peer=self.peer_id,
            added=len(delta.added_paths) + len(delta.added_classes),
            removed=len(delta.removed_paths) + len(delta.removed_classes),
        )

    def handle_AdvertiseDelta(self, message: Message) -> None:
        """A known peer's advertisement changed incrementally:
        reconstruct the full advertisement from the held one plus the
        delta (ad-hoc neighbours hold advertisements directly)."""
        delta: AdvertiseDelta = message.payload
        if delta.peer_id == self.peer_id:
            return
        if delta.stats is not None:
            self.statistics.fold_summary(delta.stats)
        previous = self.known_advertisements.get(delta.peer_id)
        if previous is None or previous.schema_uri != delta.schema_uri:
            # no baseline to patch: pull the full advertisement instead
            self.send(message.src, AdvertisementRequest(self.peer_id, 1))
            return
        self.remember_advertisement(apply_advertisement_delta(previous, delta))

    # ------------------------------------------------------------------
    # continuous (standing) queries
    # ------------------------------------------------------------------
    def handle_ContinuousSubscribe(self, message: Message) -> None:
        """Register a standing query and evaluate its initial snapshot
        (pushed as revision 0's delta against the empty table)."""
        subscribe = message.payload
        standing = StandingQuery(
            subscribe.query_id, subscribe.text, subscribe.reply_to
        )
        self._standing[subscribe.query_id] = standing
        self._evaluate_standing(standing, revision=0)

    def handle_ContinuousCancel(self, message: Message) -> None:
        self._standing.pop(message.payload.query_id, None)

    def handle_RefreshStanding(self, message: Message) -> None:
        """A quiescent revision was announced: re-evaluate every
        standing query and push what changed."""
        revision = message.payload.revision
        for standing in list(self._standing.values()):
            if standing.evaluating:
                standing.pending_revisions.append(revision)
            else:
                self._evaluate_standing(standing, revision)

    def _evaluate_standing(self, standing: StandingQuery, revision: int) -> None:
        """Run one standing query through the ordinary coordination
        machinery; the result lands in :meth:`_finish_standing` via the
        result-hook seam in :meth:`_finish`."""
        standing.evaluating = True
        eval_id = (
            f"{standing.query_id}-r{revision}-e{next(self._query_counter)}"
        )
        submit = QuerySubmit(eval_id, standing.text, self.peer_id)
        self._result_hooks[eval_id] = (
            lambda result: self._finish_standing(standing, revision, result)
        )
        network = self._require_network()
        network.metrics.query_started(eval_id, network.now)
        self._begin_coordination(submit)

    def _finish_standing(
        self, standing: StandingQuery, revision: int, result: QueryResult
    ) -> None:
        standing.evaluating = False
        network = self._require_network()
        if result.error is not None and "no relevant peers" in result.error:
            # the community currently holds nothing the query touches —
            # for a *standing* query that is an empty answer, not a
            # failure: peers may advertise matching fragments at any
            # later revision and the subscription must survive to see
            # them (advertisements derive from base content, so an
            # unrouted query has no entailed matches either)
            columns = (
                standing.snapshot.columns if standing.snapshot is not None else ()
            )
            result = QueryResult(result.query_id, BindingTable(columns), None)
        if standing.query_id in self._standing:  # not cancelled meanwhile
            if result.error is not None:
                columns = (
                    standing.snapshot.columns
                    if standing.snapshot is not None
                    else ()
                )
                network.metrics.record_continuous_push()
                self.send(
                    standing.reply_to,
                    ContinuousUpdate(
                        standing.query_id,
                        BindingTable(columns),
                        BindingTable(columns),
                        revision,
                        error=result.error,
                    ),
                )
            else:
                added, removed = table_delta(standing.snapshot, result.table)
                if added or removed or standing.snapshot is None:
                    network.metrics.record_continuous_push()
                    self.send(
                        standing.reply_to,
                        ContinuousUpdate(
                            standing.query_id, added, removed, revision
                        ),
                    )
                standing.snapshot = result.table
                standing.revision = revision
        if standing.pending_revisions and standing.query_id in self._standing:
            self._evaluate_standing(standing, standing.pending_revisions.pop(0))

    def _routing_knowledge(self) -> List[ActiveSchema]:
        """Everything this peer can route with: its own advertisement
        plus the ones it has collected."""
        knowledge = list(self.known_advertisements.values())
        knowledge.extend(self.own_advertisements())
        return knowledge

    def _tracer(self):
        """The network's tracer (no-op before joining a network)."""
        return self.network.tracer if self.network is not None else NULL_TRACER

    def _route_local(self, pattern: QueryPattern, trace=None) -> AnnotatedQueryPattern:
        """Route ``pattern`` from local knowledge, through the routing
        cache when enabled.

        Remote advertisements invalidate eagerly (``handle_Advertise``
        / ``handle_Goodbye``), but this peer's *own* advertisement is
        recomputed from the base on every call — the base can mutate
        silently between queries — so drift against the footprint the
        cache was filled under is detected here, per query.

        A ``subsumption`` span covers the actual view-subsumption
        routing pass; routing-cache hits skip it entirely (that is the
        point of the cache).
        """
        if self.routing_cache is None:
            knowledge = self._routing_knowledge()
            span = self._tracer().start_span(
                "subsumption", peer=self.peer_id, parent=trace, candidates=len(knowledge)
            )
            annotated = route_query(pattern, knowledge, self.schema)
            span.set(peers=len(annotated.all_peers()))
            span.finish()
            return annotated
        own = tuple(self.own_advertisements())
        if self._cached_own_ads is not None and own != self._cached_own_ads:
            self.routing_cache.invalidate_peer(self.peer_id)
            if self.plan_cache is not None:
                self.plan_cache.invalidate_peer(self.peer_id)
            for advertisement in own:
                self.routing_cache.on_advertise(advertisement)
        self._cached_own_ads = own
        cached = self.routing_cache.get(pattern)
        if cached is not None:
            return cached
        knowledge = list(self.known_advertisements.values()) + list(own)
        span = self._tracer().start_span(
            "subsumption", peer=self.peer_id, parent=trace, candidates=len(knowledge)
        )
        annotated = route_query(pattern, knowledge, self.schema)
        span.set(peers=len(annotated.all_peers()))
        span.finish()
        self.routing_cache.put(pattern, annotated)
        return annotated

    # ------------------------------------------------------------------
    # query coordination
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Optional[Schema]:
        return self.base.schema if self.base is not None else None

    def handle_QuerySubmit(self, message: Message) -> None:
        submit: QuerySubmit = message.payload
        network = self._require_network()
        in_flight = self._pending.get(submit.query_id)
        if in_flight is not None:
            # duplicate delivery: the in-flight coordination answers
            in_flight.span.annotate("duplicate submit ignored")
            return
        if submit.query_id in self._parked_ids:
            return  # duplicate of a parked query: it will be coordinated
        done = self._completed.get(submit.query_id)
        if done is not None:
            # duplicate of an already-answered query (client resubmit
            # after a lost reply): resend the remembered result
            if submit.reply_to != self.peer_id:
                self.send(submit.reply_to, done)
            return
        admission = self.admission
        if admission is not None and len(self._pending) >= admission.max_concurrent:
            if len(self._admission_queue) >= admission.max_queued:
                # load shedding: refuse this query with a back-off hint
                # rather than degrade every admitted one
                network.metrics.record_shed_query()
                network.emit_event(
                    "shed", peer=self.peer_id, query_id=submit.query_id
                )
                if submit.reply_to != self.peer_id:
                    self.send(
                        submit.reply_to,
                        QueryShed(
                            submit.query_id, admission.retry_after, self.peer_id
                        ),
                    )
                return
            self._admission_queue.append((submit, message.trace))
            self._parked_ids.add(submit.query_id)
            network.metrics.record_queue_depth(len(self._admission_queue))
            # queue wait counts against the query's observed latency
            network.metrics.query_started(submit.query_id, network.now)
            return
        network.metrics.query_started(submit.query_id, network.now)
        self._begin_coordination(submit, message.trace)

    def _begin_coordination(self, submit: QuerySubmit, trace=None) -> None:
        """Start coordinating one admitted query (the body of
        :meth:`handle_QuerySubmit` once past dedup and admission)."""
        network = self._require_network()
        # the coordination span: child of the client's query span when
        # the submit carried a context, else the root of a fresh trace
        # named after the query id (deterministic across seeded runs)
        span = network.tracer.start_span(
            "coordinate",
            peer=self.peer_id,
            parent=trace,
            trace_id=submit.query_id,
            query=submit.query_id,
        )
        try:
            query = parse_query(submit.text)
            pattern = self._extract_against_any_schema(query)
        except (ParseError, SchemaError) as exc:
            span.set(error=str(exc))
            span.finish("error")
            network.metrics.query_finished(submit.query_id, network.now)
            failure = QueryResult(submit.query_id, None, str(exc))
            hook = self._result_hooks.pop(submit.query_id, None)
            if hook is not None:
                # internal consumers (standing-query re-evaluations)
                # take the failure through their hook, not a message
                hook(failure)
            else:
                self.send(submit.reply_to, failure)
            self._drain_admission_queue()
            return
        if self._coalescer is not None:
            # singleflight: identical queries in flight share the
            # leader's routing/planning pass; the key is the exact text
            # plus every result-shaping knob (constraints live outside
            # the query pattern, so the signature alone is not enough)
            key = (
                submit.text,
                submit.max_peers,
                submit.limit,
                submit.order_by,
                submit.descending,
            )
            leader = self._coalescer.admit(key, submit.query_id, submit)
            if leader is not None:
                network.metrics.record_coalesced_query()
                span.set(coalesced_behind=leader)
                span.finish()
                return  # parked behind the leader; answered in _finish
        constraints = QueryConstraints(
            max_peers_per_pattern=submit.max_peers,
            max_results=submit.limit,
            order_by=submit.order_by,
            descending=submit.descending,
        )
        pending = PendingQuery(
            submit.query_id, query, pattern, submit.reply_to, constraints
        )
        pending.span = span
        self._pending[submit.query_id] = pending
        admission = self.admission
        if admission is not None and admission.deadline is not None:
            network.call_later(
                admission.deadline,
                lambda deadline=admission.deadline: self._deadline_expired(
                    submit.query_id, deadline
                ),
            )
        self._obtain_routing(pending)

    def _deadline_expired(self, query_id: str, deadline: float) -> None:
        """The query's virtual-time budget ran out: cancel the straggler
        through the ubQL discard path (channels released, destinations
        told to stop) and answer with an explicit error — an admitted
        query always terminates, never silently."""
        pending = self._pending.get(query_id)
        if pending is None:
            return  # answered in time
        network = self._require_network()
        network.metrics.record_deadline_expiration()
        network.emit_event(
            "deadline_expired", peer=self.peer_id,
            query_id=query_id, deadline=deadline,
        )
        pending.span.annotate(f"deadline ({deadline:g}) expired: cancelling")
        if pending.executor is not None:
            pending.executor.abort()
        self._reply_error(pending, f"deadline exceeded ({deadline:g})")

    def _drain_admission_queue(self) -> None:
        """Promote parked queries into freed coordination slots."""
        admission = self.admission
        if admission is None:
            return
        while self._admission_queue and len(self._pending) < admission.max_concurrent:
            submit, trace = self._admission_queue.popleft()
            self._parked_ids.discard(submit.query_id)
            self._begin_coordination(submit, trace)

    def _extract_against_any_schema(self, query: RQLQuery) -> QueryPattern:
        """Resolve the query against the first of this peer's schemas
        that declares its vocabulary (multi-SON peers speak several)."""
        bases = self.all_bases()
        if not bases:
            raise SchemaError(f"peer {self.peer_id} has no schema to parse against")
        last_error: Optional[SchemaError] = None
        for base in bases:
            try:
                return extract_pattern(query, base.schema)
            except SchemaError as exc:
                last_error = exc
        assert last_error is not None
        raise last_error

    def _obtain_routing(self, pending: PendingQuery) -> None:
        """Acquire the annotated query pattern.  Base behaviour: route
        from local knowledge (subclasses ask super-peers or interleave)."""
        span = self._tracer().start_span(
            "routing", peer=self.peer_id, parent=pending.span.context(), mode="local"
        )
        pending.routing_span = span
        annotated = self._route_local(pending.pattern, trace=span.context())
        span.set(peers=len(annotated.all_peers()))
        span.finish()
        self._on_annotated(pending, annotated)

    def _on_annotated(self, pending: PendingQuery, annotated: AnnotatedQueryPattern) -> None:
        annotated = annotated.without_peers(self._excluded_for(pending))
        annotated = apply_peer_bound(annotated, pending.constraints, self.statistics)
        pending.annotated = annotated
        plan = self._compile(annotated, trace=pending.span.context())
        if plan.is_complete():
            self._execute_plan(pending, plan)
        else:
            self._handle_incomplete(pending, plan, annotated)

    def _compile(self, annotated: AnnotatedQueryPattern, trace=None) -> PlanNode:
        """Compile (and optimise) the plan for an annotated pattern.

        A ``plan.compile`` span covers the pass; each optimiser rewrite
        that changed the plan becomes an ``optimize.<rule>`` child span,
        and plan-cache hits are tagged ``cached``.  With cost-based
        planning on, an ``optimize.cost`` span records the chosen
        plan's estimated cost against the rule-based alternative's.
        """
        if self.cost_based and self.network is not None:
            # refresh link costs from observed channel behaviour before
            # pricing (rounded folding, so unchanged observations do
            # not churn the statistics version / plan cache)
            self.statistics.fold_link_observations(
                self.network.metrics.link_observations()
            )
        span = self._tracer().start_span("plan.compile", peer=self.peer_id, parent=trace)
        if self.plan_cache is not None:
            version = self.statistics.version
            plan = self.plan_cache.get(annotated, version)
            if plan is not None:
                span.set(cached=True)
                span.finish()
                return plan
        plan = build_plan(annotated)
        if self.optimize_plans:
            traced = optimize(
                plan,
                CostModel(self.statistics),
                cost_based=self.cost_based,
                coordinator=self.peer_id,
            )
            if span:  # skip minting rewrite spans on the no-op path
                for rule, step in traced.steps[1:]:
                    # the plan object itself; rendered only at export
                    self._tracer().start_span(
                        f"optimize.{rule}",
                        peer=self.peer_id,
                        parent=span.context(),
                        plan=step,
                    ).finish()
                if traced.cost_decision is not None:
                    self._tracer().start_span(
                        "optimize.cost",
                        peer=self.peer_id,
                        parent=span.context(),
                        chosen=traced.cost_decision["chosen"],
                        rejected=traced.cost_decision["rejected"],
                    ).finish()
            plan = traced.result
        if self.plan_cache is not None:
            self.plan_cache.put(annotated, plan, version)
        span.finish()
        return plan

    def _excluded_for(self, pending: PendingQuery) -> Set[str]:
        """Peers excluded from this query's routing: those observed to
        fail during it plus (when enabled) the quarantined ones."""
        excluded = set(pending.excluded)
        if self.quarantine_enabled:
            excluded |= self.quarantine.peers
        return excluded

    def _handle_incomplete(
        self, pending: PendingQuery, plan: PlanNode, annotated: AnnotatedQueryPattern
    ) -> None:
        """No peer is known for some path pattern.  Base behaviour:
        give up — an error, or a coverage-annotated partial answer when
        degradation is on (the ad-hoc subclass forwards partial plans
        instead)."""
        holes = ", ".join(h.render() for h in plan.holes())
        self._give_up(pending, f"no relevant peers for: {holes}")

    # ------------------------------------------------------------------
    # execution + adaptation
    # ------------------------------------------------------------------
    def _execute_plan(self, pending: PendingQuery, plan: PlanNode) -> None:
        network = self._require_network()
        sites = None
        if self.use_shipping or self.cost_based:
            # cost-based planning also lets the model choose data/
            # query/hybrid shipping per subplan (Section 2.5)
            assignment = assign_sites(plan, self.peer_id, CostModel(self.statistics))
            sites = assignment.sites

        def on_complete(table: Optional[BindingTable], failed: Optional[str]) -> None:
            if pending.executor is not None:
                pending.reused_rows += pending.executor.reused_rows
                self.last_first_output_at = pending.executor.first_output_at
            if failed is not None:
                self._on_execution_failure(pending, failed)
            else:
                assert table is not None
                self._reply_result(pending, table)

        pipelined = self.pipelined_execution
        early_stop = None
        limit = pending.constraints.max_results
        if (
            self.topk_cancel
            and limit is not None
            and pending.constraints.order_by is None
        ):
            # any-k early termination: scans, joins, unions, filters
            # and projections are all monotone, so the first k distinct
            # finalised rows are stable under any completion order.
            # Sound only without ORDER BY (ranked top-k needs every
            # candidate), hence the gate.
            pipelined = True

            def early_stop(merged: BindingTable) -> bool:
                return len(self._finalize_answer(merged, pending)) >= limit

        pending.attempts += 1
        pending.executor = PlanExecutor(
            self,
            network,
            plan,
            sites=sites,
            query_id=pending.query_id,
            on_complete=on_complete,
            scan_cache=pending.scan_cache if self.failure_policy == "phased" else None,
            pipelined=pipelined,
            retry=self.channel_retry,
            trace=pending.span.context(),
            keep_variables=self._keep_variables(pending),
            early_stop=early_stop,
        )
        pending.executor.start()
        if self.monitor_channels and self.adaptive:
            self._schedule_monitor_tick(pending.query_id)

    # ------------------------------------------------------------------
    # run-time throughput monitoring (Section 2.5)
    # ------------------------------------------------------------------
    def _schedule_monitor_tick(self, query_id: str) -> None:
        network = self._require_network()
        network.call_later(
            self.monitor_interval, lambda: self._monitor_tick(query_id)
        )

    def _monitor_tick(self, query_id: str) -> None:
        """Check the query's open channels for stalled tuple flow.

        A channel that made no progress across ``stall_checks``
        consecutive ticks is declared failed; the usual adaptation path
        then replans without its destination ("the root node of each
        channel is responsible for identifying possible problems ...
        and for handling them accordingly").
        """
        pending = self._pending.get(query_id)
        if pending is None:
            return  # query answered: stop monitoring
        stalled_channel = None
        for channel_id, channel in self.channels.open_channels().items():
            if channel.query_id != query_id:
                continue
            if self._stall_counts.get(channel_id, (None, 0))[0] == channel.tuples_received:
                count = self._stall_counts[channel_id][1] + 1
            else:
                count = 1
            self._stall_counts[channel_id] = (channel.tuples_received, count)
            if count > self.stall_checks:
                stalled_channel = channel_id
        if stalled_channel is not None:
            self._stall_counts.pop(stalled_channel, None)
            pending.span.annotate(f"stalled channel {stalled_channel} declared failed")
            self.channels.on_failure(stalled_channel)
            return  # the failure path schedules no further ticks itself
        self._schedule_monitor_tick(query_id)

    def _on_execution_failure(self, pending: PendingQuery, failed_peer: str) -> None:
        """Run-time adaptation: exclude the obsolete peer, discard
        partial results, re-route and re-execute (Section 2.5)."""
        pending.excluded.add(failed_peer)
        pending.discarded_results += 1
        pending.span.annotate(
            f"replan: peer {failed_peer} failed (attempt {pending.attempts})"
        )
        self._require_network().emit_event(
            "replan", peer=self.peer_id, query_id=pending.query_id,
            failed_peer=failed_peer, attempt=pending.attempts,
        )
        self.suspect_peer(failed_peer)
        if pending.executor is not None:
            # ubQL: discard on-going computation; phased: salvage the
            # old phase's in-flight scan results into the cache
            pending.executor.abort()
        budget = self.replan_budget or ReplanBudget(self.max_replans)
        if not self.adaptive or budget.exhausted(pending.attempts):
            self._give_up(pending, f"peer {failed_peer} failed")
            return
        if self.failure_policy == "phased":
            # phase boundary: give the previous phase's completed
            # computations time to land before the cleanup/retry phase
            network = self._require_network()
            network.call_later(
                self.phase_settle_time,
                lambda: self._retry_if_pending(pending.query_id),
            )
            return
        delay = budget.delay(pending.attempts)
        if delay > 0:
            # back off before the next round: a failing region gets
            # breathing room instead of a tight replan storm
            network = self._require_network()
            network.call_later(delay, lambda: self._retry_if_pending(pending.query_id))
        else:
            self._obtain_routing(pending)

    def _retry_if_pending(self, query_id: str) -> None:
        pending = self._pending.get(query_id)
        if pending is not None:
            self._obtain_routing(pending)

    # ------------------------------------------------------------------
    # statistics feedback (Section 2.5: per-channel stats packets)
    # ------------------------------------------------------------------
    def handle_StatsPacket(self, message: Message) -> None:
        """Fold a destination's reported cardinalities into the local
        statistics store, keyed by the channel's destination peer —
        the optimiser of subsequent queries benefits."""
        packet = message.payload
        try:
            channel = self.channels.channel(packet.channel_id)
        except Exception:
            return  # stats for a discarded channel: ignore
        from ..rdf.terms import URI

        for prop_value, rows in packet.cardinalities.items():
            self.statistics.set_cardinality(
                channel.destination, URI(prop_value), rows
            )

    # ------------------------------------------------------------------
    # graceful degradation
    # ------------------------------------------------------------------
    def _give_up(self, pending: PendingQuery, reason: str) -> None:
        """The adaptation loop cannot repair the query.  With
        ``partial_results`` on, restrict the query to its still-
        answerable path patterns and return that sub-answer annotated
        with coverage metadata; otherwise report the error."""
        if pending.query_id not in self._pending:
            return
        if not self.partial_results or pending.annotated is None:
            self._reply_error(pending, reason)
            return
        excluded = self._excluded_for(pending)
        available = pending.annotated.without_peers(excluded)
        restricted = restrict_to_answerable(available)
        if restricted is None:
            self._reply_error(pending, reason)
            return
        pending.span.annotate(f"degrade to partial answer: {reason}")
        coverage = Coverage(
            answered=tuple(p.label for p in restricted.query_pattern),
            unanswered=tuple(p.label for p in available.unannotated_patterns()),
            excluded_peers=tuple(sorted(excluded)),
            attempts=pending.attempts,
        )
        plan = self._compile(restricted, trace=pending.span.context())
        if not plan.is_complete():
            self._reply_error(pending, reason)
            return

        def on_complete(table: Optional[BindingTable], failed: Optional[str]) -> None:
            if failed is not None:
                # the degraded plan failed too: shrink further (the
                # annotation set loses at least one peer per round, so
                # this recursion is bounded)
                pending.excluded.add(failed)
                self.suspect_peer(failed)
                self._give_up(pending, reason)
            else:
                assert table is not None
                self._reply_partial(pending, table, coverage)

        pending.annotated = restricted
        pending.attempts += 1
        pending.executor = PlanExecutor(
            self,
            self._require_network(),
            plan,
            query_id=pending.query_id,
            on_complete=on_complete,
            retry=self.channel_retry,
            trace=pending.span.context(),
            keep_variables=self._keep_variables(pending),
        )
        pending.executor.start()

    def _keep_variables(self, pending: PendingQuery) -> Optional[set]:
        """The variables this coordinator's finalisation still needs —
        projections plus WHERE-condition operands.  Only meaningful on
        the encoded pipeline (dead-column pruning); ``None`` otherwise
        so the default path stays untouched."""
        if not self.encode:
            return None
        keep = set(pending.query.effective_projections())
        for condition in pending.query.conditions:
            keep.add(condition.variable)
            if condition.value_is_variable:
                keep.add(str(condition.value))
        return keep

    def _reply_partial(
        self, pending: PendingQuery, table: BindingTable, coverage: Coverage
    ) -> None:
        if pending.query_id not in self._pending:
            return
        network = self._require_network()
        network.metrics.record_partial_result()
        final = self._finalize_answer(table, pending)
        final = pending.constraints.apply_result_bounds(final)
        self._finish(pending, QueryResult(pending.query_id, final, coverage=coverage))

    # ------------------------------------------------------------------
    # replies
    # ------------------------------------------------------------------
    def _reply_result(self, pending: PendingQuery, table: BindingTable) -> None:
        if pending.query_id not in self._pending:
            return  # already answered (e.g. first-wins in ad-hoc mode)
        final = self._finalize_answer(table, pending)
        final = pending.constraints.apply_result_bounds(final)
        self._finish(pending, QueryResult(pending.query_id, final))

    def _finalize_answer(
        self, table: BindingTable, pending: PendingQuery
    ) -> BindingTable:
        """Filter/project/de-duplicate a gathered table into the answer.

        An encoding coordinator's pipeline delivers *id tables* (cells
        are primary-dictionary ids): those finalise on ints and decode
        only the final small table; everything else takes the seed's
        scalar/vectorized path unchanged.
        """
        projections = pending.query.effective_projections()
        conditions = pending.query.conditions
        if self.encode and self.base is not None and is_id_table(table):
            return finalize_encoded(
                table,
                self.base.encoded_base().dictionary,
                projections,
                conditions,
            )
        return finalize(table, projections, conditions, vectorize=self.vectorize)

    def _reply_error(self, pending: PendingQuery, reason: str) -> None:
        if pending.query_id not in self._pending:
            return
        self._finish(pending, QueryResult(pending.query_id, None, reason))

    def _finish(self, pending: PendingQuery, result: QueryResult) -> None:
        del self._pending[pending.query_id]
        self._remember_completed(result)
        network = self._require_network()
        network.metrics.query_finished(pending.query_id, network.now)
        # idempotent: closes a routing round still open when the query
        # is abandoned mid-routing (hybrid timeout give-up)
        pending.routing_span.finish("abandoned")
        pending.span.set(attempts=pending.attempts)
        if result.error:
            pending.span.finish("error")
        elif result.coverage is not None:
            pending.span.finish("partial")
        else:
            pending.span.finish()
        if pending.reply_to != self.peer_id:
            # locally submitted queries (tests drive peers directly)
            # get no reply message
            self.send(pending.reply_to, result)
        # internal consumers (standing-query re-evaluations) get the
        # result through their hook instead of a reply message
        hook = self._result_hooks.pop(pending.query_id, None)
        if hook is not None:
            hook(result)
        if self._coalescer is not None:
            for follower in self._coalescer.complete(pending.query_id):
                network.metrics.query_finished(follower.query_id, network.now)
                shared = QueryResult(
                    follower.query_id, result.table, result.error, result.coverage
                )
                self._remember_completed(shared)
                if follower.reply_to != self.peer_id:
                    self.send(follower.reply_to, shared)
                follower_hook = self._result_hooks.pop(follower.query_id, None)
                if follower_hook is not None:
                    follower_hook(shared)
        # the finished coordination freed a slot: admit parked queries
        self._drain_admission_queue()

    def _remember_completed(self, result: QueryResult) -> None:
        """Remember an answered query (bounded FIFO) so duplicate
        submissions are replied to idempotently."""
        self._completed[result.query_id] = result
        while len(self._completed) > self.completed_query_limit:
            self._completed.pop(next(iter(self._completed)))

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def next_query_id(self) -> str:
        return f"{self.peer_id}-q{next(self._query_counter)}"
