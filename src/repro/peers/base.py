"""Peer foundations: local storage and the network-node base class.

:class:`PeerBase` is a peer's *database*: an RDF graph plus the
community schema it commits to, optionally populated through RVL views
(virtual scenario).  :class:`Peer` is the network-facing machinery
every peer role shares: a channel manager, subplan execution hosting
and message dispatch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from ..channels.manager import ChannelManager
from ..channels.packets import DataPacket, DictionaryPacket, StatsPacket, SubPlanPacket
from ..core.algebra import Scan
from ..errors import PeerError
from ..execution.batch import split_table
from ..execution.encoded import (
    EncodedBase,
    EncodedTable,
    encode_cells,
    encode_table,
    is_id_table,
    split_encoded,
)
from ..execution.engine import PlanExecutor
from ..execution.local import evaluate_scan
from ..net.message import DeliveryFailure, Message
from ..net.simulator import Network
from ..rdf.graph import Graph
from ..rdf.schema import Schema
from ..rql.bindings import BindingTable
from ..rvl.active_schema import ActiveSchema
from ..rvl.view import ViewDefinition


class PeerBase:
    """A peer's local description base.

    Args:
        graph: The asserted RDF statements (materialised scenario), or
            the virtual image produced by wrappers.
        schema: The community RDF/S schema the base commits to.
        views: RVL views populating the schema, when the base is
            virtual; their footprint defines the active-schema.
    """

    def __init__(
        self,
        graph: Graph,
        schema: Schema,
        views: Sequence[ViewDefinition] = (),
    ):
        self.graph = graph
        self.schema = schema
        self.views = tuple(views)
        self._encoded: Optional[EncodedBase] = None

    def active_schema(self, peer_id: str) -> ActiveSchema:
        """The advertisement for this base.

        Views take precedence (virtual scenario: what *can* be
        populated); otherwise the materialised base is scanned.
        """
        if self.views:
            merged: Optional[ActiveSchema] = None
            for view in self.views:
                derived = ActiveSchema.from_view(view, self.schema, peer_id)
                merged = derived if merged is None else merged.merge(derived)
            assert merged is not None
            return merged
        return ActiveSchema.from_base(self.graph, self.schema, peer_id)

    def encoded_base(self) -> EncodedBase:
        """The base's dictionary-encoded columnar twin (built lazily,
        column caches invalidated through ``Graph.version``)."""
        if self._encoded is None:
            self._encoded = EncodedBase(self.graph, self.schema)
        return self._encoded

    def evaluate_scan(
        self,
        scan: Scan,
        vectorize: bool = True,
        encode: bool = False,
        decode: bool = True,
    ) -> BindingTable:
        """Evaluate a (composite) scan against this base.

        ``decode=False`` (encoded only) returns an *id table* in this
        base's dictionary space instead of materialised terms.
        """
        if encode:
            return evaluate_scan(
                scan,
                self.graph,
                self.schema,
                vectorize=vectorize,
                encoded=self.encoded_base(),
                decode=decode,
            )
        return evaluate_scan(scan, self.graph, self.schema, vectorize=vectorize)


class Peer:
    """Base class of every network peer role.

    Dispatches incoming messages to ``handle_<PayloadType>`` methods;
    hosts :class:`~repro.execution.engine.PlanExecutor` instances for
    received subplans and roots channels for the plans it launches.
    """

    #: when set, subplan results stream back in chunks of this many rows
    #: (one DataPacket per chunk) paced by :attr:`stream_interval`,
    #: modelling pipelined production — the tuple flow run-time
    #: adaptation observes (Section 2.5).  Takes precedence over the
    #: implicit :attr:`batch_size` fragmentation.
    stream_chunk_rows: Optional[int] = None
    #: virtual-time spacing between streamed chunks
    stream_interval: float = 2.0
    #: completed subplans remembered for retransmit replay (per peer)
    subplan_replay_limit: int = 128
    #: vectorized execution: evaluate operators column-wise and ship
    #: results as binding batches; off reproduces the seed's
    #: binding-at-a-time path with one DataPacket per binding
    vectorize: bool = True
    #: maximum bindings per shipped DataPacket when :attr:`vectorize`
    #: is on (larger results fragment back-to-back, no pacing delay)
    batch_size: int = 256
    #: dictionary-encoded execution: scans run on cached int32 columns
    #: (warmed at join time) and results travel as id columns with the
    #: channel's dictionary shipped once; off keeps the scalar wire
    #: format bit-identical to the seed
    encode: bool = False

    def __init__(
        self,
        peer_id: str,
        base: Optional[PeerBase] = None,
        secondary_bases: Sequence[PeerBase] = (),
    ):
        self.peer_id = peer_id
        self.base = base
        #: additional bases for peers committing to several community
        #: schemas ("a simple-peer can be connected to multiple
        #: super-peers when it provides descriptions conforming to more
        #: than one schema", Section 3.1)
        self.secondary_bases: tuple = tuple(secondary_bases)
        self.channels = ChannelManager(peer_id)
        self.network: Optional[Network] = None
        #: channel ids whose roots changed plans: stop streaming to them
        #: (entries live only while the stream they cancel is in flight)
        self._cancelled_streams: set = set()
        #: channel ids with a paced chunk stream currently in flight
        self._active_streams: set = set()
        #: ack/retransmit policy for channels this peer roots (None
        #: keeps the seed's fire-and-forget channels)
        self.channel_retry = None
        #: heartbeat-based failure detector, when resilience is enabled
        self.failure_detector = None
        #: channels whose subplan is still executing (duplicate packets
        #: are ignored; the in-flight run will answer)
        self._executing_subplans: set = set()
        #: channel id -> the exact reply payloads of a completed subplan,
        #: replayed verbatim when a retransmitted SubPlanPacket arrives
        self._subplan_replay: Dict[str, List] = {}
        #: fair per-query work scheduler (repro.workload_engine); None
        #: keeps the seed's run-to-completion message handling
        self.scheduler = None
        #: durable state handle (repro.durability); None keeps the
        #: peer ephemeral (the seed behaviour)
        self.state_store = None

    def attach_durability(self, store) -> None:
        """Persist membership events to ``store`` (a
        :class:`~repro.durability.PeerStateStore`) from now on."""
        self.state_store = store
        if self.network is not None:
            store.bind_metrics(self.network.metrics)

    def save_durable_snapshot(self) -> int:
        """Persist base, views and derived active-schema to the durable
        store (no-op without one); returns the bytes written."""
        if self.state_store is None or self.base is None:
            return 0
        return self.state_store.save_snapshot(
            self.base.graph, self.base.views, self.base.active_schema(self.peer_id)
        )

    def install_scheduler(self, scheduler) -> None:
        """Interleave this peer's local work per query: subplan starts,
        scan evaluations and channel completions become scheduled work
        units instead of running inline in their message handler."""
        self.scheduler = scheduler
        self.channels.bind_scheduler(scheduler)

    def _schedule_work(self, query_id: str, unit) -> None:
        """Run ``unit`` through the fair scheduler when one is
        installed; immediately otherwise."""
        if self.scheduler is None:
            unit()
        else:
            self.scheduler.submit(query_id or self.peer_id, unit)

    def all_bases(self) -> tuple:
        """Primary base first, then the secondary ones."""
        primary = (self.base,) if self.base is not None else ()
        return primary + self.secondary_bases

    def base_for_property(self, prop) -> Optional[PeerBase]:
        """The base whose schema declares ``prop`` (multi-SON dispatch)."""
        for candidate in self.all_bases():
            if candidate.schema.has_property(prop):
                return candidate
        return None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def join(self, network: Network) -> None:
        """Register with the network (subclasses extend with protocol
        handshakes: pushing or pulling advertisements)."""
        network.register(self)
        self.network = network
        # discarded-binding accounting flows through the channel manager
        self.channels.bind_metrics(network.metrics)
        if self.encode:
            # columnar ingest: precompute every declared path's encoded
            # columns now, so query-time scans are pure cache hits
            for base in self.all_bases():
                base.encoded_base().warm()
            if self.base is not None:
                # arriving streams translate into the primary base's id
                # space: the whole coordinator pipeline runs on ints
                self.channels.wire_dictionary = self.base.encoded_base().dictionary

    def _require_network(self) -> Network:
        if self.network is None:
            raise PeerError(f"peer {self.peer_id} has not joined a network")
        return self.network

    def send(self, dst: str, payload, trace=None) -> None:
        """Send a payload; ``trace`` optionally carries a
        :class:`~repro.obs.span.TraceContext` so spans opened at the
        receiver stitch under the sender's span."""
        network = self._require_network()
        network.send(Message(self.peer_id, dst, payload, trace=trace))

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def receive(self, message: Message, network: Network) -> None:
        """Route a delivered message to its ``handle_*`` method."""
        handler_name = f"handle_{type(message.payload).__name__}"
        handler = getattr(self, handler_name, None)
        if handler is None:
            raise PeerError(
                f"{type(self).__name__} {self.peer_id} cannot handle {message.kind}"
            )
        handler(message)

    # ------------------------------------------------------------------
    # executor hosting (ExecutorHost protocol)
    # ------------------------------------------------------------------
    def local_scan(self, scan: Scan) -> BindingTable:
        prop = scan.patterns()[0].schema_path.property if scan.patterns() else None
        base = self.base_for_property(prop) if prop is not None else self.base
        if base is None:
            # no base speaks this vocabulary: the empty table
            return BindingTable(scan.patterns()[0].variables() if scan.patterns() else ())
        if self.encode and self.base is not None:
            if base is self.base:
                # stay in the primary dictionary's id space end to end
                return base.evaluate_scan(
                    scan, vectorize=self.vectorize, encode=True, decode=False
                )
            # secondary base (multi-SON): its dictionary differs, so
            # materialise and re-intern into the primary id space
            table = base.evaluate_scan(scan, vectorize=self.vectorize, encode=True)
            return encode_cells(table, self.base.encoded_base().dictionary)
        return base.evaluate_scan(scan, vectorize=self.vectorize, encode=self.encode)

    def handle_SubPlanPacket(self, message: Message) -> None:
        """Execute a received subplan and stream the result back.

        Alongside the data packet, the destination reports statistics
        (its local cardinalities for the subplan's properties) so the
        channel root can feed its optimiser — the "statistics useful
        for query optimization" ubQL packets of Section 2.4.
        """
        packet: SubPlanPacket = message.payload
        root = message.src
        channel_id = packet.channel_id
        if channel_id in self._executing_subplans:
            return  # retransmit raced the in-flight execution: it will answer
        replay = self._subplan_replay.get(channel_id)
        if replay is not None:
            # retransmitted request for a subplan already answered: resend
            # the exact same packets (the root deduplicates on seq)
            for payload in replay:
                self.send(root, payload)
            return
        self._executing_subplans.add(channel_id)

        def on_complete(table: Optional[BindingTable], failed: Optional[str]) -> None:
            self._executing_subplans.discard(channel_id)
            if failed is None and table is not None:
                stats = StatsPacket(
                    channel_id, len(table), self._local_cardinalities(packet)
                )
                data_packets = self._result_packets(channel_id, table)
                self._remember_subplan(channel_id, [stats] + data_packets)
                self.send(root, stats)
                self._stream_packets(root, channel_id, data_packets)
                return
            # failures are not remembered: a retransmit retries execution
            self.send(
                root,
                DataPacket(
                    channel_id=channel_id,
                    table=table if table is not None else BindingTable(()),
                    final=True,
                    failed_peer=failed,
                ),
            )

        executor = PlanExecutor(
            self,
            self._require_network(),
            packet.plan,
            sites=packet.sites,
            query_id=packet.query_id,
            on_complete=on_complete,
            retry=self.channel_retry,
            # stitch this remote execution under the shipped channel
            # span: the arriving message carries the root's context
            trace=message.trace,
        )
        self._schedule_work(packet.query_id, executor.start)

    def _result_packets(self, channel_id: str, table: BindingTable) -> list:
        """A subplan result as sequence-numbered binding batches.

        The granularity is :attr:`stream_chunk_rows` when explicit
        pipelining is on, else :attr:`batch_size` (vectorized) or one
        binding per packet (``--no-vectorize``, the seed's conceptual
        tuple-at-a-time wire format).
        """
        chunk = self.stream_chunk_rows
        if not chunk:
            chunk = self.batch_size if self.vectorize else 1
        if self.encode:
            return self._encoded_result_packets(channel_id, table, chunk)
        if len(table) <= chunk:
            return [DataPacket(channel_id, table, final=True, seq=0)]
        parts = split_table(table, chunk)
        last = len(parts) - 1
        return [
            DataPacket(channel_id, part, final=index == last, seq=index)
            for index, part in enumerate(parts)
        ]

    def _encoded_result_packets(
        self, channel_id: str, table: BindingTable, chunk: int
    ) -> list:
        """The result as a :class:`DictionaryPacket` (the stream's id →
        term entries, shipped once) followed by encoded data packets
        whose cells are dictionary ids.  The peer-lifetime dictionary
        lives on the primary base, so ids stay stable across channels;
        only the entries this stream references travel.
        """
        if self.base is not None:
            dictionary = self.base.encoded_base().dictionary
        else:
            from ..rdf.dictionary import TermDictionary

            dictionary = TermDictionary()
        if is_id_table(table):
            # the pipeline already ran on primary-dictionary ids: pivot
            # straight into the wire layout, no re-encoding pass
            encoded = EncodedTable(
                tuple(table.columns),
                tuple(tuple(column) for column in zip(*table.rows)),
                len(table.rows),
            )
        else:
            encoded = encode_table(table, dictionary)
        entries = dictionary.entries(encoded.used_ids())
        placeholder = BindingTable(table.columns)
        parts = split_encoded(encoded, chunk)
        last = len(parts) - 1
        packets = [
            DataPacket(
                channel_id,
                placeholder,
                final=index == last,
                seq=index,
                encoded=part,
            )
            for index, part in enumerate(parts)
        ]
        return [DictionaryPacket(channel_id, entries)] + packets

    def _stream_packets(self, root: str, channel_id: str, packets: list) -> None:
        """Ship result packets.

        A single packet goes immediately.  Implicit fragmentation (the
        table outgrew :attr:`batch_size`) sends back-to-back — batching
        changes message count, not timing.  Explicit pipelining
        (:attr:`stream_chunk_rows`) paces chunks by
        :attr:`stream_interval` and honours mid-stream discards.
        """
        if len(packets) == 1:
            self.send(root, packets[0])
            return
        if not self.stream_chunk_rows:
            for packet in packets:
                self.send(root, packet)
            return
        network = self._require_network()
        self._active_streams.add(channel_id)

        def send_batch(index: int) -> None:
            if channel_id in self._cancelled_streams:
                # the root changed plans: terminate this stream and
                # account the bindings it will never deliver
                self._cancelled_streams.discard(channel_id)
                self._active_streams.discard(channel_id)
                # dictionary packets carry no bindings (no ``rows``)
                remaining = sum(getattr(p, "rows", 0) for p in packets[index:])
                if remaining:
                    network.metrics.record_discarded_bindings(remaining)
                return
            self.send(root, packets[index])
            if index + 1 < len(packets):
                network.call_later(self.stream_interval, lambda: send_batch(index + 1))
            else:
                self._active_streams.discard(channel_id)

        send_batch(0)

    def _remember_subplan(self, channel_id: str, payloads: list) -> None:
        """Cache a completed subplan's replies for retransmit replay
        (bounded FIFO so long-lived peers don't grow without limit)."""
        self._subplan_replay[channel_id] = payloads
        while len(self._subplan_replay) > self.subplan_replay_limit:
            self._subplan_replay.pop(next(iter(self._subplan_replay)))

    def _local_cardinalities(self, packet: SubPlanPacket) -> Dict[str, int]:
        """Entailed statement counts for the subplan's properties in the
        local base (the statistics shipped to the channel root)."""
        from ..rdf.inference import InferredView

        counts: Dict[str, int] = {}
        for pattern in packet.plan.patterns():
            prop = pattern.schema_path.property
            if prop.value in counts:
                continue
            base = self.base_for_property(prop)
            if base is None:
                continue
            if self.encode:
                # cached on the columnar twin: O(1) after the first ask
                counts[prop.value] = base.encoded_base().property_count(prop)
                continue
            view = InferredView(base.graph, base.schema)
            counts[prop.value] = sum(1 for _ in view.triples(None, prop, None))
        return counts

    def handle_DataPacket(self, message: Message) -> None:
        self.channels.on_data(message.payload)

    def handle_DictionaryPacket(self, message: Message) -> None:
        """Install an encoded stream's id → term entries on its channel."""
        self.channels.on_dictionary(message.payload)

    def handle_ChangePlanPacket(self, message: Message) -> None:
        """The channel root changed its plan: terminate on-going work
        for that channel (ubQL discard on the destination side) —
        concretely, stop any in-flight chunk stream.  Channels with no
        active stream have nothing to cancel, so no marker is kept for
        them (markers for already-finished streams used to accumulate
        forever)."""
        channel_id = message.payload.channel_id
        if channel_id in self._active_streams:
            self._cancelled_streams.add(channel_id)

    def handle_StatsPacket(self, message: Message) -> None:
        """Base peers ignore statistics; coordinators override."""

    def handle_Heartbeat(self, message: Message) -> None:
        """Feed liveness beacons to the failure detector, if one runs."""
        if self.failure_detector is not None:
            self.failure_detector.beat(message.payload.sender)

    def handle_DeliveryFailure(self, message: Message) -> None:
        """A message we sent bounced: if it opened a channel, fail it."""
        failure: DeliveryFailure = message.payload
        original = failure.original
        if isinstance(original.payload, SubPlanPacket):
            self.channels.on_failure(original.payload.channel_id)
        # bounced data packets mean the root died: nothing to repair here

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.peer_id})"
