"""Peer roles: client, simple and super peers, plus SON bookkeeping."""

from .base import Peer, PeerBase
from .client import ClientPeer
from .protocol import (
    Advertise,
    AdvertisementReply,
    AdvertisementRequest,
    PartialPlan,
    QueryResult,
    QuerySubmit,
    RouteReply,
    RouteRequest,
)
from .simple import PendingQuery, SimplePeer
from .son import SONRegistry
from .super import SuperPeer

__all__ = [
    "Advertise",
    "AdvertisementReply",
    "AdvertisementRequest",
    "ClientPeer",
    "PartialPlan",
    "Peer",
    "PeerBase",
    "PendingQuery",
    "QueryResult",
    "QuerySubmit",
    "RouteReply",
    "RouteRequest",
    "SONRegistry",
    "SimplePeer",
    "SuperPeer",
]
