"""Super-peers: routing servers of the hybrid architecture (Section 3.1).

A super-peer collects the active-schemas of the simple peers clustered
under it (one cluster per community schema / SON), answers
:class:`~repro.peers.protocol.RouteRequest` messages by running the
routing algorithm over its registry, and forwards requests for schemas
it is not responsible for across the super-peer backbone.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Set

from ..core.annotations import AnnotatedQueryPattern, PeerAnnotation
from ..core.cost import Statistics
from ..core.routing_index import RoutingIndex
from ..errors import PeerError
from ..livedata.updates import AdvertiseDelta, apply_advertisement_delta
from ..mappings.articulation import Articulation
from ..net.message import Message
from ..rdf.schema import Schema
from ..resilience.detector import FailureDetector, PeerQuarantine
from ..rvl.active_schema import ActiveSchema
from .base import Peer
from .protocol import (
    Advertise,
    AdvertisementReply,
    AdvertisementRequest,
    RouteBusy,
    RouteReply,
    RouteRequest,
)

#: Guard against route requests circulating the backbone forever.
MAX_BACKBONE_HOPS = 8


class SuperPeer(Peer):
    """A routing server for one or more SONs.

    Args:
        peer_id: Network address.
        schemas: The community schemas this super-peer is responsible
            for (it can route queries over them).
        backbone_directory: Shared mapping schema URI → responsible
            super-peer id; lets any super-peer forward a request for an
            unknown schema to the right one.  All super-peers of a
            deployment share one directory instance.
        parent: Optional parent super-peer for the multi-layered
            hierarchical organisation of Section 3.1: requests for
            schemas unknown to this layer escalate upward instead of
            failing.
        cache_enabled: Layer a routing cache over every per-SON index
            (scoped invalidation keeps it coherent under churn).
        statistics: Shared :class:`~repro.core.cost.Statistics` store.
            When set, advertised :class:`~repro.core.cost.StatSummary`
            payloads are folded into it and observed channel behaviour
            (from the network's per-link histograms) refreshes its link
            costs on every served route request.  None (the default)
            keeps the seed's static-defaults behaviour.
    """

    def __init__(
        self,
        peer_id: str,
        schemas: Iterable[Schema] = (),
        backbone_directory: Optional[Dict[str, str]] = None,
        parent: Optional[str] = None,
        cache_enabled: bool = True,
        statistics: Optional[Statistics] = None,
    ):
        super().__init__(peer_id, base=None)
        self.parent = parent
        self.cache_enabled = cache_enabled
        self.statistics = statistics
        self.schemas: Dict[str, Schema] = {s.namespace.uri: s for s in schemas}
        self.backbone_directory = (
            backbone_directory if backbone_directory is not None else {}
        )
        for uri in self.schemas:
            self.backbone_directory[uri] = peer_id
        self.registry: Dict[str, Dict[str, ActiveSchema]] = {
            uri: {} for uri in self.schemas
        }
        #: per-SON property-bucket indices for O(candidates) routing
        self.indices: Dict[str, RoutingIndex] = {
            uri: RoutingIndex(schema, use_cache=cache_enabled)
            for uri, schema in self.schemas.items()
        }
        self.articulations: List[Articulation] = []
        #: resilience: suspected cluster members are kept out of route
        #: replies until heard from again (off by default)
        self.quarantine = PeerQuarantine()
        self.quarantine_enabled = False
        #: admission control over the routing service
        #: (repro.workload_engine): requests queue and are served one
        #: per ``service_time``; overflow is answered with RouteBusy.
        #: None serves every request the instant it arrives (seed).
        self.admission = None
        self._route_queue: Deque[Message] = deque()
        self._route_service_busy = False

    def join(self, network) -> None:
        super().join(network)
        for index in self.indices.values():
            if index.cache is not None:
                index.cache.bind_metrics(network.metrics)
                index.cache.on_invalidate = lambda count: network.emit_event(
                    "cache_invalidate", peer=self.peer_id, entries=count
                )
        # liveness control events keep the per-SON routing caches
        # honest: entries must never resurrect a peer known to be down
        network.add_liveness_listener(self._on_liveness)

    # ------------------------------------------------------------------
    # liveness / suspicion
    # ------------------------------------------------------------------
    def _on_liveness(self, peer_id: str, alive: bool) -> None:
        if peer_id == self.peer_id:
            return
        if alive:
            self.restore_peer(peer_id)
        else:
            self._invalidate_routing(peer_id)

    def _invalidate_routing(self, peer_id: str) -> None:
        for index in self.indices.values():
            if index.cache is not None:
                index.cache.invalidate_peer(peer_id)

    def suspect_peer(self, peer_id: str) -> None:
        """Quarantine a cluster member the failure detector suspects:
        it disappears from route replies (the advertisement registry is
        untouched, so a heartbeat restores it without re-advertising)."""
        if peer_id == self.peer_id:
            return
        if self.network is not None:
            self.network.metrics.record_suspicion()
        self._invalidate_routing(peer_id)
        if self.quarantine_enabled:
            tripped = self.quarantine.record_failure(peer_id)
            if tripped:
                if self.network is not None:
                    self.network.emit_event(
                        "quarantine", peer=self.peer_id, suspect=peer_id
                    )
                if self.state_store is not None:
                    self.state_store.log_quarantine(peer_id)

    def restore_peer(self, peer_id: str) -> None:
        """The peer was heard from again (heartbeat, recovery or a
        fresh advertisement): lift its quarantine and — symmetric with
        :meth:`suspect_peer` — invalidate its routing-cache scope, so
        entries computed while it was excluded cannot linger."""
        if self.quarantine.restore(peer_id):
            self._invalidate_routing(peer_id)
            if self.state_store is not None:
                self.state_store.log_rehabilitate(peer_id)

    def watch_cluster(
        self, suspicion_timeout: float = 30.0, interval: float = 10.0
    ) -> FailureDetector:
        """Run a heartbeat failure detector over every registered
        cluster member.  The caller drives it (``poll()`` per round, or
        a bounded ``start(rounds)``); beats arrive automatically via
        :meth:`handle_Heartbeat`."""
        network = self.network
        if network is None:
            raise PeerError(f"super-peer {self.peer_id} has not joined a network")
        detector = FailureDetector(
            self.peer_id,
            network,
            suspicion_timeout=suspicion_timeout,
            interval=interval,
            on_suspect=self.suspect_peer,
            on_restore=self.restore_peer,
        )
        for son in self.registry.values():
            for peer_id in son:
                detector.watch(peer_id)
        self.failure_detector = detector
        return detector

    def add_articulation(self, articulation: Articulation) -> None:
        """Register a mediation mapping.  The super-peer must manage
        both SONs (it needs the target SON's advertisements to route
        reformulated queries).

        Raises:
            PeerError: When either schema is not managed here.
        """
        for schema in (articulation.source, articulation.target):
            uri = schema.namespace.uri
            if uri not in self.schemas:
                self.schemas[uri] = schema
                self.backbone_directory[uri] = self.peer_id
                self.registry.setdefault(uri, {})
                index = RoutingIndex(schema, use_cache=self.cache_enabled)
                if index.cache is not None and self.network is not None:
                    network = self.network
                    index.cache.bind_metrics(network.metrics)
                    index.cache.on_invalidate = (
                        lambda count: network.emit_event(
                            "cache_invalidate", peer=self.peer_id, entries=count
                        )
                    )
                self.indices.setdefault(uri, index)
        self.articulations.append(articulation)

    # ------------------------------------------------------------------
    # advertisement registry
    # ------------------------------------------------------------------
    def handle_Advertise(self, message: Message) -> None:
        payload = message.payload
        stats = getattr(payload, "stats", None)
        if stats is not None and self.statistics is not None:
            # Section 2.5: observed per-predicate cardinalities and
            # distinct counts replace the optimiser's static defaults
            self.statistics.fold_summary(stats)
        self.register_advertisement(
            payload.active_schema, rejoin=getattr(payload, "rejoin", False)
        )

    def register_advertisement(
        self, advertisement: ActiveSchema, rejoin: bool = False, record: bool = True
    ) -> None:
        """Register (or refresh) one clustered peer's advertisement.

        ``rejoin`` marks a peer coming back after a crash/departure: it
        is rehabilitated and the advertisement is rebroadcast to the
        SON's other members so coordinator-local quarantines lift too.
        ``record=False`` replays recovered registry state without
        re-logging or re-counting it.
        """
        if advertisement.peer_id is None:
            raise PeerError("advertisement without peer id")
        son = self.registry.setdefault(advertisement.schema_uri, {})
        previous = son.get(advertisement.peer_id)
        son[advertisement.peer_id] = advertisement
        index = self.indices.get(advertisement.schema_uri)
        if index is not None:
            index.add(advertisement)
        if record:
            if self.network is not None:
                if rejoin:
                    self.network.metrics.record_rejoin()
                    self.network.emit_event(
                        "rejoin", peer=advertisement.peer_id, via=self.peer_id
                    )
                elif previous is None:
                    self.network.metrics.record_join()
                    self.network.emit_event(
                        "join", peer=advertisement.peer_id, via=self.peer_id
                    )
            if self.state_store is not None and previous != advertisement:
                self.state_store.log_advertise(advertisement)
        # a fresh advertisement is proof of life
        self.restore_peer(advertisement.peer_id)
        if self.failure_detector is not None:
            self.failure_detector.watch(advertisement.peer_id)
            self.failure_detector.beat(advertisement.peer_id)
        if rejoin and record:
            self._broadcast_rehabilitation(advertisement)

    def _broadcast_rehabilitation(self, advertisement: ActiveSchema) -> None:
        """Tell the SON's other members their fellow is back.  The
        rejoin travels the message plane, so coordinator quarantines
        lift identically over the simulated and the live transport."""
        son = self.registry.get(advertisement.schema_uri, {})
        for member in sorted(son):
            if member != advertisement.peer_id:
                self.send(member, Advertise(advertisement, rejoin=True))

    def deregister(self, peer_id: str, record: bool = True) -> None:
        """Drop a departed peer's advertisements from every SON."""
        dropped = False
        for son in self.registry.values():
            if son.pop(peer_id, None) is not None:
                dropped = True
        for index in self.indices.values():
            index.remove(peer_id)
        if self.failure_detector is not None:
            self.failure_detector.unwatch(peer_id)
        if dropped and record:
            if self.network is not None:
                self.network.metrics.record_goodbye()
            if self.state_store is not None:
                self.state_store.log_goodbye(peer_id)

    def handle_AdvertiseDelta(self, message: Message) -> None:
        """A clustered peer's active-schema changed *by this much*:
        patch the registered advertisement and refile it.  Refiling
        through :meth:`register_advertisement` reuses the full-refresh
        path — :meth:`~repro.core.routing_index.RoutingIndex.add`
        rebuckets the advertisement and invalidates exactly the
        affected routing-cache scope — so delta and full refreshes are
        behaviourally identical, only cheaper on the wire."""
        delta: AdvertiseDelta = message.payload
        if delta.stats is not None and self.statistics is not None:
            self.statistics.fold_summary(delta.stats)
        previous = self.registry.get(delta.schema_uri, {}).get(delta.peer_id)
        if previous is None:
            # no registered baseline to patch (the delta raced ahead of
            # the initial push, or state was lost): pull the full
            # advertisement instead of guessing
            self.send(delta.peer_id, AdvertisementRequest(self.peer_id, 1))
            return
        self.register_advertisement(apply_advertisement_delta(previous, delta))
        if self.network is not None:
            self.network.emit_event(
                "advertise_delta",
                peer=delta.peer_id,
                via=self.peer_id,
                added=len(delta.added_paths) + len(delta.added_classes),
                removed=len(delta.removed_paths) + len(delta.removed_classes),
            )

    def handle_AdvertisementReply(self, message: Message) -> None:
        """Register pulled advertisements — the recovery path when an
        :class:`~repro.livedata.updates.AdvertiseDelta` arrived without
        a registered baseline."""
        for advertisement in message.payload.schemas:
            if advertisement.peer_id:
                self.register_advertisement(advertisement)

    def handle_Goodbye(self, message: Message) -> None:
        """A clustered peer departs: forget its advertisements."""
        self.deregister(message.payload.peer_id)

    def handle_AdvertisementRequest(self, message: Message) -> None:
        """Pull: reply with every advertisement in the registry.

        Simple peers use this for neighbourhood discovery; deployment
        launchers use it to observe when a live cluster's advertisement
        push has settled."""
        request: AdvertisementRequest = message.payload
        schemas = tuple(
            advertisement
            for son in self.registry.values()
            for advertisement in sorted(son.values(), key=lambda a: a.peer_id or "")
        )
        self.send(request.requester, AdvertisementReply(schemas, self.peer_id))

    def advertisements_for(self, schema_uri: str) -> List[ActiveSchema]:
        return sorted(
            self.registry.get(schema_uri, {}).values(), key=lambda a: a.peer_id or ""
        )

    def cluster(self, schema_uri: str) -> Set[str]:
        """The peers clustered under this super-peer for one SON."""
        return set(self.registry.get(schema_uri, {}))

    # ------------------------------------------------------------------
    # routing service
    # ------------------------------------------------------------------
    def is_responsible_for(self, schema_uri: str) -> bool:
        return schema_uri in self.schemas

    def handle_RouteRequest(self, message: Message) -> None:
        admission = self.admission
        if admission is None:
            self._serve_route_request(message)
            return
        network = self._require_network()
        if len(self._route_queue) >= admission.max_queued:
            # the routing service is saturated: refuse with a back-off
            # hint instead of queueing unboundedly
            request: RouteRequest = message.payload
            network.metrics.record_shed_query()
            network.emit_event(
                "shed", peer=self.peer_id, query_id=request.query_id,
                service="routing",
            )
            self.send(
                request.requester,
                RouteBusy(request.query_id, admission.retry_after, self.peer_id),
            )
            return
        self._route_queue.append(message)
        network.metrics.record_queue_depth(len(self._route_queue))
        if not self._route_service_busy:
            self._route_service_busy = True
            network.call_later(admission.service_time, self._serve_next_route)

    def _serve_next_route(self) -> None:
        """Serve one queued route request (paced by ``service_time``)."""
        if not self._route_queue:
            self._route_service_busy = False
            return
        message = self._route_queue.popleft()
        self._serve_route_request(message)
        admission = self.admission
        if self._route_queue and admission is not None:
            self._require_network().call_later(
                admission.service_time, self._serve_next_route
            )
        else:
            self._route_service_busy = False

    def _serve_route_request(self, message: Message) -> None:
        request: RouteRequest = message.payload
        network = self._require_network()
        if self.statistics is not None:
            # fold observed channel bandwidth/latency into link costs
            # so the cost model prices shipping with live numbers
            self.statistics.fold_link_observations(
                network.metrics.link_observations()
            )
        schema_uri = request.pattern.schema.namespace.uri
        # the route-service span stitches under the requester's routing
        # span (its context rides in the request message, hop by hop)
        span = network.tracer.start_span(
            "route",
            peer=self.peer_id,
            parent=message.trace,
            query=request.query_id,
            schema=schema_uri,
            hops=request.hops,
        )
        if self.is_responsible_for(schema_uri):
            check = network.tracer.start_span(
                "subsumption",
                peer=self.peer_id,
                parent=span.context(),
                registered=len(self.registry.get(schema_uri, {})),
            )
            annotated = self.indices[schema_uri].route(request.pattern)
            check.set(peers=len(annotated.all_peers()))
            check.finish()
            self._mediate(request, annotated)
            if self.quarantine_enabled and len(self.quarantine):
                # filter after the cache layer: entries stay unfiltered
                # (and restore_peer still invalidates the peer's scope,
                # symmetric with suspicion, so downstream caches keyed
                # on the filtered reply cannot linger either)
                annotated = annotated.without_peers(self.quarantine.peers)
            span.set(peers=len(annotated.all_peers()))
            span.finish()
            self.send(request.requester, RouteReply(request.query_id, annotated))
            return
        # not responsible: discover the right super-peer via the backbone
        responsible = self.backbone_directory.get(schema_uri)
        if responsible is None and self.parent is not None and (
            request.hops < MAX_BACKBONE_HOPS
        ):
            # multi-layer hierarchy: escalate to the parent layer
            responsible = self.parent
        if responsible is None or request.hops >= MAX_BACKBONE_HOPS:
            # nobody reachable owns this schema: empty annotation,
            # constructed directly — no advertisement scan to run.  Not
            # cached: the backbone directory is shared state mutated
            # outside this peer, so a negative entry here could go
            # stale without any invalidation signal.  (The per-SON
            # empty-registry case IS cached negatively, one layer down
            # in RoutingIndex.route.)
            annotated = AnnotatedQueryPattern(request.pattern)
            span.set(peers=0)
            span.finish("unroutable")
            self.send(request.requester, RouteReply(request.query_id, annotated))
            return
        span.set(forwarded_to=responsible)
        span.finish()
        self.send(
            responsible,
            RouteRequest(
                request.query_id,
                request.pattern,
                request.requester,
                hops=request.hops + 1,
            ),
            # nest the next hop's route span under this one
            trace=span.context(),
        )

    # ------------------------------------------------------------------
    # mediation (Section 3.1: reformulation across articulations)
    # ------------------------------------------------------------------
    def _mediate(
        self, request: RouteRequest, annotated: AnnotatedQueryPattern
    ) -> None:
        """Extend the annotation with peers of articulated SONs.

        For every articulation whose source is the query's schema, the
        pattern is reformulated into the target vocabulary and routed
        over the target SON's registry; matching peers are annotated on
        the *original* pattern with their reformulated subqueries, so
        the generated plan ships each peer a query in its own terms.
        """
        schema_uri = request.pattern.schema.namespace.uri
        for articulation in self.articulations:
            if articulation.source.namespace.uri != schema_uri:
                continue
            reformulated = articulation.reformulate(request.pattern)
            if reformulated is None:
                continue
            target_uri = articulation.target.namespace.uri
            index = self.indices.get(target_uri)
            if index is None:
                continue
            target_annotated = index.route(reformulated)
            for original, mapped in zip(
                request.pattern.patterns, reformulated.patterns
            ):
                for annotation in target_annotated.annotations(mapped):
                    annotated.annotate(
                        original,
                        PeerAnnotation(
                            annotation.peer_id, annotation.rewritten, exact=False
                        ),
                    )
