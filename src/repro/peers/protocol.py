"""Peer-level protocol payloads.

These ride inside :class:`~repro.net.message.Message` envelopes.
Channel-level packets (subplans, data) live in
:mod:`repro.channels.packets`; the payloads here cover query
submission, routing, advertisement push/pull and ad-hoc partial-plan
forwarding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.algebra import PlanNode, count_scans
from ..core.annotations import AnnotatedQueryPattern
from ..core.cost import StatSummary
from ..rql.bindings import BindingTable
from ..rql.pattern import QueryPattern
from ..rvl.active_schema import ActiveSchema


@dataclass(frozen=True)
class QuerySubmit:
    """Client → simple peer: evaluate this RQL query.

    ``max_peers`` / ``limit`` carry the completeness/load trade-off of
    Section 5: bound the per-pattern broadcast and the answer size.
    """

    query_id: str
    text: str
    reply_to: str
    max_peers: Optional[int] = None
    limit: Optional[int] = None
    order_by: Optional[str] = None
    descending: bool = False

    def size_bytes(self) -> int:
        return 64 + len(self.text)


@dataclass(frozen=True)
class QueryResult:
    """Coordinator → client: the final answer (or an error).

    ``coverage`` is set when the answer is a graceful degradation: the
    coordinator could not repair the plan for every path pattern and
    returns what was answerable, annotated with exactly which patterns
    made it (:class:`repro.resilience.partial.Coverage`).
    """

    query_id: str
    table: Optional[BindingTable]
    error: Optional[str] = None
    coverage: Optional[object] = None

    @property
    def is_partial(self) -> bool:
        return self.coverage is not None and not self.coverage.is_complete

    def size_bytes(self) -> int:
        size = 64 + (
            self.table.size_bytes() if self.table is not None else len(self.error or "")
        )
        if self.coverage is not None:
            size += self.coverage.size_bytes()
        return size


@dataclass(frozen=True)
class QueryShed:
    """Coordinator → client: the query was refused by admission control.

    The coordinator's pending-query queue was full, so instead of
    silently degrading every in-flight query it sheds this one with a
    ``retry_after`` hint (virtual time) — the client (or the workload
    driver on its behalf) may resubmit after backing off.
    """

    query_id: str
    retry_after: float
    from_peer: str = ""

    def size_bytes(self) -> int:
        return 72


@dataclass(frozen=True)
class RouteBusy:
    """Super-peer → simple peer: the routing service is saturated.

    The super-peer's route-request queue was full; the requester should
    re-send its :class:`RouteRequest` after ``retry_after`` (or give up
    and degrade when its shed budget runs out).
    """

    query_id: str
    retry_after: float
    from_peer: str = ""

    def size_bytes(self) -> int:
        return 72


@dataclass(frozen=True)
class RouteRequest:
    """Simple peer → super-peer: annotate this query pattern
    (hybrid architecture, first evaluation phase of Section 3.1)."""

    query_id: str
    pattern: QueryPattern
    requester: str
    hops: int = 0

    def size_bytes(self) -> int:
        return 96 + 48 * len(self.pattern)


@dataclass(frozen=True)
class RouteReply:
    """Super-peer → simple peer: the annotated query pattern."""

    query_id: str
    annotated: AnnotatedQueryPattern

    def size_bytes(self) -> int:
        peers = sum(
            len(self.annotated.peers_for(p)) for p in self.annotated.query_pattern
        )
        return 96 + 32 * peers


@dataclass(frozen=True)
class Advertise:
    """Peer → super-peer / neighbour: my active-schema (push).

    ``rejoin`` marks the push of a peer coming *back* (crash recovery
    or re-entry after a departure): holders rehabilitate the peer —
    lift its quarantine, invalidate its routing-cache scope — and
    super-peers rebroadcast the advertisement to the SON's other
    members so coordinator-local quarantines lift too.  Initial joins
    never set it, keeping the seed protocol byte-identical.

    ``stats`` carries the peer's :class:`~repro.core.cost.StatSummary`
    when cost-based planning is on; by default it is absent, keeping
    the advertisement wire format byte-identical to the seed.
    """

    active_schema: ActiveSchema
    rejoin: bool = False
    stats: Optional[StatSummary] = None

    def size_bytes(self) -> int:
        size = self.active_schema.size_bytes()
        if self.stats is not None:
            size += self.stats.size_bytes()
        return size


@dataclass(frozen=True)
class AdvertisementRequest:
    """Peer → neighbour: send me your active-schema(s) (pull).

    ``depth`` > 1 asks the neighbour to forward the request onward,
    implementing the 2-depth / 3-depth neighbourhood discovery of
    Section 3.2.
    """

    requester: str
    depth: int = 1

    def size_bytes(self) -> int:
        return 64


@dataclass(frozen=True)
class AdvertisementReply:
    """Neighbour → requester: the advertisements it knows at this depth."""

    schemas: Tuple[ActiveSchema, ...]
    from_peer: str

    def size_bytes(self) -> int:
        return 32 + sum(s.size_bytes() for s in self.schemas)


@dataclass(frozen=True)
class DelegatedResult:
    """Completing peer → query root: the outcome of a forwarded plan.

    Carries the *raw* (unprojected) bindings so the root applies the
    original query's filters and projection; or an error when the
    receiving peer could not fill the plan's holes either.

    ``token`` identifies the logical result so the root's outstanding-
    delegation accounting survives duplicate deliveries.
    """

    query_id: str
    table: Optional[BindingTable]
    from_peer: str
    error: Optional[str] = None
    token: str = ""

    def size_bytes(self) -> int:
        if self.table is None:
            return 96 + len(self.error or "")
        return 96 + self.table.size_bytes()


@dataclass(frozen=True)
class PartialPlan:
    """Peer → peer able to answer part of the plan: continue routing.

    Carries a plan with holes plus coordination context (ad-hoc
    interleaved routing/processing, Section 3.2).  ``visited`` prevents
    forwarding loops; ``token`` identifies the logical forward so a
    receiver can tell a duplicate delivery (same token: already
    answered, drop) from a fresh forward round (new token: decline).
    """

    query_id: str
    plan: PlanNode
    pattern: QueryPattern
    root_peer: str
    reply_to: str
    visited: Tuple[str, ...] = ()
    conditions_text: str = ""
    token: str = ""

    def size_bytes(self) -> int:
        return 160 + 96 * count_scans(self.plan) + 16 * len(self.visited)
