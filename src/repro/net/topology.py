"""Topology builders for experiment networks.

These helpers wire up :class:`~repro.net.simulator.Network` instances
with common shapes: uniform meshes, super-peer stars and random
neighbour graphs (the physical layer ad-hoc SONs grow on).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from .simulator import Network


def uniform_mesh(network: Network, peer_ids: Sequence[str], latency: float = 1.0) -> None:
    """Every pair of peers gets the same link latency."""
    for i, a in enumerate(peer_ids):
        for b in peer_ids[i + 1 :]:
            network.set_link(a, b, latency)


def star(
    network: Network,
    hub: str,
    leaves: Sequence[str],
    hub_latency: float = 1.0,
    leaf_latency: float = 5.0,
) -> None:
    """A super-peer star: fast links to the hub, slow leaf-to-leaf links."""
    for leaf in leaves:
        network.set_link(hub, leaf, hub_latency)
    for i, a in enumerate(leaves):
        for b in leaves[i + 1 :]:
            network.set_link(a, b, leaf_latency)


def random_neighbour_graph(
    peer_ids: Sequence[str],
    degree: int,
    rng: random.Random,
) -> Dict[str, Tuple[str, ...]]:
    """A connected random graph with ~``degree`` neighbours per peer.

    Builds a random spanning chain first (connectivity guarantee), then
    adds random extra edges until the average degree is reached.
    Returns the symmetric adjacency mapping used as ad-hoc
    neighbourhoods.
    """
    if degree < 1:
        raise ValueError("degree must be >= 1")
    ids: List[str] = list(peer_ids)
    rng.shuffle(ids)
    edges = set()
    for a, b in zip(ids, ids[1:]):
        edges.add((min(a, b), max(a, b)))
    target_edges = max(len(ids) - 1, (len(ids) * degree) // 2)
    attempts = 0
    while len(edges) < target_edges and attempts < 50 * target_edges:
        a, b = rng.sample(ids, 2)
        edges.add((min(a, b), max(a, b)))
        attempts += 1
    adjacency: Dict[str, List[str]] = {p: [] for p in peer_ids}
    for a, b in sorted(edges):
        adjacency[a].append(b)
        adjacency[b].append(a)
    return {p: tuple(sorted(n)) for p, n in adjacency.items()}
