"""A deterministic discrete-event network simulator.

The paper evaluates SQPeer architecturally; this simulator provides the
substrate on one machine: peers register as nodes, messages are
delivered in virtual-time order with per-link latency and bandwidth,
and every delivery is metered.  A single-threaded event loop with an
explicit seedable RNG makes every experiment bit-for-bit reproducible.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Protocol, Set, Tuple

from ..errors import EventBudgetExhausted, NetworkError
from ..metrics.collectors import MetricSet
from ..obs.collect import TraceCollector
from ..obs.telemetry.flightrec import FlightRecorder
from ..obs.tracer import NULL_TRACER, Tracer
from ..resilience.faults import FaultInjector, FaultPlan
from ..transport.base import Transport
from ..transport.sim import SimTransport
from .message import DeliveryFailure, Message


def format_diagnostics(diagnostics: dict) -> str:
    """Render :meth:`Network.diagnostics` as an indented text report."""
    lines = [
        f"  virtual time     : {diagnostics['now']:.2f}",
        f"  pending events   : {diagnostics['pending_events']}"
        + (
            f" (oldest at t={diagnostics['oldest_pending_event_at']:.2f})"
            if diagnostics["oldest_pending_event_at"] is not None
            else ""
        ),
    ]
    if diagnostics.get("transport"):
        sockets = diagnostics.get("open_sockets")
        lines.append(
            f"  transport        : {diagnostics['transport']}"
            + (f" ({sockets} open sockets)" if sockets is not None else "")
        )
    inflight = diagnostics["inflight_queries"]
    lines.append(
        f"  queries in flight: {len(inflight)}"
        + (f" ({', '.join(inflight[:8])}{'…' if len(inflight) > 8 else ''})"
           if inflight else "")
    )
    if diagnostics["down_peers"]:
        lines.append(f"  down peers       : {', '.join(diagnostics['down_peers'])}")
    for peer_id, gauges in diagnostics["peers"].items():
        busy = " ".join(f"{name}={value}" for name, value in gauges.items() if value)
        lines.append(f"  peer {peer_id:<12}: {busy}")
    return "\n".join(lines)


class Node(Protocol):
    """What the network requires of a registered peer object."""

    peer_id: str

    def receive(self, message: Message, network: "Network") -> None:
        """Handle one delivered message (may send more)."""


class Link:
    """Point-to-point link parameters."""

    __slots__ = ("latency", "cost_per_byte")

    def __init__(self, latency: float = 1.0, cost_per_byte: float = 0.0001):
        self.latency = latency
        self.cost_per_byte = cost_per_byte

    def delay(self, size: int) -> float:
        return self.latency + size * self.cost_per_byte


class Network:
    """The simulated P2P network.

    Args:
        seed: RNG seed (topology generators and protocols that need
            randomness draw from :attr:`rng`).
        default_latency: Latency of links not configured explicitly.
        default_cost_per_byte: Transfer delay per byte for such links.
        observability: Run the ``repro.obs`` tracing layer.  On (the
            default), :attr:`tracer` mints spans on the virtual clock
            into a bounded :attr:`trace_collector`; off, it is the
            shared no-op recorder and the query path runs at seed cost.
        transport: The :class:`~repro.transport.base.Transport` moving
            messages and time.  ``None`` (the default) selects
            :class:`~repro.transport.sim.SimTransport`, whose behaviour
            is bit-identical to the pre-seam simulator; a live
            :class:`~repro.transport.live.AsyncioTransport` runs the
            same peers over TCP sockets, one process per peer.
    """

    def __init__(
        self,
        seed: int = 0,
        default_latency: float = 1.0,
        default_cost_per_byte: float = 0.0001,
        observability: bool = True,
        transport: Optional[Transport] = None,
    ):
        self.transport = transport if transport is not None else SimTransport()
        self.transport.bind(self)
        self.rng = random.Random(seed)
        self.metrics = MetricSet()
        # observability (repro.obs): one tracer serves the whole
        # simulated network, standing in for per-process tracers plus
        # the collection backend of a real deployment
        if observability:
            self.trace_collector: Optional[TraceCollector] = TraceCollector()
            self.tracer = Tracer(
                clock=lambda: self.now,
                collector=self.trace_collector,
                metrics=self.metrics,
            )
        else:
            self.trace_collector = None
            self.tracer = NULL_TRACER
        # flight recorder (repro.obs.telemetry): control-plane events —
        # sheds, quarantines, replans, churn — in a bounded ring; like
        # the tracer it is uncharged, so recording perturbs nothing
        if observability:
            self.flight_recorder: Optional[FlightRecorder] = FlightRecorder(
                clock=lambda: self.now
            )
        else:
            self.flight_recorder = None
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._default_link = Link(default_latency, default_cost_per_byte)
        self._down: Set[str] = set()
        # fault model (repro.resilience): no injector means the friendly
        # seed regime — no loss, and failures bounce omnisciently
        self.faults: Optional[FaultInjector] = None
        self.omniscient_bounces = True
        self._liveness_listeners: List[Callable[[str, bool], None]] = []

    @property
    def now(self) -> float:
        """The transport's clock (virtual time)."""
        return self.transport.now

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def register(self, node: Node) -> None:
        """Add a peer node; its ``peer_id`` becomes its address."""
        if node.peer_id in self._nodes:
            raise NetworkError(f"duplicate peer id {node.peer_id}")
        self._nodes[node.peer_id] = node
        self.transport.on_register(node)

    def node(self, peer_id: str) -> Node:
        try:
            return self._nodes[peer_id]
        except KeyError:
            raise NetworkError(f"unknown peer {peer_id}") from None

    def peer_ids(self) -> List[str]:
        return sorted(self._nodes)

    def set_link(
        self, a: str, b: str, latency: float, cost_per_byte: float = 0.0001
    ) -> None:
        """Configure the (symmetric) link between two peers."""
        link = Link(latency, cost_per_byte)
        self._links[(a, b)] = link
        self._links[(b, a)] = link

    def link(self, a: str, b: str) -> Link:
        return self._links.get((a, b), self._default_link)

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------
    def fail_peer(self, peer_id: str) -> None:
        """Mark a peer as down.  With omniscient bounces (the seed
        regime) messages to it come back as :class:`DeliveryFailure`
        notifications; under a realistic :class:`FaultPlan` they simply
        vanish and senders must time out."""
        if peer_id in self._down:
            return
        self._down.add(peer_id)
        self.emit_event("peer_down", peer=peer_id)
        self._notify_liveness(peer_id, alive=False)

    def recover_peer(self, peer_id: str) -> None:
        if peer_id not in self._down:
            return
        self._down.discard(peer_id)
        self.emit_event("peer_up", peer=peer_id)
        self._notify_liveness(peer_id, alive=True)

    def is_down(self, peer_id: str) -> bool:
        return peer_id in self._down

    def add_liveness_listener(self, listener: Callable[[str, bool], None]) -> None:
        """Subscribe to ``(peer_id, alive)`` transitions from
        :meth:`fail_peer` / :meth:`recover_peer`.  This models control
        out-of-band of the data plane (an operator marking a node dead),
        used to keep caches honest — peers still *learn* liveness from
        observation when the fault plan is non-omniscient."""
        self._liveness_listeners.append(listener)

    def _notify_liveness(self, peer_id: str, alive: bool) -> None:
        for listener in self._liveness_listeners:
            listener(peer_id, alive)

    def emit_event(self, kind: str, peer: Optional[str] = None, **fields) -> None:
        """Record one control-plane event in the flight recorder (a
        no-op when observability is off — callers need no guard)."""
        if self.flight_recorder is not None:
            self.flight_recorder.record(kind, peer=peer, **fields)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def install_faults(self, plan: FaultPlan) -> FaultInjector:
        """Arm a fault plan: hook the injector into message delivery and
        schedule its crash/recover events.  Returns the injector (its
        counters feed chaos reports)."""
        injector = FaultInjector(plan)
        self.faults = injector
        self.omniscient_bounces = plan.omniscient
        for crash in plan.crashes:
            self.call_later(
                max(0.0, crash.at - self.now),
                lambda p=crash.peer_id: self.fail_peer(p),
            )
            if crash.recover_at is not None:
                self.call_later(
                    max(0.0, crash.recover_at - self.now),
                    lambda p=crash.peer_id: self.recover_peer(p),
                )
        return injector

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Schedule delivery of a message (or of its failure bounce)."""
        if message.src not in self._nodes:
            raise NetworkError(f"unknown sender {message.src}")
        if message.dst not in self._nodes:
            if not self.transport.routes(message.dst):
                raise NetworkError(f"unknown destination {message.dst}")
            # destination lives in another process: meter and hand the
            # message to the wire (failures come back as bounces)
            link = self.link(message.src, message.dst)
            self.metrics.record_message(
                message.kind, message.src, message.dst, message.size,
                delay=link.delay(message.size),
            )
            if message.kind == "DataPacket":
                self.metrics.record_batch(message.payload.rows)
            self.transport.transmit_remote(message)
            return
        link = self.link(message.src, message.dst)
        delay = link.delay(message.size)
        self.metrics.record_message(
            message.kind, message.src, message.dst, message.size, delay=delay
        )
        if message.kind == "DataPacket":
            # vectorized-execution accounting: each DataPacket carries
            # one binding batch; how full it is drives the batch-size
            # experiments (bench_batch_size)
            self.metrics.record_batch(message.payload.rows)
        faults = self.faults
        if faults is not None:
            if faults.partitioned(message.src, message.dst, self.now) or faults.drops(
                message
            ):
                self.metrics.record_dropped_message()
                return
            delay += faults.extra_delay()
        if message.dst in self._down and self.omniscient_bounces:
            self._bounce(message, delay)
            return
        self._schedule(delay, lambda: self._deliver(message))
        if faults is not None and faults.duplicates(message):
            self.metrics.record_duplicated_message()
            self._schedule(delay + faults.extra_delay(), lambda: self._deliver(message))

    def _bounce(self, message: Message, delay: Optional[float] = None) -> None:
        """Schedule a metered :class:`DeliveryFailure` back to the sender
        (failure traffic counts against the messaging experiments just
        like any other message)."""
        bounce = Message(message.dst, message.src, DeliveryFailure(message))
        if delay is None:
            delay = self.link(message.dst, message.src).delay(bounce.size)
        self.metrics.record_message(bounce.kind, bounce.src, bounce.dst, bounce.size)
        self._schedule(delay, lambda: self._deliver(bounce))

    def _deliver(self, message: Message) -> None:
        if message.dst in self._down:
            # destination failed while the message was in flight
            if isinstance(message.payload, DeliveryFailure):
                return
            if self.omniscient_bounces:
                self._bounce(message)
            else:
                self.metrics.record_dropped_message()
            return
        self._nodes[message.dst].receive(message, self)

    def deliver_remote(self, message: Message) -> None:
        """Deliver a message that arrived over a live transport's wire.

        Frames for nodes that already left (or were never here — stale
        address books) are dropped; the sender's retry/suspicion
        machinery handles the silence, exactly as for an in-sim drop.
        """
        if message.dst not in self._nodes or message.dst in self._down:
            self.metrics.record_dropped_message()
            return
        self._nodes[message.dst].receive(message, self)

    def bounce_remote(self, message: Message) -> None:
        """Synthesise a :class:`DeliveryFailure` for a message the live
        transport could not put on the wire (connection refused/reset
        after the reconnect budget) — the real-deployment event the
        simulator's omniscient bounces stand in for."""
        bounce = Message(message.dst, message.src, DeliveryFailure(message))
        self.metrics.record_message(bounce.kind, bounce.src, bounce.dst, bounce.size)
        self._schedule(0.0, lambda: self.deliver_remote(bounce))

    def _schedule(self, delay: float, action: Callable[[], None]) -> None:
        self.transport.schedule(delay, action)

    def call_later(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule an arbitrary callback (protocol timers)."""
        if delay < 0:
            raise NetworkError("cannot schedule in the past")
        self._schedule(delay, action)

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def run(self, max_events: int = 1_000_000, until: Optional[float] = None) -> int:
        """Process events in time order; returns the number processed.

        Raises:
            EventBudgetExhausted: If ``max_events`` is exhausted (a
                protocol loop that never quiesces is a bug, not a
                workload).  The exception's message and
                ``diagnostics`` attribute describe what was still in
                flight — queries, per-peer queue depths, the oldest
                pending event, the active transport — so a livelocked
                workload is debuggable instead of a bare budget number.
        """
        return self.transport.run(max_events, until)

    def pending_events(self) -> int:
        return self.transport.pending_events()

    def diagnostics(self) -> dict:
        """A point-in-time report of what the network is still doing.

        Gathered on demand (nothing is book-kept for it): the virtual
        clock, the pending-event horizon, every query with an open
        latency attempt, and per-peer load read off the live peer
        objects — active coordinations, admission-queue depth, queued
        routing requests, open channels.
        """
        per_peer: Dict[str, Dict[str, int]] = {}
        for peer_id in sorted(self._nodes):
            node = self._nodes[peer_id]
            gauges = {
                "pending_queries": len(getattr(node, "_pending", ())),
                "queued_queries": len(getattr(node, "_admission_queue", ())),
                "queued_route_requests": len(getattr(node, "_route_queue", ())),
            }
            channels = getattr(node, "channels", None)
            gauges["open_channels"] = (
                len(channels.open_channels()) if channels is not None else 0
            )
            if any(gauges.values()):
                per_peer[peer_id] = gauges
        oldest = getattr(self.transport, "oldest_pending_at", lambda: None)()
        out = {
            "now": self.now,
            "pending_events": self.transport.pending_events(),
            "oldest_pending_event_at": oldest,
            "inflight_queries": self.metrics.inflight_query_ids(),
            "peers": per_peer,
            "down_peers": sorted(self._down),
            "transport": self.transport.kind,
        }
        out.update(self.transport.diagnostics_extra())
        return out

    def __repr__(self) -> str:
        return (
            f"Network(peers={len(self._nodes)}, down={len(self._down)}, "
            f"t={self.now:.2f}, pending={self.transport.pending_events()})"
        )
