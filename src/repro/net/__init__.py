"""The simulated P2P network substrate."""

from .message import DeliveryFailure, Message, payload_kind, payload_size
from .simulator import Link, Network, Node
from .topology import random_neighbour_graph, star, uniform_mesh

__all__ = [
    "DeliveryFailure",
    "Link",
    "Message",
    "Network",
    "Node",
    "payload_kind",
    "payload_size",
    "random_neighbour_graph",
    "star",
    "uniform_mesh",
]
