"""Message envelopes for the simulated P2P network.

A :class:`Message` wraps a typed payload (defined in
:mod:`repro.peers.protocol`) with source/destination addressing and a
wire-size estimate the simulator charges against link bandwidth.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

#: Fallback wire size for control payloads without a size method.
DEFAULT_MESSAGE_BYTES = 256

_sequence = itertools.count(1)


def payload_kind(payload: Any) -> str:
    """A short name for metric bucketing (the payload class name)."""
    return type(payload).__name__


def payload_size(payload: Any) -> int:
    """Wire-size estimate: the payload's ``size_bytes()`` if provided."""
    size_fn = getattr(payload, "size_bytes", None)
    if callable(size_fn):
        return int(size_fn())
    return DEFAULT_MESSAGE_BYTES


class Message:
    """One network message.

    Attributes:
        src: Sending peer id.
        dst: Destination peer id.
        payload: The typed protocol payload.
        size: Wire size in bytes (defaults to the payload estimate).
        id: Monotonic id, unique per process, for tracing.
        trace: Optional :class:`~repro.obs.span.TraceContext` carried
            with the message, so spans opened at the receiver stitch
            under the sender's span (distributed tracing,
            ``repro.obs``).  Like :attr:`id` it is simulator metadata:
            its ~50 bytes are *not* charged against link bandwidth, so
            enabling tracing never perturbs the experiments' byte and
            virtual-time numbers.
    """

    __slots__ = ("src", "dst", "payload", "size", "id", "trace")

    def __init__(
        self,
        src: str,
        dst: str,
        payload: Any,
        size: Optional[int] = None,
        trace=None,
    ):
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size = payload_size(payload) if size is None else size
        self.trace = trace
        self.id = next(_sequence)

    @property
    def kind(self) -> str:
        return payload_kind(self.payload)

    def __repr__(self) -> str:
        return f"Message#{self.id}({self.src} -> {self.dst}: {self.kind}, {self.size}B)"


class DeliveryFailure:
    """Transport-level failure notification, delivered to the sender
    when the destination peer is down or unreachable.

    This stands in for what a TCP reset / ubQL channel failure event
    gives the channel's root node in a real deployment, letting the
    adaptivity logic react without modelling timeouts.
    """

    __slots__ = ("original",)

    def __init__(self, original: Message):
        self.original = original

    def size_bytes(self) -> int:
        return 64

    def __repr__(self) -> str:
        return f"DeliveryFailure({self.original!r})"
