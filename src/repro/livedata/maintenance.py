"""Incremental active-schema maintenance over a live peer base.

``ActiveSchema.from_base`` scans every schema property and every
``rdf:type`` statement — fine at join time, wasteful per update batch.
:class:`LiveMaintainer` keeps the derivation *incremental*: it applies
an update batch to the base, patches the dictionary-encoded columnar
twin in place (:meth:`~repro.execution.encoded.EncodedBase.apply_delta`
— no re-encoding), re-derives only the schema fragments an update could
have flipped, and reports the resulting
:class:`~repro.livedata.updates.AdvertiseDelta` (or ``None`` when the
intensional footprint did not move — purely extensional churn stays
silent, Section 2.2's economy).

The maintained advertisement is value-identical to a from-scratch
``PeerBase.active_schema`` re-derivation after every batch — the
equivalence the property suite and the difftest oracle wall pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ..rdf.terms import URI
from ..rdf.triple import Triple
from ..rdf.vocabulary import TYPE
from ..rql.pattern import SchemaPath
from ..rvl.active_schema import ActiveSchema
from ..rvl.parser import parse_view
from .updates import (
    AdvertiseDelta,
    DeleteTriple,
    InsertTriple,
    RedefineViews,
    UpdateBatch,
    advertisement_delta,
)


@dataclass
class AppliedBatch:
    """What one :class:`UpdateBatch` did to the base.

    Attributes:
        applied: Records that changed the base (idempotent re-inserts
            and misses don't count).
        inserted: The effectively asserted triples.
        deleted: The effectively retracted triples.
        views_changed: A :class:`RedefineViews` record took effect.
        delta: The advertisement delta to push, or ``None`` when the
            footprint did not move.
    """

    applied: int = 0
    inserted: List[Triple] = field(default_factory=list)
    deleted: List[Triple] = field(default_factory=list)
    views_changed: bool = False
    delta: Optional[AdvertiseDelta] = None


class LiveMaintainer:
    """Applies update batches to one peer base, incrementally.

    Args:
        base: The peer's :class:`~repro.peers.base.PeerBase`.
        peer_id: The advertising peer (stamped on advertisements).
    """

    def __init__(self, base, peer_id: str):
        self.base = base
        self.peer_id = peer_id
        self._populated: Set[URI] = set()
        self._asserted_classes: Set[URI] = set()
        self._rescan_extensional()
        #: the advertisement as last derived (what holders believe,
        #: once the initial full Advertise lands)
        self.current: ActiveSchema = self._derive()

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _rescan_extensional(self) -> None:
        """Full scan of the extensional footprint (init / view removal)."""
        graph, schema = self.base.graph, self.base.schema
        self._populated = {
            prop
            for prop in schema.properties
            if next(graph.triples(None, prop, None), None) is not None
        }
        self._asserted_classes = {
            t.object
            for t in graph.triples(None, TYPE, None)
            if isinstance(t.object, URI) and schema.has_class(t.object)
        }

    def _derive(self) -> ActiveSchema:
        """The current advertisement, from the maintained bookkeeping.

        Mirrors ``PeerBase.active_schema``: views take precedence;
        otherwise the tracked extensional footprint stands in for the
        ``from_base`` scan.
        """
        if self.base.views:
            return self.base.active_schema(self.peer_id)
        schema = self.base.schema
        paths = []
        for prop in self._populated:
            definition = schema.property_def(prop)
            paths.append(SchemaPath(definition.domain, prop, definition.range))
        return ActiveSchema(
            schema.namespace.uri, paths, self._asserted_classes, self.peer_id
        )

    def _note_insert(self, triple: Triple) -> None:
        schema = self.base.schema
        if schema.has_property(triple.predicate):
            self._populated.add(triple.predicate)
        if (
            triple.predicate == TYPE
            and isinstance(triple.object, URI)
            and schema.has_class(triple.object)
        ):
            self._asserted_classes.add(triple.object)

    def _note_delete(self, triple: Triple) -> None:
        graph, schema = self.base.graph, self.base.schema
        predicate = triple.predicate
        if predicate in self._populated:
            if next(graph.triples(None, predicate, None), None) is None:
                self._populated.discard(predicate)
        if (
            predicate == TYPE
            and isinstance(triple.object, URI)
            and triple.object in self._asserted_classes
        ):
            if next(graph.triples(None, TYPE, triple.object), None) is None:
                self._asserted_classes.discard(triple.object)

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply(self, batch: UpdateBatch) -> AppliedBatch:
        """Apply one batch; returns what changed (including the
        advertisement delta to push, when the footprint moved)."""
        result = AppliedBatch()
        graph = self.base.graph
        pre_version = graph.version
        for record in batch.updates:
            if isinstance(record, InsertTriple):
                if graph.add_triple(record.triple):
                    result.applied += 1
                    result.inserted.append(record.triple)
                    self._note_insert(record.triple)
            elif isinstance(record, DeleteTriple):
                if graph.remove_triple(record.triple):
                    result.applied += 1
                    result.deleted.append(record.triple)
                    self._note_delete(record.triple)
            elif isinstance(record, RedefineViews):
                self.base.views = tuple(parse_view(text) for text in record.texts)
                result.applied += 1
                result.views_changed = True
                if not self.base.views:
                    # back to the materialised scenario: the footprint
                    # is extensional again, resync the bookkeeping
                    self._rescan_extensional()
        self._patch_encoded(pre_version, result.inserted, result.deleted)
        new = self._derive()
        if new != self.current:
            result.delta = advertisement_delta(self.current, new)
            self.current = new
        return result

    def _patch_encoded(
        self, pre_version: int, inserted: List[Triple], deleted: List[Triple]
    ) -> None:
        """Patch the encoded twin's id columns in place (when it exists
        and was coherent with the pre-batch graph); otherwise leave it
        to rebuild lazily through ``Graph.version``."""
        encoded = getattr(self.base, "_encoded", None)
        if encoded is None or (not inserted and not deleted):
            return
        if encoded._version != pre_version:
            return  # already stale; the next access rebuilds from scratch
        encoded.apply_delta(inserted, deleted)
