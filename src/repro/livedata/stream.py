"""Seeded update streams and their injection drivers.

An :class:`UpdateStream` pre-generates, deterministically from a seed,
a sequence of *revisions*: per-peer :class:`~repro.livedata.updates.
UpdateBatch` payloads mixing triple inserts, triple deletes and RVL
view redefinitions at configurable per-peer rates.  Generation runs
against shadow copies of the bases, so delete targets always exist and
view redefinitions stay *covering* (a virtual base never under-
advertises its populated properties — routing completeness is
preserved, which is what lets the difftest wall compare live answers
against a centralized oracle).

:class:`LiveDataDriver` injects a stream into a running deployment
through an ordinary network peer — the same
``UpdateBatch`` wire payloads whether the transport is simulated or
live, which is the point: updates are protocol traffic, not test-
harness back doors.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence

from ..peers.base import Peer
from ..rdf.graph import Graph
from ..rdf.schema import Schema
from ..rdf.terms import URI
from ..rdf.triple import Triple
from ..rdf.vocabulary import TYPE
from .updates import (
    DeleteTriple,
    InsertTriple,
    RedefineViews,
    RefreshStanding,
    UpdateAck,
    UpdateBatch,
    UpdateRecord,
)


def _local_name(uri: URI, namespace: str) -> str:
    return uri.value[len(namespace):] if uri.value.startswith(namespace) else uri.value


def covering_view_text(
    schema: Schema, properties: Sequence[URI], prefix: str = "s"
) -> str:
    """An RVL view whose head populates exactly ``properties``.

    Head atom ``s:p(Xi, Yi)`` with a matching FROM path per property —
    the canonical covering view of a materialised fragment.
    """
    namespace = schema.namespace.uri
    atoms, paths = [], []
    for index, prop in enumerate(properties):
        name = _local_name(prop, namespace)
        atoms.append(f"{prefix}:{name}(X{index}, Y{index})")
        paths.append(f"{{X{index}}} {prefix}:{name} {{Y{index}}}")
    return (
        f"CREATE VIEW {', '.join(atoms)} FROM {', '.join(paths)} "
        f"USING NAMESPACE {prefix} = &{namespace}&"
    )


class UpdateStream:
    """A deterministic, seeded stream of live-data revisions.

    Args:
        schema: The community schema updates speak.
        bases: Peer id → base graph at stream start (copied; the
            stream never mutates the real bases).
        seed: Generation seed — same seed, same stream, always.
        revisions: Number of quiescent revisions to generate.
        rate: Default per-revision update rate as a fraction of the
            peer's base size (``max(1, round(rate * |base|))`` records).
        per_peer_rates: Optional per-peer overrides of ``rate``.
        view_probability: Chance per (peer, revision) that the batch
            carries a view redefinition alongside the triple churn.
        delete_fraction: Fraction of triple records that are deletes.
    """

    def __init__(
        self,
        schema: Schema,
        bases: Dict[str, Graph],
        seed: int,
        revisions: int = 4,
        rate: float = 0.08,
        per_peer_rates: Optional[Dict[str, float]] = None,
        view_probability: float = 0.15,
        delete_fraction: float = 0.35,
    ):
        self.schema = schema
        self.seed = seed
        self.revision_count = revisions
        rng = random.Random(seed)
        properties = sorted(schema.properties, key=lambda u: u.value)
        classes = sorted(schema.classes, key=lambda u: u.value)
        shadows = {peer: bases[peer].copy() for peer in sorted(bases)}
        #: peer → properties its current view covers (None = materialised)
        covered: Dict[str, Optional[List[URI]]] = {peer: None for peer in shadows}
        fresh = 0
        #: revision index → list of per-peer batches
        self.revisions: List[List[UpdateBatch]] = []
        rates = per_peer_rates or {}
        for revision in range(1, revisions + 1):
            batches: List[UpdateBatch] = []
            for peer in sorted(shadows):
                shadow = shadows[peer]
                records: List[UpdateRecord] = []
                peer_rate = rates.get(peer, rate)
                count = max(1, round(peer_rate * len(shadow)))
                for _ in range(count):
                    pick = rng.random()
                    if pick < delete_fraction and len(shadow):
                        victim = rng.choice(
                            sorted(shadow.triples(None, None, None), key=Triple.n3)
                        )
                        records.append(DeleteTriple(victim))
                        shadow.remove_triple(victim)
                    elif pick < delete_fraction + 0.1:
                        cls = rng.choice(classes)
                        triple = Triple(URI(f"urn:live:{seed}:m{fresh}"), TYPE, cls)
                        fresh += 1
                        if shadow.add_triple(triple):
                            records.append(InsertTriple(triple))
                    else:
                        pool = covered[peer] if covered[peer] else properties
                        prop = rng.choice(pool)
                        triple = Triple(
                            URI(f"urn:live:{seed}:s{fresh}"),
                            prop,
                            URI(f"urn:live:{seed}:o{fresh}"),
                        )
                        fresh += 1
                        if shadow.add_triple(triple):
                            records.append(InsertTriple(triple))
                if rng.random() < view_probability:
                    if covered[peer] is not None and rng.random() < 0.4:
                        # revert to the materialised scenario
                        records.append(RedefineViews(()))
                        covered[peer] = None
                    else:
                        populated = [
                            p
                            for p in properties
                            if next(shadow.triples(None, p, None), None) is not None
                        ]
                        extras = [p for p in properties if p not in populated]
                        if extras and rng.random() < 0.5:
                            populated.append(rng.choice(extras))
                        if populated:
                            records.append(
                                RedefineViews(
                                    (covering_view_text(self.schema, populated),)
                                )
                            )
                            covered[peer] = populated
                if records:
                    batches.append(UpdateBatch(peer, revision, tuple(records)))
            self.revisions.append(batches)
        #: the end-state shadows (what the bases look like after every
        #: revision applied) — handy for oracle construction
        self.final_shadows = shadows

    def all_batches(self) -> List[UpdateBatch]:
        return [batch for revision in self.revisions for batch in revision]

    def total_records(self) -> int:
        return sum(len(b.updates) for b in self.all_batches())


class UpdateInjector(Peer):
    """The network peer an update driver speaks through."""

    def __init__(self, peer_id: str = "live-injector"):
        super().__init__(peer_id)
        self.acks: List[UpdateAck] = []

    def handle_UpdateAck(self, message) -> None:
        self.acks.append(message.payload)


class LiveDataDriver:
    """Injects an :class:`UpdateStream` into a running deployment.

    Works against anything exposing ``network`` (an in-sim
    :class:`~repro.systems.hybrid.HybridSystem` /
    :class:`~repro.systems.adhoc.AdhocSystem`, or a live
    :class:`~repro.deploy.launcher.LiveCluster`): the driver joins an
    injector peer and ships each revision's batches as ordinary
    messages.
    """

    def __init__(self, system, stream: UpdateStream):
        self.system = system
        self.stream = stream
        self.injector = UpdateInjector()
        self.injector.join(system.network)
        self.injected = 0

    def inject(self, revision_index: int) -> int:
        """Send one revision's batches; returns the batch count."""
        batches = self.stream.revisions[revision_index]
        for batch in batches:
            self.injector.send(batch.target, batch)
        self.injected += len(batches)
        return len(batches)

    def acked(self, revision: int) -> bool:
        """Whether every batch of ``revision`` (1-based) was applied."""
        expected = {
            b.target for b in self.stream.revisions[revision - 1]
        }
        seen = {a.target for a in self.injector.acks if a.revision == revision}
        return expected <= seen

    def refresh_standing(self, peer_ids: Iterable[str], revision: int) -> None:
        """Mark the quiescent point: tell coordinators holding standing
        queries to re-evaluate and push deltas for ``revision``."""
        for peer_id in peer_ids:
            self.injector.send(peer_id, RefreshStanding(revision))

    def schedule(self, start: float = 100.0, spacing: float = 400.0) -> None:
        """Schedule every revision on the network's virtual clock (the
        mid-run injection mode ``repro serve --updates`` uses)."""
        for index in range(len(self.stream.revisions)):
            self.system.network.call_later(
                start + index * spacing,
                lambda i=index: self.inject(i),
            )
